#!/usr/bin/env python3
"""Fault injection end to end: break a RAPTEE deployment and watch it heal.

Builds a 150-node RAPTEE deployment (30 % trusted), then injects a custom
fault plan mid-run:

1. an attestation-service outage (the recovery manager must wait it out);
2. a third of the trusted enclaves crash during the outage;
3. some of the victims also lose their sealed K_T backups (bit-rot), so
   sealed-storage restore fails and they must re-attest — which only
   succeeds once the outage lifts, under exponential backoff;
4. a crash-restart of one honest node and an omission window on another.

The InvariantChecker audits every round; the report at the end reads the
degradation/promotion counters and the per-cause drop counts out of the
telemetry registry (see :mod:`repro.telemetry`) — the same numbers the
JSONL trace carries event by event.

Run:  python examples/fault_drill.py
"""

from repro.core.eviction import AdaptiveEviction
from repro.experiments.scenarios import TopologySpec, build_raptee_simulation
from repro.faults import (
    AttestationOutageFault,
    CrashRestartFault,
    EnclaveCrashFault,
    FaultPlan,
    InvariantChecker,
    OmissionFault,
    RoundWindow,
    SealedBlobCorruptionFault,
    wire_faults,
)
from repro.telemetry import wire_telemetry

SEED = 7
ROUNDS = 40


def main() -> None:
    spec = TopologySpec(
        n_nodes=150,
        byzantine_fraction=0.10,
        trusted_fraction=0.30,
        view_ratio=0.08,
    )
    bundle = build_raptee_simulation(spec, SEED, eviction=AdaptiveEviction())
    telemetry = wire_telemetry(bundle).telemetry  # before wire_faults
    trusted = sorted(bundle.trusted_ids)
    victims = trusted[: len(trusted) // 3]
    honest = sorted(
        bundle.simulation.correct_node_ids() - bundle.trusted_ids
    )

    plan = FaultPlan(
        [
            AttestationOutageFault(RoundWindow(8, 16)),
            *[EnclaveCrashFault(victim, at_round=8) for victim in victims],
            *[
                SealedBlobCorruptionFault(victim, at_round=8)
                for victim in victims[::2]
            ],
            CrashRestartFault(honest[0], at_round=10, down_rounds=5),
            OmissionFault(honest[1], RoundWindow(10, 20), drop_rate=0.5),
        ]
    )
    print(plan.describe())

    checker = InvariantChecker(record_only=False)  # raise on any violation
    harness = wire_faults(bundle, plan, SEED, checker=checker)
    print(f"\nRunning {ROUNDS} rounds with faults armed…")
    harness.run(ROUNDS)

    registry = telemetry.registry
    drops_by_cause = {
        str(cause): int(count)
        for cause, count in registry.by_label("faults.drops", "cause").items()
    }
    print(f"\nenclave crashes:   {int(registry.value('faults.enclave_crashes'))}")
    print(f"degradations:      {int(registry.value('raptee.degradations'))} "
          f"(promoted back {int(registry.value('raptee.promotions'))})")
    print(f"sealed restores:   {int(registry.value('recovery.restores_from_seal'))}")
    print(f"re-provisionings:  {int(registry.value('recovery.reprovisions'))} "
          f"(after {int(registry.value('recovery.failed_attempts'))} refused attempts)")
    print(f"drops by cause:    {drops_by_cause}")
    print(f"invariants:        {checker.rounds_checked} rounds checked, "
          f"{len(checker.violations)} violations")
    # Final value of the per-round gauge = nodes still degraded at the end.
    print(f"still degraded:    {int(registry.value('raptee.degraded_nodes'))}")


if __name__ == "__main__":
    main()
