#!/usr/bin/env python3
"""Fault injection end to end: break a RAPTEE deployment and watch it heal.

Builds a 150-node RAPTEE deployment (30 % trusted), then injects a custom
fault plan mid-run:

1. an attestation-service outage (the recovery manager must wait it out);
2. a third of the trusted enclaves crash during the outage;
3. some of the victims also lose their sealed K_T backups (bit-rot), so
   sealed-storage restore fails and they must re-attest — which only
   succeeds once the outage lifts, under exponential backoff;
4. a crash-restart of one honest node and an omission window on another.

The InvariantChecker audits every round; the report at the end shows the
degradation/promotion counters and where every dropped message went.

Run:  python examples/fault_drill.py
"""

from repro.core.eviction import AdaptiveEviction
from repro.core.node import RapteeNode
from repro.experiments.scenarios import TopologySpec, build_raptee_simulation
from repro.faults import (
    AttestationOutageFault,
    CrashRestartFault,
    EnclaveCrashFault,
    FaultPlan,
    InvariantChecker,
    OmissionFault,
    RoundWindow,
    SealedBlobCorruptionFault,
    wire_faults,
)

SEED = 7
ROUNDS = 40


def main() -> None:
    spec = TopologySpec(
        n_nodes=150,
        byzantine_fraction=0.10,
        trusted_fraction=0.30,
        view_ratio=0.08,
    )
    bundle = build_raptee_simulation(spec, SEED, eviction=AdaptiveEviction())
    trusted = sorted(bundle.trusted_ids)
    victims = trusted[: len(trusted) // 3]
    honest = sorted(
        bundle.simulation.correct_node_ids() - bundle.trusted_ids
    )

    plan = FaultPlan(
        [
            AttestationOutageFault(RoundWindow(8, 16)),
            *[EnclaveCrashFault(victim, at_round=8) for victim in victims],
            *[
                SealedBlobCorruptionFault(victim, at_round=8)
                for victim in victims[::2]
            ],
            CrashRestartFault(honest[0], at_round=10, down_rounds=5),
            OmissionFault(honest[1], RoundWindow(10, 20), drop_rate=0.5),
        ]
    )
    print(plan.describe())

    checker = InvariantChecker(record_only=False)  # raise on any violation
    harness = wire_faults(bundle, plan, SEED, checker=checker)
    print(f"\nRunning {ROUNDS} rounds with faults armed…")
    harness.run(ROUNDS)

    stats = harness.injector.stats
    recovery = harness.recovery.stats
    degraded_rounds = sum(
        node.degradations_total
        for node in bundle.simulation.nodes.values()
        if isinstance(node, RapteeNode)
    )
    print(f"\nenclave crashes:   {stats.enclave_crashes}")
    print(f"degradations:      {degraded_rounds}")
    print(f"sealed restores:   {recovery.restores_from_seal}")
    print(f"re-provisionings:  {recovery.reprovisions} "
          f"(after {recovery.failed_attempts} refused attempts)")
    print(f"drops by cause:    {dict(stats.drops_by_cause)}")
    print(f"invariants:        {checker.rounds_checked} rounds checked, "
          f"{len(checker.violations)} violations")
    still_degraded = [
        node.node_id
        for node in bundle.simulation.nodes.values()
        if isinstance(node, RapteeNode) and node.degraded
    ]
    print(f"still degraded:    {sorted(still_degraded) or 'none'}")


if __name__ == "__main__":
    main()
