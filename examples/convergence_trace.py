#!/usr/bin/env python3
"""Watch the pollution dynamics round by round.

Runs Brahms and RAPTEE side by side under the same adversary and renders
the per-round mean view pollution as terminal charts — the Brahms spiral
climbing, RAPTEE's trusted nodes pulling it back down, and the per-kind
split showing trusted views staying cleaner than honest ones.

Run:  python examples/convergence_trace.py
"""

from repro.analysis.plotting import (
    line_chart,
    per_kind_series,
    pollution_series,
    sparkline,
)
from repro.core.eviction import AdaptiveEviction
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)
from repro.sim.node import NodeKind

N_NODES = 250
ROUNDS = 70
SEED = 17


def main() -> None:
    print(f"{N_NODES} nodes, 15% Byzantine, {ROUNDS} rounds; RAPTEE: 20% trusted, adaptive ER\n")

    brahms = build_brahms_simulation(
        TopologySpec(n_nodes=N_NODES, byzantine_fraction=0.15, view_ratio=0.08), SEED
    )
    brahms.run(ROUNDS)

    raptee = build_raptee_simulation(
        TopologySpec(
            n_nodes=N_NODES, byzantine_fraction=0.15, trusted_fraction=0.20,
            view_ratio=0.08,
        ),
        SEED,
        eviction=AdaptiveEviction(),
    )
    raptee.run(ROUNDS)

    brahms_pollution = pollution_series(brahms.trace.records)
    raptee_pollution = pollution_series(raptee.trace.records)

    print("Mean Byzantine fraction of correct views, per round:")
    print(line_chart(
        {"brahms": brahms_pollution, "raptee": raptee_pollution},
        height=12, width=ROUNDS, y_label="byz fraction",
    ))

    print("\nRAPTEE per-kind pollution (trusted nodes stay cleaner):")
    honest = per_kind_series(raptee.trace.records, NodeKind.HONEST)
    trusted = per_kind_series(raptee.trace.records, NodeKind.TRUSTED)
    print(f"  honest  {sparkline(honest, 0.0, max(honest))}  final {honest[-1]:.1%}")
    print(f"  trusted {sparkline(trusted, 0.0, max(honest))}  final {trusted[-1]:.1%}")

    rates = [
        node.last_eviction_rate
        for node in raptee.simulation.nodes.values()
        if node.kind is NodeKind.TRUSTED and node.last_eviction_rate is not None
    ]
    if rates:
        print(f"\nAdaptive eviction rates this round: "
              f"min {min(rates):.2f} / mean {sum(rates) / len(rates):.2f} / max {max(rates):.2f}")


if __name__ == "__main__":
    main()
