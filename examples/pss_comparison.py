#!/usr/bin/env python3
"""Compare peer-sampling protocols: Cyclon, Newscast, Brahms — with and
without an adversary.

Reproduces the folk results that motivate the paper's related-work section:

* in a benign network all three build good overlays (balanced in-degree,
  fast discovery), with Cyclon's shuffle giving the most balanced degrees
  and Newscast flushing departed nodes fastest;
* add 15 % Byzantine nodes and the classic protocols' views saturate with
  attacker IDs, while Brahms' defenses bound the damage.

Run:  python examples/pss_comparison.py
"""

import random
import statistics
from collections import Counter

from repro.brahms.config import BrahmsConfig
from repro.brahms.node import BrahmsNode
from repro.experiments.scenarios import TopologySpec, build_brahms_simulation
from repro.gossip.cyclon import CyclonNode
from repro.gossip.newscast import NewscastNode
from repro.sim.bootstrap import UniformBootstrap
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.node import NodeKind

N = 150
VIEW = 12
ROUNDS = 40
SEED = 5


def run_benign(node_class) -> dict:
    network = Network(random.Random(SEED))
    nodes = [node_class(i, VIEW, random.Random(SEED * 997 + i)) for i in range(N)]
    bootstrap = UniformBootstrap(list(range(N)), random.Random(SEED))
    for node in nodes:
        node.seed_view(bootstrap.initial_view(node.node_id, VIEW))
    sim = Simulation(network, nodes, random.Random(SEED))
    sim.run(ROUNDS)
    in_degree = Counter()
    for node in nodes:
        for peer in node.view_ids():
            in_degree[peer] += 1
    return {
        "discovery": statistics.mean(len(node.known) for node in nodes) / N,
        "in_degree_std": statistics.pstdev([in_degree[i] for i in range(N)]),
    }


def run_benign_brahms() -> dict:
    config = BrahmsConfig(view_size=VIEW, sample_size=VIEW // 2)
    network = Network(random.Random(SEED))
    nodes = [
        BrahmsNode(i, NodeKind.HONEST, config, random.Random(SEED * 997 + i))
        for i in range(N)
    ]
    bootstrap = UniformBootstrap(list(range(N)), random.Random(SEED))
    for node in nodes:
        node.seed_view(bootstrap.initial_view(node.node_id, VIEW))
    sim = Simulation(network, nodes, random.Random(SEED))
    sim.run(ROUNDS)
    in_degree = Counter()
    for node in nodes:
        for peer in node.view_ids():
            in_degree[peer] += 1
    return {
        "discovery": statistics.mean(len(node.known) for node in nodes) / N,
        "in_degree_std": statistics.pstdev([in_degree[i] for i in range(N)]),
    }


def cyclon_under_attack() -> float:
    """Cyclon with Byzantine nodes that always offer Byzantine descriptors."""
    from repro.gossip.framework import ViewExchangeReply, ViewExchangeRequest
    from repro.gossip.partial_view import ViewEntry
    from repro.sim.node import NodeBase

    n_byz = int(N * 0.15)
    byzantine_ids = set(range(n_byz))

    class ByzantineCyclon(NodeBase):
        def __init__(self, node_id, rng):
            super().__init__(node_id, NodeKind.BYZANTINE)
            self.rng = rng

        def gossip(self, ctx):
            return None

        def handle_request(self, message):
            if isinstance(message, ViewExchangeRequest):
                offered = tuple(
                    ViewEntry(self.rng.choice(sorted(byzantine_ids)), 0)
                    for _ in range(VIEW // 2)
                )
                return ViewExchangeReply(sender=self.node_id, entries=offered)
            return None

        def view_ids(self):
            return sorted(byzantine_ids)[:VIEW]

        def known_ids(self):
            return list(range(N))

        def seed_view(self, ids):
            return None

    network = Network(random.Random(SEED))
    nodes = [ByzantineCyclon(i, random.Random(i)) for i in range(n_byz)]
    nodes += [CyclonNode(i, VIEW, random.Random(SEED * 997 + i)) for i in range(n_byz, N)]
    bootstrap = UniformBootstrap(list(range(N)), random.Random(SEED))
    for node in nodes:
        node.seed_view(bootstrap.initial_view(node.node_id, VIEW))
    sim = Simulation(network, nodes, random.Random(SEED))
    sim.run(ROUNDS)
    pollutions = [
        sum(1 for peer in node.view_ids() if peer in byzantine_ids)
        / max(1, len(node.view_ids()))
        for node in nodes
        if node.kind is NodeKind.HONEST
    ]
    return statistics.mean(pollutions)


def brahms_under_attack() -> float:
    spec = TopologySpec(n_nodes=N, byzantine_fraction=0.15, view_ratio=VIEW / N)
    bundle = build_brahms_simulation(spec, SEED)
    bundle.run(ROUNDS)
    return bundle.trace.records[-1].mean_byzantine_fraction


def main() -> None:
    print(f"Benign network, N={N}, view={VIEW}, {ROUNDS} rounds")
    print(f"{'protocol':<10} {'discovery':>9} {'in-degree σ':>12}")
    for name, stats in (
        ("Cyclon", run_benign(CyclonNode)),
        ("Newscast", run_benign(NewscastNode)),
        ("Brahms", run_benign_brahms()),
    ):
        print(f"{name:<10} {stats['discovery']:>9.1%} {stats['in_degree_std']:>12.2f}")

    print(f"\nUnder 15% Byzantine nodes (view pollution of honest nodes):")
    print(f"{'Cyclon':<10} {cyclon_under_attack():>9.1%}   (no defenses)")
    print(f"{'Brahms':<10} {brahms_under_attack():>9.1%}   (limited pushes, blocking, history sample)")


if __name__ == "__main__":
    main()
