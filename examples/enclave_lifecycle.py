#!/usr/bin/env python3
"""The SGX trusted-node lifecycle, step by step.

Walks the full trusted computing base exactly as a RAPTEE operator would:

1. manufacture an SGX device and certify it with the attestation service;
2. load the RAPTEE enclave and verify the ECALL boundary holds;
3. remote-attest and provision the group key K_T (never visible outside);
4. seal K_T, "reboot" the enclave, restore from the sealed blob;
5. run the §IV-A mutual authentication between two trusted enclaves, then
   show a Byzantine impostor failing it.

Run:  python examples/enclave_lifecycle.py
"""

from repro.core.auth import AuthScheme
from repro.core.deployment import TrustedInfrastructure
from repro.core.enclave import RapteeEnclave
from repro.crypto.prng import Sha256Prng
from repro.sgx.errors import EnclaveViolation, SealingError

SEED = 99


def main() -> None:
    rng = Sha256Prng(SEED)
    infrastructure = TrustedInfrastructure(rng.spawn("tcb"), provisioning_key_bits=512)

    print("1. Manufacturing + certifying SGX device, loading enclave…")
    enclave_a, device_a = infrastructure.new_trusted_enclave(device_id=1)
    print(f"   measurement (MRENCLAVE): {enclave_a.measurement.hex()[:32]}…")
    print(f"   provisioned: {enclave_a.is_provisioned()}")

    print("\n2. Probing the ECALL boundary from untrusted code…")
    try:
        _ = enclave_a._group_key
    except EnclaveViolation as error:
        print(f"   blocked: {error}")

    print("\n3. Sealing K_T and restoring after a simulated restart…")
    blob = enclave_a.seal_group_key()
    print(f"   sealed blob: {len(blob)} bytes (nonce ‖ AES-CTR ciphertext ‖ HMAC)")
    rebooted = device_a.load(RapteeEnclave, provisioning_key_bits=512)
    print(f"   fresh enclave provisioned: {rebooted.is_provisioned()}")
    rebooted.restore_group_key(blob)
    print(f"   after restore:             {rebooted.is_provisioned()}")
    try:
        other_device_enclave, other_device = infrastructure.new_trusted_enclave(2)
        stranger = other_device.load(RapteeEnclave, provisioning_key_bits=512)
        stranger.restore_group_key(blob)
    except SealingError as error:
        print(f"   other device cannot unseal: {error}")

    print("\n4. Mutual authentication between two trusted enclaves (§IV-A)…")
    enclave_b, _device_b = infrastructure.new_trusted_enclave(device_id=3)
    protocol_rng = rng.spawn("auth")
    r_a = AuthScheme.make_challenge(protocol_rng)
    r_b, proof = enclave_b.auth_respond(r_a)
    a_trusts_b = enclave_a.auth_check_response(r_a, r_b, proof)
    confirm = enclave_a.auth_confirm(r_a, r_b)
    b_trusts_a = enclave_b.auth_check_confirm(r_a, r_b, confirm)
    print(f"   A→B challenge r_A, B→A (r_B, [H(r_A‖r_B)]_K): A trusts B = {a_trusts_b}")
    print(f"   A→B [H(r_B‖r_A)]_K:                           B trusts A = {b_trusts_a}")

    print("\n5. A Byzantine impostor with its own random key…")
    impostor_scheme = AuthScheme("hmac")
    impostor_key = protocol_rng.getrandbits(128).to_bytes(16, "big")
    r_a = AuthScheme.make_challenge(protocol_rng)
    parts = impostor_scheme.respond(impostor_key, r_a, protocol_rng)
    accepted = enclave_a.auth_check_response(r_a, parts.r_b, parts.proof)
    print(f"   enclave accepts impostor: {accepted}")
    print("   (and the impostor learns nothing: a failed compare looks the")
    print("    same whether the peer was honest-untrusted or trusted)")


if __name__ == "__main__":
    main()
