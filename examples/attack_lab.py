#!/usr/bin/env python3
"""Attack lab: the two §VI attacks, end to end.

(1) Trusted-node identification — Byzantine nodes probe pull answers,
    the adversary classifies "cleaner than average" nodes as trusted, and
    we report precision/recall/F1 for several eviction policies.
(2) View-poisoned trusted-node injection — genuine enclaves with
    adversarially poisoned initial views join the network; we track how
    their pollution decays (self-healing) and what happens to the system's
    resilience improvement.

Run:  python examples/attack_lab.py
"""

import statistics

from repro.adversary.identification import IdentificationAttack
from repro.analysis.metrics import resilience_improvement
from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.experiments.runner import run_bundle
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)
from repro.sim.node import NodeKind

N_NODES = 200
ROUNDS = 50
SEED = 33


def identification_attack() -> None:
    print("=" * 64)
    print("Attack 1: trusted-node identification (§VI-A)")
    print("=" * 64)
    spec = TopologySpec(
        n_nodes=N_NODES, byzantine_fraction=0.20, trusted_fraction=0.20, view_ratio=0.08
    )
    config = spec.brahms_config()
    print(f"{'policy':<12} {'precision':>9} {'recall':>7} {'F1':>6}")
    for policy in (FixedEviction(0.0), FixedEviction(1.0), AdaptiveEviction()):
        bundle = build_raptee_simulation(
            spec, SEED, eviction=policy, probe_pulls=config.beta_count
        )
        bundle.run(20)  # pre-stability: the attack's best window
        report = IdentificationAttack(bundle.coordinator).classify(
            bundle.trusted_ids, since_round=1, until_round=20
        )
        print(
            f"{policy.describe():<12} {report.precision:>9.2f} "
            f"{report.recall:>7.2f} {report.f1:>6.2f}"
        )
    print("\nEviction is the leakage channel: the harder trusted nodes")
    print("evict, the cleaner their answers, the easier they are to spot.")
    print("The adaptive rule trades a little eviction for anonymity.\n")


def poisoned_injection() -> None:
    print("=" * 64)
    print("Attack 2: view-poisoned trusted-node injection (§VI-B)")
    print("=" * 64)
    baseline_spec = TopologySpec(
        n_nodes=N_NODES, byzantine_fraction=0.10, view_ratio=0.08
    )
    brahms = run_bundle(build_brahms_simulation(baseline_spec, SEED), ROUNDS)

    for poisoned in (0.0, 0.10, 0.30):
        spec = TopologySpec(
            n_nodes=N_NODES,
            byzantine_fraction=0.10,
            trusted_fraction=0.05,
            poisoned_fraction=poisoned,
            view_ratio=0.08,
        )
        bundle = build_raptee_simulation(spec, SEED, eviction=AdaptiveEviction())
        sim = bundle.simulation
        poisoned_nodes = [
            node for node in sim.nodes.values()
            if node.kind is NodeKind.POISONED_TRUSTED
        ]
        byz = sim.byzantine_ids

        def pollution() -> float:
            if not poisoned_nodes:
                return 0.0
            return statistics.mean(
                sum(1 for peer in node.view if peer in byz) / max(1, len(node.view))
                for node in poisoned_nodes
            )

        before = pollution()
        metrics = run_bundle(bundle, ROUNDS)
        after = pollution()
        improvement = resilience_improvement(brahms.resilience, metrics.resilience)
        label = f"{poisoned:.0%} poisoned injected"
        healing = f"poisoned views {before:.0%} → {after:.0%}" if poisoned_nodes else "—"
        print(f"{label:<24} improvement {improvement:+6.1f}%   {healing}")

    print("\nInjected nodes run *genuine* enclave code — they are forced to")
    print("execute correct Brahms + eviction, shed their poisoned views, and")
    print("end up reinforcing the trusted population they meant to subvert.")


def main() -> None:
    identification_attack()
    poisoned_injection()


if __name__ == "__main__":
    main()
