#!/usr/bin/env python3
"""The paper-scale configuration (N = 10,000, view 200, 200 rounds).

This is the exact Grid'5000 setting of §V-B.  In pure Python a single run
takes hours; the script exists to document the configuration and to let a
patient user (or a PyPy/compiled deployment) reproduce the paper's absolute
scale.  Pass ``--dry-run`` (default) to only print the derived parameters;
pass ``--run`` to actually execute one configuration.

Run:  python examples/full_scale.py [--run] [--rounds R] [--t T] [--f F]
"""

import argparse

from repro.core.eviction import AdaptiveEviction
from repro.experiments.figures import PAPER_SCALE
from repro.experiments.runner import run_bundle
from repro.experiments.scenarios import TopologySpec, build_raptee_simulation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run", action="store_true", help="actually execute")
    parser.add_argument("--rounds", type=int, default=PAPER_SCALE.rounds)
    parser.add_argument("--f", type=float, default=0.10, help="Byzantine fraction")
    parser.add_argument("--t", type=float, default=0.01, help="trusted fraction")
    args = parser.parse_args()

    spec = TopologySpec(
        n_nodes=PAPER_SCALE.n_nodes,
        byzantine_fraction=args.f,
        trusted_fraction=args.t,
        view_ratio=PAPER_SCALE.view_ratio,
    )
    config = spec.brahms_config()
    print("Paper-scale configuration (§V-B):")
    print(f"  N                = {spec.n_nodes:,}")
    print(f"  Byzantine        = {spec.n_byzantine:,} ({args.f:.0%})")
    print(f"  trusted (SGX)    = {spec.n_trusted:,} ({args.t:.0%})")
    print(f"  view size l1     = {config.view_size}  (α={config.alpha_count}, "
          f"β={config.beta_count}, γ={config.gamma_count})")
    print(f"  samplers l2      = {config.sample_size}")
    print(f"  rounds           = {args.rounds} (2.5 s each on the testbed)")
    print(f"  repetitions      = {PAPER_SCALE.repetitions} in the paper")

    if not args.run:
        print("\nDry run only — pass --run to execute (hours in CPython).")
        return

    print("\nBuilding (attestation + provisioning of all trusted nodes)…")
    bundle = build_raptee_simulation(spec, PAPER_SCALE.base_seed, eviction=AdaptiveEviction())
    print("Running…")
    metrics = run_bundle(bundle, args.rounds)
    print(f"resilience (Byz IDs in correct views): {metrics.resilience_percent:.1f}%")
    print(f"discovery round: {metrics.discovery_round}")
    print(f"stability round: {metrics.stability_round}")


if __name__ == "__main__":
    main()
