#!/usr/bin/env python3
"""The paper-scale configuration (N = 10,000, view 200, 200 rounds).

This is the exact Grid'5000 setting of §V-B.  With the :mod:`repro.perf`
fast paths (on by default) the measured cost on a stock CPython box is:

* N = 500  (``--nodes 500``):   ~0.2 s per round — seconds per run;
* N = 1,000, encrypted transport (the pinned ``raptee-1k`` benchmark):
  ~8 s per round, ~7x over the unaccelerated path (see BENCH_perf.json);
* N = 10,000 (the full paper scale): ~12 min per round, so one 200-round
  repetition is a day-scale batch job rather than an interactive run.

Pass ``--dry-run`` (default) to only print the derived parameters; pass
``--run`` to execute one configuration, scaling N down with ``--nodes``
to pick your waiting time.  ``--reference`` disables the fast paths (the
differential test suite proves results are byte-identical either way).

Run:  python examples/full_scale.py [--run] [--nodes N] [--rounds R]
                                    [--t T] [--f F] [--reference]
"""

import argparse

from repro.core.eviction import AdaptiveEviction
from repro.experiments.figures import PAPER_SCALE
from repro.experiments.runner import run_bundle
from repro.experiments.scenarios import TopologySpec, build_raptee_simulation
from repro.perf.config import set_fastpaths


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run", action="store_true", help="actually execute")
    parser.add_argument("--nodes", type=int, default=PAPER_SCALE.n_nodes,
                        help="population size (paper: 10,000)")
    parser.add_argument("--rounds", type=int, default=PAPER_SCALE.rounds)
    parser.add_argument("--f", type=float, default=0.10, help="Byzantine fraction")
    parser.add_argument("--t", type=float, default=0.01, help="trusted fraction")
    parser.add_argument("--reference", action="store_true",
                        help="run the unaccelerated reference paths "
                             "(several times slower, identical results)")
    args = parser.parse_args(argv)

    if args.reference:
        set_fastpaths(False)

    # Scaled-down populations keep statistically meaningful views by using
    # a larger view ratio (DESIGN.md §5); the full scale uses the paper's.
    view_ratio = PAPER_SCALE.view_ratio if args.nodes >= 5000 else 0.04
    spec = TopologySpec(
        n_nodes=args.nodes,
        byzantine_fraction=args.f,
        trusted_fraction=args.t,
        view_ratio=view_ratio,
    )
    config = spec.brahms_config()
    print("Paper-scale configuration (§V-B):")
    print(f"  N                = {spec.n_nodes:,}")
    print(f"  Byzantine        = {spec.n_byzantine:,} ({args.f:.0%})")
    print(f"  trusted (SGX)    = {spec.n_trusted:,} ({args.t:.0%})")
    print(f"  view size l1     = {config.view_size}  (α={config.alpha_count}, "
          f"β={config.beta_count}, γ={config.gamma_count})")
    print(f"  samplers l2      = {config.sample_size}")
    print(f"  rounds           = {args.rounds} (2.5 s each on the testbed)")
    print(f"  repetitions      = {PAPER_SCALE.repetitions} in the paper")
    print(f"  fast paths       = {'off (reference)' if args.reference else 'on'}")

    if not args.run:
        print("\nDry run only — pass --run to execute "
              "(~0.2 s/round at N=500, ~12 min/round at N=10,000).")
        return

    print("\nBuilding (attestation + provisioning of all trusted nodes)…")
    bundle = build_raptee_simulation(spec, PAPER_SCALE.base_seed,
                                     eviction=AdaptiveEviction())
    print("Running…")
    metrics = run_bundle(bundle, args.rounds)
    print(f"resilience (Byz IDs in correct views): {metrics.resilience_percent:.1f}%")
    print(f"discovery round: {metrics.discovery_round}")
    print(f"stability round: {metrics.stability_round}")


if __name__ == "__main__":
    main()
