#!/usr/bin/env python3
"""Epidemic broadcast on top of the peer-sampling service.

The paper's intro motivates peer sampling as the substrate for information
dissemination: a node gossips a message to peers drawn from its PSS view,
and the broadcast reaches (almost) everyone in O(log N) rounds — *if* the
views are good samples.  This example shows what Byzantine view poisoning
does to an upper-layer broadcast, and how much RAPTEE recovers:

1. run Brahms and RAPTEE deployments under a 20 % Byzantine population;
2. after convergence, flood a message from one honest node, forwarding to
   ``fanout`` peers drawn from each node's *current view* (Byzantine nodes
   swallow messages — the dissemination analogue of an eclipse attack);
3. report coverage of honest nodes.

Run:  python examples/epidemic_broadcast.py
"""

import random
from typing import Dict, Set

from repro.core.eviction import AdaptiveEviction
from repro.experiments.scenarios import (
    SimulationBundle,
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)

N_NODES = 200
WARMUP_ROUNDS = 50
FANOUT = 4
SEED = 21


def broadcast_coverage(
    bundle: SimulationBundle, fanout: int, rng: random.Random,
    source: int = None,
) -> float:
    """Flood from one correct node over current views; return honest coverage."""
    sim = bundle.simulation
    byzantine = sim.byzantine_ids
    correct = sorted(sim.correct_node_ids())
    views: Dict[int, list] = {
        node.node_id: node.view_ids() for node in sim.correct_nodes()
    }

    if source is None:
        source = correct[0]
    delivered: Set[int] = {source}
    frontier = [source]
    for _round in range(32):  # plenty for 200 nodes at fanout 4
        next_frontier = []
        for node in frontier:
            view = views.get(node, [])
            if not view:
                continue
            targets = rng.sample(view, min(fanout, len(view)))
            for target in targets:
                if target in byzantine:
                    continue  # Byzantine nodes swallow the message
                if target not in delivered:
                    delivered.add(target)
                    next_frontier.append(target)
        frontier = next_frontier
        if not frontier:
            break
    return len(delivered) / len(correct)


def mean_coverage(bundle: SimulationBundle, rng: random.Random, floods: int = 30) -> float:
    """Average coverage over many independent floods from random sources —
    a single flood near the percolation threshold is extremely noisy."""
    correct = sorted(bundle.simulation.correct_node_ids())
    return sum(
        broadcast_coverage(bundle, FANOUT, rng, source=rng.choice(correct))
        for _ in range(floods)
    ) / floods


def main() -> None:
    rng = random.Random(SEED)
    print(f"{N_NODES} nodes, 20% Byzantine; broadcast fanout {FANOUT}, 30 floods each\n")

    brahms_spec = TopologySpec(n_nodes=N_NODES, byzantine_fraction=0.20, view_ratio=0.08)
    brahms = build_brahms_simulation(brahms_spec, SEED)
    brahms.run(WARMUP_ROUNDS)
    brahms_coverage = mean_coverage(brahms, rng)

    raptee_spec = TopologySpec(
        n_nodes=N_NODES, byzantine_fraction=0.20, trusted_fraction=0.25, view_ratio=0.08
    )
    raptee = build_raptee_simulation(raptee_spec, SEED, eviction=AdaptiveEviction())
    raptee.run(WARMUP_ROUNDS)
    raptee_coverage = mean_coverage(raptee, rng)

    print(f"Mean broadcast coverage over Brahms views:  {brahms_coverage:6.1%}")
    print(f"Mean broadcast coverage over RAPTEE views:  {raptee_coverage:6.1%}")
    print("\nEvery percentage point lost is an honest node eclipsed by")
    print("Byzantine entries occupying view slots during dissemination.")


if __name__ == "__main__":
    main()
