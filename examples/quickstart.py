#!/usr/bin/env python3
"""Quickstart: run a RAPTEE deployment and watch it beat Brahms.

Builds two systems with the same 10 % Byzantine population — plain Brahms,
and RAPTEE with SGX trusted nodes under the adaptive eviction rule — runs
both for 60 rounds, and prints the pollution of correct views.

The demo uses a 25 % trusted share: at N = 200 with 24-entry views, each
node makes ~9 pulls per round, so a trusted node meets a sibling about as
often as the paper's t = 1-3 % deployment does at N = 10,000 with 80 pulls
per round (see EXPERIMENTS.md on the meeting-rate mapping).

Run:  python examples/quickstart.py
"""

from repro.analysis.metrics import resilience_improvement
from repro.core.eviction import AdaptiveEviction
from repro.experiments.runner import run_bundle
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)

N_NODES = 200
ROUNDS = 60
SEED = 7


def main() -> None:
    print(f"Simulating {N_NODES} nodes, 10% Byzantine, {ROUNDS} rounds…\n")

    brahms_spec = TopologySpec(n_nodes=N_NODES, byzantine_fraction=0.10, view_ratio=0.08)
    brahms = run_bundle(build_brahms_simulation(brahms_spec, SEED), ROUNDS)
    print("Brahms (baseline)")
    print(f"  Byzantine IDs in correct views: {brahms.resilience_percent:.1f}%")
    print(f"  system discovery (75% of correct IDs): round {brahms.discovery_round}")
    print(f"  view stability:                        round {brahms.stability_round}")

    raptee_spec = TopologySpec(
        n_nodes=N_NODES, byzantine_fraction=0.10, trusted_fraction=0.25, view_ratio=0.08
    )
    raptee = run_bundle(
        build_raptee_simulation(raptee_spec, SEED, eviction=AdaptiveEviction()), ROUNDS
    )
    print("\nRAPTEE (25% SGX trusted nodes, adaptive eviction)")
    print(f"  Byzantine IDs in correct views: {raptee.resilience_percent:.1f}%")
    print(f"  system discovery:                      round {raptee.discovery_round}")
    print(f"  view stability:                        round {raptee.stability_round}")

    improvement = resilience_improvement(brahms.resilience, raptee.resilience)
    print(f"\nResilience improvement over Brahms: {improvement:+.1f}%")


if __name__ == "__main__":
    main()
