"""Table I — SGX per-function overhead (CPU cycles), standard vs enclave.

Paper shape: every instrumented function pays a 15-25 % cycle overhead in
the enclave; the reproduction recovers the calibrated means from live
protocol runs (not from the constants directly — the accountants sample
per-invocation Gaussian costs during a real simulation).
"""

from conftest import record_report

from repro.experiments.figures import table1_sgx_overhead
from repro.sgx.cycles import TABLE_I, PeerSamplingFunction


def test_table1_sgx_overhead(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: table1_sgx_overhead(bench_scale),
        rounds=1,
        iterations=1,
    )
    record_report(result.render())

    assert len(result.rows) == len(PeerSamplingFunction.ALL)
    for row in result.rows:
        standard = float(str(row[1]).replace(",", ""))
        sgx = float(str(row[2]).replace(",", ""))
        overhead = sgx - standard
        assert overhead > 0, f"{row[0]} shows no SGX overhead"
        # Within 15 % of the paper's calibrated mean overhead.
        label_to_function = {
            "Pull request": PeerSamplingFunction.PULL_REQUEST,
            "Push message": PeerSamplingFunction.PUSH_MESSAGE,
            "Trusted communications": PeerSamplingFunction.TRUSTED_COMMUNICATIONS,
            "Sample list comput.": PeerSamplingFunction.SAMPLE_LIST_COMPUTATION,
            "Dynamic view comput.": PeerSamplingFunction.DYNAMIC_VIEW_COMPUTATION,
        }
        reference = TABLE_I[label_to_function[row[0]]]
        assert abs(overhead - reference.mean_overhead) < 0.15 * reference.mean_overhead
        assert abs(standard - reference.standard) < 0.05 * reference.standard
