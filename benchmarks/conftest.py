"""Benchmark-suite plumbing.

Each benchmark regenerates one table/figure of the paper at a scaled-down
topology (see DESIGN.md §5) and registers the rendered rows here; the
``pytest_terminal_summary`` hook prints every table at the end of the run so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures the
reproduced series alongside the timing numbers.

The Brahms baselines are shared through a session-scoped cache: Figs. 5-9
and 13 all compare against the same Fig. 3 runs.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.experiments.figures import BaselineCache, Scale

#: One bench scale for the whole suite.  N=300 at view-ratio 0.08 keeps the
#: paper's trusted-meeting dynamics (view size 24) while a full sweep stays
#: tractable in pure Python.
BENCH = Scale(n_nodes=300, rounds=80, repetitions=1, view_ratio=0.08, base_seed=2024)

_REPORTS: List[str] = []


def record_report(text: str) -> None:
    _REPORTS.append(text)


@pytest.fixture(scope="session")
def bench_scale() -> Scale:
    return BENCH


@pytest.fixture(scope="session")
def baseline_cache() -> BaselineCache:
    return BaselineCache(BENCH)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("Reproduced paper tables/figures (scaled topology, see DESIGN.md §5)")
    terminalreporter.write_line("=" * 72)
    for report in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(report)
