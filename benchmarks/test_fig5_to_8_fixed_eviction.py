"""Figs. 5-8 — resilience improvement and overheads under fixed eviction.

Paper shape across the four subfigure families:

* improvement grows with the trusted share t (sublinearly);
* a higher eviction rate yields more resilience for moderate f;
* overheads (discovery/stability) grow with the eviction rate.

One bench per figure so per-figure timings land in the benchmark table.
"""

import pytest
from conftest import record_report

from repro.experiments.figures import fixed_eviction_figure

F_VALUES = (0.10, 0.20, 0.30)
T_VALUES = (0.02, 0.10, 0.30)


def _run(benchmark, bench_scale, baseline_cache, rate):
    result = benchmark.pedantic(
        lambda: fixed_eviction_figure(
            rate, bench_scale, f_values=F_VALUES, t_values=T_VALUES,
            cache=baseline_cache,
        ),
        rounds=1,
        iterations=1,
    )
    record_report(result.render())
    return result


def _improvements_by_t(result):
    by_t = {}
    for row in result.rows:
        by_t.setdefault(row[1], []).append(float(row[2]))
    return by_t


def test_fig5_eviction_0(benchmark, bench_scale, baseline_cache):
    result = _run(benchmark, bench_scale, baseline_cache, 0.0)
    by_t = _improvements_by_t(result)
    # Largest trusted share helps even with no eviction (trusted comms only).
    assert max(by_t["30%"]) > 0.0


def test_fig6_eviction_40(benchmark, bench_scale, baseline_cache):
    result = _run(benchmark, bench_scale, baseline_cache, 0.4)
    by_t = _improvements_by_t(result)
    assert max(by_t["30%"]) > 0.0


def test_fig7_eviction_60(benchmark, bench_scale, baseline_cache):
    result = _run(benchmark, bench_scale, baseline_cache, 0.6)
    by_t = _improvements_by_t(result)
    assert max(by_t["30%"]) > 0.0
    # Improvement grows with t (paper: sublinear but monotone in t).
    assert max(by_t["30%"]) > min(by_t["2%"])


def test_fig8_eviction_100(benchmark, bench_scale, baseline_cache):
    result = _run(benchmark, bench_scale, baseline_cache, 1.0)
    by_t = _improvements_by_t(result)
    assert max(by_t["30%"]) > 5.0  # strongest configuration at high t
