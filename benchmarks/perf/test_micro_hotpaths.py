"""pytest-benchmark micro-benchmarks for the accelerated hot paths.

Each benchmark times one primitive in both modes (fast paths on / off) so
``pytest benchmarks/perf --benchmark-only`` prints the per-primitive
trajectory every future PR can compare against.  The equivalence of the
two modes is proven elsewhere (tests/test_perf_*); here only the clock
matters.

Run:  PYTHONPATH=src python -m pytest benchmarks/perf --benchmark-only
"""

from __future__ import annotations

import random

import pytest

pytest.importorskip("pytest_benchmark")

from repro.brahms.countmin import CountMinSketch
from repro.crypto.aes import AES128
from repro.crypto.ctr import AesCtr
from repro.crypto.minwise import MinWiseHash
from repro.perf.config import fastpaths
from repro.perf.kernels import HAVE_NUMPY

KEY = bytes(range(16))
NONCE = bytes(8)
BLOCK = bytes(range(16, 32))
PAYLOAD = bytes(range(256)) * 16  # 4 KiB ≈ one serialized pull reply
IDS = [random.Random(7).getrandbits(63) for _ in range(512)]


@pytest.fixture(params=["fast", "reference"])
def mode(request):
    with fastpaths(request.param == "fast"):
        yield request.param


class TestAesHotPath:
    def test_encrypt_block(self, benchmark, mode):
        cipher = AES128(KEY)
        benchmark(cipher.encrypt_block, BLOCK)

    def test_cipher_construction(self, benchmark, mode):
        # Fast mode hits the schedule cache; reference expands every time.
        benchmark(AES128, KEY)

    def test_ctr_payload(self, benchmark, mode):
        stream = AesCtr(KEY, NONCE)
        benchmark(stream.encrypt, PAYLOAD)


class TestSketchHotPath:
    def test_countmin_update_batch(self, benchmark, mode):
        if mode == "fast" and not HAVE_NUMPY:
            pytest.skip("numpy kernels require numpy")
        sketch = CountMinSketch(256, 4, random.Random(3))
        benchmark(sketch.update_batch, IDS)

    def test_countmin_estimate_batch(self, benchmark, mode):
        if mode == "fast" and not HAVE_NUMPY:
            pytest.skip("numpy kernels require numpy")
        sketch = CountMinSketch(256, 4, random.Random(3))
        sketch.update_batch(IDS)
        benchmark(sketch.estimate_batch, IDS[:128])

    def test_minwise_batch(self, benchmark, mode):
        if mode == "fast" and not HAVE_NUMPY:
            pytest.skip("numpy kernels require numpy")
        hasher = MinWiseHash(a=12345, b=6789)
        benchmark(hasher.batch, IDS)
