"""Figs. 10-12 — trusted-node identification attack (precision/recall/F1).

Paper shape: attack effectiveness grows with the eviction rate and with the
trusted share; the adaptive rule keeps precision/recall far below the fixed
high-eviction configurations.
"""

from conftest import record_report

from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.experiments.figures import identification_figure

POLICIES = (FixedEviction(0.0), FixedEviction(0.6), FixedEviction(1.0))
T_VALUES = (0.10, 0.30)


def _mean_f1(result, policy_label):
    values = [float(row[4]) for row in result.rows if row[0] == policy_label]
    return sum(values) / len(values)


def test_fig10_identification_f10(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: identification_figure(
            "Fig. 10 — identification attack, f = 10%",
            0.10, bench_scale, policies=POLICIES, t_values=T_VALUES,
        ),
        rounds=1,
        iterations=1,
    )
    record_report(result.render())
    # Eviction is the leakage channel: ER=100% beats ER=0%.
    assert _mean_f1(result, "fixed-100%") >= _mean_f1(result, "fixed-0%")


def test_fig11_identification_f30(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: identification_figure(
            "Fig. 11 — identification attack, f = 30%",
            0.30, bench_scale, policies=POLICIES, t_values=T_VALUES,
        ),
        rounds=1,
        iterations=1,
    )
    record_report(result.render())
    assert _mean_f1(result, "fixed-100%") >= _mean_f1(result, "fixed-0%")


def test_fig12_identification_adaptive(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: identification_figure(
            "Fig. 12 — identification attack, adaptive eviction",
            0.10, bench_scale, policies=(AdaptiveEviction(),),
            t_values=(0.02, 0.10, 0.30),
        ),
        rounds=1,
        iterations=1,
    )
    record_report(result.render())
    precisions = [float(row[2]) for row in result.rows]
    # Paper: adaptive keeps precision modest (≤ ~0.3 over the t range there;
    # our compressed t-axis tolerates a little more at t=30%).
    assert sum(precisions) / len(precisions) < 0.6
