"""Ablation benches for the design choices DESIGN.md calls out.

Not in the paper — these quantify each mechanism's contribution:

* γ (history-sample) sweep: Brahms defense (iv) is what bounds the
  pollution spiral; removing it should hurt.
* attack detection/blocking on/off: defense (ii).
* RAPTEE component attribution: trusted exchange and eviction toggled
  independently.
* adaptive-rule anchor sweep: the paper's (20 %, 80 %) anchors vs wider and
  narrower bands.
"""

import dataclasses

from conftest import record_report

from repro.analysis.metrics import resilience_improvement
from repro.core.eviction import AdaptiveEviction
from repro.experiments.figures import FigureResult
from repro.experiments.runner import run_bundle
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)

F = 0.20
T = 0.20


def _brahms_spec(bench_scale):
    return TopologySpec(
        n_nodes=bench_scale.n_nodes,
        byzantine_fraction=F,
        view_ratio=bench_scale.view_ratio,
    )


def _raptee_spec(bench_scale):
    return TopologySpec(
        n_nodes=bench_scale.n_nodes,
        byzantine_fraction=F,
        trusted_fraction=T,
        view_ratio=bench_scale.view_ratio,
    )


def test_ablation_gamma_history_sample(benchmark, bench_scale):
    """Sweep the history-sample share γ (α and β rebalanced to keep sum 1)."""

    def run():
        spec = _brahms_spec(bench_scale)
        base_config = spec.brahms_config()
        result = FigureResult(
            figure_id="Ablation — history-sample share γ (Brahms defense iv)",
            headers=["gamma", "byz-in-views %"],
        )
        for gamma in (0.0, 0.1, 0.2, 0.3):
            remainder = (1.0 - gamma) / 2.0
            config = dataclasses.replace(
                base_config, alpha=remainder, beta=remainder, gamma=gamma
            )
            metrics = run_bundle(
                build_brahms_simulation(spec, bench_scale.base_seed,
                                        config_override=config),
                bench_scale.rounds,
            )
            result.rows.append([f"{gamma:.1f}", f"{metrics.resilience_percent:.1f}"])
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(result.render())
    pollution = [float(row[1]) for row in result.rows]
    # No history sampling (γ=0) must be the most polluted configuration.
    assert pollution[0] >= max(pollution[1:]) - 2.0


def test_ablation_attack_blocking(benchmark, bench_scale):
    """Brahms defense (ii) against its actual threat model: a *targeted*
    flood on a subset of victims.  (Against the balanced slack-filling
    adversary, blocking barely fires by construction — the adversary stays
    under the threshold — so the victimless comparison is uninformative.)
    """

    def run():
        spec = _brahms_spec(bench_scale)
        base_config = spec.brahms_config()
        # Victims: 10 % of the correct population, flooded with 70 % of the
        # adversary's push budget.
        victim_count = max(1, spec.n_nodes // 10)
        victims = list(range(spec.n_byzantine, spec.n_byzantine + victim_count))
        result = FigureResult(
            figure_id="Ablation — attack detection & blocking under a targeted flood",
            headers=["blocking", "victim pollution %", "system pollution %"],
        )
        for enabled in (True, False):
            config = dataclasses.replace(base_config, blocking_enabled=enabled)
            bundle = build_brahms_simulation(
                spec, bench_scale.base_seed, config_override=config,
                adversary_strategy="targeted",
            )
            bundle.coordinator.flood_targets = victims
            bundle.coordinator.flood_share = 0.7
            run_bundle(bundle, bench_scale.rounds)
            tail = bundle.trace.records[-10:]
            victim_pollution = sum(
                record.byzantine_fraction[victim]
                for record in tail for victim in victims
            ) / (len(tail) * len(victims))
            system_pollution = sum(
                record.mean_byzantine_fraction for record in tail
            ) / len(tail)
            result.rows.append(
                [
                    "on" if enabled else "off",
                    f"{100 * victim_pollution:.1f}",
                    f"{100 * system_pollution:.1f}",
                ]
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(result.render())
    on_victims, off_victims = (float(row[1]) for row in result.rows)
    # Blocking must protect the flooded victims.
    assert on_victims <= off_victims + 2.0


def test_ablation_raptee_components(benchmark, bench_scale):
    """Attribute RAPTEE's gain to its two mechanisms."""

    def run():
        brahms_spec = _brahms_spec(bench_scale)
        raptee_spec = _raptee_spec(bench_scale)
        baseline = run_bundle(
            build_brahms_simulation(brahms_spec, bench_scale.base_seed),
            bench_scale.rounds,
        )
        result = FigureResult(
            figure_id="Ablation — RAPTEE component attribution (f=20%, t=20%)",
            headers=["trusted exchange", "eviction", "improvement %"],
        )
        for exchange in (False, True):
            for eviction in (False, True):
                metrics = run_bundle(
                    build_raptee_simulation(
                        raptee_spec,
                        bench_scale.base_seed,
                        eviction=AdaptiveEviction(),
                        trusted_exchange_enabled=exchange,
                        eviction_enabled=eviction,
                    ),
                    bench_scale.rounds,
                )
                result.rows.append(
                    [
                        "on" if exchange else "off",
                        "on" if eviction else "off",
                        f"{resilience_improvement(baseline.resilience, metrics.resilience):+.1f}",
                    ]
                )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(result.render())
    improvements = {(row[0], row[1]): float(row[2]) for row in result.rows}
    # Full RAPTEE must beat the no-mechanism configuration.
    assert improvements[("on", "on")] > improvements[("off", "off")]


def test_ablation_adaptive_anchors(benchmark, bench_scale):
    """Sweep the adaptive rule's anchor rates around the paper's 20/80."""

    def run():
        brahms_spec = _brahms_spec(bench_scale)
        raptee_spec = _raptee_spec(bench_scale)
        baseline = run_bundle(
            build_brahms_simulation(brahms_spec, bench_scale.base_seed),
            bench_scale.rounds,
        )
        result = FigureResult(
            figure_id="Ablation — adaptive eviction anchors (low rate / high rate)",
            headers=["low rate", "high rate", "improvement %"],
        )
        for low_rate, high_rate in ((0.0, 1.0), (0.2, 0.8), (0.4, 0.6)):
            policy = AdaptiveEviction(low_rate=low_rate, high_rate=high_rate)
            metrics = run_bundle(
                build_raptee_simulation(
                    raptee_spec, bench_scale.base_seed, eviction=policy
                ),
                bench_scale.rounds,
            )
            result.rows.append(
                [
                    f"{low_rate:.1f}",
                    f"{high_rate:.1f}",
                    f"{resilience_improvement(baseline.resilience, metrics.resilience):+.1f}",
                ]
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(result.render())
    assert len(result.rows) == 3
