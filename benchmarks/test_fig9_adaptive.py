"""Fig. 9 — resilience improvement and overheads under the adaptive rule.

Paper shape: adaptive eviction matches or beats the fixed configurations on
resilience while keeping overheads near the 0 %-eviction level.
"""

from conftest import record_report

from repro.experiments.figures import figure9_adaptive

F_VALUES = (0.10, 0.20, 0.30)
T_VALUES = (0.02, 0.10, 0.30)


def test_fig9_adaptive_eviction(benchmark, bench_scale, baseline_cache):
    result = benchmark.pedantic(
        lambda: figure9_adaptive(
            bench_scale, f_values=F_VALUES, t_values=T_VALUES, cache=baseline_cache
        ),
        rounds=1,
        iterations=1,
    )
    record_report(result.render())

    improvements = [float(row[2]) for row in result.rows]
    t30 = [float(row[2]) for row in result.rows if row[1] == "30%"]
    # RAPTEE with a meaningful trusted share always improves on Brahms.
    assert max(t30) > 0.0
    # Across the grid the mean effect is an improvement, not a regression.
    assert sum(improvements) / len(improvements) > 0.0
