"""Ablation — count-min-sketch stream unbiasing (the paper's future work).

§VIII: "[Anceaume et al.] employ count-min sketches to unbias a biased
stream of identifiers. Adopting a similar technique in RAPTEE could
constitute interesting future work."  This bench implements and measures
exactly that: RAPTEE with and without the sketch flattening the pulled-ID
stream before view renewal, at two eviction settings.
"""

from conftest import record_report

from repro.analysis.metrics import resilience_improvement
from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.experiments.figures import FigureResult
from repro.experiments.runner import run_bundle
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)

F = 0.20
T = 0.10


def test_ablation_countmin_unbiasing(benchmark, bench_scale):
    def run():
        brahms_spec = TopologySpec(
            n_nodes=bench_scale.n_nodes, byzantine_fraction=F,
            view_ratio=bench_scale.view_ratio,
        )
        raptee_spec = TopologySpec(
            n_nodes=bench_scale.n_nodes, byzantine_fraction=F, trusted_fraction=T,
            view_ratio=bench_scale.view_ratio,
        )
        baseline = run_bundle(
            build_brahms_simulation(brahms_spec, bench_scale.base_seed),
            bench_scale.rounds,
        )
        result = FigureResult(
            figure_id="Ablation — count-min stream unbiasing (future work, f=20%, t=10%)",
            headers=["eviction", "sketch", "improvement %"],
        )
        for policy in (FixedEviction(0.0), AdaptiveEviction()):
            for sketch in (False, True):
                metrics = run_bundle(
                    build_raptee_simulation(
                        raptee_spec,
                        bench_scale.base_seed,
                        eviction=policy,
                        sketch_unbias_enabled=sketch,
                    ),
                    bench_scale.rounds,
                )
                result.rows.append(
                    [
                        policy.describe(),
                        "on" if sketch else "off",
                        f"{resilience_improvement(baseline.resilience, metrics.resilience):+.1f}",
                    ]
                )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(result.render())
    improvements = {(row[0], row[1]): float(row[2]) for row in result.rows}
    # The sketch must not *hurt* materially; directionally it should help
    # against the over-advertising adversary.
    for policy in ("fixed-0%", "adaptive"):
        assert improvements[(policy, "on")] > improvements[(policy, "off")] - 5.0
