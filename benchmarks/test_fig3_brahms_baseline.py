"""Fig. 3 — Brahms resilience, discovery and stability under Byzantine faults.

Paper shape: the fraction of Byzantine IDs in correct views rises steeply
with f (the intro cites 81 % pollution at f = 18 %), and discovery slows as
f grows.
"""

from conftest import record_report

from repro.experiments.figures import figure3_brahms_baseline

F_VALUES = (0.10, 0.14, 0.18, 0.22, 0.26, 0.30)


def test_fig3_brahms_baseline(benchmark, bench_scale, baseline_cache):
    result = benchmark.pedantic(
        lambda: figure3_brahms_baseline(bench_scale, F_VALUES, cache=baseline_cache),
        rounds=1,
        iterations=1,
    )
    record_report(result.render())

    pollution = [float(row) for row in result.column("byz-in-views %")]
    # Shape: pollution rises with f and far exceeds the Byzantine share.
    assert pollution[-1] > pollution[0]
    assert pollution[0] > 100 * F_VALUES[0]
    assert pollution[-1] > 50.0
