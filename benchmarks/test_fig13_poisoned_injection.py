"""Fig. 13 — view-poisoned trusted-node injection.

Paper shape: at small t and moderate f, injecting poisoned trusted nodes
does not significantly harm resilience (and can even help — the injected
nodes run correct code and end up reinforcing the trusted population);
the benefit disappears as t grows.
"""

from conftest import record_report

from repro.experiments.figures import figure13_poisoned_injection

T_VALUES = (0.02, 0.10)
POISON_VALUES = (0.0, 0.05, 0.20)
F_VALUES = (0.10, 0.30)


def test_fig13_poisoned_injection(benchmark, bench_scale, baseline_cache):
    result = benchmark.pedantic(
        lambda: figure13_poisoned_injection(
            bench_scale,
            t_values=T_VALUES,
            poison_values=POISON_VALUES,
            f_values=F_VALUES,
            cache=baseline_cache,
        ),
        rounds=1,
        iterations=1,
    )
    record_report(result.render())

    def improvement(t, poisoned, f):
        for row in result.rows:
            if row[0] == t and row[1] == poisoned and row[2] == f:
                return float(row[3])
        raise AssertionError("row missing")

    # Injection at low f must not collapse resilience vs the no-attack line.
    baseline = improvement("2%", "0%", "10%")
    attacked = improvement("2%", "20%", "10%")
    assert attacked > baseline - 15.0  # no catastrophic harm
