"""Edge cases across modules that the main suites don't reach."""

import random

import pytest

from repro.crypto.prng import Sha256Prng
from repro.experiments.figures import FigureResult, Scale
from repro.sim.network import Network
from repro.sim.node import NodeKind


class TestPrngSeedVariants:
    def test_bytes_seed(self):
        assert Sha256Prng(0).getstate() != Sha256Prng(1).getstate()
        rng = Sha256Prng(0)
        rng.seed(b"raw bytes seed")
        first = rng.bytes(8)
        rng.seed(b"raw bytes seed")
        assert rng.bytes(8) == first

    def test_string_seed(self):
        rng = Sha256Prng(0)
        rng.seed("a string")
        first = rng.random()
        rng.seed("a string")
        assert rng.random() == first

    def test_none_seed_is_deterministic_zero(self):
        a, b = Sha256Prng(0), Sha256Prng(0)
        a.seed(None)
        b.seed(None)
        assert a.bytes(8) == b.bytes(8)


class TestNodeKind:
    def test_trusted_code_flags(self):
        assert NodeKind.TRUSTED.runs_trusted_code
        assert NodeKind.POISONED_TRUSTED.runs_trusted_code
        assert not NodeKind.HONEST.runs_trusted_code
        assert not NodeKind.BYZANTINE.runs_trusted_code

    def test_byzantine_flag(self):
        assert NodeKind.BYZANTINE.is_byzantine
        assert not NodeKind.POISONED_TRUSTED.is_byzantine


class TestNetworkRegistry:
    def test_unregister_missing_is_noop(self, rng):
        network = Network(rng)
        network.unregister(42)  # no error

    def test_node_lookup(self, rng):
        network = Network(rng)
        assert network.node(5) is None
        assert not network.is_reachable(5)


class TestFigureResult:
    def test_column_lookup(self):
        result = FigureResult("id", headers=["a", "b"], rows=[[1, 2], [3, 4]])
        assert result.column("b") == [2, 4]

    def test_unknown_column_raises(self):
        result = FigureResult("id", headers=["a"], rows=[])
        with pytest.raises(ValueError):
            result.column("missing")

    def test_render_includes_id(self):
        result = FigureResult("Fig. X", headers=["a"], rows=[["1"]])
        assert result.render().startswith("Fig. X")


class TestScale:
    def test_seeds_are_sequential(self):
        scale = Scale(repetitions=3, base_seed=100)
        assert scale.seeds() == [100, 101, 102]
