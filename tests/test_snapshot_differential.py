"""Differential equivalence: checkpoint-at-round-k-then-resume vs straight run.

The contract behind :mod:`repro.snapshot`: for the same seed, saving the
complete simulation state at round k and restoring it **in a fresh
process** must produce exactly what the uninterrupted run produces — the
same exported trace JSONL and the same metrics CSV, byte for byte (plus
the same final views, checked in-process).

Pinned scenarios cover the state families the snapshot must carry:
the Brahms baseline under message loss, RAPTEE with encrypted transport
(per-pair key caches + nonce counter), RAPTEE under an active fault plan
with an in-flight crash (injector revive schedule, enclave recovery,
telemetry mid-window), churn with arrivals (node factory and the
engine's ID allocator), and RAPTEE with dynamic trusted-set membership
checkpointed *mid-rotation* (epoch chain, membership log, per-node view
lag, degraded-awaiting-re-attestation recovery state).
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.brahms.node import BrahmsNode
from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.crypto.prng import derive_seed
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)
from repro.faults.harness import wire_faults
from repro.faults.plan import (
    AttestationOutageFault,
    CrashRestartFault,
    DeviceRevocationFault,
    EpochRotationFault,
    FaultPlan,
    LossBurstFault,
    RoundWindow,
)
from repro.membership import MembershipConfig
from repro.sim.churn import UniformChurn
from repro.snapshot import RunState, restore, save
from repro.telemetry import (
    TelemetryConfig,
    metrics_to_csv,
    trace_to_jsonl,
    wire_telemetry,
)

ROUNDS = 6
CHECKPOINT_AT = 3

_REPO_ROOT = Path(__file__).resolve().parents[1]


class _ChurnFactory:
    """Module-level (picklable) node factory for churn arrivals.

    Every arrival gets its own seed-derived RNG stream and a one-node
    bootstrap view so it gossips in its join round.
    """

    def __init__(self, config, seed: int):
        self.config = config
        self.seed = seed

    def __call__(self, node_id: int) -> BrahmsNode:
        from repro.sim.node import NodeKind

        node = BrahmsNode(
            node_id, NodeKind.HONEST, self.config,
            random.Random(derive_seed(self.seed, "node", node_id)),
        )
        node.seed_view([0])
        return node


def _wire(bundle):
    config = TelemetryConfig(tracing=True, trace_messages=True, trace_ecalls=True)
    return wire_telemetry(bundle, config)


def _build_brahms():
    spec = TopologySpec(
        n_nodes=60, byzantine_fraction=0.10, view_ratio=0.08, loss_rate=0.05
    )
    bundle = build_brahms_simulation(spec, seed=11)
    _wire(bundle)
    return RunState(simulation=bundle.simulation, bundle=bundle,
                    rounds_total=ROUNDS, label="brahms-baseline")


def _build_raptee_encrypted():
    spec = TopologySpec(
        n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.10,
        view_ratio=0.10, transport_encryption=True,
    )
    bundle = build_raptee_simulation(
        spec, seed=23, eviction=FixedEviction(0.6), sketch_unbias_enabled=True
    )
    _wire(bundle)
    return RunState(simulation=bundle.simulation, bundle=bundle,
                    rounds_total=ROUNDS, label="raptee-encrypted")


def _build_raptee_faults():
    spec = TopologySpec(
        n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.10,
        view_ratio=0.10, transport_encryption=True,
    )
    bundle = build_raptee_simulation(spec, seed=31, eviction=AdaptiveEviction())
    _wire(bundle)
    plan = FaultPlan([
        LossBurstFault(window=RoundWindow(2, 4), loss_rate=0.30),
        # Node 5 is trusted; the crash spans the checkpoint round, so the
        # injector's pending revive schedule and the recovery manager's
        # retry state must both survive the save/restore seam.
        CrashRestartFault(node_id=5, at_round=2, down_rounds=2),
    ])
    harness = wire_faults(bundle, plan, seed=31)
    return RunState(simulation=bundle.simulation, bundle=bundle,
                    fault_harness=harness, rounds_total=ROUNDS,
                    label="raptee-faults")


def _build_churn():
    spec = TopologySpec(n_nodes=50, byzantine_fraction=0.10, view_ratio=0.08)
    bundle = build_brahms_simulation(spec, seed=47)
    simulation = bundle.simulation
    config = spec.brahms_config()
    # The builders run static membership (the paper's setting); attach churn
    # for this scenario so arrivals/departures cross the resume seam.
    simulation.set_churn(
        UniformChurn(leave_rate=0.02, join_rate=0.04),
        _ChurnFactory(config, seed=47),
    )
    _wire(bundle)
    return RunState(simulation=simulation, bundle=bundle,
                    rounds_total=ROUNDS, label="brahms-churn")


def _build_raptee_membership():
    spec = TopologySpec(
        n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.15,
        view_ratio=0.10, transport_encryption=True,
    )
    # Gossip throttled to one service contact and one anti-entropy peer per
    # round, so the membership log is still propagating when the state
    # crosses the save/restore seam.
    membership = MembershipConfig(
        service_contacts=1, gossip_fanout=1,
        join_rate=0.10, leave_rate=0.05, rotate_on_leave=False,
    )
    bundle = build_raptee_simulation(
        spec, seed=53, eviction=AdaptiveEviction(), membership=membership
    )
    _wire(bundle)
    plan = FaultPlan([
        # The rotation lands one round before the checkpoint, inside an
        # attestation outage: every trusted enclave is degraded on a stale
        # epoch and mid-backoff at the checkpoint round, so the pending
        # epoch, the recovery ladder, and the re-keyed per-pair transport
        # keys all have to survive the seam.  The revocation fires after
        # the resume and must propagate through the restored log.
        EpochRotationFault(at_round=2),
        AttestationOutageFault(RoundWindow(2, 4)),
        DeviceRevocationFault(node_id=4, at_round=4),
    ])
    harness = wire_faults(bundle, plan, seed=53)
    return RunState(simulation=bundle.simulation, bundle=bundle,
                    fault_harness=harness, rounds_total=ROUNDS,
                    label="raptee-membership")


_SCENARIOS = {
    "brahms-baseline": _build_brahms,
    "raptee-encrypted": _build_raptee_encrypted,
    "raptee-faults": _build_raptee_faults,
    "brahms-churn": _build_churn,
    "raptee-membership": _build_raptee_membership,
}


def _artifacts(state):
    telemetry = state.simulation.telemetry
    return {
        "trace_jsonl": trace_to_jsonl(telemetry.trace.events),
        "metrics_csv": metrics_to_csv(telemetry.registry),
        "final_views": {
            node_id: tuple(node.view_ids())
            for node_id, node in sorted(state.simulation.nodes.items())
        },
        "view_trace": state.bundle.trace.records,
        "round_number": state.simulation.round_number,
    }


def _straight_run(name):
    state = _SCENARIOS[name]()
    state.run_chunk(ROUNDS)
    return _artifacts(state)


def _resume_env():
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src, str(_REPO_ROOT)] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    return env


@pytest.mark.parametrize("name", sorted(_SCENARIOS))
def test_checkpoint_resume_fresh_process_byte_identical(name, tmp_path):
    reference = _straight_run(name)

    state = _SCENARIOS[name]()
    state.run_chunk(CHECKPOINT_AT)
    snapshot_path = tmp_path / f"{name}.snapshot"
    save(state, str(snapshot_path))

    trace_out = tmp_path / "resumed-trace.jsonl"
    metrics_out = tmp_path / "resumed-metrics.csv"
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.snapshot", "resume",
            str(snapshot_path),
            "--trace-out", str(trace_out),
            "--metrics-out", str(metrics_out),
        ],
        env=_resume_env(),
        capture_output=True,
        text=True,
        cwd=str(_REPO_ROOT),
    )
    assert result.returncode == 0, result.stderr

    assert trace_out.read_text(encoding="utf-8") == reference["trace_jsonl"]
    assert metrics_out.read_text(encoding="utf-8") == reference["metrics_csv"]


@pytest.mark.parametrize("name", sorted(_SCENARIOS))
def test_checkpoint_resume_in_process_full_state(name, tmp_path):
    """Same-process leg: also compares final views and the view trace."""
    reference = _straight_run(name)

    state = _SCENARIOS[name]()
    state.run_chunk(CHECKPOINT_AT)
    snapshot_path = tmp_path / f"{name}.snapshot"
    save(state, str(snapshot_path))

    resumed = restore(str(snapshot_path))
    assert resumed.rounds_completed == CHECKPOINT_AT
    assert resumed.rounds_remaining == ROUNDS - CHECKPOINT_AT
    resumed.run_chunk(resumed.rounds_remaining)

    assert _artifacts(resumed) == reference


def test_churn_scenario_actually_churns():
    """Guard against the churn differential passing vacuously."""
    state = _SCENARIOS["brahms-churn"]()
    state.run_chunk(ROUNDS)
    simulation = state.simulation
    assert simulation._next_node_id > 50  # arrivals happened
    assert len(simulation.ever_registered) > len(simulation.nodes)  # departures


def test_fault_scenario_crash_spans_checkpoint():
    """Guard: the pinned crash really is in flight at the checkpoint round."""
    state = _SCENARIOS["raptee-faults"]()
    state.run_chunk(CHECKPOINT_AT)
    assert state.fault_harness.injector._revive_at, \
        "expected a pending revive at the checkpoint round"
    assert not state.simulation.nodes[5].alive


def test_membership_checkpoint_mid_rotation_restores_pending_epoch(tmp_path):
    """A checkpoint taken mid-rotation restores the pending epoch exactly.

    At the checkpoint round the rotation has happened at the service but
    the trusted set has not absorbed it: enclaves are degraded awaiting
    re-attestation (the outage spans the seam) and the membership log is
    still gossiping.  Restoring must reproduce the epoch chain, the log,
    and every node's view position bit for bit — and the rotation must
    then complete on the resumed state.
    """
    state = _SCENARIOS["raptee-membership"]()
    state.run_chunk(CHECKPOINT_AT)
    director = state.bundle.membership
    service = director.service
    current = service.chain.current
    assert current.number >= 1, "rotation should precede the checkpoint"
    degraded = [
        node_id for node_id in sorted(director.views)
        if state.simulation.nodes[node_id].degraded
    ]
    assert degraded, "the rotation should still be pending at the checkpoint"

    snapshot_path = tmp_path / "membership-mid-rotation.snapshot"
    save(state, str(snapshot_path))
    resumed = restore(str(snapshot_path))
    rservice = resumed.bundle.membership.service

    assert rservice.chain.current.number == current.number
    assert rservice.chain.current.key == current.key
    assert rservice.chain.revoked_epochs() == service.chain.revoked_epochs()
    assert rservice.log.latest_seq == service.log.latest_seq
    assert [record.digest for record in rservice.log.records] == \
        [record.digest for record in service.log.records]
    assert {
        node_id: (view.applied_seq, view.current_epoch)
        for node_id, view in resumed.bundle.membership.views.items()
    } == {
        node_id: (view.applied_seq, view.current_epoch)
        for node_id, view in director.views.items()
    }

    # The pending rotation completes on the restored state: once the
    # outage lifts, every surviving trusted node re-attests into the
    # current epoch (node 4's device is revoked mid-resume and stays out).
    resumed.run_chunk(resumed.rounds_remaining)
    rdirector = resumed.bundle.membership
    final = rdirector.service.chain.current.number
    recovered = [
        node_id for node_id in sorted(rdirector.views)
        if node_id in resumed.simulation.nodes
        and resumed.simulation.nodes[node_id].alive
        and not resumed.simulation.nodes[node_id].degraded
        and resumed.simulation.nodes[node_id].enclave_epoch == final
    ]
    assert recovered, "some trusted node should finish re-attestation"
