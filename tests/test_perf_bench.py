"""The benchmark-regression harness: report shape, schema gate, CLI.

The full pinned suite runs minutes; these tests drive the same machinery
on second-scale scenarios, then check the schema validator both ways
(accepts what ``run_bench`` emits, rejects drifted payloads) — the gate CI
applies to the generated ``BENCH_perf.json`` artifact.
"""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import (
    BENCH_SCENARIOS,
    BenchScenario,
    render_bench_report,
    run_bench,
    run_scenario,
    validate_bench_report,
)

TINY = BenchScenario(
    name="tiny-raptee", protocol="raptee", n_nodes=20, rounds=2,
    trusted_fraction=0.10, view_ratio=0.15, transport_encryption=True,
    baseline_rounds=1,
)


@pytest.fixture(scope="module")
def tiny_entry():
    return run_scenario(TINY, with_baseline=True)


class TestRunScenario:
    def test_entry_fields(self, tiny_entry):
        assert tiny_entry["name"] == "tiny-raptee"
        assert tiny_entry["rounds"] == 2
        assert tiny_entry["wall_seconds"] > 0
        assert tiny_entry["ops_per_round"]["requests"] > 0
        assert tiny_entry["bytes_encrypted"] > 0
        assert tiny_entry["speedup_per_round"] > 0
        assert tiny_entry["baseline"]["rounds"] == 1

    def test_phase_timings_present(self, tiny_entry):
        # The engine's three phases must show up from the profiler.
        assert {"begin", "gossip", "end"} <= set(tiny_entry["phase_seconds"])

    def test_no_baseline_mode(self):
        entry = run_scenario(TINY, with_baseline=False)
        assert "baseline" not in entry
        assert "speedup_per_round" not in entry


class TestReportPayload:
    def test_payload_validates_and_is_json(self, tiny_entry, monkeypatch):
        monkeypatch.setitem(BENCH_SCENARIOS, "tiny-raptee", TINY)
        payload = run_bench(names=["tiny-raptee"], smoke=True)
        validate_bench_report(payload)
        # Must survive a JSON round trip unchanged (the artifact format).
        assert validate_bench_report(json.loads(json.dumps(payload))) is not None

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="no-such-scenario"):
            run_bench(names=["no-such-scenario"])

    def test_render_mentions_speedup(self, tiny_entry):
        payload = {
            "schema": "repro-bench-perf", "version": 1,
            "smoke": True, "numpy": True, "scenarios": [tiny_entry],
        }
        text = render_bench_report(payload)
        assert "tiny-raptee" in text
        assert "speedup" in text
        assert "phases" in text


class TestSchemaGate:
    def _valid(self, tiny_entry):
        return {
            "schema": "repro-bench-perf", "version": 1,
            "smoke": False, "numpy": True, "scenarios": [dict(tiny_entry)],
        }

    def test_accepts_valid(self, tiny_entry):
        validate_bench_report(self._valid(tiny_entry))

    @pytest.mark.parametrize("mutate,match", [
        (lambda p: p.update(schema="other"), "schema"),
        (lambda p: p.update(version=99), "version"),
        (lambda p: p.update(smoke="yes"), "smoke"),
        (lambda p: p.update(scenarios=[]), "scenarios"),
        (lambda p: p["scenarios"][0].pop("wall_seconds"), "wall_seconds"),
        (lambda p: p["scenarios"][0].update(rounds=0), "rounds"),
        (lambda p: p["scenarios"][0].update(ops_per_round={}), "ops_per_round"),
        (lambda p: p["scenarios"][0].update(speedup_per_round=-1),
         "speedup_per_round"),
    ])
    def test_rejects_drift(self, tiny_entry, mutate, match):
        payload = json.loads(json.dumps(self._valid(tiny_entry)))
        mutate(payload)
        with pytest.raises(ValueError, match=match):
            validate_bench_report(payload)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_bench_report([1, 2, 3])


class TestPinnedSuite:
    def test_pinned_names(self):
        assert {"brahms-baseline", "raptee-fixed-eviction", "raptee-1k"} <= set(
            BENCH_SCENARIOS
        )

    def test_headline_scenario_shape(self):
        headline = BENCH_SCENARIOS["raptee-1k"]
        assert headline.n_nodes == 1000
        assert headline.rounds == 50
        assert headline.transport_encryption
        assert headline.view_ratio == 0.02  # the paper's N=10k ratio

    def test_smoke_variants_are_small(self):
        for scenario in BENCH_SCENARIOS.values():
            smoke = scenario.smoke()
            assert smoke.n_nodes <= 120
            assert smoke.rounds <= 6
            # Smoke variants must still build (view sizes stay legal).
            smoke.build()
