"""AES-128 block cipher tests, anchored on FIPS-197 vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import AES128, BLOCK_SIZE, INV_SBOX, SBOX, _gf_inverse, _gf_mul


class TestSboxDerivation:
    def test_sbox_known_entries(self):
        # FIPS-197 Figure 7 spot checks.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inv_sbox_inverts_sbox(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value

    def test_sbox_has_no_fixed_points(self):
        # A classical AES S-box property: S(x) != x and S(x) != ~x.
        for value in range(256):
            assert SBOX[value] != value
            assert SBOX[value] != value ^ 0xFF


class TestFieldArithmetic:
    def test_gf_mul_known_products(self):
        # FIPS-197 §4.2: {57} · {83} = {c1}.
        assert _gf_mul(0x57, 0x83) == 0xC1
        assert _gf_mul(0x57, 0x13) == 0xFE

    def test_gf_mul_identity_and_zero(self):
        for value in (0x00, 0x01, 0x42, 0xFF):
            assert _gf_mul(value, 1) == value
            assert _gf_mul(value, 0) == 0

    def test_gf_inverse_roundtrip(self):
        for value in range(1, 256):
            assert _gf_mul(value, _gf_inverse(value)) == 1

    def test_gf_inverse_of_zero_is_zero(self):
        assert _gf_inverse(0) == 0


class TestAes128Vectors:
    def test_fips197_appendix_b_vector(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        cipher = AES128(key)
        assert cipher.encrypt_block(plaintext) == expected
        assert cipher.decrypt_block(expected) == plaintext

    def test_nist_zero_key_vector(self):
        key = bytes(16)
        plaintext = bytes.fromhex("f34481ec3cc627bacd5dc3fb08f273e6")
        expected = bytes.fromhex("0336763e966d92595a567cc9ce537f5e")
        assert AES128(key).encrypt_block(plaintext) == expected


class TestAes128Behaviour:
    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_rejects_bad_block_length(self):
        cipher = AES128(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"too short")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"x" * 17)

    def test_distinct_keys_give_distinct_ciphertexts(self):
        block = bytes(range(16))
        first = AES128(bytes(16)).encrypt_block(block)
        second = AES128(bytes([1]) + bytes(15)).encrypt_block(block)
        assert first != second

    @given(
        key=st.binary(min_size=16, max_size=16),
        block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
    )
    def test_decrypt_inverts_encrypt(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(key=st.binary(min_size=16, max_size=16))
    def test_encryption_is_not_identity(self, key):
        block = bytes(16)
        assert AES128(key).encrypt_block(block) != block
