"""RSA tests: keygen, encryption padding, signatures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prng import Sha256Prng
from repro.crypto.rsa import RsaError, generate_keypair

# One shared keypair: keygen is the expensive part.
_RNG = Sha256Prng(42)
KEYPAIR = generate_keypair(512, _RNG)


class TestKeyGeneration:
    def test_modulus_bit_length(self):
        assert KEYPAIR.public.n.bit_length() == 512

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            generate_keypair(64, Sha256Prng(0))

    def test_deterministic_under_seed(self):
        first = generate_keypair(256, Sha256Prng(9))
        second = generate_keypair(256, Sha256Prng(9))
        assert first.public.n == second.public.n

    def test_public_key_matches_private(self):
        assert KEYPAIR.public == KEYPAIR.private.public_key()

    def test_private_factors_multiply_to_modulus(self):
        assert KEYPAIR.private.p * KEYPAIR.private.q == KEYPAIR.private.n


class TestEncryption:
    def test_roundtrip(self):
        message = b"the group key K_T"
        ciphertext = KEYPAIR.public.encrypt(message, _RNG)
        assert KEYPAIR.private.decrypt(ciphertext) == message

    def test_randomized_padding(self):
        message = b"same message"
        first = KEYPAIR.public.encrypt(message, _RNG)
        second = KEYPAIR.public.encrypt(message, _RNG)
        assert first != second
        assert KEYPAIR.private.decrypt(first) == KEYPAIR.private.decrypt(second)

    def test_empty_message(self):
        ciphertext = KEYPAIR.public.encrypt(b"", _RNG)
        assert KEYPAIR.private.decrypt(ciphertext) == b""

    def test_oversized_message_rejected(self):
        with pytest.raises(RsaError):
            KEYPAIR.public.encrypt(b"x" * 64, _RNG)

    def test_wrong_length_ciphertext_rejected(self):
        with pytest.raises(RsaError):
            KEYPAIR.private.decrypt(b"\x00" * 10)

    def test_tampered_ciphertext_fails_or_differs(self):
        message = b"attested secret"
        ciphertext = bytearray(KEYPAIR.public.encrypt(message, _RNG))
        ciphertext[-1] ^= 0x01
        try:
            recovered = KEYPAIR.private.decrypt(bytes(ciphertext))
        except RsaError:
            return
        assert recovered != message

    @given(message=st.binary(max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, message):
        rng = Sha256Prng(len(message) + 1)
        assert KEYPAIR.private.decrypt(KEYPAIR.public.encrypt(message, rng)) == message


class TestSignatures:
    def test_sign_verify(self):
        signature = KEYPAIR.private.sign(b"quote payload")
        assert KEYPAIR.public.verify(b"quote payload", signature)

    def test_wrong_message_rejected(self):
        signature = KEYPAIR.private.sign(b"quote payload")
        assert not KEYPAIR.public.verify(b"other payload", signature)

    def test_tampered_signature_rejected(self):
        signature = bytearray(KEYPAIR.private.sign(b"payload"))
        signature[0] ^= 0x80
        assert not KEYPAIR.public.verify(b"payload", bytes(signature))

    def test_wrong_length_signature_rejected(self):
        assert not KEYPAIR.public.verify(b"payload", b"short")

    def test_signature_from_other_key_rejected(self):
        other = generate_keypair(512, Sha256Prng(77))
        signature = other.private.sign(b"payload")
        assert not KEYPAIR.public.verify(b"payload", signature)

    def test_deterministic_signature(self):
        assert KEYPAIR.private.sign(b"m") == KEYPAIR.private.sign(b"m")
