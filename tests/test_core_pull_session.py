"""Full pull-session flows over a real network: 2-3 node micro-worlds."""

import random

import pytest

from repro.adversary.byzantine import ByzantineNode
from repro.adversary.coordinator import AdversaryCoordinator
from repro.core.config import RapteeConfig
from repro.core.node import RapteeNode
from repro.brahms.config import BrahmsConfig
from repro.sim.engine import RoundContext, Simulation
from repro.sim.network import Network
from repro.sim.node import NodeKind


@pytest.fixture
def config():
    return RapteeConfig(brahms=BrahmsConfig(view_size=8, sample_size=4))


def micro_world(nodes, seed=0):
    network = Network(random.Random(seed))
    sim = Simulation(network, nodes, random.Random(seed))
    ctx = RoundContext(sim, 1)
    for node in nodes:
        node.begin_round(ctx)
    return sim, ctx


class TestTrustedToTrustedSession:
    def test_pull_with_swap(self, config, infrastructure):
        enclave_a, _ = infrastructure.new_trusted_enclave(1)
        enclave_b, _ = infrastructure.new_trusted_enclave(2)
        a = RapteeNode(1, NodeKind.TRUSTED, config, random.Random(1), enclave=enclave_a)
        b = RapteeNode(2, NodeKind.TRUSTED, config, random.Random(2), enclave=enclave_b)
        a.seed_view([2, 10, 11, 12])
        b.seed_view([1, 20, 21, 22])
        _sim, ctx = micro_world([a, b])

        batch = a._do_pull(ctx, 2)
        assert batch is not None
        assert batch.trusted_source
        assert set(batch.ids) <= {1, 20, 21, 22}
        # The swap ran: both sides recorded it and exchanged view parts.
        assert a.trusted_exchanges_total == 1
        assert b.trusted_exchanges_total == 1
        assert any(peer in (20, 21, 22, 2) for peer in a.view)
        # B received a trusted batch containing A's self-insertion or view.
        assert any(entry.trusted_source for entry in b._pulled)

    def test_counts_feed_adaptive_rate(self, config, infrastructure):
        enclave_a, _ = infrastructure.new_trusted_enclave(3)
        enclave_b, _ = infrastructure.new_trusted_enclave(4)
        a = RapteeNode(3, NodeKind.TRUSTED, config, random.Random(1), enclave=enclave_a)
        b = RapteeNode(4, NodeKind.TRUSTED, config, random.Random(2), enclave=enclave_b)
        a.seed_view([4, 10])
        b.seed_view([3, 20])
        _sim, ctx = micro_world([a, b])
        a._do_pull(ctx, 4)
        assert a._id_contacts == 1
        assert a._trusted_id_contacts == 1


class TestTrustedToHonestSession:
    def test_pull_without_swap(self, config, infrastructure):
        enclave, _ = infrastructure.new_trusted_enclave(5)
        trusted = RapteeNode(5, NodeKind.TRUSTED, config, random.Random(1), enclave=enclave)
        honest = RapteeNode(6, NodeKind.HONEST, config, random.Random(2))
        trusted.seed_view([6, 10])
        honest.seed_view([5, 30, 31])
        _sim, ctx = micro_world([trusted, honest])

        batch = trusted._do_pull(ctx, 6)
        assert batch is not None
        assert not batch.trusted_source
        assert trusted.trusted_exchanges_total == 0
        assert trusted._trusted_id_contacts == 0

    def test_honest_initiator_never_marks_trusted(self, config, infrastructure):
        enclave, _ = infrastructure.new_trusted_enclave(7)
        trusted = RapteeNode(7, NodeKind.TRUSTED, config, random.Random(1), enclave=enclave)
        honest = RapteeNode(8, NodeKind.HONEST, config, random.Random(2))
        trusted.seed_view([8, 10])
        honest.seed_view([7, 30])
        _sim, ctx = micro_world([trusted, honest])

        batch = honest._do_pull(ctx, 7)
        assert batch is not None
        assert not batch.trusted_source  # honest nodes can't recognize K_T


class TestTrustedToByzantineSession:
    def test_byzantine_answer_is_untrusted_and_fake(self, config, infrastructure):
        coordinator = AdversaryCoordinator(
            byzantine_ids=[100, 101], correct_ids=[9],
            push_limit=4, rng=random.Random(0), strategy="balanced",
        )
        byz = ByzantineNode(100, coordinator, view_size=8, rng=random.Random(3))
        enclave, _ = infrastructure.new_trusted_enclave(9)
        trusted = RapteeNode(9, NodeKind.TRUSTED, config, random.Random(1), enclave=enclave)
        trusted.seed_view([100])
        _sim, ctx = micro_world([trusted, byz])

        batch = trusted._do_pull(ctx, 100)
        assert batch is not None
        assert not batch.trusted_source
        assert set(batch.ids) <= {100, 101}
        assert trusted.trusted_exchanges_total == 0

    def test_dead_target_returns_none(self, config, infrastructure):
        enclave, _ = infrastructure.new_trusted_enclave(10)
        trusted = RapteeNode(10, NodeKind.TRUSTED, config, random.Random(1), enclave=enclave)
        trusted.seed_view([99])
        _sim, ctx = micro_world([trusted])
        assert trusted._do_pull(ctx, 99) is None


class TestCoordinatorIntelFallback:
    def test_pollution_estimate_from_intel(self):
        coordinator = AdversaryCoordinator(
            byzantine_ids=range(5), correct_ids=range(5, 20),
            push_limit=4, rng=random.Random(0),
        )
        # No probe installed: estimate falls back to pull-answer intel.
        coordinator.record_pull_answer(6, [0, 1, 2, 10], round_number=1)   # 0.75
        coordinator.record_pull_answer(7, [0, 10, 11, 12], round_number=1)  # 0.25
        assert coordinator._estimated_pollution() == pytest.approx(0.5)

    def test_estimate_zero_without_any_signal(self):
        coordinator = AdversaryCoordinator(
            byzantine_ids=range(5), correct_ids=range(5, 20),
            push_limit=4, rng=random.Random(0),
        )
        assert coordinator._estimated_pollution() == 0.0
