"""Scenario-builder and runner tests (small topologies)."""

import pytest

from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.experiments.runner import repeat, run_bundle
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)
from repro.sim.node import NodeKind

_WORKER_SPEC = TopologySpec(n_nodes=30, byzantine_fraction=0.1)


def _build_and_run_small(seed):
    # Module level so ProcessPoolExecutor can pickle it (workers > 1).
    return run_bundle(build_brahms_simulation(_WORKER_SPEC, seed), rounds=5)


class TestTopologySpec:
    def test_population_counts(self):
        spec = TopologySpec(n_nodes=100, byzantine_fraction=0.1, trusted_fraction=0.05)
        assert spec.n_byzantine == 10
        assert spec.n_trusted == 5
        assert spec.n_honest == 85

    def test_poisoned_are_additional(self):
        spec = TopologySpec(n_nodes=100, byzantine_fraction=0.1, poisoned_fraction=0.05)
        assert spec.n_poisoned == 5
        assert spec.n_honest == 90

    def test_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(n_nodes=5)
        with pytest.raises(ValueError):
            TopologySpec(byzantine_fraction=1.2)
        with pytest.raises(ValueError):
            TopologySpec(byzantine_fraction=0.6, trusted_fraction=0.5)

    def test_brahms_config_scaling(self):
        spec = TopologySpec(n_nodes=500, view_ratio=0.04)
        assert spec.brahms_config().view_size == 20


class TestBrahmsBuilder:
    def test_population_kinds(self):
        spec = TopologySpec(n_nodes=50, byzantine_fraction=0.2)
        bundle = build_brahms_simulation(spec, seed=1)
        sim = bundle.simulation
        assert len(sim.ids_of_kind(NodeKind.BYZANTINE)) == 10
        assert len(sim.ids_of_kind(NodeKind.HONEST)) == 40

    def test_runs_and_produces_trace(self):
        spec = TopologySpec(n_nodes=50, byzantine_fraction=0.1)
        bundle = build_brahms_simulation(spec, seed=1)
        metrics = run_bundle(bundle, rounds=10)
        assert 0.0 <= metrics.resilience <= 1.0
        assert len(bundle.trace.records) == 10

    def test_deterministic_under_seed(self):
        spec = TopologySpec(n_nodes=50, byzantine_fraction=0.1)
        first = run_bundle(build_brahms_simulation(spec, seed=7), rounds=8)
        second = run_bundle(build_brahms_simulation(spec, seed=7), rounds=8)
        assert first == second

    def test_seed_changes_outcome(self):
        spec = TopologySpec(n_nodes=50, byzantine_fraction=0.1)
        first = run_bundle(build_brahms_simulation(spec, seed=7), rounds=8)
        second = run_bundle(build_brahms_simulation(spec, seed=8), rounds=8)
        assert first != second


class TestRapteeBuilder:
    def test_population_kinds(self):
        spec = TopologySpec(
            n_nodes=50, byzantine_fraction=0.1, trusted_fraction=0.1,
            poisoned_fraction=0.04,
        )
        bundle = build_raptee_simulation(spec, seed=1, eviction=AdaptiveEviction())
        sim = bundle.simulation
        assert len(sim.ids_of_kind(NodeKind.BYZANTINE)) == 5
        assert len(sim.ids_of_kind(NodeKind.TRUSTED)) == 5
        assert len(sim.ids_of_kind(NodeKind.POISONED_TRUSTED)) == 2
        assert bundle.trusted_ids == sim.ids_of_kind(NodeKind.TRUSTED) | sim.ids_of_kind(
            NodeKind.POISONED_TRUSTED
        )

    def test_all_trusted_nodes_share_group_key(self):
        spec = TopologySpec(n_nodes=40, byzantine_fraction=0.0, trusted_fraction=0.1)
        bundle = build_raptee_simulation(spec, seed=1, eviction=AdaptiveEviction())
        trusted = [
            sim_node
            for sim_node in bundle.simulation.nodes.values()
            if sim_node.kind is NodeKind.TRUSTED
        ]
        r_a = b"r" * 16
        r_b, proof = trusted[0].enclave.auth_respond(r_a)
        assert trusted[1].enclave.auth_check_response(r_a, r_b, proof)

    def test_runs_with_cycle_accounting(self):
        spec = TopologySpec(n_nodes=40, byzantine_fraction=0.0, trusted_fraction=0.2)
        bundle = build_raptee_simulation(
            spec, seed=1, eviction=FixedEviction(0.0), with_cycle_accounting=True
        )
        bundle.run(5)
        trusted_id = next(iter(bundle.trusted_ids))
        accountant = bundle.cycle_accountants[trusted_id]
        assert accountant.total_cycles > 0

    def test_cycle_mode_validation(self):
        spec = TopologySpec(n_nodes=40)
        with pytest.raises(ValueError):
            build_raptee_simulation(
                spec, seed=1, eviction=AdaptiveEviction(),
                with_cycle_accounting=True, cycle_mode="bogus",
            )

    def test_deterministic_under_seed(self):
        spec = TopologySpec(n_nodes=40, byzantine_fraction=0.1, trusted_fraction=0.1)
        first = run_bundle(
            build_raptee_simulation(spec, seed=5, eviction=AdaptiveEviction()), rounds=6
        )
        second = run_bundle(
            build_raptee_simulation(spec, seed=5, eviction=AdaptiveEviction()), rounds=6
        )
        assert first == second

    def test_probe_pulls_collect_intel(self):
        spec = TopologySpec(n_nodes=50, byzantine_fraction=0.2, trusted_fraction=0.1)
        bundle = build_raptee_simulation(
            spec, seed=1, eviction=AdaptiveEviction(), probe_pulls=3
        )
        bundle.run(5)
        assert len(bundle.coordinator.intel) > 0


class TestRepeat:
    def test_aggregates_over_seeds(self):
        spec = TopologySpec(n_nodes=40, byzantine_fraction=0.1)

        def build_and_run(seed):
            return run_bundle(build_brahms_simulation(spec, seed), rounds=6)

        repeated = repeat(build_and_run, seeds=[1, 2, 3])
        assert repeated.resilience.count == 3
        assert len(repeated.runs) == 3

    def test_workers_match_serial(self):
        seeds = [1, 2, 3, 4]
        serial = repeat(_build_and_run_small, seeds)
        pooled = repeat(_build_and_run_small, seeds, workers=2)
        assert pooled.runs == serial.runs
        assert pooled.resilience == serial.resilience
        assert pooled.discovery_round == serial.discovery_round
        assert pooled.stability_round == serial.stability_round

    def test_workers_one_is_serial_path(self):
        seeds = [1, 2]
        assert repeat(_build_and_run_small, seeds, workers=1).runs == \
            repeat(_build_and_run_small, seeds).runs

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            repeat(_build_and_run_small, [1], workers=0)

    def test_round_zero_milestones_are_counted(self):
        # The "never reached" sentinel is -1; a milestone hit at round 0
        # must be aggregated, not filtered out alongside the sentinel.
        from repro.experiments.runner import RunMetrics

        metrics = {
            1: RunMetrics(resilience=0.1, discovery_round=0,
                          stability_round=0, rounds=5),
            2: RunMetrics(resilience=0.2, discovery_round=-1,
                          stability_round=3, rounds=5),
        }
        repeated = repeat(lambda seed: metrics[seed], seeds=[1, 2])
        assert repeated.discovery_round.count == 1
        assert repeated.discovery_round.mean == 0
        assert repeated.stability_round.count == 2
