"""Scenario-builder and runner tests (small topologies)."""

import pytest

from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.experiments.runner import RunMetrics, SeedTaskError, repeat, run_bundle
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)
from repro.sim.node import NodeKind

_WORKER_SPEC = TopologySpec(n_nodes=30, byzantine_fraction=0.1)


def _build_and_run_small(seed):
    # Module level so ProcessPoolExecutor can pickle it (workers > 1).
    return run_bundle(build_brahms_simulation(_WORKER_SPEC, seed), rounds=5)


def _fail_on_seed_three(seed):
    # Module level for the same pickling reason.
    if seed == 3:
        raise RuntimeError("boom")
    return RunMetrics(resilience=0.1 * seed, discovery_round=2,
                      stability_round=3, rounds=5)


class TestTopologySpec:
    def test_population_counts(self):
        spec = TopologySpec(n_nodes=100, byzantine_fraction=0.1, trusted_fraction=0.05)
        assert spec.n_byzantine == 10
        assert spec.n_trusted == 5
        assert spec.n_honest == 85

    def test_poisoned_are_additional(self):
        spec = TopologySpec(n_nodes=100, byzantine_fraction=0.1, poisoned_fraction=0.05)
        assert spec.n_poisoned == 5
        assert spec.n_honest == 90

    def test_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(n_nodes=5)
        with pytest.raises(ValueError):
            TopologySpec(byzantine_fraction=1.2)
        with pytest.raises(ValueError):
            TopologySpec(byzantine_fraction=0.6, trusted_fraction=0.5)

    def test_brahms_config_scaling(self):
        spec = TopologySpec(n_nodes=500, view_ratio=0.04)
        assert spec.brahms_config().view_size == 20


class TestBrahmsBuilder:
    def test_population_kinds(self):
        spec = TopologySpec(n_nodes=50, byzantine_fraction=0.2)
        bundle = build_brahms_simulation(spec, seed=1)
        sim = bundle.simulation
        assert len(sim.ids_of_kind(NodeKind.BYZANTINE)) == 10
        assert len(sim.ids_of_kind(NodeKind.HONEST)) == 40

    def test_runs_and_produces_trace(self):
        spec = TopologySpec(n_nodes=50, byzantine_fraction=0.1)
        bundle = build_brahms_simulation(spec, seed=1)
        metrics = run_bundle(bundle, rounds=10)
        assert 0.0 <= metrics.resilience <= 1.0
        assert len(bundle.trace.records) == 10

    def test_deterministic_under_seed(self):
        spec = TopologySpec(n_nodes=50, byzantine_fraction=0.1)
        first = run_bundle(build_brahms_simulation(spec, seed=7), rounds=8)
        second = run_bundle(build_brahms_simulation(spec, seed=7), rounds=8)
        assert first == second

    def test_seed_changes_outcome(self):
        spec = TopologySpec(n_nodes=50, byzantine_fraction=0.1)
        first = run_bundle(build_brahms_simulation(spec, seed=7), rounds=8)
        second = run_bundle(build_brahms_simulation(spec, seed=8), rounds=8)
        assert first != second


class TestRapteeBuilder:
    def test_population_kinds(self):
        spec = TopologySpec(
            n_nodes=50, byzantine_fraction=0.1, trusted_fraction=0.1,
            poisoned_fraction=0.04,
        )
        bundle = build_raptee_simulation(spec, seed=1, eviction=AdaptiveEviction())
        sim = bundle.simulation
        assert len(sim.ids_of_kind(NodeKind.BYZANTINE)) == 5
        assert len(sim.ids_of_kind(NodeKind.TRUSTED)) == 5
        assert len(sim.ids_of_kind(NodeKind.POISONED_TRUSTED)) == 2
        assert bundle.trusted_ids == sim.ids_of_kind(NodeKind.TRUSTED) | sim.ids_of_kind(
            NodeKind.POISONED_TRUSTED
        )

    def test_all_trusted_nodes_share_group_key(self):
        spec = TopologySpec(n_nodes=40, byzantine_fraction=0.0, trusted_fraction=0.1)
        bundle = build_raptee_simulation(spec, seed=1, eviction=AdaptiveEviction())
        trusted = [
            sim_node
            for sim_node in bundle.simulation.nodes.values()
            if sim_node.kind is NodeKind.TRUSTED
        ]
        r_a = b"r" * 16
        r_b, proof = trusted[0].enclave.auth_respond(r_a)
        assert trusted[1].enclave.auth_check_response(r_a, r_b, proof)

    def test_runs_with_cycle_accounting(self):
        spec = TopologySpec(n_nodes=40, byzantine_fraction=0.0, trusted_fraction=0.2)
        bundle = build_raptee_simulation(
            spec, seed=1, eviction=FixedEviction(0.0), with_cycle_accounting=True
        )
        bundle.run(5)
        trusted_id = next(iter(bundle.trusted_ids))
        accountant = bundle.cycle_accountants[trusted_id]
        assert accountant.total_cycles > 0

    def test_cycle_mode_validation(self):
        spec = TopologySpec(n_nodes=40)
        with pytest.raises(ValueError):
            build_raptee_simulation(
                spec, seed=1, eviction=AdaptiveEviction(),
                with_cycle_accounting=True, cycle_mode="bogus",
            )

    def test_deterministic_under_seed(self):
        spec = TopologySpec(n_nodes=40, byzantine_fraction=0.1, trusted_fraction=0.1)
        first = run_bundle(
            build_raptee_simulation(spec, seed=5, eviction=AdaptiveEviction()), rounds=6
        )
        second = run_bundle(
            build_raptee_simulation(spec, seed=5, eviction=AdaptiveEviction()), rounds=6
        )
        assert first == second

    def test_probe_pulls_collect_intel(self):
        spec = TopologySpec(n_nodes=50, byzantine_fraction=0.2, trusted_fraction=0.1)
        bundle = build_raptee_simulation(
            spec, seed=1, eviction=AdaptiveEviction(), probe_pulls=3
        )
        bundle.run(5)
        assert len(bundle.coordinator.intel) > 0


class TestRepeat:
    def test_aggregates_over_seeds(self):
        spec = TopologySpec(n_nodes=40, byzantine_fraction=0.1)

        def build_and_run(seed):
            return run_bundle(build_brahms_simulation(spec, seed), rounds=6)

        repeated = repeat(build_and_run, seeds=[1, 2, 3])
        assert repeated.resilience.count == 3
        assert len(repeated.runs) == 3

    def test_workers_match_serial(self):
        seeds = [1, 2, 3, 4]
        serial = repeat(_build_and_run_small, seeds)
        pooled = repeat(_build_and_run_small, seeds, workers=2)
        assert pooled.runs == serial.runs
        assert pooled.resilience == serial.resilience
        assert pooled.discovery_round == serial.discovery_round
        assert pooled.stability_round == serial.stability_round

    def test_workers_one_is_serial_path(self):
        seeds = [1, 2]
        assert repeat(_build_and_run_small, seeds, workers=1).runs == \
            repeat(_build_and_run_small, seeds).runs

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            repeat(_build_and_run_small, [1], workers=0)

    def test_round_zero_milestones_are_counted(self):
        # The "never reached" sentinel is -1; a milestone hit at round 0
        # must be aggregated, not filtered out alongside the sentinel.
        from repro.experiments.runner import RunMetrics

        metrics = {
            1: RunMetrics(resilience=0.1, discovery_round=0,
                          stability_round=0, rounds=5),
            2: RunMetrics(resilience=0.2, discovery_round=-1,
                          stability_round=3, rounds=5),
        }
        repeated = repeat(lambda seed: metrics[seed], seeds=[1, 2])
        assert repeated.discovery_round.count == 1
        assert repeated.discovery_round.mean == 0
        assert repeated.stability_round.count == 2


class TestRepeatFailureReporting:
    def test_serial_failure_names_the_seed(self):
        with pytest.raises(SeedTaskError, match="seed 3 failed.*boom") as excinfo:
            repeat(_fail_on_seed_three, seeds=[1, 3, 5])
        assert excinfo.value.seed == 3

    def test_pool_failure_names_the_seed(self):
        # Regression: the pool used to re-raise the bare worker exception,
        # losing which seed produced it.
        with pytest.raises(SeedTaskError, match="seed 3 failed.*boom") as excinfo:
            repeat(_fail_on_seed_three, seeds=[1, 2, 3, 4], workers=2)
        assert excinfo.value.seed == 3

    def test_seed_task_error_survives_pickling(self):
        import pickle

        error = SeedTaskError(7, "seed 7 failed: ValueError: nope")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, SeedTaskError)
        assert clone.seed == 7
        assert str(clone) == str(error)

    def test_original_exception_chained(self):
        with pytest.raises(SeedTaskError) as excinfo:
            repeat(_fail_on_seed_three, seeds=[3])
        assert isinstance(excinfo.value.__cause__, RuntimeError)


class TestRepeatCheckpoint:
    def test_resume_skips_completed_seeds(self, tmp_path):
        path = str(tmp_path / "repeat.json")
        calls = []

        def build_and_run(seed):
            calls.append(seed)
            return RunMetrics(resilience=0.1 * seed, discovery_round=2,
                              stability_round=3, rounds=5)

        first = repeat(build_and_run, seeds=[1, 2, 3], checkpoint_path=path)
        assert calls == [1, 2, 3]

        second = repeat(build_and_run, seeds=[1, 2, 3], checkpoint_path=path)
        assert calls == [1, 2, 3]  # nothing re-ran
        assert second == first

    def test_resume_runs_only_missing_seeds(self, tmp_path):
        path = str(tmp_path / "repeat.json")
        calls = []

        def build_and_run(seed):
            calls.append(seed)
            return RunMetrics(resilience=0.1 * seed, discovery_round=2,
                              stability_round=3, rounds=5)

        repeat(build_and_run, seeds=[1, 2], checkpoint_path=path)
        repeated = repeat(build_and_run, seeds=[1, 2, 4, 5], checkpoint_path=path)
        assert calls == [1, 2, 4, 5]
        assert [run.resilience for run in repeated.runs] == \
            pytest.approx([0.1, 0.2, 0.4, 0.5])

    def test_failed_sweep_keeps_completed_seeds(self, tmp_path):
        from repro.snapshot import SeedResultStore

        path = str(tmp_path / "repeat.json")
        with pytest.raises(SeedTaskError):
            repeat(_fail_on_seed_three, seeds=[1, 2, 3], checkpoint_path=path)
        assert sorted(SeedResultStore(path).results()) == [1, 2]

        # Resuming after fixing the bad seed re-runs only seed 3.
        calls = []

        def fixed(seed):
            calls.append(seed)
            return RunMetrics(resilience=0.1 * seed, discovery_round=2,
                              stability_round=3, rounds=5)

        repeated = repeat(fixed, seeds=[1, 2, 3], checkpoint_path=path)
        assert calls == [3]
        assert len(repeated.runs) == 3

    def test_pool_failure_still_persists_finished_seeds(self, tmp_path):
        from repro.snapshot import SeedResultStore

        path = str(tmp_path / "repeat.json")
        with pytest.raises(SeedTaskError):
            repeat(_fail_on_seed_three, seeds=[1, 2, 3, 4], workers=2,
                   checkpoint_path=path)
        recorded = sorted(SeedResultStore(path).results())
        assert 3 not in recorded
        assert recorded  # at least one completed seed was kept

    def test_checkpoint_ignores_foreign_seeds(self, tmp_path):
        # Results recorded for seeds outside the requested set don't leak
        # into the aggregation.
        path = str(tmp_path / "repeat.json")

        def build_and_run(seed):
            return RunMetrics(resilience=0.1 * seed, discovery_round=2,
                              stability_round=3, rounds=5)

        repeat(build_and_run, seeds=[1, 2, 9], checkpoint_path=path)
        repeated = repeat(build_and_run, seeds=[1, 2], checkpoint_path=path)
        assert [run.resilience for run in repeated.runs] == \
            pytest.approx([0.1, 0.2])
