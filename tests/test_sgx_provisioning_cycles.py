"""Group-key provisioning and the Table-I cycle model."""

import random

import pytest

from repro.crypto.prng import Sha256Prng
from repro.crypto.rsa import generate_keypair
from repro.sgx.attestation import AttestationService
from repro.sgx.cycles import (
    CycleAccountant,
    CycleModel,
    FunctionCost,
    PeerSamplingFunction,
    TABLE_I,
)
from repro.sgx.enclave import Enclave, SgxDevice, ecall, report_data_binding
from repro.sgx.errors import ProvisioningError
from repro.sgx.provisioning import GroupKeyProvisioner


class NoopEnclave(Enclave):
    @ecall
    def noop(self):
        return None


@pytest.fixture
def provisioning_setup(prng):
    device = SgxDevice(5, prng.spawn("dev"))
    host = device.load(NoopEnclave)
    service = AttestationService()
    service.register_device(5, device.attestation_public_key)
    service.trust_measurement(host.measurement)
    provisioner = GroupKeyProvisioner(service, b"G" * 16, prng.spawn("prov"))
    keypair = generate_keypair(384, prng.spawn("ekey"))
    return host, provisioner, keypair


class TestProvisioning:
    def test_happy_path(self, provisioning_setup):
        host, provisioner, keypair = provisioning_setup
        quote = host.generate_quote(report_data_binding(keypair.public))
        ciphertext = provisioner.provision(quote, keypair.public)
        assert keypair.private.decrypt(ciphertext) == b"G" * 16
        assert provisioner.provisioned_count == 1

    def test_unbound_key_rejected(self, provisioning_setup, prng):
        host, provisioner, _keypair = provisioning_setup
        quote = host.generate_quote(b"not a key binding")
        other = generate_keypair(384, prng.spawn("other"))
        with pytest.raises(ProvisioningError, match="not bound"):
            provisioner.provision(quote, other.public)

    def test_failed_attestation_rejected(self, provisioning_setup, prng):
        _host, provisioner, keypair = provisioning_setup
        rogue_device = SgxDevice(66, prng.spawn("rogue"))
        rogue_host = rogue_device.load(NoopEnclave)
        quote = rogue_host.generate_quote(report_data_binding(keypair.public))
        with pytest.raises(ProvisioningError, match="attestation failed"):
            provisioner.provision(quote, keypair.public)

    def test_group_key_must_be_16_bytes(self, provisioning_setup, prng):
        with pytest.raises(ValueError):
            GroupKeyProvisioner(AttestationService(), b"short", prng)


class TestCycleModel:
    def test_table_i_values_match_paper(self):
        pull = TABLE_I[PeerSamplingFunction.PULL_REQUEST]
        assert (pull.standard, pull.sgx) == (15_623, 18_593)
        assert pull.mean_overhead == 2_970
        push = TABLE_I[PeerSamplingFunction.PUSH_MESSAGE]
        assert (push.standard, push.sgx, push.mean_overhead) == (7_521, 9_182, 1_661)
        trusted = TABLE_I[PeerSamplingFunction.TRUSTED_COMMUNICATIONS]
        assert trusted.mean_overhead == 1_671
        sample = TABLE_I[PeerSamplingFunction.SAMPLE_LIST_COMPUTATION]
        assert sample.mean_overhead == 2_340
        view = TABLE_I[PeerSamplingFunction.DYNAMIC_VIEW_COMPUTATION]
        assert view.mean_overhead == 2_619

    def test_untrusted_cost_is_standard(self):
        model = CycleModel()
        rng = random.Random(0)
        cost = model.sample_cycles(PeerSamplingFunction.PUSH_MESSAGE, False, rng)
        assert cost == TABLE_I[PeerSamplingFunction.PUSH_MESSAGE].standard

    def test_trusted_cost_within_gaussian_envelope(self):
        model = CycleModel()
        rng = random.Random(0)
        reference = TABLE_I[PeerSamplingFunction.PULL_REQUEST]
        samples = [
            model.sample_cycles(PeerSamplingFunction.PULL_REQUEST, True, rng)
            for _ in range(500)
        ]
        mean = sum(samples) / len(samples)
        assert abs(mean - reference.sgx) < reference.overhead_std * 2
        assert all(cost >= reference.standard for cost in samples)

    def test_unknown_function_rejected(self):
        with pytest.raises(KeyError):
            CycleModel().function_cost("no_such_function")

    def test_accountant_aggregates(self):
        accountant = CycleAccountant(CycleModel(), random.Random(1))
        for _ in range(10):
            accountant.charge(PeerSamplingFunction.PUSH_MESSAGE, trusted=False)
        assert accountant.invocations[PeerSamplingFunction.PUSH_MESSAGE] == 10
        assert accountant.mean_cost(PeerSamplingFunction.PUSH_MESSAGE) == pytest.approx(
            TABLE_I[PeerSamplingFunction.PUSH_MESSAGE].standard
        )

    def test_accountant_force_standard(self):
        accountant = CycleAccountant(CycleModel(), random.Random(1), force_standard=True)
        accountant.charge(PeerSamplingFunction.PULL_REQUEST, trusted=True)
        assert accountant.total_cycles == TABLE_I[PeerSamplingFunction.PULL_REQUEST].standard

    def test_accountant_mean_requires_invocations(self):
        accountant = CycleAccountant(CycleModel(), random.Random(1))
        with pytest.raises(ValueError):
            accountant.mean_cost(PeerSamplingFunction.PULL_REQUEST)

    def test_accountant_reset(self):
        accountant = CycleAccountant(CycleModel(), random.Random(1))
        accountant.charge(PeerSamplingFunction.PULL_REQUEST, trusted=True)
        accountant.reset()
        assert accountant.total_cycles == 0.0
        assert not accountant.invocations

    def test_function_cost_validation(self):
        cost = FunctionCost(100, 120, 0.05)
        assert cost.mean_overhead == 20
        assert cost.overhead_std == pytest.approx(1.0)
