"""Dynamic trusted-set membership: epochs, log, quorum provisioning, drills.

Covers the :mod:`repro.membership` stack bottom-up — the epoch chain, the
signed membership log and per-node views, the ReplicaTEE-style replicated
provisioning service with deterministic failover — then the integration
surface: epoch-tagged provisioning payloads and sealing, the scenario
builder, runtime join/leave, legacy byte-equivalence with membership off,
jitter determinism across worker counts, and the end-to-end churn drill
(the acceptance evidence: bounded recovery, no exchange under a revoked
epoch's key).
"""

import random

import pytest

from repro.core.eviction import AdaptiveEviction
from repro.core.node import RapteeNode
from repro.core.recovery import RetryPolicy
from repro.crypto.prng import Sha256Prng, derive_seed
from repro.experiments.runner import RunMetrics, repeat
from repro.experiments.scenarios import TopologySpec, build_raptee_simulation
from repro.faults.drills import run_drill
from repro.faults.harness import wire_faults
from repro.faults.plan import FaultPlan
from repro.membership import (
    KEY_SIZE,
    EpochChain,
    KeyEpoch,
    MembershipConfig,
    MembershipLog,
    NodeMembershipView,
    ReplicatedProvisioningService,
)
from repro.sgx.errors import ProvisioningError


# ---------------------------------------------------------------------------
# Epoch chain
# ---------------------------------------------------------------------------

class TestEpochChain:
    def test_genesis_wraps_legacy_key_unchanged(self):
        genesis = bytes(range(16))
        chain = EpochChain(genesis, b"m" * 32)
        assert chain.current.number == 0
        assert chain.current.key == genesis
        assert chain.current.reason == "genesis"
        assert len(chain) == 1

    def test_rotation_is_deterministic_from_master(self):
        a = EpochChain(b"k" * 16, b"m" * 32)
        b = EpochChain(b"k" * 16, b"m" * 32)
        for round_number in (3, 7):
            a.rotate(round_number)
            b.rotate(round_number)
        assert a.current.key == b.current.key
        assert a.current.number == b.current.number == 2
        assert len({a.epoch(n).key for n in range(3)}) == 3  # all distinct

    def test_different_masters_different_keys(self):
        a = EpochChain(b"k" * 16, b"m" * 32)
        b = EpochChain(b"k" * 16, b"n" * 32)
        assert a.rotate(1).key != b.rotate(1).key

    def test_revocation_marks_retiring_epoch(self):
        chain = EpochChain(b"k" * 16, b"m" * 32)
        chain.rotate(2, reason="scheduled")
        assert chain.revoked_epochs() == ()
        chain.rotate(5, reason="revocation")
        assert chain.is_revoked_epoch(1)
        assert not chain.is_revoked_epoch(0)
        assert not chain.is_revoked_epoch(2)
        assert chain.revoked_epochs() == (1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            EpochChain(b"short", b"m" * 32)
        with pytest.raises(ValueError):
            EpochChain(b"k" * 16, b"tiny")
        with pytest.raises(ValueError):
            KeyEpoch(number=-1, key=b"k" * KEY_SIZE, created_round=0, reason="x")
        with pytest.raises(ValueError):
            KeyEpoch(number=0, key=b"k" * 8, created_round=0, reason="x")
        chain = EpochChain(b"k" * 16, b"m" * 32)
        with pytest.raises(KeyError):
            chain.epoch(1)


# ---------------------------------------------------------------------------
# Membership log and per-node views
# ---------------------------------------------------------------------------

class TestMembershipLog:
    def test_hash_chain_and_monotone_seq(self):
        log = MembershipLog(b"s" * 32)
        first = log.append("join", 4, 0, round_number=1)
        second = log.append("revoke", 4, 0, round_number=2)
        assert (first.seq, second.seq) == (1, 2)
        assert second.prev_digest == first.digest
        assert log.latest_seq == 2
        assert log.records_since(1) == (second,)
        assert log.records_since(0, upto_seq=1) == (first,)
        assert log.verify(first) and log.verify(second)

    def test_rejects_unknown_action(self):
        log = MembershipLog(b"s" * 32)
        with pytest.raises(ValueError, match="unknown membership action"):
            log.append("promote", 4, 0, round_number=1)

    def test_forged_record_fails_verification(self):
        log = MembershipLog(b"s" * 32)
        record = log.append("join", 4, 0, round_number=1)
        from dataclasses import replace
        tampered = replace(record, node_id=9)
        assert not log.verify(tampered)
        foreign = MembershipLog(b"x" * 32).append("join", 4, 0, round_number=1)
        assert not log.verify(foreign)

    def test_view_applies_in_order_only(self):
        log = MembershipLog(b"s" * 32)
        log.append("join", 4, 0, round_number=1)
        skipped = log.append("revoke", 4, 0, round_number=2)
        view = NodeMembershipView(7, log)
        with pytest.raises(ValueError, match="out-of-order"):
            view.apply(skipped)
        assert view.catch_up() == 2
        assert view.applied_seq == 2
        assert view.is_revoked(4) and not view.is_member(4)

    def test_view_rejects_tampered_record(self):
        log = MembershipLog(b"s" * 32)
        record = log.append("join", 4, 2, round_number=1)
        from dataclasses import replace
        view = NodeMembershipView(7, log)
        with pytest.raises(ValueError, match="fails verification"):
            view.apply(replace(record, epoch=5, node_id=4))

    def test_sync_with_never_rolls_back(self):
        log = MembershipLog(b"s" * 32)
        for node_id in (4, 5, 6):
            log.append("join", node_id, 0, round_number=1)
        ahead = NodeMembershipView(1, log)
        behind = NodeMembershipView(2, log)
        ahead.catch_up()
        assert behind.sync_with(ahead) == 3
        assert behind.members == (4, 5, 6)
        # The lagging direction is a no-op, never a rollback.
        stale = NodeMembershipView(3, log)
        assert ahead.sync_with(stale) == 0
        assert ahead.applied_seq == 3

    def test_permits_requires_member_current_epoch_not_revoked(self):
        log = MembershipLog(b"s" * 32)
        view = NodeMembershipView(1, log)
        view.bootstrap([4, 5])
        assert view.permits(4, 0)
        assert not view.permits(9, 0)          # not a member
        assert not view.permits(4, 1)          # stale epoch claim
        log.append("rotate", -1, 1, round_number=3)
        log.append("revoke", 5, 1, round_number=4)
        view.catch_up()
        assert view.current_epoch == 1
        assert view.permits(4, 1)
        assert not view.permits(4, 0)          # epoch moved on
        assert not view.permits(5, 1)          # revoked


# ---------------------------------------------------------------------------
# Replicated provisioning service
# ---------------------------------------------------------------------------

def _service(infrastructure, replica_count=3):
    return ReplicatedProvisioningService(
        infrastructure, Sha256Prng(derive_seed(99, "svc")),
        replica_count=replica_count,
    )


class TestReplicatedProvisioning:
    def test_quorum_is_majority_of_configured_replicas(self, infrastructure):
        assert _service(infrastructure, 1).quorum_size() == 1
        assert _service(infrastructure, 3).quorum_size() == 2
        assert _service(infrastructure, 5).quorum_size() == 3

    def test_replica_zero_is_the_legacy_provisioner(self, infrastructure):
        service = _service(infrastructure)
        infrastructure.enable_membership(service)
        before = infrastructure.provisioner.provisioned_count
        host, _device = infrastructure.new_trusted_enclave(1)
        assert host.is_provisioned()
        # The release went through replica 0 == the legacy provisioner.
        assert infrastructure.provisioner.provisioned_count == before + 1

    def test_failover_to_lowest_alive_replica(self, infrastructure):
        service = _service(infrastructure)
        infrastructure.enable_membership(service)
        assert service.primary_replica_id() == 0
        service.crash_replica(0)
        assert service.primary_replica_id() == 1
        assert service.alive_replica_ids() == (1, 2)
        # Quorum 2/3 still holds: provisioning succeeds through replica 1.
        host, _device = infrastructure.new_trusted_enclave(2)
        assert host.is_provisioned()
        service.restore_replica(0)
        assert service.primary_replica_id() == 0

    def test_below_quorum_fails_outright(self, infrastructure):
        service = _service(infrastructure)
        infrastructure.enable_membership(service)
        service.crash_replica(0)
        service.crash_replica(2)
        with pytest.raises(ProvisioningError, match="quorum unreachable"):
            infrastructure.new_trusted_enclave(3)

    def test_restored_replica_serves_current_epoch(self, infrastructure):
        service = _service(infrastructure)
        infrastructure.enable_membership(service)
        service.crash_replica(1)
        epoch = service.rotate(round_number=5)
        service.restore_replica(1)
        for replica_id in service.alive_replica_ids():
            replica = service._replicas[replica_id]
            assert replica.epoch == epoch.number

    def test_revoke_logs_before_forced_rotation(self, infrastructure):
        service = _service(infrastructure)
        service.bootstrap_member(4)
        epoch = service.revoke(4, round_number=3)
        assert epoch.number == 1
        actions = [record.action for record in service.log.records]
        assert actions == ["revoke", "rotate"]
        # The revocation is recorded under the *retiring* epoch: any view
        # that learns the new epoch has necessarily seen the revocation.
        assert service.log.records[0].epoch == 0
        assert service.log.records[1].epoch == 1
        assert service.chain.is_revoked_epoch(0)
        assert service.is_revoked(4)
        assert 4 in infrastructure.attestation._revoked_devices

    def test_revoke_is_idempotent(self, infrastructure):
        service = _service(infrastructure)
        service.bootstrap_member(4)
        service.revoke(4, round_number=3)
        length = service.log.latest_seq
        service.revoke(4, round_number=4)
        assert service.log.latest_seq == length
        assert service.chain.current.number == 1

    def test_revoked_device_cannot_rejoin(self, infrastructure):
        service = _service(infrastructure)
        service.bootstrap_member(4)
        service.revoke(4, round_number=3)
        with pytest.raises(ProvisioningError, match="revoked"):
            service.join(4, round_number=5)

    def test_new_view_converges_with_incremental_views(self, infrastructure):
        service = _service(infrastructure)
        for node_id in (4, 5, 6):
            service.bootstrap_member(node_id)
        incremental = service.new_view(4)
        service.join(7, round_number=2)
        service.leave(5, round_number=3, rotate=True)
        service.revoke(6, round_number=4)
        incremental.catch_up()
        late = service.new_view(8)  # joins after the whole history
        assert late.members == incremental.members
        assert late.revoked == incremental.revoked
        assert late.current_epoch == incremental.current_epoch
        assert late.applied_seq == incremental.applied_seq


# ---------------------------------------------------------------------------
# Epoch-tagged provisioning payloads and sealing
# ---------------------------------------------------------------------------

class TestEpochProvisioning:
    def test_epoch_zero_provisioning_is_legacy_shaped(self, infrastructure):
        host, _device = infrastructure.new_trusted_enclave(1)
        assert host.group_epoch() == 0
        # Epoch-0 seals are the legacy bare-key blob: restorable as before.
        fresh = infrastructure.reload_enclave(1)
        fresh.restore_group_key(host.seal_group_key())
        assert fresh.is_provisioned()
        assert fresh.group_epoch() == 0

    def test_rotated_epoch_rides_the_provisioning_payload(self, infrastructure):
        service = _service(infrastructure)
        infrastructure.enable_membership(service)
        epoch = service.rotate(round_number=4)
        host, _device = infrastructure.new_trusted_enclave(1)
        assert host.group_epoch() == epoch.number == 1

    def test_seal_restore_round_trip_preserves_epoch(self, infrastructure):
        service = _service(infrastructure)
        infrastructure.enable_membership(service)
        service.rotate(round_number=4)
        service.rotate(round_number=9)
        host, _device = infrastructure.new_trusted_enclave(1)
        blob = host.seal_group_key()
        fresh = infrastructure.reload_enclave(1)
        fresh.restore_group_key(blob)
        assert fresh.group_epoch() == 2

    def test_group_epoch_requires_provisioning(self, infrastructure):
        host, _device = infrastructure.new_trusted_enclave(1)
        fresh = infrastructure.reload_enclave(1)
        with pytest.raises(ProvisioningError, match="not provisioned"):
            fresh.group_epoch()


# ---------------------------------------------------------------------------
# Scenario builder integration, runtime join/leave, legacy equivalence
# ---------------------------------------------------------------------------

def _membership_bundle(seed=5, **config_kwargs):
    spec = TopologySpec(
        n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.15,
        view_ratio=0.10,
    )
    membership = MembershipConfig(**config_kwargs)
    return build_raptee_simulation(
        spec, seed, eviction=AdaptiveEviction(), membership=membership
    )


class TestBuilderIntegration:
    def test_trusted_nodes_carry_views_at_epoch_zero(self):
        bundle = _membership_bundle()
        director = bundle.membership
        assert director is not None
        assert bundle.infrastructure.membership is director.service
        trusted = sorted(
            node_id for node_id in bundle.simulation.nodes
            if isinstance(bundle.simulation.nodes[node_id], RapteeNode)
            and bundle.simulation.nodes[node_id].trusted_role
        )
        assert sorted(director.views) == trusted
        for node_id in trusted:
            node = bundle.simulation.nodes[node_id]
            assert node.membership_view is director.views[node_id]
            assert node.enclave_epoch == 0
            assert node.membership_view.is_member(node_id)

    def test_membership_off_builds_no_director(self):
        spec = TopologySpec(
            n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.15,
            view_ratio=0.10,
        )
        bundle = build_raptee_simulation(spec, 5, eviction=AdaptiveEviction())
        assert bundle.membership is None
        disabled = build_raptee_simulation(
            spec, 5, eviction=AdaptiveEviction(),
            membership=MembershipConfig(enabled=False),
        )
        assert disabled.membership is None

    def test_disabled_membership_is_byte_identical_to_legacy(self):
        """MembershipConfig(enabled=False) must not perturb a run at all."""
        spec = TopologySpec(
            n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.15,
            view_ratio=0.10, transport_encryption=True,
        )
        legacy = build_raptee_simulation(spec, 5, eviction=AdaptiveEviction())
        disabled = build_raptee_simulation(
            spec, 5, eviction=AdaptiveEviction(),
            membership=MembershipConfig(enabled=False),
        )
        legacy.run(8)
        disabled.run(8)
        assert legacy.trace.records == disabled.trace.records

    def test_runtime_join_and_leave(self):
        bundle = _membership_bundle()
        harness = wire_faults(bundle, FaultPlan(), seed=5)
        bundle.run(2)
        director = bundle.membership
        simulation = bundle.simulation
        joined = director.join_node(simulation, round_number=2)
        assert joined is not None
        assert joined.node_id == max(simulation.ever_registered)
        assert joined.trusted
        assert joined.enclave_epoch == director.service.chain.current.number
        assert joined.node_id in director.views
        assert director.views[joined.node_id].is_member(joined.node_id)
        # The recovery manager took custody of the new node's sealed K_T.
        assert harness.recovery.sealed_blob(joined.node_id) is not None

        leaver = sorted(director.views)[0]
        epoch_before = director.service.chain.current.number
        director.leave_node(simulation, leaver, round_number=3)
        assert leaver not in simulation.nodes
        assert leaver not in director.views
        # A voluntary leave forces a re-key by default.
        assert director.service.chain.current.number == epoch_before + 1

    def test_epoch_enforcement_degrades_stale_nodes(self):
        bundle = _membership_bundle()
        wire_faults(bundle, FaultPlan(), seed=5)
        bundle.run(2)
        director = bundle.membership
        simulation = bundle.simulation
        director.service.rotate(round_number=3)
        director._enforce_epochs(simulation)
        stale = [
            node_id for node_id in sorted(director.views)
            if node_id in simulation.nodes
            and simulation.nodes[node_id].degraded
        ]
        assert stale, "every trusted node held the retired epoch"


# ---------------------------------------------------------------------------
# Jitter determinism across worker counts (satellite)
# ---------------------------------------------------------------------------

def _jitter_schedule_metrics(seed: int) -> RunMetrics:
    """Pack a backoff-delay schedule into a RunMetrics (picklable task).

    ``repeat`` only transports RunMetrics, so the four jitter-bearing
    delays are packed two-digits-each into the ``rounds`` integer; the
    milestone fields use the "never reached" sentinel so aggregation
    ignores them.
    """
    policy = RetryPolicy(base_delay=1, multiplier=2, max_delay=8, jitter=3)
    rng = random.Random(derive_seed(seed, "recovery", "jitter"))
    packed = 0
    for attempt in range(4):
        packed = packed * 100 + policy.delay_rounds(attempt, rng)
    return RunMetrics(
        resilience=0.0, discovery_round=-1, stability_round=-1, rounds=packed
    )


class TestJitterDeterminism:
    def test_delay_rounds_identical_across_worker_counts(self):
        seeds = [101, 102, 103, 104, 105, 106]
        serial = repeat(_jitter_schedule_metrics, seeds, workers=1)
        parallel = repeat(_jitter_schedule_metrics, seeds, workers=4)
        assert serial.runs == parallel.runs
        # And the schedules really differ across seeds (jitter is live).
        assert len({run.rounds for run in serial.runs}) > 1


# ---------------------------------------------------------------------------
# End-to-end: the membership-churn drill (acceptance evidence)
# ---------------------------------------------------------------------------

class TestMembershipChurnDrill:
    def test_drill_recovers_within_bounds_and_keeps_invariants(self):
        report = run_drill("membership-churn", nodes=100, rounds=40, seed=3)
        # Safety: with the epoch-exchange and staleness invariants armed,
        # no trusted exchange ever completed under a revoked epoch's key
        # and no view lagged past the staleness bound.
        assert report.violations == 0
        # Liveness: the compound fault really fired...
        assert report.revocations >= 1
        assert report.rotations >= 2  # revocation-forced + scheduled
        assert report.current_epoch >= 2
        assert report.stale_degrades > 0
        # ...and the trusted set re-attested into the new epoch within the
        # run: only the revoked device (and any mid-churn stragglers still
        # inside their backoff window) may remain degraded at the end.
        assert report.reprovisions > 0
        assert report.still_degraded <= 1 + report.revocations

    def test_drill_is_deterministic(self):
        first = run_drill("membership-churn", nodes=100, rounds=30, seed=7,
                          capture_trace=True)
        second = run_drill("membership-churn", nodes=100, rounds=30, seed=7,
                           capture_trace=True)
        assert first.trace_jsonl == second.trace_jsonl
        assert first == second
