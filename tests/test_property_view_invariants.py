"""Property-based invariants of the view data structures.

These are the structural guarantees everything above relies on:
PartialView.select never exceeds capacity or duplicates IDs regardless of
H/S/buffer, and the trusted swap conserves the view as a multiset
transformation.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.trusted_exchange import apply_swap, build_offer
from repro.gossip.partial_view import PartialView, ViewEntry

entries_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=20)),
    max_size=30,
).map(lambda pairs: [ViewEntry(node_id, age) for node_id, age in pairs])


class TestPartialViewSelectProperties:
    @given(
        initial=entries_strategy,
        buffer=entries_strategy,
        capacity=st.integers(min_value=1, max_value=15),
        healer=st.integers(min_value=0, max_value=5),
        swapper=st.integers(min_value=0, max_value=5),
        sent=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=120, deadline=None)
    def test_select_respects_capacity_and_uniqueness(
        self, initial, buffer, capacity, healer, swapper, sent, seed
    ):
        view = PartialView(capacity, initial)
        view.select(buffer, healer=healer, swapper=swapper, sent_count=sent,
                    rng=random.Random(seed))
        ids = view.ids()
        assert len(ids) <= capacity
        assert len(ids) == len(set(ids))  # unique by node ID

    @given(
        initial=entries_strategy,
        buffer=entries_strategy,
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_select_only_contains_known_ids(self, initial, buffer, seed):
        view = PartialView(10, initial)
        before = set(view.ids())
        view.select(buffer, healer=0, swapper=0, sent_count=0,
                    rng=random.Random(seed))
        allowed = before | {entry.node_id for entry in buffer}
        assert set(view.ids()) <= allowed

    @given(initial=entries_strategy)
    def test_increase_ages_preserves_ids(self, initial):
        view = PartialView(40, initial)
        before = sorted(view.ids())
        view.increase_ages()
        assert sorted(view.ids()) == before


class TestSwapProperties:
    view_strategy = st.lists(
        st.integers(min_value=1, max_value=40), min_size=1, max_size=20
    )

    @given(view=view_strategy, seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=100, deadline=None)
    def test_offer_never_exceeds_half_plus_self(self, view, seed):
        offer = build_offer(view, own_id=999, rng=random.Random(seed), include_self=True)
        assert len(offer.offered) <= max(1, len(view) // 2)
        assert offer.offered[-1] == 999  # self link appended

    @given(
        view=view_strategy,
        received=st.lists(st.integers(min_value=100, max_value=140), max_size=10),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_swap_length_accounting(self, view, received, seed):
        offer = build_offer(view, own_id=999, rng=random.Random(seed), include_self=False)
        new_view = apply_swap(view, offer, tuple(received), own_id=999)
        removed = len(offer.sent_from_view)
        added = len([peer for peer in received if peer != 999])
        assert len(new_view) == len(view) - removed + added

    @given(
        view=view_strategy,
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_swap_with_empty_reception_only_removes(self, view, seed):
        offer = build_offer(view, own_id=999, rng=random.Random(seed), include_self=False)
        new_view = apply_swap(view, offer, (), own_id=999)
        # Everything left was in the original view.
        original = list(view)
        for peer in new_view:
            original.remove(peer)  # raises if multiset containment violated
