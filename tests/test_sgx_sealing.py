"""Sealed storage tests."""

import pytest

from repro.crypto.prng import Sha256Prng
from repro.sgx.enclave import Enclave, SgxDevice, ecall
from repro.sgx.errors import SealingError
from repro.sgx.measurement import measure_class
from repro.sgx.sealing import seal, unseal

NONCE = b"\x07" * 8


class SealTestEnclave(Enclave):
    @ecall
    def noop(self):
        return None


class OtherEnclave(Enclave):
    @ecall
    def noop(self):
        return None


@pytest.fixture
def device(prng):
    return SgxDevice(3, prng.spawn("sealdev"))


@pytest.fixture
def measurement():
    return measure_class(SealTestEnclave)


class TestSealing:
    def test_roundtrip(self, device, measurement):
        blob = seal(device, measurement, b"the group key!!!", NONCE)
        assert unseal(device, measurement, blob) == b"the group key!!!"

    def test_empty_payload(self, device, measurement):
        blob = seal(device, measurement, b"", NONCE)
        assert unseal(device, measurement, blob) == b""

    def test_blob_is_not_plaintext(self, device, measurement):
        secret = b"super secret data"
        blob = seal(device, measurement, secret, NONCE)
        assert secret not in blob

    def test_tampered_blob_rejected(self, device, measurement):
        blob = bytearray(seal(device, measurement, b"data", NONCE))
        blob[10] ^= 0xFF
        with pytest.raises(SealingError):
            unseal(device, measurement, bytes(blob))

    def test_truncated_blob_rejected(self, device, measurement):
        with pytest.raises(SealingError):
            unseal(device, measurement, b"tiny")

    def test_wrong_device_cannot_unseal(self, device, measurement, prng):
        blob = seal(device, measurement, b"data", NONCE)
        other_device = SgxDevice(4, prng.spawn("other"))
        with pytest.raises(SealingError):
            unseal(other_device, measurement, blob)

    def test_wrong_measurement_cannot_unseal(self, device, measurement):
        blob = seal(device, measurement, b"data", NONCE)
        other_measurement = measure_class(OtherEnclave)
        with pytest.raises(SealingError):
            unseal(device, other_measurement, blob)

    def test_bad_nonce_size_rejected(self, device, measurement):
        with pytest.raises(SealingError):
            seal(device, measurement, b"data", b"short")

    def test_distinct_nonces_give_distinct_blobs(self, device, measurement):
        first = seal(device, measurement, b"data", b"\x01" * 8)
        second = seal(device, measurement, b"data", b"\x02" * 8)
        assert first != second
