"""The event queue's ordering contract, especially the FIFO tie-break.

``heapq`` alone is a partial order: entries with equal keys surface in an
order set by sift history, not insertion.  The queue's ``(time, seq)``
key makes simultaneity deterministic — two events scheduled for the same
timestamp drain in the order they were scheduled, whatever else the heap
held at the time.  These tests pin that contract, including a regression
built to fail under raw ``heapq`` with time-only keys.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.events import EventQueue


def _drain(queue):
    labels = []
    while queue:
        event = queue.pop()
        labels.append((event.time, event.label))
    return labels


class TestOrdering:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.schedule(3.0, "c", lambda: None)
        queue.schedule(1.0, "a", lambda: None)
        queue.schedule(2.0, "b", lambda: None)
        assert _drain(queue) == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_same_timestamp_drains_in_insertion_order(self):
        queue = EventQueue()
        for index in range(50):
            queue.schedule(1.0, f"e{index}", lambda: None)
        assert [label for _, label in _drain(queue)] == [
            f"e{index}" for index in range(50)
        ]

    def test_tiebreak_survives_interleaved_scheduling(self):
        """Equal-time events stay FIFO even when scheduled around other
        timestamps that churn the heap's internal layout."""
        queue = EventQueue()
        rng = random.Random(42)
        expected = []
        for index in range(200):
            queue.schedule(5.0, f"tied{index}", lambda: None)
            expected.append(f"tied{index}")
            # Interleave earlier/later events to force sift operations.
            queue.schedule(rng.uniform(0.0, 4.9), "early", lambda: None)
            queue.schedule(rng.uniform(5.1, 10.0), "late", lambda: None)
        drained = [label for _, label in _drain(queue) if label.startswith("tied")]
        assert drained == expected

    def test_raw_heapq_would_not_give_fifo(self):
        """Documents why the seq key exists: with time-only keys plus an
        arbitrary payload-ordering fallback, heapq's equal-key order is
        not insertion order under interleaved pushes."""
        heap = []
        for index in range(200):
            # Payload carries a *descending* tag so any payload-based
            # comparison fallback visibly diverges from FIFO.
            heapq.heappush(heap, (5.0, 200 - index))
            heapq.heappush(heap, (float(index % 5), -index))
        tags = [tag for time, tag in
                (heapq.heappop(heap) for _ in range(len(heap))) if time == 5.0]
        assert tags != [200 - index for index in range(200)]

    def test_pop_empty_raises(self):
        queue = EventQueue()
        with pytest.raises(IndexError):
            queue.pop()

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-0.1, "x", lambda: None)

    def test_peek_does_not_consume(self):
        queue = EventQueue()
        queue.schedule(2.0, "b", lambda: None)
        queue.schedule(1.0, "a", lambda: None)
        assert queue.peek().label == "a"
        assert len(queue) == 2

    def test_seq_counter_is_global_and_monotonic(self):
        queue = EventQueue()
        first = queue.schedule(9.0, "x", lambda: None)
        queue.pop()
        second = queue.schedule(1.0, "y", lambda: None)
        assert second.seq > first.seq
        assert queue.scheduled_total == 2
