"""Figure-reproduction harness tests at tiny scale.

These exercise the per-figure entry points end-to-end (tiny topologies, few
rounds) — the real reproductions live in ``benchmarks/``.
"""

import pytest

from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.experiments.figures import (
    BaselineCache,
    Scale,
    eviction_figure,
    figure3_brahms_baseline,
    figure13_poisoned_injection,
    identification_figure,
    table1_sgx_overhead,
)
from repro.experiments.reporting import format_percent, format_round, format_table

TINY = Scale(n_nodes=100, rounds=25, repetitions=1, view_ratio=0.1, base_seed=5)


@pytest.fixture(scope="module")
def cache():
    return BaselineCache(TINY)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long header"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long header" in lines[1]
        assert len(lines) == 5  # title + header + separator + 2 rows

    def test_format_percent(self):
        assert format_percent(12.345) == "12.3%"
        assert format_percent(None) == "—"

    def test_format_round(self):
        assert format_round(17) == "17"
        assert format_round(-1) == "n/r"
        assert format_round(None) == "n/r"


class TestFigure3:
    def test_rows_and_render(self, cache):
        result = figure3_brahms_baseline(TINY, f_values=(0.10, 0.30), cache=cache)
        assert len(result.rows) == 2
        rendered = result.render()
        assert "Fig. 3" in rendered
        assert "10%" in rendered
        pollution = [float(value) for value in result.column("byz-in-views %")]
        assert all(0.0 <= value <= 100.0 for value in pollution)

    def test_baseline_cache_reuses_runs(self, cache):
        first = cache.get(0.10, TINY.base_seed)
        second = cache.get(0.10, TINY.base_seed)
        assert first is second


class TestTable1:
    def test_all_five_functions_reported(self):
        result = table1_sgx_overhead(TINY, rounds=12)
        assert len(result.rows) == 5
        for row in result.rows:
            standard = float(str(row[1]).replace(",", ""))
            sgx = float(str(row[2]).replace(",", ""))
            assert sgx > standard


class TestEvictionFigure:
    def test_grid_rows(self, cache):
        result = eviction_figure(
            "test", FixedEviction(0.6), TINY,
            f_values=(0.10,), t_values=(0.10,), cache=cache,
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row[0] == "10%" and row[1] == "10%"
        float(row[2])  # improvement parses


class TestIdentificationFigure:
    def test_metrics_in_unit_interval(self):
        result = identification_figure(
            "test", 0.20, TINY,
            policies=(FixedEviction(1.0),), t_values=(0.2,),
        )
        assert len(result.rows) == 1
        _policy, _t, precision, recall, f1 = result.rows[0]
        for value in (precision, recall, f1):
            assert 0.0 <= float(value) <= 1.0


class TestFigure13:
    def test_rows_cover_grid(self, cache):
        result = figure13_poisoned_injection(
            TINY, t_values=(0.05,), poison_values=(0.0, 0.10), f_values=(0.10,),
            cache=cache,
        )
        assert len(result.rows) == 2
        assert {row[1] for row in result.rows} == {"0%", "10%"}
