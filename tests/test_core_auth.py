"""Mutual-authentication protocol tests (§IV-A)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.auth import AuthScheme, KEY_BYTES, NONCE_BYTES

GROUP_KEY = b"T" * KEY_BYTES
OTHER_KEY = b"U" * KEY_BYTES


def run_handshake(scheme: AuthScheme, key_a: bytes, key_b: bytes, seed=0):
    """Execute the full §IV-A flow; returns (a_trusts_b, b_trusts_a)."""
    rng = random.Random(seed)
    r_a = scheme.make_challenge(rng)
    parts = scheme.respond(key_b, r_a, rng)
    a_trusts_b = scheme.check_response(key_a, r_a, parts.r_b, parts.proof)
    confirm = scheme.confirm(key_a, r_a, parts.r_b)
    b_trusts_a = scheme.check_confirm(key_b, r_a, parts.r_b, confirm)
    return a_trusts_b, b_trusts_a


@pytest.fixture(params=["hmac", "aes-ctr"])
def scheme(request) -> AuthScheme:
    return AuthScheme(request.param)


class TestHandshakeOutcomes:
    def test_shared_key_authenticates_both_ways(self, scheme):
        assert run_handshake(scheme, GROUP_KEY, GROUP_KEY) == (True, True)

    def test_distinct_keys_fail_both_ways(self, scheme):
        assert run_handshake(scheme, GROUP_KEY, OTHER_KEY) == (False, False)

    def test_two_untrusted_random_keys_fail(self, scheme):
        rng = random.Random(0)
        key_a = rng.getrandbits(128).to_bytes(16, "big")
        key_b = rng.getrandbits(128).to_bytes(16, "big")
        assert run_handshake(scheme, key_a, key_b) == (False, False)

    def test_tampered_response_proof_rejected(self, scheme):
        rng = random.Random(1)
        r_a = scheme.make_challenge(rng)
        parts = scheme.respond(GROUP_KEY, r_a, rng)
        tampered = bytes([parts.proof[0] ^ 1]) + parts.proof[1:]
        assert not scheme.check_response(GROUP_KEY, r_a, parts.r_b, tampered)

    def test_replayed_proof_fails_for_fresh_challenge(self, scheme):
        """A Byzantine node replaying an observed trusted proof under a new
        challenge must fail: proofs bind both nonces."""
        rng = random.Random(2)
        r_a1 = scheme.make_challenge(rng)
        observed = scheme.respond(GROUP_KEY, r_a1, rng)
        r_a2 = scheme.make_challenge(rng)
        assert r_a1 != r_a2
        assert not scheme.check_response(GROUP_KEY, r_a2, observed.r_b, observed.proof)

    def test_confirm_is_direction_sensitive(self, scheme):
        """The confirm proof hashes (r_B, r_A), not (r_A, r_B) — reflecting
        the responder's own proof back must not authenticate."""
        rng = random.Random(3)
        r_a = scheme.make_challenge(rng)
        parts = scheme.respond(GROUP_KEY, r_a, rng)
        assert not scheme.check_confirm(GROUP_KEY, r_a, parts.r_b, parts.proof)


class TestSchemeProperties:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            AuthScheme("rot13")

    def test_nonce_size(self):
        assert len(AuthScheme.make_challenge(random.Random(0))) == NONCE_BYTES

    def test_nonces_are_fresh(self):
        rng = random.Random(0)
        assert AuthScheme.make_challenge(rng) != AuthScheme.make_challenge(rng)

    def test_schemes_agree_on_outcomes(self):
        """'hmac' and 'aes-ctr' accept/reject identically for any key pair."""
        for seed in range(10):
            key_rng = random.Random(seed)
            key_a = key_rng.getrandbits(128).to_bytes(16, "big")
            key_b = key_a if seed % 2 == 0 else key_rng.getrandbits(128).to_bytes(16, "big")
            hmac_result = run_handshake(AuthScheme("hmac"), key_a, key_b, seed=seed)
            aes_result = run_handshake(AuthScheme("aes-ctr"), key_a, key_b, seed=seed)
            assert hmac_result == aes_result == ((key_a == key_b),) * 2

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_shared_key_always_authenticates(self, seed):
        assert run_handshake(AuthScheme("hmac"), GROUP_KEY, GROUP_KEY, seed=seed) == (True, True)

    @given(key=st.binary(min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_any_shared_key_works(self, key):
        assert run_handshake(AuthScheme("hmac"), key, key) == (True, True)
