"""True-positive / true-negative fixtures for the whole-program flow rules.

Each family gets at least one seeded bug the rule must catch (including a
regression fixture shaped like PR 5's PollutionProbe picklability bug) and
one legitimate near-miss it must stay silent on.  Suppression-hygiene
(``lint-unjustified-suppression``) tests live here too since the flow
families are the ERROR rules people will most plausibly suppress.
"""

from repro.lint.core import lint_project, lint_source


def _rules(findings):
    return {f.rule_id for f in findings}


def _messages(findings, rule_id):
    return [f.message for f in findings if f.rule_id == rule_id]


# A tiny stand-in for repro.experiments.runner so fixtures resolve the
# real qualname the pool-safety policy keys on.
_RUNNER_STUB = (
    "def repeat(build_and_run, seeds, workers=None, checkpoint_path=None):\n"
    "    return [build_and_run(s) for s in seeds]\n"
)


# -- flow-unseeded-entropy ----------------------------------------------------


def test_unseeded_rng_laundered_through_helper_is_flagged():
    findings = lint_project({
        "repro/sim/helper.py": (
            "import random\n"
            "def fresh_rng():\n"
            "    return random.Random()\n"
        ),
        "repro/sim/node.py": (
            "from repro.sim.helper import fresh_rng\n"
            "class Node:\n"
            "    def __init__(self):\n"
            "        self.rng = fresh_rng()\n"
        ),
    })
    messages = _messages(findings, "flow-unseeded-entropy")
    assert messages and "unseeded-rng" in messages[0]
    assert "protocol state (self.rng)" in messages[0]


def test_wall_clock_into_seed_derivation_is_flagged():
    findings = lint_project({
        "repro/experiments/sweep.py": (
            "import time\n"
            "from repro.crypto.prng import derive_seed\n"
            "def seeds():\n"
            "    stamp = time.time()\n"
            "    return derive_seed(stamp)\n"
        ),
        "repro/crypto/prng.py": "def derive_seed(*parts):\n    return 7\n",
    })
    messages = _messages(findings, "flow-unseeded-entropy")
    assert messages and "wall-clock-entropy" in messages[0]


def test_properly_seeded_rng_is_clean():
    findings = lint_project({
        "repro/sim/node.py": (
            "import random\n"
            "class Node:\n"
            "    def __init__(self, seed):\n"
            "        self.rng = random.Random(seed)\n"
        ),
    })
    assert "flow-unseeded-entropy" not in _rules(findings)


# -- flow-secret-leak ---------------------------------------------------------


def test_group_key_into_logger_is_flagged():
    findings = lint_project({
        "repro/sgx/prov.py": (
            "class Provisioner:\n"
            "    def __init__(self, group_key):\n"
            "        self._group_key = group_key\n"
            "    def debug_dump(self, logger):\n"
            "        logger.info(self._group_key)\n"
        ),
    })
    messages = _messages(findings, "flow-secret-leak")
    assert messages and "enclave-group-key" in messages[0]
    assert "log record" in messages[0]


def test_unsealed_plaintext_into_snapshot_envelope_is_flagged():
    findings = lint_project({
        "repro/snapshot/dump.py": (
            "from repro.sgx.sealing import unseal\n"
            "from repro.snapshot.format import write_envelope\n"
            "def checkpoint(device, measurement, blob, path):\n"
            "    secret = unseal(device, measurement, blob)\n"
            "    write_envelope(path, 'run', {}, secret)\n"
        ),
        "repro/sgx/sealing.py": (
            "def unseal(device, measurement, blob):\n"
            "    return blob\n"
        ),
        "repro/snapshot/format.py": (
            "def write_envelope(path, kind, meta, state):\n"
            "    return None\n"
        ),
    })
    messages = _messages(findings, "flow-secret-leak")
    assert messages and "sealed-plaintext" in messages[0]
    assert "snapshot envelope" in messages[0]


def test_encrypted_key_on_the_wire_is_clean():
    findings = lint_project({
        "repro/sgx/prov.py": (
            "class Provisioner:\n"
            "    def __init__(self, group_key):\n"
            "        self._group_key = group_key\n"
            "    def provision(self, public_key, rng, network, dst):\n"
            "        blob = public_key.encrypt(self._group_key, rng)\n"
            "        return network.request(0, dst, blob)\n"
        ),
    })
    assert "flow-secret-leak" not in _rules(findings)


def test_key_fingerprint_in_telemetry_is_clean():
    findings = lint_project({
        "repro/sgx/prov.py": (
            "from hashlib import sha256\n"
            "class Provisioner:\n"
            "    def __init__(self, group_key, telemetry):\n"
            "        self._group_key = group_key\n"
            "        self._telemetry = telemetry\n"
            "    def note(self, telemetry):\n"
            "        telemetry.event('prov', key=sha256(self._group_key))\n"
        ),
    })
    assert "flow-secret-leak" not in _rules(findings)


# -- flow-unpicklable-task ----------------------------------------------------


def test_lambda_into_parallel_repeat_is_flagged():
    findings = lint_project({
        "repro/experiments/sweep.py": (
            "from repro.experiments.runner import repeat\n"
            "def go(seeds):\n"
            "    task = lambda s: s\n"
            "    return repeat(task, seeds, workers=4)\n"
        ),
        "repro/experiments/runner.py": _RUNNER_STUB,
    })
    messages = _messages(findings, "flow-unpicklable-task")
    assert messages and "a lambda" in messages[0]


def test_serial_repeat_with_lambda_is_clean():
    findings = lint_project({
        "repro/experiments/sweep.py": (
            "from repro.experiments.runner import repeat\n"
            "def go(seeds):\n"
            "    return repeat(lambda s: s, seeds)\n"
        ),
        "repro/experiments/runner.py": _RUNNER_STUB,
    })
    assert "flow-unpicklable-task" not in _rules(findings)


def test_closure_through_helper_into_pool_submit_is_flagged():
    findings = lint_project({
        "repro/experiments/pooled.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def make_task(bias):\n"
            "    def task(seed):\n"
            "        return seed + bias\n"
            "    return task\n"
            "def launch(seeds):\n"
            "    job = make_task(3)\n"
            "    with ProcessPoolExecutor(max_workers=2) as pool:\n"
            "        return [pool.submit(job, s) for s in seeds]\n"
        ),
    })
    messages = _messages(findings, "flow-unpicklable-task")
    assert messages and "a closure" in messages[0]
    assert "ProcessPoolExecutor.submit()" in messages[0]


def test_pollution_probe_regression_local_class_to_parallel_repeat():
    """The PR 5 bug, as a fixture: a function-local probe class handed to
    ``repeat(..., workers=N)`` pickles only when nobody runs parallel."""
    findings = lint_project({
        "repro/experiments/scenarios.py": (
            "from repro.experiments.runner import repeat\n"
            "def probe_scenario(seeds):\n"
            "    class PollutionProbe:\n"
            "        def __call__(self, seed):\n"
            "            return seed\n"
            "    return repeat(PollutionProbe(), seeds, workers=2)\n"
        ),
        "repro/experiments/runner.py": _RUNNER_STUB,
    })
    messages = _messages(findings, "flow-unpicklable-task")
    assert messages and "local class PollutionProbe" in messages[0]


def test_module_level_callable_into_parallel_repeat_is_clean():
    findings = lint_project({
        "repro/experiments/sweep.py": (
            "from repro.experiments.runner import repeat\n"
            "def run_one(seed):\n"
            "    return seed\n"
            "def go(seeds):\n"
            "    return repeat(run_one, seeds, workers=4)\n"
        ),
        "repro/experiments/runner.py": _RUNNER_STUB,
    })
    assert "flow-unpicklable-task" not in _rules(findings)


def test_handle_holder_instance_into_parallel_repeat_is_flagged():
    findings = lint_project({
        "repro/experiments/sweep.py": (
            "from repro.experiments.runner import repeat\n"
            "class LogTap:\n"
            "    def __init__(self, path):\n"
            "        self.handle = open(path, 'a')\n"
            "    def __call__(self, seed):\n"
            "        return seed\n"
            "def go(seeds):\n"
            "    tap = LogTap('/tmp/x')\n"
            "    return repeat(tap, seeds, workers=2)\n"
        ),
        "repro/experiments/runner.py": _RUNNER_STUB,
    })
    messages = _messages(findings, "flow-unpicklable-task")
    assert messages and "LogTap" in messages[0] and "open()" in messages[0]


# -- snapshot-missing-attr ----------------------------------------------------


def test_dropped_attribute_without_restore_is_flagged():
    findings = lint_project({
        "repro/sim/thing.py": (
            "class T:\n"
            "    def __init__(self):\n"
            "        self._cache = {}\n"
            "    def __getstate__(self):\n"
            "        state = dict(self.__dict__)\n"
            "        del state['_cache']\n"
            "        return state\n"
        ),
    })
    messages = _messages(findings, "snapshot-missing-attr")
    assert messages and "_cache" in messages[0]


def test_dropped_attribute_with_setstate_restore_is_clean():
    findings = lint_project({
        "repro/sim/thing.py": (
            "class T:\n"
            "    def __init__(self):\n"
            "        self._cache = {}\n"
            "    def __getstate__(self):\n"
            "        state = dict(self.__dict__)\n"
            "        state.pop('_cache')\n"
            "        return state\n"
            "    def __setstate__(self, state):\n"
            "        self.__dict__.update(state)\n"
            "        self._cache = {}\n"
        ),
    })
    assert "snapshot-missing-attr" not in _rules(findings)


def test_reset_to_fresh_literal_is_clean():
    """The Network pattern: the key survives with a fresh value."""
    findings = lint_project({
        "repro/sim/thing.py": (
            "class T:\n"
            "    def __init__(self):\n"
            "        self._pair_ciphers = {}\n"
            "    def __getstate__(self):\n"
            "        state = dict(self.__dict__)\n"
            "        state['_pair_ciphers'] = {}\n"
            "        return state\n"
        ),
    })
    assert "snapshot-missing-attr" not in _rules(findings)


def test_explicit_state_dict_omitting_mutable_attr_is_flagged():
    findings = lint_project({
        "repro/sim/thing.py": (
            "class T:\n"
            "    def __init__(self):\n"
            "        self.counts = {}\n"
            "        self.limit = 8\n"
            "    def __getstate__(self):\n"
            "        return {'limit': self.limit}\n"
        ),
    })
    messages = _messages(findings, "snapshot-missing-attr")
    assert messages and "counts" in messages[0]
    # The immutable attr is allowed to be derived/reconstructed.
    assert all("limit" not in m or "counts" in m for m in messages)


# -- lint-unjustified-suppression ---------------------------------------------


def test_unjustified_error_suppression_notes_all_comment_kinds():
    for comment in (
        "import time\nx = time.time()  # lint: disable=det-wall-clock\n",
        "import time\n# lint: disable-next=det-wall-clock\nx = time.time()\n",
        "# lint: disable-file=det-wall-clock\nimport time\nx = time.time()\n",
    ):
        findings = lint_source(comment)
        assert "lint-unjustified-suppression" in _rules(findings), comment
        assert "det-wall-clock" not in _rules(findings)  # still suppressed


def test_justified_error_suppression_is_silent():
    findings = lint_source(
        "import time\n"
        "x = time.time()  # lint: disable=det-wall-clock -- replay harness "
        "compares against recorded real time\n"
    )
    assert findings == []


def test_crlf_suppressions_parse_and_note():
    source = (
        "import time\r\n"
        "x = time.time()  # lint: disable=det-wall-clock\r\n"
    )
    findings = lint_source(source)
    assert "lint-unjustified-suppression" in _rules(findings)
    justified = source.replace(
        "det-wall-clock", "det-wall-clock -- replaying a wall-clock trace"
    )
    assert lint_source(justified) == []


def test_warning_rule_suppression_needs_no_justification():
    findings = lint_source("print('hi')  # lint: disable=purity-print\n")
    assert findings == []


def test_suppressing_the_note_itself_is_possible_with_justification():
    findings = lint_source(
        "import time\n"
        "# lint: disable-file=lint-unjustified-suppression -- legacy file, "
        "justifications arrive with the next cleanup\n"
        "x = time.time()  # lint: disable=det-wall-clock\n"
    )
    assert findings == []


def test_flow_finding_is_suppressible_inline():
    findings = lint_project({
        "repro/sim/node.py": (
            "import random\n"
            "class Node:\n"
            "    def __init__(self):\n"
            "        self.rng = random.Random()  "
            "# lint: disable=flow-unseeded-entropy -- fixture exercises "
            "the unseeded path on purpose\n"
        ),
    })
    assert "flow-unseeded-entropy" not in _rules(findings)
