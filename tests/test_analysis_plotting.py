"""ASCII plotting tests."""

import pytest

from repro.analysis.plotting import (
    line_chart,
    per_kind_series,
    pollution_series,
    sparkline,
)
from repro.sim.node import NodeKind
from repro.sim.observers import RoundRecord


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant_series_is_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_is_monotone(self):
        chart = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert chart == "▁▂▃▄▅▆▇█"

    def test_explicit_bounds(self):
        # With a wide explicit range, mid values map to mid glyphs.
        chart = sparkline([0.5], minimum=0.0, maximum=1.0)
        assert chart in ("▄", "▅")


class TestLineChart:
    def test_empty(self):
        assert line_chart({}) == "(no data)"
        assert line_chart({"a": []}) == "(no data)"

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2]}, height=1)

    def test_contains_markers_and_legend(self):
        chart = line_chart({"one": [0, 1, 2], "two": [2, 1, 0]}, height=5, width=10)
        assert "*" in chart and "+" in chart
        assert "* one" in chart and "+ two" in chart

    def test_axis_labels_show_bounds(self):
        chart = line_chart({"a": [0.0, 10.0]}, height=4, width=10)
        assert "10.000" in chart
        assert "0.000" in chart

    def test_long_series_resampled_to_width(self):
        chart = line_chart({"a": list(range(1000))}, height=4, width=20)
        longest = max(len(line) for line in chart.splitlines())
        assert longest <= 20 + 12  # width + axis prefix


class TestSeriesExtraction:
    def _records(self):
        first = RoundRecord(round_number=1)
        first.byzantine_fraction = {1: 0.2, 2: 0.4}
        first.by_kind = {NodeKind.HONEST: [0.2], NodeKind.TRUSTED: [0.4]}
        second = RoundRecord(round_number=2)
        second.byzantine_fraction = {1: 0.3, 2: 0.5}
        second.by_kind = {NodeKind.HONEST: [0.3], NodeKind.TRUSTED: [0.5]}
        return [first, second]

    def test_pollution_series(self):
        assert pollution_series(self._records()) == [
            pytest.approx(0.3), pytest.approx(0.4)
        ]

    def test_per_kind_series(self):
        records = self._records()
        assert per_kind_series(records, NodeKind.HONEST) == [0.2, 0.3]
        assert per_kind_series(records, NodeKind.BYZANTINE) == [0.0, 0.0]
