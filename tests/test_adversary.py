"""Adversary model tests: coordinator, Byzantine node, identification,
poisoned injection."""

import random
from collections import Counter

import pytest

from repro.adversary.byzantine import ByzantineNode
from repro.adversary.coordinator import AdversaryCoordinator
from repro.adversary.identification import IdentificationAttack, IdentificationReport
from repro.adversary.poisoned import build_poisoned_trusted_node, poison_initial_state
from repro.core.config import RapteeConfig
from repro.core.node import RapteeNode
from repro.sim.messages import AuthChallenge, AuthResponse, PullReply, PullRequest
from repro.sim.node import NodeKind


def make_coordinator(n_byz=10, n_correct=90, push_limit=12, strategy="balanced", **kwargs):
    return AdversaryCoordinator(
        byzantine_ids=range(n_byz),
        correct_ids=range(n_byz, n_byz + n_correct),
        push_limit=push_limit,
        rng=random.Random(0),
        strategy=strategy,
        **kwargs,
    )


class TestCoordinator:
    def test_balanced_spreads_evenly(self):
        coordinator = make_coordinator(n_byz=10, n_correct=50, push_limit=10)
        targets = Counter()
        for byz in range(10):
            targets.update(coordinator.push_targets_for(byz, round_number=1))
        assert sum(targets.values()) == 100
        assert set(targets) <= set(range(10, 60))
        assert max(targets.values()) == min(targets.values())  # exactly even

    def test_budget_respects_rate_limit(self):
        coordinator = make_coordinator(push_limit=7)
        for byz in range(10):
            assert len(coordinator.push_targets_for(byz, 1)) <= 7

    def test_assignments_change_per_round(self):
        coordinator = make_coordinator()
        first = coordinator.push_targets_for(0, 1)
        second = coordinator.push_targets_for(0, 2)
        assert first != second  # reshuffled

    def test_adaptive_budget_grows_with_pollution(self):
        coordinator = make_coordinator(strategy="adaptive_balanced", expected_pushes=10)
        coordinator.set_pollution_probe(lambda: 0.0)
        low = sum(len(coordinator.push_targets_for(b, 1)) for b in range(10))
        coordinator.set_pollution_probe(lambda: 0.8)
        high = sum(len(coordinator.push_targets_for(b, 2)) for b in range(10))
        assert high > low

    def test_adaptive_budget_capped_by_limit(self):
        coordinator = make_coordinator(strategy="adaptive_balanced", expected_pushes=10, push_limit=2)
        coordinator.set_pollution_probe(lambda: 1.0)
        total = sum(len(coordinator.push_targets_for(b, 1)) for b in range(10))
        assert total <= coordinator.total_budget

    def test_targeted_floods_victims(self):
        coordinator = make_coordinator(
            strategy="targeted", flood_targets=[20, 21], flood_share=0.5
        )
        targets = Counter()
        for byz in range(10):
            targets.update(coordinator.push_targets_for(byz, 1))
        victim_pushes = targets[20] + targets[21]
        others = sum(targets.values()) - victim_pushes
        assert victim_pushes >= others / 10  # concentrated

    def test_targeted_requires_targets_at_assignment_time(self):
        coordinator = make_coordinator(strategy="targeted")
        with pytest.raises(ValueError, match="flood_targets"):
            coordinator.push_targets_for(0, 1)

    def test_fake_view_rotation_covers_all_identities(self):
        coordinator = make_coordinator(n_byz=20)
        served = set()
        for _ in range(10):
            served.update(coordinator.fake_view(5))
        assert served == set(range(20))

    def test_fake_view_only_byzantine_ids(self):
        coordinator = make_coordinator()
        assert set(coordinator.fake_view(8)) <= set(range(10))

    def test_fake_view_larger_than_pool(self):
        coordinator = make_coordinator(n_byz=3)
        assert sorted(coordinator.fake_view(10)) == [0, 1, 2]

    def test_intel_recording(self):
        coordinator = make_coordinator(n_byz=10)
        coordinator.record_pull_answer(50, [0, 1, 99, 98], round_number=3)
        assert coordinator.intel[50] == [(3, 0.5)]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_coordinator(strategy="chaotic")


class TestByzantineNode:
    def test_pull_answer_is_all_byzantine(self):
        coordinator = make_coordinator()
        node = ByzantineNode(0, coordinator, view_size=8, rng=random.Random(1))
        reply = node.handle_request(PullRequest(sender=50))
        assert isinstance(reply, PullReply)
        assert set(reply.ids) <= set(range(10))
        assert len(reply.ids) == 8

    def test_participates_in_auth_with_random_key(self):
        coordinator = make_coordinator()
        node = ByzantineNode(0, coordinator, view_size=8, rng=random.Random(1))
        response = node.handle_request(AuthChallenge(sender=50, r_a=b"r" * 16))
        assert isinstance(response, AuthResponse)

    def test_cannot_pass_trusted_check(self, infrastructure, small_raptee_config):
        coordinator = make_coordinator()
        byz = ByzantineNode(0, coordinator, view_size=8, rng=random.Random(1))
        enclave, _ = infrastructure.new_trusted_enclave(400)
        response = byz.handle_request(AuthChallenge(sender=400, r_a=b"r" * 16))
        assert not enclave.auth_check_response(b"r" * 16, response.r_b, response.proof)

    def test_view_ids_are_fake(self):
        coordinator = make_coordinator()
        node = ByzantineNode(0, coordinator, view_size=8, rng=random.Random(1))
        assert set(node.view_ids()) <= set(range(10))

    def test_known_ids_is_global_membership(self):
        coordinator = make_coordinator(n_byz=5, n_correct=10)
        node = ByzantineNode(0, coordinator, view_size=8, rng=random.Random(1))
        assert len(node.known_ids()) == 15


class TestIdentificationAttack:
    def test_report_metrics(self):
        report = IdentificationReport(
            labeled_trusted=frozenset({1, 2, 3}),
            true_positives=2,
            false_positives=1,
            false_negatives=2,
        )
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == pytest.approx(0.5)
        assert report.f1 == pytest.approx(2 * (2 / 3) * 0.5 / ((2 / 3) + 0.5))

    def test_zero_division_guards(self):
        empty = IdentificationReport(frozenset(), 0, 0, 0)
        assert empty.precision == empty.recall == empty.f1 == 0.0

    def test_classifier_flags_low_pollution_nodes(self):
        coordinator = make_coordinator(n_byz=10, n_correct=20)
        # Nodes 10..24: pollution 0.5; nodes 25..29: pollution 0.1 (evictors).
        for node in range(10, 25):
            coordinator.record_pull_answer(node, [0] * 5 + [90] * 5, 1)
        for node in range(25, 30):
            coordinator.record_pull_answer(node, [0] + [90] * 9, 1)
        attack = IdentificationAttack(coordinator, threshold=0.10)
        report = attack.classify(true_trusted=range(25, 30))
        assert report.labeled_trusted == frozenset(range(25, 30))
        assert report.precision == 1.0 and report.recall == 1.0

    def test_classifier_respects_window(self):
        coordinator = make_coordinator()
        coordinator.record_pull_answer(50, [0] * 10, round_number=100)  # outside
        attack = IdentificationAttack(coordinator)
        report = attack.classify(true_trusted=[50], since_round=1, until_round=10)
        assert report.labeled_trusted == frozenset()

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            IdentificationAttack(make_coordinator(), threshold=0.0)


class TestPoisonedInjection:
    def test_poisoned_view_is_all_byzantine(self, small_raptee_config, infrastructure):
        node = build_poisoned_trusted_node(
            500,
            small_raptee_config,
            infrastructure,
            byzantine_ids=list(range(10)),
            rng=random.Random(0),
        )
        assert node.kind is NodeKind.POISONED_TRUSTED
        assert set(node.view) <= set(range(10))
        assert len(node.view) == small_raptee_config.brahms.view_size
        assert set(node.samplers.sample_list()) <= set(range(10))

    def test_poisoned_node_holds_real_group_key(self, small_raptee_config, infrastructure):
        node = build_poisoned_trusted_node(
            501, small_raptee_config, infrastructure,
            byzantine_ids=[1, 2, 3], rng=random.Random(0),
        )
        genuine, _ = infrastructure.new_trusted_enclave(502)
        r_a = b"r" * 16
        r_b, proof = node.enclave.auth_respond(r_a)
        assert genuine.auth_check_response(r_a, r_b, proof)

    def test_poison_requires_byzantine_ids(self, small_raptee_config, infrastructure):
        enclave, _ = infrastructure.new_trusted_enclave(503)
        node = RapteeNode(503, NodeKind.POISONED_TRUSTED, small_raptee_config,
                          random.Random(0), enclave=enclave)
        with pytest.raises(ValueError):
            poison_initial_state(node, [], random.Random(0))

    def test_poisoned_counts_as_correct_not_byzantine(self, small_raptee_config, infrastructure):
        node = build_poisoned_trusted_node(
            504, small_raptee_config, infrastructure,
            byzantine_ids=[1], rng=random.Random(0),
        )
        assert not node.kind.is_byzantine
        assert node.kind.runs_trusted_code
