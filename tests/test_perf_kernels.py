"""Property tests: the numpy kernels equal the pure-Python references.

Hypothesis drives random inputs through both implementations of each
accelerated primitive — count-min updates/estimates/decay, the min-wise
batch map, the cached/T-table AES-CTR — and requires integer-for-integer
(or byte-for-byte) equality, not approximate agreement.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brahms.countmin import CountMinSketch
from repro.crypto.aes import AES128
from repro.crypto.ctr import AesCtr
from repro.crypto.minwise import (
    MERSENNE_PRIME_31,
    MERSENNE_PRIME_61,
    MinWiseHash,
    scramble64,
)
from repro.perf import kernels
from repro.perf.config import fastpaths, resolve_use_numpy

pytestmark = pytest.mark.skipif(
    not kernels.HAVE_NUMPY, reason="numpy kernels require numpy"
)

# Deterministic-surface tests; wall-clock deadlines only add flake.
COMMON = settings(deadline=None, max_examples=50)

ids_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << 63) - 1), min_size=0, max_size=120
)


class TestScramble:
    @COMMON
    @given(values=ids_strategy)
    def test_scramble64_array_matches_scalar(self, values):
        batched = kernels.scramble64_array(values)
        assert [int(v) for v in batched] == [scramble64(v) for v in values]


class TestMinWise:
    @COMMON
    @given(
        values=ids_strategy,
        a=st.integers(min_value=1, max_value=MERSENNE_PRIME_31 - 1),
        b=st.integers(min_value=0, max_value=MERSENNE_PRIME_31 - 1),
    )
    def test_batch_kernel_matches_loop(self, values, a, b):
        hasher = MinWiseHash(a=a, b=b)
        assert hasher.batch(values, use_numpy=True) == [hasher(v) for v in values]

    def test_batch_refuses_wide_field(self):
        with pytest.raises(ValueError):
            kernels.minwise_batch(3, 5, MERSENNE_PRIME_61, [1, 2, 3])

    def test_hash_batch_falls_back_on_wide_field(self):
        hasher = MinWiseHash(a=3, b=5, p=MERSENNE_PRIME_61)
        values = [0, 1, 2, 17, 1 << 60]
        assert hasher.batch(values) == [hasher(v) for v in values]

    def test_batch_respects_fastpath_flag(self):
        hasher = MinWiseHash(a=7, b=9)
        values = list(range(50))
        with fastpaths(False):
            off = hasher.batch(values)
        with fastpaths(True):
            on = hasher.batch(values)
        assert off == on == [hasher(v) for v in values]


def _mirror_sketches(width, depth, seed):
    """Two sketches with identical salts, one per backend."""
    pure = CountMinSketch(width, depth, random.Random(seed), use_numpy=False)
    vec = CountMinSketch(width, depth, random.Random(seed), use_numpy=True)
    assert pure._salts == vec._salts
    return pure, vec


class TestCountMin:
    @COMMON
    @given(
        items=ids_strategy,
        width=st.integers(min_value=1, max_value=64),
        depth=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_update_batch_and_estimates_match(self, items, width, depth, seed):
        pure, vec = _mirror_sketches(width, depth, seed)
        pure.update_batch(items)
        vec.update_batch(items)
        assert pure.total == vec.total
        probes = items[:20] + [0, 1, 999_999_999]
        for item in probes:
            assert pure.estimate(item) == vec.estimate(item)
        assert pure.estimate_batch(probes) == vec.estimate_batch(probes)

    @COMMON
    @given(
        items=ids_strategy,
        counts=st.lists(st.integers(min_value=1, max_value=1000),
                        min_size=0, max_size=20),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_weighted_updates_match(self, items, counts, seed):
        pure, vec = _mirror_sketches(32, 4, seed)
        for item, count in zip(items, counts):
            pure.update(item, count)
            vec.update(item, count)
        assert pure.total == vec.total
        for item in items:
            assert pure.estimate(item) == vec.estimate(item)

    @COMMON
    @given(
        items=ids_strategy,
        factor=st.floats(min_value=0.01, max_value=0.99,
                         allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_decay_truncation_matches(self, items, factor, seed):
        pure, vec = _mirror_sketches(16, 3, seed)
        pure.update_batch(items)
        vec.update_batch(items)
        pure.decay(factor)
        vec.decay(factor)
        assert pure.total == vec.total
        for item in items[:20]:
            assert pure.estimate(item) == vec.estimate(item)

    def test_large_counter_decay_is_exact_integer_truncation(self):
        # Regression: the numpy decay used to multiply in float64, which
        # rounds any counter needing more than 53 mantissa bits *before*
        # the multiply — int((2**55 + 3) * 0.5) == 2**54, one below the
        # exact ⌊(2**55 + 3) / 2⌋ == 2**54 + 1.
        value = 2**55 + 3
        tables = kernels.countmin_new_tables(1, 4)
        tables[0, 0] = value  # updates can't cheaply reach 2**55
        kernels.countmin_decay(tables, 0.5)
        assert int(tables[0, 0]) == value // 2 == 2**54 + 1
        assert int(tables[0, 0]) != int(value * 0.5)

    def test_huge_counter_decay_falls_back_to_bigints(self):
        # value * num overflows int64 for a many-mantissa-bit factor; the
        # kernel must drop to the Python big-int loop, still exact.
        import math
        from fractions import Fraction

        value, factor = 2**60 + 7, 0.3
        tables = kernels.countmin_new_tables(2, 2)
        tables[0, 0] = value
        tables[1, 1] = 12345
        kernels.countmin_decay(tables, factor)
        assert int(tables[0, 0]) == math.floor(Fraction(value) * Fraction(factor))
        assert int(tables[1, 1]) == math.floor(Fraction(12345) * Fraction(factor))

    @COMMON
    @given(
        value=st.integers(min_value=2**53, max_value=2**62 - 1),
        factor=st.floats(min_value=0.01, max_value=0.99,
                         allow_nan=False, allow_infinity=False),
    )
    def test_large_counter_decay_matches_exact_rational(self, value, factor):
        # Above 2**53 the float product and the exact rational product
        # disagree for most inputs; both backends must track the latter.
        import math
        from fractions import Fraction

        exact = math.floor(Fraction(value) * Fraction(factor))
        num, shift = kernels.decay_ratio(factor)
        assert kernels.decay_value(value, num, shift) == exact
        tables = kernels.countmin_new_tables(1, 1)
        tables[0, 0] = value
        kernels.countmin_decay(tables, factor)
        assert int(tables[0, 0]) == exact

    def test_sketch_backends_agree_on_large_counters(self):
        pure, vec = _mirror_sketches(4, 2, seed=9)
        for sketch in (pure, vec):
            sketch.update(42, 2**54 + 11)
        pure.decay(0.5)
        vec.decay(0.5)
        assert pure.total == vec.total == (2**54 + 11) // 2
        assert pure.estimate(42) == vec.estimate(42)

    def test_resolution_follows_fastpath_flag(self):
        with fastpaths(True):
            assert CountMinSketch(8, 2, random.Random(0)).use_numpy
        with fastpaths(False):
            assert not CountMinSketch(8, 2, random.Random(0)).use_numpy

    def test_explicit_true_without_numpy_raises(self):
        with pytest.raises(RuntimeError):
            resolve_use_numpy(True, have_numpy=False)


class TestAesCtrFastPath:
    @COMMON
    @given(
        key=st.binary(min_size=16, max_size=16),
        nonce=st.binary(min_size=8, max_size=8),
        plaintext=st.binary(min_size=0, max_size=200),
        counter=st.integers(min_value=0, max_value=2**32),
    )
    def test_fast_and_reference_ciphertexts_equal(self, key, nonce, plaintext,
                                                  counter):
        with fastpaths(True):
            fast = AesCtr(key, nonce).encrypt(plaintext, counter)
        with fastpaths(False):
            slow = AesCtr(key, nonce).encrypt(plaintext, counter)
        assert fast == slow

    @COMMON
    @given(
        key=st.binary(min_size=16, max_size=16),
        nonce=st.binary(min_size=8, max_size=8),
        plaintext=st.binary(min_size=0, max_size=200),
    )
    def test_cached_schedule_roundtrips(self, key, nonce, plaintext):
        with fastpaths(True):
            stream = AesCtr(key, nonce)
            assert stream.decrypt(stream.encrypt(plaintext)) == plaintext

    @COMMON
    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    def test_ttable_block_matches_reference_block(self, key, block):
        cipher = AES128(key)
        fast = cipher._encrypt_block_ttable(block)
        assert fast == cipher._encrypt_block_reference(block)
        assert cipher.decrypt_block(fast) == block

    @COMMON
    @given(key=st.binary(min_size=16, max_size=16),
           nonce=st.binary(min_size=8, max_size=8),
           length=st.integers(min_value=0, max_value=100))
    def test_from_cipher_shares_keystream(self, key, nonce, length):
        with fastpaths(True):
            direct = AesCtr(key, nonce)
            shared = AesCtr.from_cipher(AES128(key), nonce)
            assert direct.keystream(length) == shared.keystream(length)

    def test_cached_and_uncached_schedules_equal(self):
        key = bytes(range(16))
        with fastpaths(True):
            cached = AES128(key)
        with fastpaths(False):
            uncached = AES128(key)
        assert cached._round_keys == uncached._round_keys
        assert cached._round_words == uncached._round_words
