"""CI smoke for the paper-scale entry point (``examples/full_scale.py``).

The script documented the N = 10,000 configuration for years of PRs without
ever being executed in CI; the perf layer makes a reduced-N run cheap
enough to exercise the whole path — argument parsing, spec derivation,
build, run, and the metrics print-out.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

_SCRIPT = pathlib.Path(__file__).parent.parent / "examples" / "full_scale.py"


@pytest.fixture(scope="module")
def full_scale():
    spec = importlib.util.spec_from_file_location("full_scale_example", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFullScaleExample:
    def test_dry_run_prints_derived_parameters(self, full_scale, capsys):
        full_scale.main([])
        out = capsys.readouterr().out
        assert "N                = 10,000" in out
        assert "Dry run only" in out
        # The stale framing must not come back.
        assert "hours" not in out

    def test_reduced_n_smoke_run(self, full_scale, capsys):
        full_scale.main(["--run", "--nodes", "500", "--rounds", "4"])
        out = capsys.readouterr().out
        assert "N                = 500" in out
        assert "fast paths       = on" in out
        assert "resilience (Byz IDs in correct views):" in out
        assert "discovery round:" in out

    def test_reference_flag_restores_fastpaths(self, full_scale, capsys):
        from repro.perf.config import fastpaths_enabled, set_fastpaths

        assert fastpaths_enabled()
        try:
            full_scale.main(["--reference", "--nodes", "100"])  # dry run
            out = capsys.readouterr().out
            assert "fast paths       = off (reference)" in out
        finally:
            set_fastpaths(True)
