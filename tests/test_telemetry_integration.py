"""Telemetry wired into full simulations: determinism and zero-perturbation.

The contract under test: telemetry observes, never steers.  A run with
telemetry on must produce the same protocol results, byte for byte, as a
run with it off; and the trace itself must be byte-identical across
repeated runs of the same scenario + seed.
"""

from repro.core.eviction import AdaptiveEviction
from repro.experiments.runner import run_bundle
from repro.experiments.scenarios import TopologySpec, build_raptee_simulation
from repro.faults.drills import run_drill
from repro.telemetry import (
    TelemetryConfig,
    metrics_to_csv,
    trace_to_jsonl,
    validate_trace_jsonl,
    wire_telemetry,
)

SPEC = TopologySpec(
    n_nodes=40,
    byzantine_fraction=0.10,
    trusted_fraction=0.20,
    view_ratio=0.10,
)
SEED = 7
ROUNDS = 8


def _build(seed=SEED):
    return build_raptee_simulation(SPEC, seed, eviction=AdaptiveEviction())


def _traced_run(config=None):
    bundle = _build()
    harness = wire_telemetry(bundle, config)
    metrics = run_bundle(bundle, ROUNDS)
    return metrics, harness.telemetry


class TestTraceDeterminism:
    def test_same_seed_twice_is_byte_identical(self):
        _, first = _traced_run()
        _, second = _traced_run()
        assert trace_to_jsonl(first.trace.events) == \
            trace_to_jsonl(second.trace.events)
        assert metrics_to_csv(first.registry) == metrics_to_csv(second.registry)

    def test_different_seed_changes_trace(self):
        _, telemetry = _traced_run()
        other_bundle = _build(seed=SEED + 1)
        other = wire_telemetry(other_bundle).telemetry
        run_bundle(other_bundle, ROUNDS)
        assert trace_to_jsonl(telemetry.trace.events) != \
            trace_to_jsonl(other.trace.events)

    def test_exported_trace_validates(self):
        _, telemetry = _traced_run()
        text = trace_to_jsonl(telemetry.trace.events)
        assert validate_trace_jsonl(text) == len(telemetry.trace)


class TestZeroPerturbation:
    def test_telemetry_off_matches_on(self):
        baseline = run_bundle(_build(), ROUNDS)
        traced, _ = _traced_run()
        assert traced == baseline

    def test_profiling_on_matches_off(self):
        baseline, _ = _traced_run()
        profiled, telemetry = _traced_run(TelemetryConfig(profiling=True))
        assert profiled == baseline
        assert telemetry.profiler.rows()  # timings were actually collected

    def test_message_events_off_matches_on(self):
        baseline, full = _traced_run()
        quiet_metrics, quiet = _traced_run(TelemetryConfig(trace_messages=False))
        assert quiet_metrics == baseline
        assert len(quiet.trace) < len(full.trace)
        assert not quiet.trace.named("net.push")


class TestRegistryContents:
    def test_traffic_counters_mirror_network_stats(self):
        bundle = _build()
        harness = wire_telemetry(bundle)
        run_bundle(bundle, ROUNDS)
        registry = harness.telemetry.registry
        stats = bundle.simulation.network.stats
        assert registry.value("network.pushes_sent") == stats.pushes_sent
        assert registry.value("network.pushes_delivered") == stats.pushes_delivered
        assert registry.total("network.requests_sent") == stats.requests_sent
        assert registry.total("network.replies_delivered") == stats.replies_delivered
        assert registry.value("sim.rounds") == ROUNDS
        assert registry.total("sgx.ecalls") > 0

    def test_round_histograms_cover_every_round(self):
        _, telemetry = _traced_run()
        hist = telemetry.registry.histogram("round.pushes")
        assert hist.count == ROUNDS


class TestDrillDeterminism:
    def test_drill_reports_are_reproducible(self):
        first = run_drill("enclave-outage", nodes=40, rounds=12, seed=3)
        second = run_drill("enclave-outage", nodes=40, rounds=12, seed=3)
        assert first == second
        assert first.enclave_crashes > 0
        assert first.degradations >= first.enclave_crashes
