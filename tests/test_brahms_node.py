"""Brahms node behaviour: gossip flows, defenses, view renewal."""

import random

import pytest

from repro.brahms.config import BrahmsConfig
from repro.brahms.limiter import ComputationalPuzzle, PushRateLimiter
from repro.brahms.node import BrahmsNode, PulledBatch
from repro.sim.engine import Simulation
from repro.sim.messages import PullReply, PullRequest, Push
from repro.sim.network import Network
from repro.sim.node import NodeKind


def build_small_world(n=20, view_size=8, seed=3, rounds=0):
    config = BrahmsConfig(view_size=view_size, sample_size=4)
    network = Network(random.Random(seed))
    nodes = [
        BrahmsNode(i, NodeKind.HONEST, config, random.Random(seed * 1000 + i))
        for i in range(n)
    ]
    membership = list(range(n))
    boot = random.Random(seed)
    for node in nodes:
        node.seed_view(boot.sample([m for m in membership if m != node.node_id], view_size))
    sim = Simulation(network, nodes, random.Random(seed))
    if rounds:
        sim.run(rounds)
    return sim, nodes, config


class TestPassiveBehaviour:
    def test_pull_request_returns_current_view(self):
        _sim, nodes, _config = build_small_world()
        node = nodes[0]
        reply = node.handle_request(PullRequest(sender=1))
        assert isinstance(reply, PullReply)
        assert list(reply.ids) == node.view

    def test_unknown_message_returns_none(self):
        _sim, nodes, _config = build_small_world()
        assert nodes[0].handle_request(Push(sender=1)) is None

    def test_on_push_accumulates(self):
        _sim, nodes, _config = build_small_world()
        node = nodes[0]
        node.on_push(5)
        node.on_push(6)
        assert node._received_pushes == [5, 6]
        assert {5, 6} <= node.known


class TestRoundDynamics:
    def test_views_stay_within_membership(self):
        sim, nodes, config = build_small_world(rounds=10)
        for node in nodes:
            assert set(node.view) <= set(range(20)) - {node.node_id}

    def test_view_size_bounded(self):
        _sim, nodes, config = build_small_world(rounds=10)
        for node in nodes:
            assert len(node.view) <= config.view_size

    def test_known_grows_monotonically(self):
        sim, nodes, _config = build_small_world()
        before = {node.node_id: set(node.known) for node in nodes}
        sim.run(5)
        for node in nodes:
            assert before[node.node_id] <= node.known

    def test_gossip_converges_to_full_discovery(self):
        sim, nodes, _config = build_small_world(n=30, rounds=25)
        for node in nodes:
            assert len(node.known) >= 25

    def test_samplers_fill_up(self):
        _sim, nodes, _config = build_small_world(rounds=10)
        for node in nodes:
            assert len(node.samplers.sample_list()) == 4

    def test_deterministic_under_seed(self):
        _sim1, nodes1, _ = build_small_world(seed=9, rounds=8)
        _sim2, nodes2, _ = build_small_world(seed=9, rounds=8)
        assert [n.view for n in nodes1] == [n.view for n in nodes2]

    def test_different_seeds_differ(self):
        _sim1, nodes1, _ = build_small_world(seed=9, rounds=8)
        _sim2, nodes2, _ = build_small_world(seed=10, rounds=8)
        assert [n.view for n in nodes1] != [n.view for n in nodes2]


class TestBlockingDefense:
    def test_flood_blocks_view_update(self):
        _sim, nodes, config = build_small_world()
        node = nodes[0]
        view_before = list(node.view)

        class FakeCtx:
            round_number = 1

            class network:
                @staticmethod
                def is_reachable(node_id):
                    return True

        node.begin_round(FakeCtx)
        for sender in range(100, 100 + config.alpha_count + 5):  # above threshold
            node.on_push(sender)
        node._pulled.append(PulledBatch(source=1, ids=(2, 3)))
        node.end_round(FakeCtx)
        assert node.view == view_before
        assert node.blocked_rounds == 1

    def test_blocking_disabled_allows_update(self):
        config = BrahmsConfig(view_size=8, sample_size=4, blocking_enabled=False)
        node = BrahmsNode(0, NodeKind.HONEST, config, random.Random(1))
        node.seed_view([1, 2, 3])

        class FakeCtx:
            round_number = 1

            class network:
                @staticmethod
                def is_reachable(node_id):
                    return True

        node.begin_round(FakeCtx)
        for sender in range(100, 120):
            node.on_push(sender)
        node._pulled.append(PulledBatch(source=1, ids=(2, 3)))
        node.end_round(FakeCtx)
        assert node.view != [1, 2, 3]

    def test_no_update_without_pulls(self):
        _sim, nodes, _config = build_small_world()
        node = nodes[0]
        view_before = list(node.view)

        class FakeCtx:
            round_number = 1

            class network:
                @staticmethod
                def is_reachable(node_id):
                    return True

        node.begin_round(FakeCtx)
        node.on_push(99)
        node.end_round(FakeCtx)
        assert node.view == view_before


class TestViewRenewal:
    def test_renewal_mixes_pushes_pulls_history(self):
        config = BrahmsConfig(view_size=10, sample_size=5)
        node = BrahmsNode(0, NodeKind.HONEST, config, random.Random(2))
        node.samplers.update(range(50, 60))
        pushed = [1, 2, 3, 4]
        pulled = [5, 6, 7, 8, 9]
        new_view = node._renew_view(pushed, pulled)
        assert set(pushed) <= set(new_view)  # ≤ α·l1 pushes are all kept
        assert any(peer in (5, 6, 7, 8, 9) for peer in new_view)
        assert any(50 <= peer < 60 for peer in new_view)

    def test_excess_pushes_subsampled(self):
        config = BrahmsConfig(view_size=10, sample_size=5)
        node = BrahmsNode(0, NodeKind.HONEST, config, random.Random(2))
        pushed = list(range(100, 140))
        new_view = node._renew_view(pushed, [1])
        pushed_kept = [peer for peer in new_view if peer >= 100]
        assert len(pushed_kept) == config.alpha_count

    def test_self_never_enters_view(self):
        _sim, nodes, _config = build_small_world(rounds=10)
        for node in nodes:
            assert node.node_id not in node.view


class TestRateLimiter:
    def test_budget_enforced(self):
        limiter = PushRateLimiter(3)
        limiter.start_round(1)
        assert [limiter.allow(7) for _ in range(5)] == [True, True, True, False, False]
        assert limiter.remaining(7) == 0

    def test_budget_resets_per_round(self):
        limiter = PushRateLimiter(1)
        limiter.start_round(1)
        assert limiter.allow(7)
        assert not limiter.allow(7)
        limiter.start_round(2)
        assert limiter.allow(7)

    def test_budgets_are_per_sender(self):
        limiter = PushRateLimiter(1)
        limiter.start_round(1)
        assert limiter.allow(1)
        assert limiter.allow(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            PushRateLimiter(0)


class TestComputationalPuzzle:
    def test_solve_and_verify(self):
        puzzle = ComputationalPuzzle(difficulty_bits=8)
        nonce = puzzle.solve(b"challenge")
        assert puzzle.verify(b"challenge", nonce)

    def test_solution_is_challenge_specific(self):
        puzzle = ComputationalPuzzle(difficulty_bits=12)
        nonce = puzzle.solve(b"challenge")
        # A 12-bit puzzle solution transfers to another challenge with
        # probability 2^-12; this fixed pair is a non-transfer case.
        assert not puzzle.verify(b"another challenge", nonce)

    def test_expected_work_scales_with_difficulty(self):
        # The found nonce is a geometric variable with mean 2^bits; check
        # that an 11-bit puzzle needs more attempts than a 3-bit one on a
        # fixed challenge (deterministic given SHA-256).
        easy_nonce = ComputationalPuzzle(difficulty_bits=3).solve(b"work")
        hard_nonce = ComputationalPuzzle(difficulty_bits=11).solve(b"work")
        assert hard_nonce > easy_nonce

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputationalPuzzle(0)
        with pytest.raises(ValueError):
            ComputationalPuzzle(64)
