"""End-to-end fault drills over full RAPTEE deployments."""

import math
import pickle

import pytest

from repro.core.eviction import AdaptiveEviction
from repro.core.node import RapteeNode
from repro.experiments.scenarios import TopologySpec, build_raptee_simulation
from repro.faults.drills import run_drill
from repro.faults.harness import wire_faults
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import (
    AttestationOutageFault,
    EnclaveCrashFault,
    FaultPlan,
    LossBurstFault,
    RoundWindow,
    SealedBlobCorruptionFault,
)


def build_bundle(n_nodes, seed=1):
    spec = TopologySpec(
        n_nodes=n_nodes,
        byzantine_fraction=0.10,
        trusted_fraction=0.30,
        view_ratio=0.08,
    )
    return build_raptee_simulation(spec, seed, eviction=AdaptiveEviction())


def mass_crash_plan(bundle, crash_round=8, outage_end=14):
    trusted = sorted(bundle.trusted_ids)
    victims = trusted[: math.ceil(len(trusted) * 0.30)]
    faults = [AttestationOutageFault(RoundWindow(crash_round, outage_end))]
    faults.extend(EnclaveCrashFault(v, crash_round) for v in victims)
    faults.extend(SealedBlobCorruptionFault(v, crash_round) for v in victims[::3])
    return FaultPlan(faults), victims


class TestMassEnclaveCrash:
    """The acceptance scenario: 220 nodes, 30 % of trusted enclaves die."""

    ROUNDS = 30

    @pytest.fixture(scope="class")
    def outcome(self):
        bundle = build_bundle(220)
        plan, victims = mass_crash_plan(bundle)
        checker = InvariantChecker()  # raising mode: any violation fails
        harness = wire_faults(bundle, plan, seed=1, checker=checker)
        harness.run(self.ROUNDS)
        return bundle, harness, checker, victims

    def test_no_exception_and_invariants_hold(self, outcome):
        _bundle, _harness, checker, _victims = outcome
        assert checker.rounds_checked == self.ROUNDS
        assert checker.ok

    def test_all_victims_degraded_then_repromoted(self, outcome):
        bundle, harness, _checker, victims = outcome
        nodes = bundle.simulation.nodes
        assert harness.injector.stats.enclave_crashes == len(victims)
        for victim in victims:
            node = nodes[victim]
            assert node.degradations_total >= 1
            assert node.promotions_total >= 1
            assert not node.degraded
            assert node.trusted
        stats = harness.recovery.stats
        assert stats.restores_from_seal > 0      # intact blobs: fast path
        assert stats.reprovisions > 0            # corrupted blobs: re-attest
        assert stats.failed_attempts > 0         # ... blocked by the outage

    def test_degraded_nodes_kept_gossiping_as_honest(self, outcome):
        bundle, _harness, _checker, victims = outcome
        # Degraded rounds still produced usable views: every victim ends
        # with a full, nonempty view — it fell back to the honest path
        # rather than stalling.
        for victim in victims:
            assert bundle.simulation.nodes[victim].view_ids()

    def test_trusted_swaps_resumed_after_promotion(self, outcome):
        bundle, _harness, _checker, victims = outcome
        swaps = sum(
            node.trusted_exchanges_total
            for node_id, node in sorted(bundle.simulation.nodes.items())
            if isinstance(node, RapteeNode) and node_id in set(victims)
        )
        assert swaps > 0

    def test_corrupted_victims_resume_swaps_after_reattestation(self):
        # Focused two-stage run: victims whose sealed blobs rot stay
        # degraded through the attestation outage (their exchange counter
        # freezes), then re-attest and swap again.
        bundle = build_bundle(60, seed=4)
        plan, victims = mass_crash_plan(bundle, crash_round=4, outage_end=10)
        corrupted = victims[::3]
        harness = wire_faults(bundle, plan, seed=4)
        harness.run(9)  # inside the outage: corrupted victims are degraded
        nodes = bundle.simulation.nodes
        assert any(nodes[v].degraded for v in corrupted)
        frozen = {v: nodes[v].trusted_exchanges_total for v in corrupted}
        harness.run(21)  # outage lifts; backoff retries eventually land
        assert all(not nodes[v].degraded for v in corrupted)
        assert any(
            nodes[v].trusted_exchanges_total > frozen[v] for v in corrupted
        )

    def test_resilience_not_destroyed(self, outcome):
        bundle, _harness, _checker, _victims = outcome
        from repro.analysis.metrics import resilience_from_trace

        polluted = resilience_from_trace(bundle.trace.records)
        assert polluted < 0.75


class TestDeterminism:
    def _fingerprint(self, seed):
        bundle = build_bundle(60, seed=seed)
        plan, _victims = mass_crash_plan(bundle, crash_round=4, outage_end=7)
        plan = FaultPlan(list(plan.faults) + [LossBurstFault(RoundWindow(3, 9), 0.2)])
        harness = wire_faults(bundle, plan, seed=seed)
        harness.run(12)
        per_round_views = [
            (record.round_number, sorted(record.byzantine_fraction.items()))
            for record in bundle.trace.records
        ]
        stats = bundle.simulation.network.stats
        return pickle.dumps((
            per_round_views,
            sorted(stats.per_round_pushes.items()),
            sorted(stats.per_round_requests.items()),
            sorted(stats.per_round_losses.items()),
            sorted(harness.injector.stats.drops_by_cause.items()),
            harness.recovery.stats,
        ))

    def test_same_seed_same_plan_byte_identical(self):
        assert self._fingerprint(7) == self._fingerprint(7)

    def test_different_seed_differs(self):
        assert self._fingerprint(7) != self._fingerprint(8)


class TestDrills:
    def test_every_drill_runs_clean_at_small_scale(self):
        for name in ("enclave-outage", "partition", "flaky-provisioning"):
            report = run_drill(name, nodes=60, rounds=16, seed=2)
            assert report.violations == 0, f"{name}: {report.render()}"
            assert report.rounds_checked == 16

    def test_unknown_drill_rejected(self):
        with pytest.raises(ValueError, match="unknown drill"):
            run_drill("nope")

    def test_drill_report_renders(self):
        report = run_drill("enclave-outage", nodes=60, rounds=12, seed=3)
        text = report.render()
        assert "fault drill:        enclave-outage" in text
        assert "invariants:" in text
