"""Unit tests for the sharded engine's building blocks.

The differential suite (``test_shard_differential.py``) pins whole-run
byte-identity; this file pins the pieces that identity rests on — the
counter-based randomness (scalar == vector), the Mersenne fold, partition
bounds, the compile-time feature gate, the ``EngineSpec.shards`` knob, the
bench report schema, and the CLI surface.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.crypto.minwise import MERSENNE_PRIME_31
from repro.perf.kernels import HAVE_NUMPY
from repro.scenario.spec import EngineSpec, ScenarioSpecError
from repro.shard import partition_bounds
from repro.shard.bench import (
    ShardBenchScenario,
    render_shard_report,
    run_shard_bench,
    validate_shard_report,
)
from repro.shard.compile import (
    ShardUnsupportedError,
    eviction_fields,
    shard_config_from_topology,
)
from repro.shard.engine import _fold_mod_p
from repro.shard.rand import Purpose, key64, key_array, keyed_order, rand_float

from repro.experiments.scenarios import TopologySpec

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")


class TestCounterRandomness:
    @needs_numpy
    def test_key_array_matches_scalar(self):
        import numpy as np

        a_values = list(range(0, 400, 7))
        b_values = [v * 3 + 1 for v in range(len(a_values))]
        for purpose in (Purpose.PUSH_TARGET, Purpose.SESSION_LOSS,
                        Purpose.RENEW_GAMMA, Purpose.BOOTSTRAP):
            batched = key_array(11, purpose, 5, np.asarray(a_values),
                                np.asarray(b_values))
            expected = [key64(11, purpose, 5, a, b)
                        for a, b in zip(a_values, b_values)]
            assert [int(v) for v in batched] == expected

    @needs_numpy
    def test_key_array_broadcasts(self):
        import numpy as np

        batched = key_array(3, Purpose.EVICT_KEEP, 2, np.uint64(9),
                            np.arange(16, dtype=np.uint64))
        assert [int(v) for v in batched] == [
            key64(3, Purpose.EVICT_KEEP, 2, 9, b) for b in range(16)
        ]

    def test_draws_are_coordinate_pure(self):
        # Same coordinates, same draw — no hidden sequence state.
        assert key64(1, 2, 3, 4, 5) == key64(1, 2, 3, 4, 5)
        # Each coordinate matters.
        baseline = key64(1, 2, 3, 4, 5)
        assert baseline != key64(2, 2, 3, 4, 5)
        assert baseline != key64(1, 3, 3, 4, 5)
        assert baseline != key64(1, 2, 4, 4, 5)
        assert baseline != key64(1, 2, 3, 5, 5)
        assert baseline != key64(1, 2, 3, 4, 6)

    def test_rand_float_unit_interval(self):
        values = [rand_float(7, Purpose.PUSH_LOSS, r, n)
                  for r in range(20) for n in range(20)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) > 350  # essentially no collisions

    def test_keyed_order_is_permutation(self):
        items = list(range(50))
        ordered = keyed_order(items, 5, Purpose.ADV_ORDER, 9)
        assert sorted(ordered) == items
        assert ordered != items  # astronomically unlikely to be identity
        assert ordered == keyed_order(items, 5, Purpose.ADV_ORDER, 9)
        assert ordered != keyed_order(items, 5, Purpose.ADV_ORDER, 10)


@needs_numpy
class TestMersenneFold:
    def test_fold_matches_modulo(self):
        import numpy as np

        p = MERSENNE_PRIME_31
        edges = [0, 1, p - 1, p, p + 1, 2 * p, (1 << 62) - 1]
        spread = [(k * 0x9E3779B9_7F4A7C15) % (1 << 62) for k in range(2000)]
        values = np.asarray(edges + spread, dtype=np.int64)
        folded = _fold_mod_p(values)
        assert [int(v) for v in folded] == [int(v) % p for v in values]


class TestPartitionBounds:
    def test_bounds_cover_population(self):
        for n_nodes in (1, 7, 100, 10_000):
            for shards in (1, 3, 8, 16):
                bounds = partition_bounds(n_nodes, shards)
                assert bounds[0][0] == 0 and bounds[-1][1] == n_nodes
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo
                sizes = [hi - lo for lo, hi in bounds]
                assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_nodes_collapses(self):
        assert len(partition_bounds(3, 8)) == 3

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            partition_bounds(10, 0)


class TestCompileGate:
    def test_poisoned_views_unsupported(self):
        topology = TopologySpec(n_nodes=60, byzantine_fraction=0.1,
                                trusted_fraction=0.05, poisoned_fraction=0.2)
        with pytest.raises(ShardUnsupportedError, match="poisoned"):
            shard_config_from_topology(topology, seed=1)

    def test_unknown_eviction_policy_unsupported(self):
        class Weird:
            pass

        with pytest.raises(ShardUnsupportedError, match="Weird"):
            eviction_fields(Weird())

    def test_brahms_forces_eviction_off(self):
        topology = TopologySpec(n_nodes=60, byzantine_fraction=0.1)
        config = shard_config_from_topology(topology, seed=1, protocol="brahms")
        assert config.eviction_kind == "none"

    def test_spec_with_wrong_engine_kind_rejected(self):
        from repro.scenario.spec import ScenarioSpec
        from repro.shard.compile import shard_config_from_spec

        spec = ScenarioSpec(
            name="not-shard", protocol="brahms",
            topology=TopologySpec(n_nodes=60, byzantine_fraction=0.1),
            seed=1, rounds=5,
        )
        with pytest.raises(ValueError, match="engine.kind"):
            shard_config_from_spec(spec)


class TestEngineSpecShards:
    def test_shard_kind_accepts_partitions(self):
        assert EngineSpec(kind="shard", shards=4).shards == 4

    def test_nonpositive_rejected(self):
        with pytest.raises(ScenarioSpecError):
            EngineSpec(kind="shard", shards=0)
        with pytest.raises(ScenarioSpecError):
            EngineSpec(kind="shard", shards=True)

    def test_other_engines_must_keep_one(self):
        with pytest.raises(ScenarioSpecError):
            EngineSpec(kind="rounds", shards=2)


TINY = ShardBenchScenario(
    name="tiny", protocol="brahms", n_nodes=40, rounds=3, shards=2,
    view_ratio=0.2,
)


class TestShardBench:
    def test_report_roundtrip(self, monkeypatch):
        from repro.shard import bench as shard_bench

        monkeypatch.setitem(shard_bench.SHARD_BENCH_SCENARIOS, "tiny", TINY)
        payload = run_shard_bench(names=["tiny"], smoke=True)
        validate_shard_report(payload)
        entry = payload["scenarios"][0]
        assert entry["rounds"] == 3
        assert len(entry["round_seconds"]) == 3
        assert entry["seconds_per_round"] > 0
        rendered = render_shard_report(payload)
        assert "tiny" in rendered and "3 rounds x 2 shards" in rendered

    def test_speedup_column_present_when_pinned(self, monkeypatch):
        from dataclasses import replace

        from repro.shard import bench as shard_bench

        pinned = replace(TINY, legacy_seconds_per_round=8.2)
        monkeypatch.setitem(shard_bench.SHARD_BENCH_SCENARIOS, "tiny", pinned)
        payload = run_shard_bench(names=["tiny"], smoke=True)
        entry = validate_shard_report(payload)["scenarios"][0]
        assert entry["speedup_vs_legacy"] == pytest.approx(
            8.2 / entry["seconds_per_round"]
        )
        assert "vs legacy engine" in render_shard_report(payload)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            run_shard_bench(names=["no-such-scenario"])

    def test_validate_rejects_drift(self, monkeypatch):
        from repro.shard import bench as shard_bench

        monkeypatch.setitem(shard_bench.SHARD_BENCH_SCENARIOS, "tiny", TINY)
        payload = run_shard_bench(names=["tiny"], smoke=True)
        bad = dict(payload, schema="something-else")
        with pytest.raises(ValueError, match="schema"):
            validate_shard_report(bad)
        truncated = json.loads(json.dumps(payload))
        truncated["scenarios"][0]["round_seconds"].pop()
        with pytest.raises(ValueError, match="round_seconds"):
            validate_shard_report(truncated)


class TestCli:
    def test_run_shards_smoke(self, capsys):
        exit_code = main([
            "run", "--protocol", "brahms", "--nodes", "60", "--rounds", "6",
            "--f", "0.1", "--view-ratio", "0.15", "--shards", "3",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "brahms (shard engine)" in out
        assert "shards:             3" in out
        assert "byz IDs in views" in out

    def test_shards_reject_event_clock(self, capsys):
        exit_code = main([
            "run", "--engine", "events", "--shards", "2",
            "--nodes", "60", "--rounds", "2",
        ])
        assert exit_code == 2
        assert "no event clock" in capsys.readouterr().err

    def test_shards_reject_snapshots(self, capsys, tmp_path):
        exit_code = main([
            "run", "--shards", "2", "--nodes", "60", "--rounds", "2",
            "--checkpoint-every", "1",
            "--checkpoint-out", str(tmp_path / "x.snapshot"),
        ])
        assert exit_code == 2
        assert "snapshot" in capsys.readouterr().err

    def test_shards_reject_unsupported_topology(self, capsys):
        exit_code = main([
            "run", "--shards", "2", "--nodes", "60", "--rounds", "2",
            "--poisoned", "0.2",
        ])
        assert exit_code == 2
        assert "poisoned" in capsys.readouterr().err

    def test_bench_defaults_to_repo_root(self, capsys, tmp_path, monkeypatch):
        # Regression: the default report path is anchored at the nearest
        # pyproject.toml ancestor, not the working directory — running
        # from a subdirectory used to scatter BENCH files around the tree
        # (or, with --out required, never refresh the tracked ones).
        from repro.shard import bench as shard_bench

        (tmp_path / "pyproject.toml").write_text("[tool.fake]\n",
                                                 encoding="utf-8")
        nested = tmp_path / "src" / "deep"
        nested.mkdir(parents=True)
        monkeypatch.chdir(nested)
        monkeypatch.setitem(shard_bench.SHARD_BENCH_SCENARIOS, "tiny", TINY)
        exit_code = main(["bench", "--suite", "shard", "--scenario", "tiny"])
        assert exit_code == 0
        report_path = tmp_path / "BENCH_shard.json"
        assert report_path.is_file()
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        validate_shard_report(payload)
        assert str(report_path) in capsys.readouterr().out

    def test_bench_out_overrides_root_anchor(self, tmp_path, monkeypatch):
        from repro.shard import bench as shard_bench

        monkeypatch.setitem(shard_bench.SHARD_BENCH_SCENARIOS, "tiny", TINY)
        out = tmp_path / "custom.json"
        exit_code = main(["bench", "--suite", "shard", "--scenario", "tiny",
                          "--out", str(out)])
        assert exit_code == 0
        validate_shard_report(json.loads(out.read_text(encoding="utf-8")))

    def test_bench_all_suites_rejects_out(self, capsys, tmp_path):
        exit_code = main(["bench", "--suite", "all", "--smoke",
                          "--out", str(tmp_path / "x.json")])
        assert exit_code == 2
        assert "single --suite" in capsys.readouterr().err
