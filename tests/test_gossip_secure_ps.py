"""Secure Peer Sampling (Jesi et al.) tests: detection catches slow hubs,
rapid flooding overwhelms it (the RAPTEE paper's related-work claim)."""

import random
import statistics
from typing import Optional

import pytest

from repro.gossip.framework import ViewExchangeReply, ViewExchangeRequest
from repro.gossip.partial_view import ViewEntry
from repro.gossip.secure_ps import SecurePsNode
from repro.sim.bootstrap import UniformBootstrap
from repro.sim.engine import Simulation
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.node import NodeBase, NodeKind

VIEW = 10
N = 80


class HubAttacker(NodeBase):
    """A malicious node offering only attacker IDs, ``intensity`` copies of
    each attacker descriptor per exchange answer."""

    def __init__(self, node_id, attacker_ids, rng, intensity):
        super().__init__(node_id, NodeKind.BYZANTINE)
        self.attacker_ids = list(attacker_ids)
        self.rng = rng
        self.intensity = intensity

    def gossip(self, ctx):
        return None

    def handle_request(self, message: Message) -> Optional[Message]:
        if isinstance(message, ViewExchangeRequest):
            offered = tuple(
                ViewEntry(self.rng.choice(self.attacker_ids), 0)
                for _ in range(self.intensity)
            )
            return ViewExchangeReply(sender=self.node_id, entries=offered)
        return None

    def view_ids(self):
        return list(self.attacker_ids)

    def known_ids(self):
        return list(range(N))

    def seed_view(self, ids):
        return None


def run_attack(intensity, rounds=40, n_attackers=8, threshold=4.0, seed=2,
               n_ids=None):
    """``n_ids`` attacker identifiers are advertised from ``n_attackers``
    malicious nodes; a small pool concentrates per-ID frequency (detectable
    hub), a large pool spreads it below the detector's radar (Sybil flood).
    """
    if n_ids is None:
        n_ids = n_attackers
    attacker_ids = set(range(1000, 1000 + n_ids))
    network = Network(random.Random(seed))
    nodes = [
        HubAttacker(i, sorted(attacker_ids), random.Random(i), intensity)
        for i in range(n_attackers)
    ]
    nodes += [
        SecurePsNode(i, VIEW, random.Random(seed * 991 + i),
                     detection_threshold=threshold)
        for i in range(n_attackers, N)
    ]
    bootstrap = UniformBootstrap(list(range(N)), random.Random(seed))
    for node in nodes:
        node.seed_view(bootstrap.initial_view(node.node_id, VIEW))
    sim = Simulation(network, nodes, random.Random(seed))
    sim.run(rounds)
    honest = [node for node in nodes if node.kind is NodeKind.HONEST]
    pollution = statistics.mean(
        sum(1 for peer in node.view_ids() if peer in attacker_ids)
        / max(1, len(node.view_ids()))
        for node in honest
    )
    blacklisted = statistics.mean(
        len(node.blacklist & attacker_ids) for node in honest
    )
    return pollution, blacklisted


class TestSecurePs:
    def test_validation(self):
        with pytest.raises(ValueError):
            SecurePsNode(0, 10, random.Random(0), detection_threshold=1.0)

    def test_benign_network_converges(self):
        network = Network(random.Random(1))
        nodes = [SecurePsNode(i, VIEW, random.Random(100 + i)) for i in range(50)]
        bootstrap = UniformBootstrap(list(range(50)), random.Random(1))
        for node in nodes:
            node.seed_view(bootstrap.initial_view(node.node_id, VIEW))
        sim = Simulation(network, nodes, random.Random(1))
        sim.run(25)
        assert statistics.mean(len(node.known) for node in nodes) > 35
        # No honest node massively blacklisted.
        assert statistics.mean(len(node.blacklist) for node in nodes) < 3

    def test_concentrated_hub_attacker_gets_blacklisted(self):
        pollution, blacklisted = run_attack(intensity=10, rounds=50)
        assert blacklisted > 1  # detector fires on average
        assert pollution < 0.6  # damage bounded

    def test_sybil_flood_overwhelms_detection(self):
        """The RAPTEE paper's §VIII claim: the detector cannot identify
        attackers whose advertisement pressure is spread across many
        identifiers — the flood wins before any ID looks anomalous."""
        hub_pollution, hub_blacklisted = run_attack(
            intensity=10, rounds=50, n_ids=8
        )
        flood_pollution, flood_blacklisted = run_attack(
            intensity=10, rounds=50, n_ids=120
        )
        assert flood_blacklisted < hub_blacklisted
        assert flood_pollution > hub_pollution

    def test_blacklisted_peer_is_refused_service(self):
        node = SecurePsNode(0, VIEW, random.Random(0))
        node.seed_view([1, 2, 3])
        node.blacklist.add(99)
        assert node.handle_request(
            ViewExchangeRequest(sender=99, entries=(ViewEntry(5, 0),))
        ) is None
