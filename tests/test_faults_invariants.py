"""InvariantChecker: per-round safety property auditing."""

import random

import pytest

from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.node import NodeBase, NodeKind


class StubNode(NodeBase):
    """A node whose view/known sets the test scripts directly."""

    def __init__(self, node_id, view=(), known=None, kind=NodeKind.HONEST):
        super().__init__(node_id, kind)
        self.view = list(view)
        self.known = set(known) if known is not None else set(view) | {node_id}

    def begin_round(self, ctx):
        return None

    def gossip(self, ctx):
        return None

    def end_round(self, ctx):
        return None

    def handle_request(self, message):
        return None

    def view_ids(self):
        return list(self.view)

    def known_ids(self):
        return list(self.known)

    def seed_view(self, ids):
        self.view = list(ids)


def make_sim(nodes):
    return Simulation(Network(random.Random(0)), nodes, random.Random(0))


def check(simulation, round_number=1, **kwargs):
    simulation.round_number = round_number
    checker = InvariantChecker(record_only=True, **kwargs)
    checker.on_round_end(simulation)
    return checker


class TestPerNodeInvariants:
    def test_clean_views_pass(self):
        sim = make_sim([StubNode(0, [1]), StubNode(1, [0])])
        checker = check(sim)
        assert checker.ok
        assert checker.rounds_checked == 1

    def test_self_in_view_detected(self):
        sim = make_sim([StubNode(0, [0, 1]), StubNode(1, [0])])
        checker = check(sim)
        violations = [v for v in checker.violations if v.invariant == "no-self"]
        assert violations and violations[0].node_id == 0

    def test_never_registered_id_detected(self):
        sim = make_sim([StubNode(0, [1, 99], known={0, 1, 99}), StubNode(1, [0])])
        checker = check(sim)
        assert any(v.invariant == "registered-ids" and "99" in v.detail
                   for v in checker.violations)

    def test_departed_node_is_still_legitimate(self):
        # IDs of nodes that left via churn may linger in views; only IDs
        # that *never* existed are phantoms.
        sim = make_sim([StubNode(0, [1, 2]), StubNode(1, [0]), StubNode(2, [0])])
        sim.remove_node(2)
        checker = check(sim)
        assert checker.ok

    def test_view_not_subset_of_known_detected(self):
        sim = make_sim([StubNode(0, [1], known={0}), StubNode(1, [0])])
        checker = check(sim)
        assert any(v.invariant == "view-known" for v in checker.violations)

    def test_duplicates_opt_in(self):
        sim = make_sim([StubNode(0, [1, 1]), StubNode(1, [0])])
        assert check(sim).ok  # Brahms views repeat IDs by design
        checker = check(sim, check_duplicate_entries=True)
        assert any(v.invariant == "no-duplicates" for v in checker.violations)

    def test_byzantine_nodes_are_not_audited(self):
        byz = StubNode(0, [0, 0], kind=NodeKind.BYZANTINE)
        sim = make_sim([byz, StubNode(1, [2]), StubNode(2, [1])])
        assert check(sim).ok


class TestConnectivity:
    def _split_population(self):
        ring_a = [StubNode(i, [(i + 1) % 3]) for i in range(3)]
        ring_b = [StubNode(i, [3 + (i - 2) % 3]) for i in range(3, 6)]
        return make_sim(ring_a + ring_b)

    def test_split_overlay_detected_after_grace(self):
        sim = self._split_population()
        checker = check(sim, round_number=20, connectivity_grace=10)
        assert any(v.invariant == "connectivity" for v in checker.violations)

    def test_grace_period_suppresses_check(self):
        sim = self._split_population()
        assert check(sim, round_number=5, connectivity_grace=10).ok

    def test_single_straggler_tolerated(self):
        nodes = [StubNode(i, [(i + 1) % 10]) for i in range(10)]
        nodes.append(StubNode(10, [99], known={10, 99}))  # islanded
        sim = make_sim(nodes + [StubNode(99, [0])])
        sim.remove_node(99)
        checker = check(sim, round_number=20)
        assert not any(v.invariant == "connectivity" for v in checker.violations)

    def test_connected_overlay_passes(self):
        nodes = [StubNode(i, [(i + 1) % 8]) for i in range(8)]
        assert check(make_sim(nodes), round_number=20).ok

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            InvariantChecker(connectivity_tolerance=1.5)


class TestReporting:
    def test_raises_by_default_with_diagnostics(self):
        sim = make_sim([StubNode(0, [0])])
        sim.round_number = 7
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_round_end(sim)
        message = str(excinfo.value)
        assert "round 7" in message
        assert "node 0" in message
        assert "no-self" in message

    def test_record_only_collects(self):
        sim = make_sim([StubNode(0, [0]), StubNode(1, [1])])
        checker = check(sim)
        assert len(checker.violations) == 2
        assert not checker.ok
