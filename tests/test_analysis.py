"""Metric and statistics tests."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.analysis.metrics import (
    overhead_percent,
    resilience_from_trace,
    resilience_improvement,
    stability_round,
    stability_tolerance_for,
    PAPER_VIEW_SIZE,
)
from repro.analysis.stats import summarize
from repro.sim.observers import RoundRecord


def record(round_number, fractions):
    rec = RoundRecord(round_number=round_number)
    for node_id, fraction in enumerate(fractions):
        rec.byzantine_fraction[node_id] = fraction
    return rec


class TestResilience:
    def test_tail_average(self):
        records = [record(i, [0.1 * i]) for i in range(1, 6)]
        assert resilience_from_trace(records, tail=2) == pytest.approx(0.45)

    def test_whole_trace_when_tail_larger(self):
        records = [record(1, [0.2]), record(2, [0.4])]
        assert resilience_from_trace(records, tail=10) == pytest.approx(0.3)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            resilience_from_trace([])

    def test_bad_tail_rejected(self):
        with pytest.raises(ValueError):
            resilience_from_trace([record(1, [0.1])], tail=0)


class TestStability:
    def test_detects_first_stable_round(self):
        records = [
            record(1, [0.1, 0.9]),   # wildly dispersed
            record(2, [0.3, 0.35]),  # stable
            record(3, [0.3, 0.36]),
        ]
        assert stability_round(records, tolerance=0.10) == 2

    def test_sustained_requirement(self):
        records = [
            record(1, [0.3, 0.31]),
            record(2, [0.1, 0.9]),  # breaks the streak
            record(3, [0.3, 0.31]),
            record(4, [0.3, 0.32]),
        ]
        assert stability_round(records, tolerance=0.10, sustained=2) == 3

    def test_never_stable_returns_minus_one(self):
        records = [record(i, [0.0, 1.0]) for i in range(1, 5)]
        assert stability_round(records, tolerance=0.10) == -1

    def test_requires_exactly_one_band_argument(self):
        with pytest.raises(ValueError):
            stability_round([], tolerance=0.1, view_size=20)
        with pytest.raises(ValueError):
            stability_round([])

    def test_scaled_tolerance_matches_paper_at_paper_scale(self):
        # At l1 = 200 and 30 % pollution, the z·σ band is the paper's 10 %.
        assert stability_tolerance_for(PAPER_VIEW_SIZE, 0.30) == pytest.approx(0.10, abs=0.005)

    def test_scaled_tolerance_grows_for_small_views(self):
        assert stability_tolerance_for(12, 0.3) > stability_tolerance_for(200, 0.3)

    def test_scaled_tolerance_floor(self):
        # Tiny pollution: binomial σ shrinks, but the paper's 10 % floor holds.
        assert stability_tolerance_for(200, 0.001) == pytest.approx(0.10)

    @given(view=st.integers(min_value=1, max_value=10_000),
           mean=st.floats(min_value=0.0, max_value=1.0))
    def test_scaled_tolerance_bounds(self, view, mean):
        tol = stability_tolerance_for(view, mean)
        assert 0.10 <= tol <= 0.10 + 3.1 * 0.5


class TestImprovementAndOverhead:
    def test_improvement_positive_when_cleaner(self):
        assert resilience_improvement(0.50, 0.40) == pytest.approx(20.0)

    def test_improvement_negative_when_worse(self):
        assert resilience_improvement(0.40, 0.50) == pytest.approx(-25.0)

    def test_improvement_zero_baseline(self):
        assert resilience_improvement(0.0, 0.1) == 0.0

    def test_overhead_positive_when_slower(self):
        assert overhead_percent(100, 112) == pytest.approx(12.0)

    def test_overhead_negative_when_faster(self):
        assert overhead_percent(100, 82) == pytest.approx(-18.0)

    def test_overhead_none_when_not_reached(self):
        assert overhead_percent(-1, 50) is None
        assert overhead_percent(50, -1) is None


class TestSummarize:
    def test_empty_returns_none(self):
        assert summarize([]) is None

    def test_single_value(self):
        summary = summarize([3.0])
        assert summary.mean == 3.0
        assert summary.std == 0.0
        assert summary.ci95_half_width == 0.0

    def test_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.count == 4
        assert summary.ci95_half_width > 0

    def test_std_is_sample_standard_deviation(self):
        # Regression: std used to be the population form (divide by n), but
        # ci95_half_width applies the normal-CI formula, which assumes the
        # unbiased sample estimator (divide by n-1).
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.std == pytest.approx(math.sqrt(5.0 / 3.0))
        assert summary.std == pytest.approx(statistics.stdev([1.0, 2.0, 3.0, 4.0]))
        assert summary.ci95_half_width == pytest.approx(
            1.96 * math.sqrt(5.0 / 3.0) / 2.0
        )

    def test_zero_samples_returns_none_not_summary(self):
        assert summarize([]) is None
        assert summarize(()) is None

    def test_one_sample_has_zero_spread(self):
        summary = summarize([7.25])
        assert summary.count == 1
        assert summary.mean == 7.25
        assert summary.minimum == summary.maximum == 7.25
        # n-1 would divide by zero; one sample is defined as zero spread.
        assert summary.std == 0.0
        assert summary.ci95_half_width == 0.0

    def test_constant_sample_has_zero_std(self):
        summary = summarize([2.0, 2.0, 2.0])
        assert summary.std == 0.0
        assert summary.ci95_half_width == 0.0

    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_mean_within_min_max(self, values):
        summary = summarize(values)
        assert summary.minimum - 1e-6 <= summary.mean <= summary.maximum + 1e-6
