"""Engine, churn, bootstrap, and observer tests."""

import random
from typing import Optional

import pytest

from repro.sim.bootstrap import UniformBootstrap
from repro.sim.churn import ChurnEvent, CatastrophicFailure, NoChurn, UniformChurn
from repro.sim.engine import Observer, Simulation
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.node import NodeBase, NodeKind
from repro.sim.observers import DiscoveryObserver, ViewTraceObserver


class PhaseRecorder(NodeBase):
    """Records the engine's phase calls."""

    def __init__(self, node_id, log):
        super().__init__(node_id, NodeKind.HONEST)
        self.log = log
        self._view = []

    def begin_round(self, ctx):
        self.log.append(("begin", self.node_id, ctx.round_number))

    def gossip(self, ctx):
        self.log.append(("gossip", self.node_id, ctx.round_number))

    def end_round(self, ctx):
        self.log.append(("end", self.node_id, ctx.round_number))

    def handle_request(self, message: Message) -> Optional[Message]:
        return None

    def view_ids(self):
        return list(self._view)

    def known_ids(self):
        return list(self._view)

    def seed_view(self, ids):
        self._view = list(ids)


def make_sim(n=4, churn=None, factory=None, seed=0):
    log = []
    network = Network(random.Random(seed))
    nodes = [PhaseRecorder(i, log) for i in range(n)]
    sim = Simulation(network, nodes, random.Random(seed), churn=churn, node_factory=factory)
    return sim, log


class TestPhases:
    def test_all_phases_run_in_order(self):
        sim, log = make_sim(n=3)
        sim.run_round()
        phases = [entry[0] for entry in log]
        assert phases[:3] == ["begin"] * 3
        assert phases[3:6] == ["gossip"] * 3
        assert phases[6:] == ["end"] * 3

    def test_round_number_increments(self):
        sim, _log = make_sim()
        sim.run_round()
        sim.run_round()
        assert sim.round_number == 2

    def test_observers_called_each_round(self):
        sim, _log = make_sim()

        class CountingObserver(Observer):
            def __init__(self):
                self.calls = 0

            def on_round_end(self, simulation):
                self.calls += 1

        observer = CountingObserver()
        sim.run(5, observers=[observer])
        assert observer.calls == 5


class TestFinalViews:
    def test_final_views_surface_matches_shard_contract(self):
        sim, _log = make_sim(n=4)
        for node_id, node in sim.nodes.items():
            node.seed_view([(node_id + 1) % 4, (node_id + 2) % 4])
        sim.set_node_alive(2, False)  # crashed, but its frozen view stays
        views = sim.final_views()
        assert list(views) == [0, 1, 2, 3]  # id order, like the shard engine
        assert views[2] == [3, 0]
        sim.remove_node(3)  # departed nodes drop out entirely
        assert list(sim.final_views()) == [0, 1, 2]

    def test_byzantine_nodes_excluded(self):
        sim, log = make_sim(n=2)
        byz = PhaseRecorder(9, log)
        byz.kind = NodeKind.BYZANTINE
        sim.add_node(byz)
        assert list(sim.final_views()) == [0, 1]


class TestBandedKinds:
    def test_banded_layout_single_definition(self):
        # Both engines answer "who is node i" from this one mapping.
        assert NodeKind.for_banded_id(0, 3, 2) is NodeKind.BYZANTINE
        assert NodeKind.for_banded_id(2, 3, 2) is NodeKind.BYZANTINE
        assert NodeKind.for_banded_id(3, 3, 2) is NodeKind.TRUSTED
        assert NodeKind.for_banded_id(4, 3, 2) is NodeKind.TRUSTED
        assert NodeKind.for_banded_id(5, 3, 2) is NodeKind.HONEST
        assert NodeKind.for_banded_id(1, 0) is NodeKind.HONEST

    def test_shard_config_delegates(self):
        from repro.shard.state import ShardConfig

        config = ShardConfig(
            protocol="raptee", n_nodes=10, seed=1,
            n_byzantine=3, n_trusted=2, view_size=4, sample_size=2,
        )
        assert [config.kind_of(i) for i in range(6)] == [
            "byzantine", "byzantine", "byzantine", "trusted", "trusted",
            "honest",
        ]
        assert config.is_byzantine(2) and not config.is_byzantine(3)
        assert config.is_trusted(4) and not config.is_trusted(5)


class TestMembership:
    def test_kind_queries(self):
        sim, _log = make_sim(n=3)
        assert len(sim.ids_of_kind(NodeKind.HONEST)) == 3
        assert sim.byzantine_ids == frozenset()
        assert sim.correct_node_ids() == {0, 1, 2}

    def test_remove_node(self):
        sim, _log = make_sim(n=3)
        sim.remove_node(1)
        assert 1 not in sim.correct_node_ids()
        assert len(sim.alive_nodes()) == 2

    def test_kind_cache_invalidation(self):
        sim, log = make_sim(n=3)
        assert len(sim.ids_of_kind(NodeKind.HONEST)) == 3
        sim.add_node(PhaseRecorder(10, log))
        assert len(sim.ids_of_kind(NodeKind.HONEST)) == 4

    def test_remove_unknown_node_is_noop(self):
        # Regression: removing an ID that was never registered used to call
        # network.unregister anyway, which drops per-pair key material by ID.
        sim, _log = make_sim(n=3)
        unregistered = []
        original = sim.network.unregister
        sim.network.unregister = lambda node_id: (
            unregistered.append(node_id), original(node_id))

        sim.remove_node(99)
        assert unregistered == []
        assert len(sim.alive_nodes()) == 3

        sim.remove_node(1)
        assert unregistered == [1]
        assert len(sim.alive_nodes()) == 2

    def test_remove_node_twice_unregisters_once(self):
        sim, _log = make_sim(n=3)
        unregistered = []
        original = sim.network.unregister
        sim.network.unregister = lambda node_id: (
            unregistered.append(node_id), original(node_id))
        sim.remove_node(2)
        sim.remove_node(2)
        assert unregistered == [2]


class TestChurn:
    def test_no_churn_keeps_membership(self):
        sim, _log = make_sim(n=5, churn=NoChurn())
        sim.run(3)
        assert len(sim.alive_nodes()) == 5

    def test_catastrophic_failure(self):
        sim, _log = make_sim(n=10, churn=CatastrophicFailure(at_round=2, fraction=0.5))
        sim.run(3)
        assert len(sim.alive_nodes()) == 5

    def test_uniform_churn_arrivals_rejected_at_construction(self):
        # A model that declares it produces arrivals is caught before the
        # run starts, not 40 rounds in.
        with pytest.raises(ValueError, match="node_factory"):
            make_sim(n=5, churn=UniformChurn(leave_rate=0.0, join_rate=0.5))

    def test_unknown_churn_arrivals_fail_at_runtime_with_round(self):
        # A model with unknown arrival behaviour defers the check to the
        # round in which arrivals actually appear; the error names it.
        class SurpriseArrivals(UniformChurn):
            @property
            def may_produce_arrivals(self):
                return None

        sim, _log = make_sim(
            n=5, churn=SurpriseArrivals(leave_rate=0.0, join_rate=0.5)
        )
        with pytest.raises(RuntimeError, match="round 1"):
            sim.run_round()

    def test_uniform_churn_with_factory_grows(self):
        log = []
        sim, _ = make_sim(
            n=4,
            churn=UniformChurn(leave_rate=0.0, join_rate=0.5),
            factory=lambda node_id: PhaseRecorder(node_id, log),
        )
        sim.run_round()
        assert len(sim.alive_nodes()) == 6

    def test_churn_validation(self):
        with pytest.raises(ValueError):
            UniformChurn(leave_rate=1.0, join_rate=0.0)
        with pytest.raises(ValueError):
            CatastrophicFailure(at_round=1, fraction=1.5)

    def test_crashed_nodes_excluded_from_churn_candidates(self):
        # Regression: the engine used to offer every *registered* ID to the
        # churn model, so a crashed (alive=False) node could be picked as a
        # departure — silently swallowing the event — and still counted
        # toward UniformChurn's arrival population.
        class RecordingChurn(NoChurn):
            def __init__(self):
                self.offered = []

            def events_for_round(self, round_number, alive_ids, rng):
                self.offered.append(list(alive_ids))
                return ChurnEvent(departures=[], arrivals=0)

        churn = RecordingChurn()
        sim, _log = make_sim(n=5, churn=churn)
        sim.set_node_alive(1, False)
        sim.set_node_alive(3, False)
        sim.run_round()
        assert churn.offered == [[0, 2, 4]]

    def test_crashed_nodes_do_not_inflate_arrival_population(self):
        # UniformChurn sizes arrivals off the population it is offered:
        # with join_rate=1.0 and 2 of 4 nodes crashed, exactly 2 fresh
        # nodes must arrive (4 before the fix).
        log = []
        sim, _ = make_sim(
            n=4,
            churn=UniformChurn(leave_rate=0.0, join_rate=1.0),
            factory=lambda node_id: PhaseRecorder(node_id, log),
        )
        sim.set_node_alive(0, False)
        sim.set_node_alive(2, False)
        sim.run_round()
        arrivals = [nid for nid in sim.nodes if nid >= 4]
        assert arrivals == [4, 5]

    def test_crash_restart_survives_total_departure_churn(self):
        # A node that is down during a churn wave must not be *departed*
        # (permanently removed) by it: crash/restart and churn are distinct
        # lifecycles.  With leave_rate≈1 every alive node departs, but the
        # crashed node stays registered and can come back.
        sim, _log = make_sim(n=4, churn=UniformChurn(leave_rate=0.99, join_rate=0.0))
        sim.set_node_alive(3, False)
        for _ in range(5):
            sim.run_round()
        assert 3 in sim.nodes
        sim.set_node_alive(3, True)
        assert sim.alive_nodes() == [sim.nodes[3]]

    def test_catastrophic_failure_below_one_node_kills_nobody(self):
        # fraction·N < 1 truncates to zero departures — the wave is a no-op,
        # not a crash or a single-node kill.
        sim, _log = make_sim(
            n=10, churn=CatastrophicFailure(at_round=1, fraction=0.09)
        )
        sim.run(2)
        assert len(sim.alive_nodes()) == 10

    def test_arrivals_gossip_in_their_join_round(self):
        # Churn is applied at the start of the round, so a node arriving at
        # round r runs begin/gossip/end in round r — not r+1.
        log = []
        sim, _ = make_sim(
            n=4,
            churn=UniformChurn(leave_rate=0.0, join_rate=0.5),
            factory=lambda node_id: PhaseRecorder(node_id, log),
        )
        sim.run_round()
        new_ids = [nid for nid in sim.nodes if nid >= 4]
        assert new_ids == [4, 5]
        for nid in new_ids:
            assert ("gossip", nid, 1) in log


class TestBootstrap:
    def test_excludes_self(self):
        bootstrap = UniformBootstrap(list(range(10)), random.Random(0))
        for _ in range(20):
            view = bootstrap.initial_view(3, 5)
            assert 3 not in view
            assert len(view) == 5

    def test_small_membership_returns_everyone_else(self):
        bootstrap = UniformBootstrap([0, 1, 2], random.Random(0))
        assert sorted(bootstrap.initial_view(0, 10)) == [1, 2]

    def test_empty_membership_rejected(self):
        with pytest.raises(ValueError):
            UniformBootstrap([], random.Random(0))


class TestObservers:
    def test_view_trace_records_fractions(self):
        sim, _log = make_sim(n=3)
        for node in sim.nodes.values():
            node.seed_view([0, 1, 2])
        trace = ViewTraceObserver()
        sim.run(2, observers=[trace])
        assert len(trace.records) == 2
        record = trace.records[-1]
        assert set(record.byzantine_fraction) == {0, 1, 2}
        assert record.mean_byzantine_fraction == 0.0

    def test_discovery_observer_thresholds(self):
        sim, _log = make_sim(n=4)
        for node in sim.nodes.values():
            node.seed_view([0, 1, 2, 3])  # everyone knows everyone
        discovery = DiscoveryObserver(threshold=0.75)
        sim.run(1, observers=[discovery])
        assert discovery.all_discovered_round(sim) == 1

    def test_discovery_threshold_validation(self):
        with pytest.raises(ValueError):
            DiscoveryObserver(threshold=0.0)

    def test_discovery_not_reached_returns_minus_one(self):
        sim, _log = make_sim(n=4)
        discovery = DiscoveryObserver(threshold=0.9)
        sim.run(1, observers=[discovery])
        assert discovery.all_discovered_round(sim) == -1
