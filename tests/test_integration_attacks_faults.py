"""Integration: targeted attacks, lossy networks, and combined faults."""

import statistics

import pytest

from repro.core.eviction import AdaptiveEviction
from repro.experiments.runner import run_bundle
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)

SEED = 23


class TestTargetedAttack:
    def _victim_pollution(self, blocking: bool, rounds: int = 40):
        import dataclasses
        spec = TopologySpec(n_nodes=150, byzantine_fraction=0.2, view_ratio=0.08)
        config = dataclasses.replace(spec.brahms_config(), blocking_enabled=blocking)
        bundle = build_brahms_simulation(
            spec, SEED, adversary_strategy="targeted", config_override=config
        )
        victims = list(range(spec.n_byzantine, spec.n_byzantine + 10))
        bundle.coordinator.flood_targets = victims
        bundle.coordinator.flood_share = 0.7
        bundle.run(rounds)
        tail = bundle.trace.records[-5:]
        return statistics.mean(
            record.byzantine_fraction[victim]
            for record in tail for victim in victims
        )

    def test_blocking_defends_flooded_victims(self):
        """Brahms defense (ii): victims of a concentrated push flood stay
        far cleaner with attack detection enabled."""
        with_blocking = self._victim_pollution(blocking=True)
        without_blocking = self._victim_pollution(blocking=False)
        assert with_blocking < without_blocking - 0.1

    def test_victims_survive_via_history_sample(self):
        """Even flooded victims are never fully eclipsed (defense iv)."""
        assert self._victim_pollution(blocking=True) < 0.95


class TestLossyNetwork:
    def test_raptee_works_under_message_loss(self):
        spec = TopologySpec(
            n_nodes=120, byzantine_fraction=0.1, trusted_fraction=0.1,
            view_ratio=0.1, loss_rate=0.10,
        )
        bundle = build_raptee_simulation(spec, SEED, eviction=AdaptiveEviction())
        metrics = run_bundle(bundle, rounds=30)
        assert 0.0 < metrics.resilience < 1.0
        # Gossip still disseminates despite 10 % loss.
        known = statistics.mean(
            len(node.known_ids()) for node in bundle.simulation.correct_nodes()
        )
        assert known > 60

    def test_loss_degrades_gracefully_not_catastrophically(self):
        results = {}
        for loss in (0.0, 0.2):
            spec = TopologySpec(
                n_nodes=120, byzantine_fraction=0.1, trusted_fraction=0.1,
                view_ratio=0.1, loss_rate=loss,
            )
            bundle = build_raptee_simulation(spec, SEED, eviction=AdaptiveEviction())
            run_bundle(bundle, rounds=30)
            results[loss] = statistics.mean(
                len(node.known_ids()) for node in bundle.simulation.correct_nodes()
            )
        # Some slowdown is fine; collapse is not.
        assert results[0.2] > results[0.0] * 0.5


class TestChurnWithAdversary:
    def test_raptee_survives_churn_under_attack(self):
        from repro.sim.churn import UniformChurn
        spec = TopologySpec(
            n_nodes=120, byzantine_fraction=0.1, trusted_fraction=0.1, view_ratio=0.1
        )
        bundle = build_raptee_simulation(spec, SEED, eviction=AdaptiveEviction())
        # 2 % of correct nodes leave each round; no arrivals (paper's
        # metrics need a stable target set, so we only test departures).
        correct = sorted(bundle.simulation.correct_node_ids())
        departing = set(correct[: len(correct) // 3])

        class DepartSome:
            def __init__(self):
                self.queue = sorted(departing)

            def events_for_round(self, round_number, alive_ids, rng):
                from repro.sim.churn import ChurnEvent
                leave = self.queue[:2]
                self.queue = self.queue[2:]
                return ChurnEvent(departures=leave, arrivals=0)

        bundle.simulation._churn = DepartSome()
        bundle.run(25)
        sim = bundle.simulation
        alive_correct = sim.correct_nodes()
        assert alive_correct
        # Alive nodes' views hold mostly alive peers (departed get flushed).
        alive_ids = {node.node_id for node in sim.alive_nodes()} | sim.byzantine_ids
        staleness = statistics.mean(
            sum(1 for peer in node.view_ids() if peer not in alive_ids)
            / max(1, len(node.view_ids()))
            for node in alive_correct
        )
        assert staleness < 0.35
