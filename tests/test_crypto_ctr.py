"""AES-CTR stream mode tests."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.ctr import AesCtr, NONCE_SIZE

KEY = bytes(range(16))
NONCE = b"\x01" * NONCE_SIZE


class TestCtrBasics:
    def test_rejects_bad_nonce(self):
        with pytest.raises(ValueError):
            AesCtr(KEY, b"short")

    def test_empty_message(self):
        assert AesCtr(KEY, NONCE).encrypt(b"") == b""

    def test_ciphertext_length_matches_plaintext(self):
        for length in (1, 15, 16, 17, 100):
            assert len(AesCtr(KEY, NONCE).encrypt(b"a" * length)) == length

    def test_decrypt_is_encrypt(self):
        cipher = AesCtr(KEY, NONCE)
        message = b"raptee trusted gossip"
        assert cipher.decrypt(cipher.encrypt(message)) == message

    def test_nonce_changes_keystream(self):
        message = bytes(32)
        first = AesCtr(KEY, b"\x00" * 8).encrypt(message)
        second = AesCtr(KEY, b"\x01" * 8).encrypt(message)
        assert first != second

    def test_key_changes_keystream(self):
        message = bytes(32)
        assert AesCtr(KEY, NONCE).encrypt(message) != AesCtr(bytes(16), NONCE).encrypt(message)

    def test_initial_counter_offsets_keystream(self):
        message = bytes(48)
        full = AesCtr(KEY, NONCE).encrypt(message)
        # Encrypting the tail starting at counter=1 must equal the tail of
        # the full encryption (CTR is seekable).
        tail = AesCtr(KEY, NONCE).encrypt(message[16:], initial_counter=1)
        assert tail == full[16:]

    def test_known_involution_on_random_data(self):
        cipher = AesCtr(KEY, NONCE)
        data = bytes(range(256)) * 3
        assert cipher.encrypt(cipher.encrypt(data)) == data  # XOR twice = id


class TestCtrProperties:
    @given(message=st.binary(max_size=300))
    def test_roundtrip(self, message):
        cipher = AesCtr(KEY, NONCE)
        assert cipher.decrypt(cipher.encrypt(message)) == message

    @given(message=st.binary(min_size=1, max_size=200))
    def test_ciphertext_differs_from_plaintext(self, message):
        # The keystream would need to be all-zero to leak the plaintext.
        assert AesCtr(KEY, NONCE).encrypt(message) != message
