"""Differential equivalence: the shard count is a pure performance knob.

The shard engine's contract (the ordering barrier in
:mod:`repro.shard.engine`): for the same config, every observable artifact
— exported trace JSONL, metrics CSV, final views, lifetime network totals
— is **byte-identical** across shard counts, worker counts, and numeric
backends.  Pinned scenarios cover the feature families the barrier has to
order deterministically:

* the Brahms baseline under message loss with encrypted transport;
* RAPTEE with trusted nodes, adaptive eviction, a loss burst and
  crash/restart faults (the "faults run" the invariance matrix demands);
* periodic sampler validation with crashes (mid-run sampler resets).

A reduced-N shard sweep doubles as the N = 10,000 CI stand-in; the real
paper-scale population runs only when ``REPRO_FULL_SCALE`` is set (its
wall-clock is minutes, recorded in ``BENCH_shard.json``).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.scenarios import TopologySpec
from repro.perf.kernels import HAVE_NUMPY
from repro.shard import ShardArtifacts, run_sharded
from repro.shard.compile import shard_config_from_topology
from repro.shard.state import ShardConfig


def _brahms_loss_config() -> ShardConfig:
    topology = TopologySpec(
        n_nodes=60, byzantine_fraction=0.10, view_ratio=0.14,
        loss_rate=0.08, transport_encryption=True,
    )
    return shard_config_from_topology(topology, seed=11, protocol="brahms")


def _raptee_faults_config() -> ShardConfig:
    from repro.core.eviction import AdaptiveEviction

    topology = TopologySpec(
        n_nodes=80, byzantine_fraction=0.10, trusted_fraction=0.30,
        view_ratio=0.12, loss_rate=0.05, transport_encryption=True,
    )
    return shard_config_from_topology(
        topology, seed=7, protocol="raptee",
        eviction=AdaptiveEviction(0.2, 0.8, 0.1, 0.6),
        loss_bursts=((4, 6, 0.3),),
        crashes=((20, 3, 4), (35, 5, 3)),
    )


def _validation_config() -> ShardConfig:
    topology = TopologySpec(
        n_nodes=50, byzantine_fraction=0.10, view_ratio=0.16,
    )
    config = shard_config_from_topology(topology, seed=3, protocol="brahms")
    from dataclasses import replace

    return replace(config, validation_period=5, crashes=((10, 2, 3), (22, 6, 2)))


SCENARIOS = {
    "brahms-loss-encrypted": (_brahms_loss_config, 12),
    "raptee-faults": (_raptee_faults_config, 15),
    "sampler-validation-crashes": (_validation_config, 12),
}


def _assert_identical(probe: ShardArtifacts, baseline: ShardArtifacts,
                      label: str) -> None:
    assert probe.trace_jsonl == baseline.trace_jsonl, label
    assert probe.metrics_csv == baseline.metrics_csv, label
    assert probe.final_views == baseline.final_views, label
    assert probe.network_totals == baseline.network_totals, label


@pytest.fixture(scope="module", params=sorted(SCENARIOS))
def baseline(request):
    build, rounds = SCENARIOS[request.param]
    artifacts = run_sharded(build(), rounds=rounds, shards=1,
                            trace_messages=True)
    return request.param, rounds, artifacts


class TestShardCountInvariance:
    @pytest.mark.parametrize("shards", [2, 4, 7])
    def test_shards_are_byte_invisible(self, baseline, shards):
        name, rounds, reference = baseline
        build, _ = SCENARIOS[name]
        probe = run_sharded(build(), rounds=rounds, shards=shards,
                            trace_messages=True)
        _assert_identical(probe, reference, f"{name} shards={shards}")

    def test_workers_are_byte_invisible(self, baseline):
        name, rounds, reference = baseline
        build, _ = SCENARIOS[name]
        probe = run_sharded(build(), rounds=rounds, shards=3, workers=2,
                            trace_messages=True)
        _assert_identical(probe, reference, f"{name} workers=2")

    @pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy to differ")
    def test_pure_backend_matches_numpy(self, baseline):
        name, rounds, reference = baseline
        build, _ = SCENARIOS[name]
        probe = run_sharded(build(), rounds=rounds, shards=2, use_numpy=False,
                            trace_messages=True)
        _assert_identical(probe, reference, f"{name} pure backend")


class TestRunnerDeterminism:
    def test_rerun_is_byte_identical(self):
        build, rounds = SCENARIOS["raptee-faults"]
        first = run_sharded(build(), rounds=rounds, shards=4,
                            trace_messages=True)
        second = run_sharded(build(), rounds=rounds, shards=4,
                             trace_messages=True)
        _assert_identical(second, first, "re-run")

    def test_faults_actually_fired(self):
        build, rounds = SCENARIOS["raptee-faults"]
        artifacts = run_sharded(build(), rounds=rounds, shards=4)
        # The crash/restart schedule must be visible in the run — a dead
        # node drops out of the final views' liveness set while down and
        # the burst window raises losses; if the totals went to zero the
        # scenario would no longer pin what it claims to.
        assert artifacts.network_totals["messages_lost"] > 0
        assert artifacts.network_totals["bytes_encrypted"] > 0
        state = artifacts.simulation.state
        assert state.evicted_ids > 0


class TestPaperScale:
    def test_reduced_scale_shard_sweep(self):
        # The CI stand-in for N = 10,000: same code path, every batch
        # kernel engaged, population cut to keep it in CI time.
        topology = TopologySpec(
            n_nodes=400, byzantine_fraction=0.10, view_ratio=0.05,
            loss_rate=0.01,
        )
        config = shard_config_from_topology(topology, seed=1, protocol="brahms")
        reference = run_sharded(config, rounds=3, shards=1)
        probe = run_sharded(config, rounds=3, shards=8)
        _assert_identical(probe, reference, "n=400 shards=8")

    @pytest.mark.skipif(
        not os.environ.get("REPRO_FULL_SCALE"),
        reason="paper-scale population; set REPRO_FULL_SCALE=1 to run "
               "(minutes of wall-clock — the pinned numbers live in "
               "BENCH_shard.json)",
    )
    def test_full_scale_10k_smoke(self):
        topology = TopologySpec(
            n_nodes=10_000, byzantine_fraction=0.10, view_ratio=0.02,
            loss_rate=0.01,
        )
        config = shard_config_from_topology(
            topology, seed=1, protocol="brahms",
            brahms=topology.brahms_config().scaled(10_000, view_ratio=0.02),
        )
        artifacts = run_sharded(config, rounds=2, shards=8)
        views = artifacts.final_views
        assert len(views) == 10_000
        assert artifacts.network_totals["pushes_sent"] > 0
