"""RAPTEE enclave and node tests."""

import random

import pytest

from repro.core.config import RapteeConfig
from repro.core.eviction import FixedEviction
from repro.core.node import RapteeNode
from repro.brahms.config import BrahmsConfig
from repro.brahms.node import PulledBatch
from repro.sgx.errors import EnclaveViolation, ProvisioningError
from repro.sim.messages import (
    AuthChallenge,
    AuthConfirm,
    AuthResponse,
    AuthResult,
    PullReply,
    PullRequest,
    TrustedSwapReply,
    TrustedSwapRequest,
)
from repro.sim.node import NodeKind


@pytest.fixture
def config(small_brahms_config):
    return RapteeConfig(brahms=small_brahms_config)


@pytest.fixture
def trusted_node(config, infrastructure):
    enclave, _device = infrastructure.new_trusted_enclave(100)
    node = RapteeNode(100, NodeKind.TRUSTED, config, random.Random(1), enclave=enclave)
    node.seed_view(list(range(1, 11)))
    return node


@pytest.fixture
def honest_node(config):
    node = RapteeNode(200, NodeKind.HONEST, config, random.Random(2))
    node.seed_view(list(range(1, 11)))
    return node


class TestEnclaveProvisioning:
    def test_infrastructure_provisions(self, infrastructure):
        enclave, _device = infrastructure.new_trusted_enclave(1)
        assert enclave.is_provisioned()

    def test_group_key_is_unreachable(self, infrastructure):
        enclave, _device = infrastructure.new_trusted_enclave(2)
        with pytest.raises(EnclaveViolation):
            _ = enclave._group_key

    def test_unprovisioned_enclave_refuses_auth(self, prng):
        from repro.core.enclave import RapteeEnclave
        from repro.sgx.enclave import SgxDevice

        device = SgxDevice(50, prng.spawn("d"))
        host = device.load(RapteeEnclave, provisioning_key_bits=384)
        with pytest.raises(ProvisioningError):
            host.auth_respond(b"r" * 16)

    def test_seal_and_restore_roundtrip(self, infrastructure, prng):
        from repro.core.enclave import RapteeEnclave
        from repro.sgx.enclave import SgxDevice

        enclave, device = infrastructure.new_trusted_enclave(3)
        blob = enclave.seal_group_key()
        # A fresh (restarted) enclave on the SAME device restores the key.
        fresh = device.load(RapteeEnclave, provisioning_key_bits=384)
        assert not fresh.is_provisioned()
        fresh.restore_group_key(blob)
        assert fresh.is_provisioned()
        # Both enclaves now authenticate each other.
        r_a = b"c" * 16
        r_b, proof = fresh.auth_respond(r_a)
        assert enclave.auth_check_response(r_a, r_b, proof)

    def test_sealed_blob_does_not_restore_on_other_device(self, infrastructure, prng):
        from repro.core.enclave import RapteeEnclave
        from repro.sgx.enclave import SgxDevice
        from repro.sgx.errors import SealingError

        enclave, _device = infrastructure.new_trusted_enclave(4)
        blob = enclave.seal_group_key()
        other_device = SgxDevice(999, prng.spawn("other"))
        other = other_device.load(RapteeEnclave, provisioning_key_bits=384)
        with pytest.raises(SealingError):
            other.restore_group_key(blob)

    def test_two_enclaves_share_the_group_key(self, infrastructure):
        a, _ = infrastructure.new_trusted_enclave(5)
        b, _ = infrastructure.new_trusted_enclave(6)
        r_a = b"x" * 16
        r_b, proof = b.auth_respond(r_a)
        assert a.auth_check_response(r_a, r_b, proof)


class TestNodeConstruction:
    def test_trusted_requires_enclave(self, config):
        with pytest.raises(ValueError):
            RapteeNode(1, NodeKind.TRUSTED, config, random.Random(0))

    def test_untrusted_must_not_carry_enclave(self, config, infrastructure):
        enclave, _ = infrastructure.new_trusted_enclave(7)
        with pytest.raises(ValueError):
            RapteeNode(1, NodeKind.HONEST, config, random.Random(0), enclave=enclave)

    def test_trusted_requires_provisioned_enclave(self, config, prng):
        from repro.core.enclave import RapteeEnclave
        from repro.sgx.enclave import SgxDevice

        device = SgxDevice(51, prng.spawn("d51"))
        host = device.load(RapteeEnclave, provisioning_key_bits=384)
        with pytest.raises(ValueError, match="provisioned"):
            RapteeNode(1, NodeKind.TRUSTED, config, random.Random(0), enclave=host)


class TestAuthFlows:
    def test_trusted_pair_authenticates(self, config, infrastructure):
        enclave_a, _ = infrastructure.new_trusted_enclave(301)
        enclave_b, _ = infrastructure.new_trusted_enclave(302)
        a = RapteeNode(301, NodeKind.TRUSTED, config, random.Random(3), enclave=enclave_a)
        b = RapteeNode(302, NodeKind.TRUSTED, config, random.Random(4), enclave=enclave_b)
        b.begin_round(None)

        r_a = b"r" * 16
        response = b.handle_request(AuthChallenge(sender=301, r_a=r_a))
        assert isinstance(response, AuthResponse)
        assert a.enclave.auth_check_response(r_a, response.r_b, response.proof)
        confirm_proof = a.enclave.auth_confirm(r_a, response.r_b)
        ack = b.handle_request(AuthConfirm(sender=301, proof=confirm_proof))
        assert isinstance(ack, AuthResult) and ack.mutual
        assert 301 in b._trusted_sessions

    def test_honest_responder_never_validates(self, honest_node, trusted_node):
        honest_node.begin_round(None)
        r_a = b"r" * 16
        response = honest_node.handle_request(AuthChallenge(sender=100, r_a=r_a))
        assert isinstance(response, AuthResponse)
        assert not trusted_node.enclave.auth_check_response(r_a, response.r_b, response.proof)

    def test_confirm_without_challenge_is_rejected(self, trusted_node):
        trusted_node.begin_round(None)
        ack = trusted_node.handle_request(AuthConfirm(sender=55, proof=b"junk"))
        assert isinstance(ack, AuthResult) and not ack.mutual


class TestTrustedSwapGuard:
    def test_swap_requires_prior_authentication(self, trusted_node):
        trusted_node.begin_round(None)
        reply = trusted_node.handle_request(
            TrustedSwapRequest(sender=666, offered=(1, 2, 3))
        )
        assert reply is None  # not in _trusted_sessions

    def test_swap_after_authentication(self, config, infrastructure):
        enclave_a, _ = infrastructure.new_trusted_enclave(311)
        enclave_b, _ = infrastructure.new_trusted_enclave(312)
        a = RapteeNode(311, NodeKind.TRUSTED, config, random.Random(5), enclave=enclave_a)
        b = RapteeNode(312, NodeKind.TRUSTED, config, random.Random(6), enclave=enclave_b)
        b.seed_view(list(range(1, 11)))
        b.begin_round(None)
        r_a = b"r" * 16
        response = b.handle_request(AuthChallenge(sender=311, r_a=r_a))
        confirm = a.enclave.auth_confirm(r_a, response.r_b)
        b.handle_request(AuthConfirm(sender=311, proof=confirm))

        reply = b.handle_request(TrustedSwapRequest(sender=311, offered=(901, 902)))
        assert isinstance(reply, TrustedSwapReply)
        assert len(reply.offered) >= 1
        assert 901 in b.view and 902 in b.view  # swap applied
        assert any(batch.trusted_source for batch in b._pulled)

    def test_swap_disabled_by_config(self, small_brahms_config, infrastructure):
        config = RapteeConfig(brahms=small_brahms_config, trusted_exchange_enabled=False)
        enclave, _ = infrastructure.new_trusted_enclave(313)
        node = RapteeNode(313, NodeKind.TRUSTED, config, random.Random(7), enclave=enclave)
        node.begin_round(None)
        node._trusted_sessions.add(700)
        assert node.handle_request(TrustedSwapRequest(sender=700, offered=(1,))) is None

    def test_honest_node_never_answers_swaps(self, honest_node):
        honest_node.begin_round(None)
        honest_node._trusted_sessions.add(1)  # even if somehow marked
        assert honest_node.handle_request(TrustedSwapRequest(sender=1, offered=(9,))) is None


class TestEviction:
    def _prime(self, node, untrusted_ids, trusted_ids=()):
        node.begin_round(None)
        if untrusted_ids:
            node._pulled.append(PulledBatch(source=1, ids=tuple(untrusted_ids)))
            node._id_contacts += 1
        if trusted_ids:
            node._pulled.append(
                PulledBatch(source=2, ids=tuple(trusted_ids), trusted_source=True)
            )
            node._id_contacts += 1
            node._trusted_id_contacts += 1

    def test_full_eviction_drops_all_untrusted(self, small_brahms_config, infrastructure):
        config = RapteeConfig(brahms=small_brahms_config, eviction=FixedEviction(1.0))
        enclave, _ = infrastructure.new_trusted_enclave(320)
        node = RapteeNode(320, NodeKind.TRUSTED, config, random.Random(8), enclave=enclave)
        self._prime(node, untrusted_ids=range(50, 60), trusted_ids=(7, 8))
        effective = node._effective_pulled_ids()
        assert set(effective) == {7, 8}
        assert node.evicted_ids_total == 10

    def test_zero_eviction_keeps_everything(self, small_brahms_config, infrastructure):
        config = RapteeConfig(brahms=small_brahms_config, eviction=FixedEviction(0.0))
        enclave, _ = infrastructure.new_trusted_enclave(321)
        node = RapteeNode(321, NodeKind.TRUSTED, config, random.Random(9), enclave=enclave)
        self._prime(node, untrusted_ids=range(50, 60))
        assert sorted(node._effective_pulled_ids()) == list(range(50, 60))

    def test_partial_eviction_fraction(self, small_brahms_config, infrastructure):
        config = RapteeConfig(brahms=small_brahms_config, eviction=FixedEviction(0.6))
        enclave, _ = infrastructure.new_trusted_enclave(322)
        node = RapteeNode(322, NodeKind.TRUSTED, config, random.Random(10), enclave=enclave)
        self._prime(node, untrusted_ids=range(100, 200))
        kept = node._effective_pulled_ids()
        assert len(kept) == 40  # kept 40 % of 100

    def test_trusted_sources_never_evicted(self, small_brahms_config, infrastructure):
        config = RapteeConfig(brahms=small_brahms_config, eviction=FixedEviction(1.0))
        enclave, _ = infrastructure.new_trusted_enclave(323)
        node = RapteeNode(323, NodeKind.TRUSTED, config, random.Random(11), enclave=enclave)
        self._prime(node, untrusted_ids=(), trusted_ids=tuple(range(70, 80)))
        assert sorted(node._effective_pulled_ids()) == list(range(70, 80))

    def test_adaptive_rate_recorded(self, config, infrastructure):
        enclave, _ = infrastructure.new_trusted_enclave(324)
        node = RapteeNode(324, NodeKind.TRUSTED, config, random.Random(12), enclave=enclave)
        self._prime(node, untrusted_ids=range(20), trusted_ids=(1, 2))
        node._effective_pulled_ids()
        assert node.last_eviction_rate == pytest.approx(0.5)  # share = 1/2

    def test_honest_node_never_evicts(self, honest_node):
        honest_node.begin_round(None)
        honest_node._pulled.append(PulledBatch(source=1, ids=tuple(range(30))))
        assert len(honest_node._effective_pulled_ids()) == 30
        assert honest_node.evicted_ids_total == 0

    def test_eviction_disabled_by_config(self, small_brahms_config, infrastructure):
        config = RapteeConfig(
            brahms=small_brahms_config,
            eviction=FixedEviction(1.0),
            eviction_enabled=False,
        )
        enclave, _ = infrastructure.new_trusted_enclave(325)
        node = RapteeNode(325, NodeKind.TRUSTED, config, random.Random(13), enclave=enclave)
        self._prime(node, untrusted_ids=range(10))
        assert len(node._effective_pulled_ids()) == 10
