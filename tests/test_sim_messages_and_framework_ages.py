"""Message dataclasses and framework aging behaviour."""

import dataclasses
import random

import pytest

from repro.gossip.cyclon import CyclonNode
from repro.sim.bootstrap import UniformBootstrap
from repro.sim.engine import Simulation
from repro.sim.messages import (
    AuthChallenge,
    AuthResponse,
    PullReply,
    PullRequest,
    Push,
    TrustedSwapRequest,
)
from repro.sim.network import Network


class TestMessages:
    def test_messages_are_frozen(self):
        message = Push(sender=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            message.sender = 2

    def test_pull_reply_defaults_empty(self):
        assert PullReply(sender=1).ids == ()

    def test_equality_by_value(self):
        assert PullRequest(sender=3) == PullRequest(sender=3)
        assert AuthChallenge(sender=1, r_a=b"x") != AuthChallenge(sender=1, r_a=b"y")

    def test_auth_response_fields(self):
        response = AuthResponse(sender=2, r_b=b"n" * 16, proof=b"p" * 32)
        assert response.r_b == b"n" * 16
        assert len(response.proof) == 32

    def test_swap_request_carries_offer(self):
        request = TrustedSwapRequest(sender=5, offered=(1, 2, 3))
        assert request.offered == (1, 2, 3)


class TestFrameworkAging:
    def test_ages_advance_each_cycle(self):
        """Entries not refreshed by exchanges grow older every round."""
        network = Network(random.Random(0))
        nodes = [CyclonNode(i, 6, random.Random(i)) for i in range(12)]
        bootstrap = UniformBootstrap(list(range(12)), random.Random(0))
        for node in nodes:
            node.seed_view(bootstrap.initial_view(node.node_id, 6))
        sim = Simulation(network, nodes, random.Random(0))
        sim.run(5)
        # After 5 cycles, every node's view holds aged entries but none
        # impossibly old (the oldest-first probing refreshes the tail).
        for node in nodes:
            ages = [entry.age for entry in node.view.entries()]
            assert ages, "views must not be empty"
            assert all(0 <= age <= 6 for age in ages)

    def test_self_never_in_own_view(self):
        network = Network(random.Random(0))
        nodes = [CyclonNode(i, 6, random.Random(i)) for i in range(12)]
        bootstrap = UniformBootstrap(list(range(12)), random.Random(0))
        for node in nodes:
            node.seed_view(bootstrap.initial_view(node.node_id, 6))
        sim = Simulation(network, nodes, random.Random(0))
        sim.run(10)
        for node in nodes:
            assert node.node_id not in node.view_ids()
