"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.brahms.config import BrahmsConfig
from repro.core.config import RapteeConfig
from repro.core.deployment import TrustedInfrastructure
from repro.crypto.prng import Sha256Prng


@pytest.fixture
def rng() -> random.Random:
    """A fast deterministic RNG for protocol-level randomness."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def prng() -> Sha256Prng:
    """The deterministic SHA-256 PRNG for key material."""
    return Sha256Prng(0xC0FFEE)


@pytest.fixture
def small_brahms_config() -> BrahmsConfig:
    return BrahmsConfig(view_size=10, sample_size=5)


@pytest.fixture
def small_raptee_config(small_brahms_config) -> RapteeConfig:
    return RapteeConfig(brahms=small_brahms_config)


@pytest.fixture
def infrastructure(prng) -> TrustedInfrastructure:
    """A trusted computing base with fast (384-bit) provisioning keys."""
    return TrustedInfrastructure(prng.spawn("tcb"), provisioning_key_bits=384)
