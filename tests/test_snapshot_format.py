"""Unit tests for the snapshot envelope, capture layer and seed store."""

from __future__ import annotations

import copy
import json
import pickle
import random

import pytest

from repro.crypto.prng import Sha256Prng
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    RunState,
    SeedResultStore,
    SnapshotError,
    SnapshotVersionError,
    describe,
    restore,
    run_with_checkpoints,
    save,
)
from repro.snapshot.format import (
    SNAPSHOT_MAGIC,
    read_envelope,
    read_header,
    write_envelope,
)


def _small_sim(seed=3) -> Simulation:
    from repro.experiments.scenarios import TopologySpec, build_brahms_simulation

    spec = TopologySpec(n_nodes=12, byzantine_fraction=0.0, view_ratio=0.3)
    return build_brahms_simulation(spec, seed=seed).simulation


def _write_sample(path, state=None, kind="unit-test", meta=None):
    write_envelope(str(path), kind, meta or {"label": "x"}, state or {"a": 1})


def _rewrite_header(path, mutate):
    """Parse the header line, apply ``mutate``, and write the file back."""
    blob = path.read_bytes()
    body = blob[len(SNAPSHOT_MAGIC):]
    header_line, payload = body.split(b"\n", 1)
    header = json.loads(header_line)
    mutate(header)
    path.write_bytes(
        SNAPSHOT_MAGIC + json.dumps(header, sort_keys=True).encode() + b"\n" + payload
    )


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "state.snapshot"
        _write_sample(path, state={"rounds": [1, 2, 3]}, meta={"label": "demo"})
        header, state = read_envelope(str(path), expected_kind="unit-test")
        assert state == {"rounds": [1, 2, 3]}
        assert header["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert header["meta"] == {"label": "demo"}

    def test_header_readable_without_unpickling(self, tmp_path):
        path = tmp_path / "state.snapshot"
        _write_sample(path)
        # Corrupt the payload: the header must still parse fine.
        path.write_bytes(path.read_bytes()[:-4] + b"\xff\xff\xff\xff")
        header = read_header(str(path))
        assert header["kind"] == "unit-test"

    def test_version_mismatch_rejected_with_clear_error(self, tmp_path):
        path = tmp_path / "state.snapshot"
        _write_sample(path)
        _rewrite_header(path, lambda h: h.update(format_version=99))
        with pytest.raises(SnapshotVersionError, match="version 99"):
            read_header(str(path))
        with pytest.raises(SnapshotVersionError, match=str(SNAPSHOT_FORMAT_VERSION)):
            read_envelope(str(path))

    def test_missing_version_rejected(self, tmp_path):
        path = tmp_path / "state.snapshot"
        _write_sample(path)
        _rewrite_header(path, lambda h: h.pop("format_version"))
        with pytest.raises(SnapshotVersionError):
            read_header(str(path))

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "state.snapshot"
        path.write_bytes(b"definitely not a snapshot")
        with pytest.raises(SnapshotError, match="bad magic"):
            read_header(str(path))

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "state.snapshot"
        _write_sample(path, kind="other-kind")
        with pytest.raises(SnapshotError, match="expected 'unit-test'"):
            read_envelope(str(path), expected_kind="unit-test")

    def test_corrupt_payload_fails_checksum(self, tmp_path):
        path = tmp_path / "state.snapshot"
        _write_sample(path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="checksum"):
            read_envelope(str(path))

    def test_truncated_payload_rejected(self, tmp_path):
        path = tmp_path / "state.snapshot"
        _write_sample(path)
        path.write_bytes(path.read_bytes()[:-2])
        with pytest.raises(SnapshotError, match="truncated"):
            read_envelope(str(path))

    def test_unpicklable_state_raises_snapshot_error(self, tmp_path):
        path = tmp_path / "state.snapshot"
        with pytest.raises(SnapshotError, match="closure or lambda"):
            write_envelope(str(path), "unit-test", {}, lambda: None)
        # The atomic write never left a partial file behind.
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []


class TestPrngPickleFidelity:
    """PRNG streams must continue, not restart, across the pickle seam."""

    def test_sha256_prng_resumes_mid_stream(self):
        prng = Sha256Prng(0xC0FFEE)
        for _ in range(13):
            prng.random()
        clone = pickle.loads(pickle.dumps(prng))
        assert [clone.random() for _ in range(50)] == [
            prng.random() for _ in range(50)
        ]

    def test_mersenne_twister_resumes_mid_stream(self):
        rng = random.Random(42)
        rng.random()
        clone = pickle.loads(pickle.dumps(rng))
        assert [clone.random() for _ in range(50)] == [
            rng.random() for _ in range(50)
        ]

    def test_network_pickle_drops_cipher_cache_but_keeps_keys(self):
        network = Network(random.Random(7), loss_rate=0.0, encrypt=True)
        key = network._pair_key(1, 2)
        network._pair_cipher(1, 2)
        assert network._pair_ciphers
        clone = pickle.loads(pickle.dumps(network))
        assert clone._pair_ciphers == {}
        assert clone._pair_key(1, 2) == key


class TestCaptureRestore:
    def test_save_restore_bare_simulation(self, tmp_path):
        simulation = _small_sim(seed=3)
        simulation.run(2)
        path = tmp_path / "run.snapshot"
        state = save(simulation, str(path))
        assert isinstance(state, RunState)

        resumed = restore(str(path))
        assert resumed.rounds_completed == 2
        resumed.run_chunk(3)
        straight = _small_sim(seed=3)
        straight.run(5)
        assert {
            node_id: node.view_ids()
            for node_id, node in resumed.simulation.nodes.items()
        } == {
            node_id: node.view_ids()
            for node_id, node in straight.nodes.items()
        }

    def test_describe_exposes_meta_without_state(self, tmp_path):
        simulation = _small_sim(seed=3)
        simulation.run(2)
        path = tmp_path / "run.snapshot"
        save(RunState(simulation=simulation, rounds_total=9, label="demo",
                      extra={"experiment": "fig3"}), str(path))
        header = describe(str(path))
        assert header["kind"] == "run-state"
        assert header["meta"]["rounds_completed"] == 2
        assert header["meta"]["rounds_total"] == 9
        assert header["meta"]["label"] == "demo"
        assert header["meta"]["nodes"] == 12
        assert header["meta"]["experiment"] == "fig3"

    def test_save_rejects_foreign_objects(self, tmp_path):
        with pytest.raises(TypeError, match="cannot snapshot a dict"):
            save({"not": "a simulation"}, str(tmp_path / "x.snapshot"))

    def test_restore_rejects_other_kinds(self, tmp_path):
        path = tmp_path / "other.snapshot"
        _write_sample(path, kind="repeat-checkpoint")
        with pytest.raises(SnapshotError, match="run-state"):
            restore(str(path))


class TestRunWithCheckpoints:
    def test_checkpoints_written_every_chunk(self, tmp_path):
        path = tmp_path / "run.snapshot"
        simulation = _small_sim(seed=5)
        state = run_with_checkpoints(
            simulation, rounds=5, checkpoint_every=2, checkpoint_path=str(path)
        )
        assert state.rounds_completed == 5
        # The final chunk is checkpointed too, so the stored state is the
        # finished run and can seed an extension.
        final = restore(str(path))
        assert final.rounds_completed == 5
        extended = run_with_checkpoints(
            final, rounds=8, checkpoint_every=2, checkpoint_path=str(path)
        )
        assert extended.rounds_completed == 8

    def test_resume_honours_stored_target(self, tmp_path):
        path = tmp_path / "run.snapshot"
        state = RunState(simulation=_small_sim(seed=5), rounds_total=6)
        state.run_chunk(2)
        save(state, str(path))
        resumed = run_with_checkpoints(restore(str(path)))
        assert resumed.rounds_completed == 6

    def test_validation_errors(self, tmp_path):
        simulation = _small_sim(seed=5)
        with pytest.raises(ValueError, match="positive round target"):
            run_with_checkpoints(simulation)
        with pytest.raises(ValueError, match="non-negative"):
            run_with_checkpoints(simulation, rounds=3, checkpoint_every=-1)
        with pytest.raises(ValueError, match="checkpoint_path"):
            run_with_checkpoints(simulation, rounds=3, checkpoint_every=2)

    def test_rounds_target_already_met_is_noop(self, tmp_path):
        simulation = _small_sim(seed=5)
        simulation.run(4)
        before = copy.deepcopy(
            {nid: node.view_ids() for nid, node in simulation.nodes.items()}
        )
        state = run_with_checkpoints(simulation, rounds=4)
        assert state.rounds_completed == 4
        assert {
            nid: node.view_ids() for nid, node in state.simulation.nodes.items()
        } == before


class TestSnapshotCli:
    def test_info_prints_header(self, tmp_path, capsys):
        from repro.snapshot.__main__ import main

        path = tmp_path / "run.snapshot"
        simulation = _small_sim(seed=3)
        simulation.run(1)
        save(RunState(simulation=simulation, rounds_total=4, label="demo"),
             str(path))
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"format version:     {SNAPSHOT_FORMAT_VERSION}" in out
        assert "label:              demo" in out

    def test_version_mismatch_is_a_clean_error(self, tmp_path, capsys):
        from repro.snapshot.__main__ import main

        path = tmp_path / "old.snapshot"
        _write_sample(path, kind="run-state")
        _rewrite_header(path, lambda h: h.update(format_version=99))
        assert main(["info", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "version 99" in err

    def test_resume_of_garbage_file_is_a_clean_error(self, tmp_path, capsys):
        from repro.snapshot.__main__ import main

        path = tmp_path / "garbage"
        path.write_bytes(b"not a snapshot at all")
        assert main(["resume", str(path)]) == 1
        assert "bad magic" in capsys.readouterr().err


class TestSeedResultStore:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "repeat.json"
        store = SeedResultStore(str(path))
        assert store.results() == {}
        store.record(7, {"seed": 7, "pollution": 0.25})
        store.record(1, {"seed": 1, "pollution": 0.50})

        reloaded = SeedResultStore(str(path))
        assert reloaded.results() == {
            1: {"seed": 1, "pollution": 0.50},
            7: {"seed": 7, "pollution": 0.25},
        }

    def test_results_returns_a_copy(self, tmp_path):
        store = SeedResultStore(str(tmp_path / "repeat.json"))
        store.record(1, {"seed": 1})
        store.results().clear()
        assert store.results() == {1: {"seed": 1}}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "repeat.json"
        path.write_text(json.dumps(
            {"format_version": 99, "kind": "repeat-checkpoint", "results": {}}
        ))
        with pytest.raises(SnapshotVersionError, match="99"):
            SeedResultStore(str(path))

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "repeat.json"
        path.write_text(json.dumps(
            {"format_version": SNAPSHOT_FORMAT_VERSION, "kind": "run-state",
             "results": {}}
        ))
        with pytest.raises(SnapshotError, match="repeat-checkpoint"):
            SeedResultStore(str(path))

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "repeat.json"
        path.write_text("{not json")
        with pytest.raises(SnapshotError, match="corrupt"):
            SeedResultStore(str(path))
