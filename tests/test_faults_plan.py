"""Fault-plan schema: validation, windows, descriptions."""

import pytest

from repro.faults.plan import (
    AttestationOutageFault,
    CrashRestartFault,
    EclipseFault,
    EnclaveCrashFault,
    FaultPlan,
    LinkFault,
    LossBurstFault,
    OmissionFault,
    PartitionFault,
    ProvisioningFlakinessFault,
    RoundWindow,
    SealedBlobCorruptionFault,
)


class TestRoundWindow:
    def test_covers_is_inclusive(self):
        window = RoundWindow(3, 5)
        assert not window.covers(2)
        assert window.covers(3)
        assert window.covers(5)
        assert not window.covers(6)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            RoundWindow(0, 5)
        with pytest.raises(ValueError):
            RoundWindow(5, 4)

    def test_describe_single_round(self):
        assert RoundWindow(4, 4).describe() == "round 4"
        assert "2-9" in RoundWindow(2, 9).describe()


class TestFaultValidation:
    def test_link_fault_needs_distinct_endpoints(self):
        with pytest.raises(ValueError):
            LinkFault(1, 1, RoundWindow(1, 2)).validate()

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            LinkFault(1, 2, RoundWindow(1, 2), loss_rate=1.5).validate()
        with pytest.raises(ValueError):
            LossBurstFault(RoundWindow(1, 2), loss_rate=-0.1).validate()
        with pytest.raises(ValueError):
            OmissionFault(1, RoundWindow(1, 2), drop_rate=2.0).validate()
        with pytest.raises(ValueError):
            ProvisioningFlakinessFault(RoundWindow(1, 2), failure_rate=7.0).validate()

    def test_partition_groups_must_be_disjoint_and_non_empty(self):
        window = RoundWindow(1, 2)
        with pytest.raises(ValueError):
            PartitionFault(frozenset(), frozenset({1}), window).validate()
        with pytest.raises(ValueError):
            PartitionFault(frozenset({1, 2}), frozenset({2, 3}), window).validate()

    def test_eclipse_victim_not_allowed_peer(self):
        with pytest.raises(ValueError):
            EclipseFault(1, RoundWindow(1, 2), allowed=frozenset({1})).validate()

    def test_crash_restart_bounds(self):
        with pytest.raises(ValueError):
            CrashRestartFault(1, at_round=0, down_rounds=2).validate()
        with pytest.raises(ValueError):
            CrashRestartFault(1, at_round=3, down_rounds=0).validate()

    def test_point_faults_need_positive_round(self):
        for fault in (
            EnclaveCrashFault(1, at_round=0),
            SealedBlobCorruptionFault(1, at_round=0),
        ):
            with pytest.raises(ValueError):
                fault.validate()


class TestFaultPlan:
    def test_plan_validates_on_construction(self):
        with pytest.raises(ValueError):
            FaultPlan([LinkFault(1, 1, RoundWindow(1, 2))])
        with pytest.raises(TypeError):
            FaultPlan(["not a fault"])

    def test_of_type_filters(self):
        plan = FaultPlan([
            LinkFault(1, 2, RoundWindow(1, 2)),
            LossBurstFault(RoundWindow(3, 4), 0.5),
            LinkFault(2, 3, RoundWindow(1, 2)),
        ])
        assert len(plan.of_type(LinkFault)) == 2
        assert len(plan.of_type(LossBurstFault)) == 1
        assert len(plan) == 3

    def test_needs_sgx(self):
        assert not FaultPlan([LinkFault(1, 2, RoundWindow(1, 2))]).needs_sgx
        assert FaultPlan([AttestationOutageFault(RoundWindow(1, 2))]).needs_sgx
        assert FaultPlan([EnclaveCrashFault(1, at_round=2)]).needs_sgx

    def test_describe_lists_every_fault(self):
        plan = FaultPlan([
            LinkFault(1, 2, RoundWindow(1, 2)),
            EnclaveCrashFault(4, at_round=3),
        ])
        text = plan.describe()
        assert "2 fault(s)" in text
        assert "link 1->2" in text
        assert "node 4" in text

    def test_empty_plan(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert plan.describe() == "empty fault plan"
