"""Min-wise hash family tests."""

import random
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.crypto.minwise import (
    CryptoMinWiseHash,
    MERSENNE_PRIME_31,
    MinWiseFamily,
    MinWiseHash,
    scramble64,
)


class TestLinearHash:
    def test_output_range(self):
        h = MinWiseHash(a=12345, b=678)
        for value in (0, 1, 2**31, 2**63):
            assert 0 <= h(value) < MERSENNE_PRIME_31

    def test_deterministic(self):
        h = MinWiseHash(a=3, b=4)
        assert h(99) == h(99)

    def test_coefficient_validation(self):
        with pytest.raises(ValueError):
            MinWiseHash(a=0, b=0)
        with pytest.raises(ValueError):
            MinWiseHash(a=1, b=MERSENNE_PRIME_31)

    def test_known_value(self):
        expected = (2 * (scramble64(10) % MERSENNE_PRIME_31) + 3) % MERSENNE_PRIME_31
        assert MinWiseHash(a=2, b=3)(10) == expected

    @given(value=st.integers(min_value=0, max_value=2**62))
    def test_matches_direct_formula(self, value):
        h = MinWiseHash(a=7919, b=104729)
        expected = (7919 * (scramble64(value) % MERSENNE_PRIME_31) + 104729) % MERSENNE_PRIME_31
        assert h(value) == expected

    def test_scramble_is_injective_on_node_ids(self):
        ids = range(100_000)
        assert len({scramble64(value) for value in ids}) == 100_000


class TestCryptoHash:
    def test_range_is_61_bits(self):
        h = CryptoMinWiseHash(key=b"k" * 16)
        for value in (0, 1, 9999):
            assert 0 <= h(value) < (1 << 61)

    def test_key_sensitivity(self):
        a = CryptoMinWiseHash(key=b"a" * 16)
        b = CryptoMinWiseHash(key=b"b" * 16)
        assert a(42) != b(42)


class TestFamily:
    def test_draws_are_distinct(self):
        family = MinWiseFamily(random.Random(0))
        functions = [family.draw() for _ in range(10)]
        assert len({(f.a, f.b) for f in functions}) == 10

    def test_cryptographic_flag(self):
        family = MinWiseFamily(random.Random(0), cryptographic=True)
        assert isinstance(family.draw(), CryptoMinWiseHash)

    def test_min_selection_is_roughly_uniform(self):
        """Each of k stream elements should win the min-competition about
        equally often across independent draws (the min-wise property)."""
        rng = random.Random(5)
        family = MinWiseFamily(rng)
        elements = [100, 200, 300, 400, 500]
        winners = Counter()
        trials = 2000
        for _ in range(trials):
            h = family.draw()
            winners[min(elements, key=h)] += 1
        expected = trials / len(elements)
        for element in elements:
            assert abs(winners[element] - expected) < expected * 0.25
