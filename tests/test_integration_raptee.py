"""End-to-end integration tests: the paper's qualitative claims at test scale.

These run full simulations (N ≈ 100-200, tens of rounds) and assert the
*directional* results the paper reports — RAPTEE beats Brahms, trusted views
are cleaner than honest ones, eviction strengthens identification attacks,
the system survives churn — not exact percentages.
"""

import statistics

import pytest

from repro.adversary.identification import IdentificationAttack
from repro.analysis.metrics import resilience_from_trace
from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.experiments.runner import run_bundle
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)
from repro.sim.node import NodeKind

N = 150
ROUNDS = 45
SEED = 11


@pytest.fixture(scope="module")
def brahms_baseline():
    spec = TopologySpec(n_nodes=N, byzantine_fraction=0.2, view_ratio=0.08)
    return run_bundle(build_brahms_simulation(spec, SEED), rounds=ROUNDS)


@pytest.fixture(scope="module")
def raptee_run():
    spec = TopologySpec(
        n_nodes=N, byzantine_fraction=0.2, trusted_fraction=0.2, view_ratio=0.08
    )
    bundle = build_raptee_simulation(spec, SEED, eviction=AdaptiveEviction())
    metrics = run_bundle(bundle, rounds=ROUNDS)
    return bundle, metrics


class TestHeadlineResult:
    def test_brahms_views_get_polluted_beyond_byzantine_share(self, brahms_baseline):
        """Brahms at f=20 %: pollution far exceeds f (the Fig. 3 spiral)."""
        assert brahms_baseline.resilience > 0.30

    def test_raptee_reduces_byzantine_representation(self, brahms_baseline, raptee_run):
        _bundle, metrics = raptee_run
        assert metrics.resilience < brahms_baseline.resilience

    def test_trusted_views_cleaner_than_honest(self, raptee_run):
        bundle, _metrics = raptee_run
        record = bundle.trace.records[-1]
        trusted_mean = statistics.mean(record.by_kind[NodeKind.TRUSTED])
        honest_mean = statistics.mean(record.by_kind[NodeKind.HONEST])
        assert trusted_mean < honest_mean

    def test_byzantine_never_completes_trusted_exchange(self, raptee_run):
        bundle, _metrics = raptee_run
        for node in bundle.simulation.nodes.values():
            if node.kind is NodeKind.TRUSTED:
                # every trusted-source batch must come from a trusted node
                assert all(
                    source in bundle.trusted_ids
                    for source in (
                        batch.source for batch in node._pulled if batch.trusted_source
                    )
                )

    def test_trusted_exchanges_actually_happen(self, raptee_run):
        bundle, _metrics = raptee_run
        total = sum(
            node.trusted_exchanges_total
            for node in bundle.simulation.nodes.values()
            if node.kind is NodeKind.TRUSTED
        )
        assert total > 0

    def test_discovery_happens_for_most_nodes(self, raptee_run):
        bundle, _metrics = raptee_run
        correct = bundle.simulation.correct_node_ids()
        discovered = len(bundle.discovery.discovery_round)
        assert discovered >= 0.6 * len(correct)


class TestEvictionEffects:
    def test_full_eviction_cleans_trusted_views_most(self):
        """Trusted pollution should decrease monotonically-ish in ER."""
        spec = TopologySpec(
            n_nodes=N, byzantine_fraction=0.2, trusted_fraction=0.2, view_ratio=0.08
        )
        trusted_pollution = {}
        for rate in (0.0, 1.0):
            bundle = build_raptee_simulation(spec, SEED, eviction=FixedEviction(rate))
            run_bundle(bundle, rounds=ROUNDS)
            record = bundle.trace.records[-1]
            trusted_pollution[rate] = statistics.mean(record.by_kind[NodeKind.TRUSTED])
        assert trusted_pollution[1.0] < trusted_pollution[0.0]

    def test_eviction_rate_observed_matches_policy(self):
        spec = TopologySpec(
            n_nodes=100, byzantine_fraction=0.1, trusted_fraction=0.1, view_ratio=0.08
        )
        bundle = build_raptee_simulation(spec, SEED, eviction=FixedEviction(0.6))
        bundle.run(10)
        rates = [
            node.last_eviction_rate
            for node in bundle.simulation.nodes.values()
            if node.kind is NodeKind.TRUSTED and node.last_eviction_rate is not None
        ]
        assert rates and all(rate == 0.6 for rate in rates)


class TestIdentificationAttackIntegration:
    def _attack_f1(self, eviction, seed=SEED):
        spec = TopologySpec(
            n_nodes=N, byzantine_fraction=0.2, trusted_fraction=0.2, view_ratio=0.08
        )
        config = spec.brahms_config()
        bundle = build_raptee_simulation(
            spec, seed, eviction=eviction, probe_pulls=config.beta_count
        )
        bundle.run(20)
        attack = IdentificationAttack(bundle.coordinator)
        report = attack.classify(bundle.trusted_ids, since_round=1, until_round=20)
        return report

    def test_higher_eviction_is_more_identifiable(self):
        """§VI-A: the attack's effectiveness grows with the eviction rate."""
        low = self._attack_f1(FixedEviction(0.0))
        high = self._attack_f1(FixedEviction(1.0))
        assert high.f1 >= low.f1

    def test_full_eviction_attack_finds_some_trusted_nodes(self):
        report = self._attack_f1(FixedEviction(1.0))
        assert report.recall > 0.0


class TestPoisonedInjectionIntegration:
    def test_injected_nodes_self_heal(self):
        """§VI-B: poisoned trusted nodes run correct code and shed their
        poisoned views over time."""
        spec = TopologySpec(
            n_nodes=N,
            byzantine_fraction=0.1,
            trusted_fraction=0.1,
            poisoned_fraction=0.05,
            view_ratio=0.08,
        )
        bundle = build_raptee_simulation(spec, SEED, eviction=AdaptiveEviction())
        sim = bundle.simulation
        poisoned = [
            node for node in sim.nodes.values()
            if node.kind is NodeKind.POISONED_TRUSTED
        ]
        byzantine = sim.byzantine_ids
        initial = statistics.mean(
            sum(1 for peer in node.view if peer in byzantine) / len(node.view)
            for node in poisoned
        )
        assert initial > 0.8  # poisoned at injection (minus the join entries)
        bundle.run(ROUNDS)
        final = statistics.mean(
            sum(1 for peer in node.view if peer in byzantine) / max(1, len(node.view))
            for node in poisoned
        )
        assert final < 0.6  # self-healed well below full pollution


class TestChurnResilience:
    def test_brahms_survives_catastrophic_failure(self):
        from repro.sim.churn import CatastrophicFailure
        spec = TopologySpec(n_nodes=100, byzantine_fraction=0.0, view_ratio=0.08)
        bundle = build_brahms_simulation(spec, SEED)
        bundle.simulation._churn = CatastrophicFailure(at_round=10, fraction=0.3)
        bundle.run(40)
        alive = bundle.simulation.alive_nodes()
        assert len(alive) == 70
        dead = set(range(100)) - {node.node_id for node in alive}
        # Dead nodes mostly flushed from views (sampler validation + renewal).
        holding = [
            sum(1 for peer in node.view if peer in dead) / max(1, len(node.view))
            for node in alive
        ]
        assert statistics.mean(holding) < 0.10


class TestTransportEncryptionIntegration:
    def test_full_raptee_round_over_encrypted_transport(self):
        """The paper ciphers all pairwise traffic; the protocol must be
        oblivious to transport encryption."""
        spec = TopologySpec(n_nodes=40, byzantine_fraction=0.1, trusted_fraction=0.1,
                            view_ratio=0.2)
        plain = build_raptee_simulation(spec, 3, eviction=AdaptiveEviction())
        plain.run(3)
        encrypted = build_raptee_simulation(spec, 3, eviction=AdaptiveEviction())
        encrypted.simulation.network._encrypt = True
        encrypted.simulation.network._transport_secret = b"s" * 16
        encrypted.run(3)
        assert encrypted.simulation.network.stats.bytes_encrypted > 0
        # Identical protocol outcome: encryption is transparent.
        plain_views = {n.node_id: n.view_ids() for n in plain.simulation.correct_nodes()}
        enc_views = {n.node_id: n.view_ids() for n in encrypted.simulation.correct_nodes()}
        assert plain_views == enc_views
