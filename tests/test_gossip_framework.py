"""Gossip-PSS framework, partial view, Cyclon and Newscast tests."""

import random
import statistics
from collections import Counter

import pytest

from repro.gossip.cyclon import CyclonNode
from repro.gossip.framework import GossipPssConfig, GossipPssNode
from repro.gossip.newscast import NewscastNode
from repro.gossip.partial_view import PartialView, ViewEntry
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.node import NodeKind


class TestPartialView:
    def test_add_keeps_youngest_on_collision(self):
        view = PartialView(5)
        view.add(ViewEntry(1, age=5))
        view.add(ViewEntry(1, age=2))
        assert view.entries() == [ViewEntry(1, 2)]
        view.add(ViewEntry(1, age=9))  # older: ignored
        assert view.entries() == [ViewEntry(1, 2)]

    def test_oldest_peer(self):
        view = PartialView(5, [ViewEntry(1, 0), ViewEntry(2, 7), ViewEntry(3, 3)])
        assert view.oldest_peer() == 2

    def test_oldest_peer_empty(self):
        assert PartialView(5).oldest_peer() is None

    def test_increase_ages(self):
        view = PartialView(5, [ViewEntry(1, 0), ViewEntry(2, 1)])
        view.increase_ages()
        assert [entry.age for entry in view.entries()] == [1, 2]

    def test_remove_id(self):
        view = PartialView(5, [ViewEntry(1, 0), ViewEntry(2, 0)])
        assert view.remove_id(1)
        assert not view.remove_id(1)
        assert view.ids() == [2]

    def test_contains(self):
        view = PartialView(5, [ViewEntry(1, 0)])
        assert 1 in view
        assert 2 not in view

    def test_move_oldest_to_end(self):
        view = PartialView(5, [ViewEntry(1, 9), ViewEntry(2, 0), ViewEntry(3, 8)])
        view.move_oldest_to_end(2)
        assert view.ids()[0] == 2  # only the youngest stays at the head

    def test_select_caps_capacity(self):
        rng = random.Random(0)
        view = PartialView(3, [ViewEntry(i, i) for i in range(3)])
        buffer = [ViewEntry(i, 0) for i in range(10, 16)]
        view.select(buffer, healer=0, swapper=0, sent_count=0, rng=rng)
        assert len(view) == 3

    def test_select_heal_removes_oldest(self):
        rng = random.Random(0)
        view = PartialView(2, [ViewEntry(1, 99), ViewEntry(2, 0)])
        view.select([ViewEntry(3, 0)], healer=1, swapper=0, sent_count=0, rng=rng)
        assert 1 not in view  # the age-99 entry healed away

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PartialView(0)


class TestFrameworkConfig:
    def test_h_plus_s_bounded(self):
        with pytest.raises(ValueError):
            GossipPssConfig(view_size=10, healer=6, swapper=6)

    def test_peer_selection_validation(self):
        with pytest.raises(ValueError):
            GossipPssConfig(peer_selection="middle")

    def test_classic_instantiations(self):
        cyclon = GossipPssConfig.cyclon(20)
        assert (cyclon.healer, cyclon.swapper, cyclon.peer_selection) == (0, 10, "tail")
        newscast = GossipPssConfig.newscast(20)
        assert (newscast.healer, newscast.swapper, newscast.peer_selection) == (20, 0, "rand")
        raptee = GossipPssConfig.raptee_instantiation(20)
        assert raptee.swapper == 10 and raptee.push_pull


def run_overlay(node_class, n=60, view_size=8, rounds=25, seed=4, **kwargs):
    network = Network(random.Random(seed))
    nodes = [node_class(i, view_size, random.Random(seed * 999 + i), **kwargs) for i in range(n)]
    boot = random.Random(seed)
    for node in nodes:
        node.seed_view(boot.sample([m for m in range(n) if m != node.node_id], view_size))
    sim = Simulation(network, nodes, random.Random(seed))
    sim.run(rounds)
    return nodes


class TestOverlayProperties:
    def test_cyclon_views_stay_full_and_unique(self):
        nodes = run_overlay(CyclonNode)
        for node in nodes:
            ids = node.view_ids()
            assert len(ids) == 8
            assert len(set(ids)) == 8  # PartialView deduplicates
            assert node.node_id not in ids

    def test_cyclon_discovers_network(self):
        nodes = run_overlay(CyclonNode)
        for node in nodes:
            assert len(node.known) > 40

    def test_newscast_runs_and_discovers(self):
        nodes = run_overlay(NewscastNode)
        assert all(len(node.known) > 30 for node in nodes)

    def test_cyclon_in_degree_more_balanced_than_newscast(self):
        """The framework's headline empirical result (Jelasity et al.):
        swap-heavy protocols balance in-degree, heal-heavy ones do not."""
        cyclon_nodes = run_overlay(CyclonNode, seed=11)
        newscast_nodes = run_overlay(NewscastNode, seed=11)

        def in_degree_std(nodes):
            counter = Counter()
            for node in nodes:
                for peer in node.view_ids():
                    counter[peer] += 1
            return statistics.pstdev([counter[n.node_id] for n in nodes])

        assert in_degree_std(cyclon_nodes) < in_degree_std(newscast_nodes)

    def test_newscast_flushes_dead_nodes_fast(self):
        """Heal-heavy Newscast should purge a departed node from most views
        within a few cycles."""
        n, view_size, seed = 60, 8, 6
        network = Network(random.Random(seed))
        nodes = [NewscastNode(i, view_size, random.Random(seed * 999 + i)) for i in range(n)]
        boot = random.Random(seed)
        for node in nodes:
            node.seed_view(boot.sample([m for m in range(n) if m != node.node_id], view_size))
        sim = Simulation(network, nodes, random.Random(seed))
        sim.run(10)
        victim = 0
        sim.remove_node(victim)
        sim.run(15)
        holders = sum(1 for node in sim.alive_nodes() if victim in node.view_ids())
        assert holders <= 3

    def test_framework_node_with_empty_view_is_inert(self):
        network = Network(random.Random(0))
        node = GossipPssNode(0, GossipPssConfig(view_size=4, swapper=2), random.Random(0))
        sim = Simulation(network, [node], random.Random(0))
        sim.run(2)  # must not raise
        assert node.view_ids() == []
