"""Latency models: seeded determinism, spec parsing, link overrides."""

from __future__ import annotations

import math

import pytest

from repro.crypto.prng import Sha256Prng, derive_seed
from repro.events import (
    ConstantLatency,
    LatencyConfig,
    LogNormalLatency,
    UniformLatency,
    parse_latency_model,
    parse_load,
    percentile,
)


def _rng(*labels):
    return Sha256Prng(derive_seed(99, "test", *labels))


class TestModels:
    def test_constant_is_fixed_and_draws_nothing(self):
        rng = _rng("const")
        before = rng.getstate()
        model = ConstantLatency(0.05)
        assert model.sample(rng) == 0.05
        assert rng.getstate() == before  # zero RNG draws

    def test_zero_constant_is_zero(self):
        assert ConstantLatency(0.0).is_zero
        assert not ConstantLatency(0.001).is_zero
        assert not UniformLatency(0.0, 0.0).is_zero  # draws from the RNG

    def test_uniform_bounds_and_determinism(self):
        model = UniformLatency(0.01, 0.03)
        samples = [model.sample(_rng("u", index)) for index in range(200)]
        assert all(0.01 <= value <= 0.03 for value in samples)
        assert samples == [model.sample(_rng("u", index)) for index in range(200)]

    def test_lognormal_median_and_determinism(self):
        model = LogNormalLatency(0.04, 0.6)
        rng = _rng("ln")
        samples = sorted(model.sample(rng) for _ in range(2001))
        # The empirical median brackets the configured one.
        assert 0.02 < samples[1000] < 0.08
        assert all(value > 0 for value in samples)
        rerun = _rng("ln")
        assert samples == sorted(model.sample(rerun) for _ in range(2001))

    def test_lognormal_avoids_gauss_state(self):
        """The draw must round-trip through Sha256Prng's checkpointable
        state: sample, rewind via getstate/setstate, sample again."""
        model = LogNormalLatency(0.04, 0.6)
        rng = _rng("state")
        saved = rng.getstate()
        first = model.sample(rng)
        rng.setstate(saved)
        assert model.sample(rng) == first

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)
        with pytest.raises(ValueError):
            UniformLatency(0.05, 0.01)
        with pytest.raises(ValueError):
            LogNormalLatency(0.0, 0.5)
        with pytest.raises(ValueError):
            LogNormalLatency(0.04, -0.1)


class TestConfig:
    def test_default_applies_to_every_edge(self):
        config = LatencyConfig(default=ConstantLatency(0.02))
        assert config.model_for(1, 2).seconds == 0.02
        assert config.sample(3, 4, _rng("cfg")) == 0.02

    def test_directed_overrides(self):
        slow = ConstantLatency(0.5)
        config = LatencyConfig(
            default=ConstantLatency(0.0), overrides={(1, 2): slow}
        )
        assert config.model_for(1, 2) is slow
        # Directed: the reverse edge keeps the default.
        assert config.model_for(2, 1).is_zero
        assert not config.is_zero

    def test_is_zero_requires_every_model_zero(self):
        assert LatencyConfig().is_zero
        assert LatencyConfig(
            default=ConstantLatency(0.0),
            overrides={(1, 2): ConstantLatency(0.0)},
        ).is_zero


class TestParsing:
    def test_specs(self):
        assert parse_latency_model("zero").is_zero
        constant = parse_latency_model("constant:25")
        assert constant.seconds == pytest.approx(0.025)
        uniform = parse_latency_model("uniform:10:30")
        assert (uniform.low, uniform.high) == (pytest.approx(0.01), pytest.approx(0.03))
        lognormal = parse_latency_model("lognormal:40:0.6")
        assert lognormal.median == pytest.approx(0.04)
        assert lognormal.sigma == pytest.approx(0.6)

    @pytest.mark.parametrize("bad", [
        "", "zero:1", "constant", "constant:x", "uniform:10",
        "uniform:30:10", "lognormal:40", "pareto:1:2", "constant:-5",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_latency_model(bad)

    def test_load_spec(self):
        spec = parse_load("40:30")
        assert (spec.active_clients, spec.requests_per_minute) == (40, 30.0)
        assert spec.rate_per_second == pytest.approx(0.5)
        for bad in ("", "40", "40:30:1", "0:30", "40:0", "x:y"):
            with pytest.raises(ValueError):
                parse_load(bad)


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(value) for value in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 1.00) == 100.0
        assert percentile([7.0], 0.99) == 7.0
        assert percentile([], 0.5) == 0.0
        assert not math.isnan(percentile([1.5, 2.5], 0.01))
