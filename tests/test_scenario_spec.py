"""Spec-layer contracts: round-trips, typed validation errors, vector
envelope integrity, and the ``repro vectors`` exit-code surface.

The loader's promise (satellites 2-3 of the conformance-suite issue):

* dict → spec → dict is the identity on canonical dicts, and
  spec → dict → spec is the identity on specs (Hypothesis-checked over a
  generated grid of valid scenarios);
* every invalid spec fails with :class:`ScenarioSpecError` carrying the
  offending field path — never a bare ``KeyError``/``TypeError``;
* vector files are tamper-evident (section-naming checksum errors) and
  version-gated (:class:`SnapshotVersionError` on a format bump);
* the CLI's exit codes are pinned: 0 clean, 1 drift, 2 usage error.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenario import (
    ScenarioSpec,
    ScenarioSpecError,
    spec_from_dict,
    spec_to_dict,
)
from repro.scenario.cli import main as vectors_main
from repro.scenario.vectors import generate_vector, read_vector, write_vector
from repro.snapshot.format import SnapshotVersionError

# ---------------------------------------------------------------------------
# Generated valid specs
# ---------------------------------------------------------------------------

_rates = st.sampled_from([0.0, 0.02, 0.05, 0.1])


@st.composite
def valid_spec_dicts(draw):
    protocol = draw(st.sampled_from(["brahms", "raptee"]))
    rounds = draw(st.integers(min_value=1, max_value=12))
    n_nodes = draw(st.integers(min_value=10, max_value=80))
    spec = {
        "name": draw(
            st.from_regex(r"[a-z][a-z0-9]{0,8}([._-][a-z0-9]{1,4}){0,2}",
                          fullmatch=True)
        ),
        "protocol": protocol,
        "seed": draw(st.integers(min_value=0, max_value=2**31)),
        "rounds": rounds,
        "topology": {
            "n_nodes": n_nodes,
            "byzantine_fraction": draw(st.sampled_from([0.0, 0.05, 0.1, 0.2, 0.3])),
            "view_ratio": draw(st.sampled_from([0.1, 0.15, 0.2])),
        },
        "adversary_strategy": draw(
            st.sampled_from(["adaptive_balanced", "balanced"])
        ),
    }
    if draw(st.booleans()):
        spec["topology"]["loss_rate"] = draw(_rates)
    if protocol == "raptee":
        spec["topology"]["trusted_fraction"] = draw(st.sampled_from([0.1, 0.2]))
        if draw(st.booleans()):
            spec["raptee"] = {
                "eviction": draw(
                    st.sampled_from(
                        [
                            {"kind": "fixed", "value": 0.6},
                            {"kind": "adaptive", "low_rate": 0.1},
                        ]
                    )
                ),
                "auth_mode": draw(st.sampled_from(["hmac", "aes-ctr"])),
                "probe_pulls": draw(st.integers(min_value=0, max_value=3)),
            }
        if draw(st.booleans()):
            spec["membership"] = {
                "replica_count": draw(st.integers(min_value=1, max_value=5)),
                "join_rate": draw(_rates),
            }
    churn_kind = draw(st.sampled_from(["none", "uniform", "catastrophic"]))
    if churn_kind == "uniform":
        spec["churn"] = {
            "kind": "uniform",
            "leave_rate": draw(_rates),
            "join_rate": draw(_rates),
        }
    elif churn_kind == "catastrophic":
        spec["churn"] = {
            "kind": "catastrophic",
            "at_round": draw(st.integers(min_value=1, max_value=rounds)),
            "fraction": draw(st.sampled_from([0.1, 0.25, 0.5])),
        }
    engine_kind = draw(st.sampled_from(["rounds", "events-barrier", "events"]))
    if engine_kind == "events-barrier":
        spec["engine"] = {"kind": "events", "mode": "barrier"}
    elif engine_kind == "events":
        spec["engine"] = {
            "kind": "events",
            "mode": "continuous",
            "latency": draw(
                st.sampled_from(
                    [None, "constant:20", "uniform:10:50", "lognormal:40:0.6"]
                )
            ),
            "load": draw(st.sampled_from([None, "10:30"])),
        }
    if draw(st.booleans()):
        faults = [
            {
                "kind": "loss-burst",
                "window": {"start": 1, "end": max(1, rounds - 1)},
                "loss_rate": 0.3,
            },
            {
                "kind": "link",
                "src": 0,
                "dst": 1,
                "window": {"start": 1, "end": rounds},
            },
        ]
        if protocol == "raptee":
            faults.append({"kind": "attestation-outage",
                           "window": {"start": 1, "end": rounds}})
        spec["faults"] = faults
    return spec


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(valid_spec_dicts())
def test_round_trip_is_identity(data):
    spec = spec_from_dict(data)
    canonical = spec_to_dict(spec)
    # spec -> dict -> spec is the identity on specs...
    assert spec_from_dict(canonical) == spec
    # ...and dict -> spec -> dict is a fixpoint on canonical dicts.
    assert spec_to_dict(spec_from_dict(canonical)) == canonical
    # Canonical JSON is stable (the digest surface for vectors).
    assert json.dumps(canonical, sort_keys=True) == json.dumps(
        spec_to_dict(spec_from_dict(canonical)), sort_keys=True
    )


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(valid_spec_dicts(), st.sampled_from(
    ["bogus", "n_node", "topo", "latency_model", "evictions"]
))
def test_unknown_keys_always_fail_typed(data, junk_key):
    data = dict(data)
    data[junk_key] = 1
    with pytest.raises(ScenarioSpecError) as excinfo:
        spec_from_dict(data)
    assert excinfo.value.path is not None


# ---------------------------------------------------------------------------
# Invalid specs: typed error + field path, never a bare KeyError
# ---------------------------------------------------------------------------

def _base(**over):
    spec = {
        "name": "probe",
        "protocol": "brahms",
        "seed": 1,
        "rounds": 5,
        "topology": {"n_nodes": 40, "byzantine_fraction": 0.1,
                     "view_ratio": 0.15},
    }
    spec.update(over)
    return spec


_INVALID_CASES = {
    "negative-n": (
        _base(topology={"n_nodes": -5}), "topology.n_nodes"),
    "tiny-n": (
        _base(topology={"n_nodes": 3}), "topology.n_nodes"),
    "adversary-fraction-over-1": (
        _base(topology={"n_nodes": 40, "byzantine_fraction": 1.5}),
        "topology.byzantine_fraction"),
    "unknown-fault-kind": (
        _base(faults=[{"kind": "gamma-ray"}]), "faults[0].kind"),
    "fault-missing-required": (
        _base(faults=[{"kind": "loss-burst",
                       "window": {"start": 1, "end": 2}}]),
        "faults[0].loss_rate"),
    "fault-bad-window": (
        _base(faults=[{"kind": "loss-burst", "loss_rate": 0.2,
                       "window": {"start": 2}}]),
        "faults[0].window.end"),
    "churn-round-out-of-range": (
        _base(churn={"kind": "catastrophic", "at_round": 99,
                     "fraction": 0.2}),
        "churn.at_round"),
    "churn-unknown-kind": (
        _base(churn={"kind": "exodus"}), "churn.kind"),
    "missing-required-top-level": (
        {"name": "probe", "protocol": "brahms", "seed": 1, "rounds": 5},
        "spec.topology"),
    "unknown-top-level-key": (
        _base(nodes=40), "spec.nodes"),
    "bool-masquerading-as-int": (
        _base(seed=True), "spec.seed"),
    "string-rounds": (
        _base(rounds="ten"), "spec.rounds"),
    "zero-rounds": (
        _base(rounds=0), "rounds"),
    "unknown-protocol": (
        _base(protocol="gossipsub"), "protocol"),
    "raptee-options-on-brahms": (
        _base(raptee={"auth_mode": "hmac"}), "raptee"),
    "membership-on-brahms": (
        _base(membership={"replica_count": 3}), "membership"),
    "unknown-auth-mode": (
        _base(protocol="raptee",
              topology={"n_nodes": 40, "trusted_fraction": 0.1},
              raptee={"auth_mode": "rot13"}),
        "raptee.auth_mode"),
    "oversized-view-override": (
        _base(brahms={"view_size": 60, "sample_size": 30}),
        "brahms.view_size"),
    "events-knob-on-rounds-engine": (
        _base(engine={"kind": "rounds", "latency": "constant:20"}),
        "engine.latency"),
    "barrier-with-latency": (
        _base(engine={"kind": "events", "mode": "barrier",
                      "latency": "constant:20"}),
        "engine.latency"),
    "malformed-latency-grammar": (
        _base(engine={"kind": "events", "mode": "continuous",
                      "latency": "warp:9"}),
        "engine.latency"),
    "membership-fault-without-membership": (
        _base(protocol="raptee",
              topology={"n_nodes": 40, "trusted_fraction": 0.1},
              faults=[{"kind": "epoch-rotation", "at_round": 2}]),
        "faults[0]"),
    "sgx-fault-on-brahms": (
        _base(faults=[{"kind": "attestation-outage",
                       "window": {"start": 1, "end": 2}}]),
        "faults[0]"),
}


@pytest.mark.parametrize("case", sorted(_INVALID_CASES))
def test_invalid_specs_fail_with_field_path(case):
    data, expected_path = _INVALID_CASES[case]
    with pytest.raises(ScenarioSpecError) as excinfo:
        spec_from_dict(data)
    assert excinfo.value.path == expected_path
    assert expected_path in str(excinfo.value)


def test_scenario_spec_error_is_never_a_bare_keyerror():
    assert not issubclass(ScenarioSpecError, KeyError)
    assert issubclass(ScenarioSpecError, ValueError)


def test_spec_version_gate():
    data = _base(spec_version=99)
    with pytest.raises(ScenarioSpecError) as excinfo:
        spec_from_dict(data)
    assert excinfo.value.path == "spec_version"


def test_in_memory_spec_requires_rounds_to_run():
    from repro.experiments.scenarios import TopologySpec
    from repro.scenario import run_scenario

    spec = ScenarioSpec(
        name="no-rounds", protocol="brahms", seed=1,
        topology=TopologySpec(n_nodes=40, byzantine_fraction=0.1),
    )
    with pytest.raises(ValueError, match="round count"):
        run_scenario(spec)


# ---------------------------------------------------------------------------
# Vector envelope integrity + CLI exit codes
# ---------------------------------------------------------------------------

_PROBE_SPEC = {
    "name": "probe",
    "protocol": "brahms",
    "seed": 5,
    "rounds": 3,
    "topology": {"n_nodes": 30, "byzantine_fraction": 0.1, "view_ratio": 0.2},
}


def _generate_probe(directory):
    path = directory / "probe.vec"
    sections = generate_vector(spec_from_dict(_PROBE_SPEC), str(path))
    return path, sections


class TestVectorEnvelope:
    def test_bumped_format_version_fails_with_version_error(self, tmp_path):
        path, _ = _generate_probe(tmp_path)
        raw = path.read_bytes()
        magic_end = raw.index(b"\n") + 1
        header_end = raw.index(b"\n", magic_end) + 1
        header = json.loads(raw[magic_end:header_end])
        header["format_version"] = 99
        path.write_bytes(
            raw[:magic_end]
            + json.dumps(header, sort_keys=True).encode("utf-8")
            + b"\n"
            + raw[header_end:]
        )
        with pytest.raises(SnapshotVersionError):
            read_vector(str(path))

    def test_vector_requires_spec_section(self, tmp_path):
        from repro.scenario import VectorError

        with pytest.raises(VectorError, match="spec"):
            write_vector(str(tmp_path / "x.vec"), {"pollution": {}})

    def test_read_back_matches_written_sections(self, tmp_path):
        path, sections = _generate_probe(tmp_path)
        meta, loaded = read_vector(str(path))
        assert loaded == sections
        assert meta["scenario"] == "probe"
        assert sorted(meta["section_sha256"]) == sorted(sections)


class TestCliExitCodes:
    def test_verify_clean_directory_exits_0(self, tmp_path, capsys):
        _generate_probe(tmp_path)
        assert vectors_main(["verify", "--dir", str(tmp_path)]) == 0
        assert "1/1 vector(s) match" in capsys.readouterr().out

    def test_verify_drifted_vector_exits_1(self, tmp_path, capsys):
        path, sections = _generate_probe(tmp_path)
        sections["pollution"]["network"]["pushes_sent"] += 1
        write_vector(str(path), sections)
        report = tmp_path / "drift.json"
        assert vectors_main(
            ["verify", "--dir", str(tmp_path), "--report", str(report)]
        ) == 1
        out = capsys.readouterr().out
        assert "DRIFT probe" in out
        payload = json.loads(report.read_text())
        assert payload["drifted"] == 1
        assert payload["vectors"][0]["drifted_sections"].keys() == {"pollution"}

    def test_verify_corrupt_vector_exits_1(self, tmp_path, capsys):
        path, _ = _generate_probe(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert vectors_main(["verify", "--dir", str(tmp_path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_verify_missing_directory_exits_2(self, tmp_path):
        assert vectors_main(
            ["verify", "--dir", str(tmp_path / "nope")]
        ) == 2

    def test_verify_empty_directory_exits_2(self, tmp_path):
        assert vectors_main(["verify", "--dir", str(tmp_path)]) == 2

    def test_generate_unknown_scenario_exits_2(self, tmp_path):
        assert vectors_main(
            ["generate", "--dir", str(tmp_path), "--only", "no-such-scenario"]
        ) == 2

    def test_generate_only_writes_and_verifies(self, tmp_path, capsys):
        assert vectors_main(
            ["generate", "--dir", str(tmp_path), "--only", "brahms-f05"]
        ) == 0
        assert (tmp_path / "brahms-f05.vec").exists()
        assert vectors_main(["verify", "--dir", str(tmp_path)]) == 0

    def test_list_marks_committed_vectors(self, tmp_path, capsys):
        assert vectors_main(
            ["generate", "--dir", str(tmp_path), "--only", "brahms-f05"]
        ) == 0
        capsys.readouterr()
        assert vectors_main(["list", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "* brahms-f05" in out
