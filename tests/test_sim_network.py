"""Network transport tests."""

import random
from typing import List, Optional

import pytest

from repro.sim.messages import Message, PullReply, PullRequest
from repro.sim.network import Network
from repro.sim.node import NodeBase, NodeKind


class EchoNode(NodeBase):
    """Records pushes; answers pull requests with a fixed view."""

    def __init__(self, node_id: int, view=(1, 2, 3)):
        super().__init__(node_id, NodeKind.HONEST)
        self.pushes: List[int] = []
        self._view = list(view)

    def on_push(self, sender_id: int) -> None:
        self.pushes.append(sender_id)

    def handle_request(self, message: Message) -> Optional[Message]:
        if isinstance(message, PullRequest):
            return PullReply(sender=self.node_id, ids=tuple(self._view))
        return None

    def view_ids(self):
        return list(self._view)

    def known_ids(self):
        return list(self._view)

    def seed_view(self, ids):
        self._view = list(ids)

    def gossip(self, ctx):
        return None


@pytest.fixture
def network(rng):
    return Network(rng)


class TestDelivery:
    def test_push_delivery(self, network):
        a, b = EchoNode(1), EchoNode(2)
        network.register(a)
        network.register(b)
        assert network.send_push(1, 2)
        assert b.pushes == [1]
        assert network.stats.pushes_delivered == 1

    def test_push_to_unknown_node_is_lost(self, network):
        network.register(EchoNode(1))
        assert not network.send_push(1, 99)
        assert network.stats.messages_lost == 1

    def test_push_to_dead_node_is_lost(self, network):
        a, b = EchoNode(1), EchoNode(2)
        network.register(a)
        network.register(b)
        b.alive = False
        assert not network.send_push(1, 2)

    def test_request_reply(self, network):
        a, b = EchoNode(1), EchoNode(2, view=(7, 8))
        network.register(a)
        network.register(b)
        reply = network.request(1, 2, PullRequest(sender=1))
        assert isinstance(reply, PullReply)
        assert reply.ids == (7, 8)

    def test_request_to_dead_node_returns_none(self, network):
        a, b = EchoNode(1), EchoNode(2)
        network.register(a)
        network.register(b)
        b.alive = False
        assert network.request(1, 2, PullRequest(sender=1)) is None

    def test_duplicate_registration_rejected(self, network):
        network.register(EchoNode(1))
        with pytest.raises(ValueError):
            network.register(EchoNode(1))

    def test_per_round_push_accounting(self, network):
        a, b = EchoNode(1), EchoNode(2)
        network.register(a)
        network.register(b)
        network.current_round = 3
        network.send_push(1, 2)
        network.send_push(1, 2)
        assert network.stats.per_round_pushes[3] == 2


class TestLoss:
    def test_loss_rate_validation(self, rng):
        with pytest.raises(ValueError):
            Network(rng, loss_rate=1.0)

    def test_lossy_network_drops_messages(self):
        network = Network(random.Random(1), loss_rate=0.5)
        a, b = EchoNode(1), EchoNode(2)
        network.register(a)
        network.register(b)
        delivered = sum(network.send_push(1, 2) for _ in range(400))
        assert 120 < delivered < 280  # ≈ 200 ± tolerance

    def test_lossless_network_delivers_everything(self, network):
        a, b = EchoNode(1), EchoNode(2)
        network.register(a)
        network.register(b)
        assert all(network.send_push(1, 2) for _ in range(50))


class TestEncryptedTransport:
    def test_requests_roundtrip_through_encryption(self, rng):
        network = Network(rng, encrypt=True, transport_secret=b"s" * 16)
        a, b = EchoNode(1), EchoNode(2, view=(4, 5, 6))
        network.register(a)
        network.register(b)
        reply = network.request(1, 2, PullRequest(sender=1))
        assert isinstance(reply, PullReply)
        assert reply.ids == (4, 5, 6)
        assert network.stats.bytes_encrypted > 0

    def test_pair_keys_are_symmetric_and_distinct(self, rng):
        network = Network(rng, encrypt=True, transport_secret=b"s" * 16)
        assert network._pair_key(1, 2) == network._pair_key(2, 1)
        assert network._pair_key(1, 2) != network._pair_key(1, 3)


class TestPerRoundCounters:
    def test_requests_and_losses_counted_per_round(self):
        network = Network(random.Random(2), loss_rate=0.5)
        a, b = EchoNode(1), EchoNode(2)
        network.register(a)
        network.register(b)
        network.current_round = 4
        for _ in range(60):
            network.request(1, 2, PullRequest(sender=1))
        network.current_round = 5
        for _ in range(40):
            network.request(1, 2, PullRequest(sender=1))
        stats = network.stats
        assert stats.per_round_requests[4] == 60
        assert stats.per_round_requests[5] == 40
        assert stats.requests_sent == 100
        # Every loss lands in the round it happened in, and the per-round
        # counters sum to the lifetime total.
        assert sum(stats.per_round_losses.values()) == stats.messages_lost
        assert stats.messages_lost > 0

    def test_dense_series_and_peak_readers(self):
        from repro.analysis.metrics import peak_round, per_round_series

        network = Network(random.Random(0))
        a, b = EchoNode(1), EchoNode(2)
        network.register(a)
        network.register(b)
        network.current_round = 2
        network.send_push(1, 2)
        network.current_round = 4
        network.send_push(1, 2)
        network.send_push(2, 1)
        assert per_round_series(network.stats.per_round_pushes, 5) == [0, 1, 0, 2, 0]
        assert peak_round(network.stats.per_round_pushes) == (4, 2)
        assert peak_round({}) is None


class TestStatsRoundAttribution:
    def test_stats_read_across_round_boundary(self, network):
        # Regression: per-round tallies used to be flushed lazily on the
        # next round transition, so a holder of the ``stats`` reference
        # reading mid-round saw totals ahead of the per-round Counters,
        # and a round's tail could be misattributed to its successor.
        a, b = EchoNode(1), EchoNode(2)
        network.register(a)
        network.register(b)
        stats = network.stats  # held across rounds, like a metrics exporter
        network.current_round = 7
        network.send_push(1, 2)
        network.request(1, 2, PullRequest(sender=1))
        # Mid-round read: per-round tallies must already agree with the
        # lifetime totals — eagerly, not after the next round's flush.
        assert stats.per_round_pushes[7] == 1 == stats.pushes_sent
        assert stats.per_round_requests[7] == 1 == stats.requests_sent
        network.current_round = 8
        network.send_push(2, 1)
        # Round 7's tail stays in round 7; nothing bleeds into round 8.
        assert stats.per_round_pushes[7] == 1
        assert stats.per_round_pushes[8] == 1
        assert stats.per_round_requests[8] == 0
        assert stats.pushes_sent == 2


class ChurnChatterNode(EchoNode):
    """Echo node that actually gossips, so encrypted pair keys get minted."""

    def gossip(self, ctx):
        for peer in sorted(ctx.network._nodes):
            if peer != self.node_id:
                ctx.request(self.node_id, peer, PullRequest(sender=self.node_id))


class TestPairKeyPruning:
    def test_unregister_prunes_pair_keys(self, rng):
        network = Network(rng, encrypt=True, transport_secret=b"s" * 16)
        for node_id in (1, 2, 3):
            network.register(EchoNode(node_id))
        network.request(1, 2, PullRequest(sender=1))
        network.request(1, 3, PullRequest(sender=1))
        network.request(2, 3, PullRequest(sender=2))
        assert len(network._pair_keys) == 3
        network.unregister(2)
        assert all(2 not in pair for pair in network._pair_keys)
        assert len(network._pair_keys) == 1

    def test_churny_encrypted_run_does_not_leak_keys(self):
        # Regression: departed nodes' pair keys used to accumulate forever
        # under churn, which on long encrypted runs is a memory leak.
        from repro.sim.churn import UniformChurn
        from repro.sim.engine import Simulation

        network = Network(random.Random(3), encrypt=True,
                          transport_secret=b"k" * 16)
        nodes = [ChurnChatterNode(i) for i in range(8)]
        simulation = Simulation(
            network, nodes, random.Random(3),
            churn=UniformChurn(leave_rate=0.25, join_rate=0.0),
        )
        simulation.run(6)
        alive = set(simulation.nodes)
        assert len(alive) < 8  # churn actually removed someone
        for pair in network._pair_keys:
            assert set(pair) <= alive
