"""Deterministic PRNG tests."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.prng import Sha256Prng, derive_seed


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = Sha256Prng(123), Sha256Prng(123)
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]
        assert a.bytes(33) == b.bytes(33)

    def test_different_seeds_differ(self):
        assert Sha256Prng(1).bytes(16) != Sha256Prng(2).bytes(16)

    def test_state_roundtrip(self):
        rng = Sha256Prng(7)
        rng.bytes(10)
        state = rng.getstate()
        first = rng.bytes(20)
        rng.setstate(state)
        assert rng.bytes(20) == first


class TestRandomApi:
    def test_random_in_unit_interval(self):
        rng = Sha256Prng(5)
        for _ in range(100):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_getrandbits_range(self):
        rng = Sha256Prng(5)
        for bits in (1, 7, 8, 31, 64, 128):
            assert 0 <= rng.getrandbits(bits) < (1 << bits)

    def test_getrandbits_zero(self):
        assert Sha256Prng(0).getrandbits(0) == 0

    def test_getrandbits_negative_raises(self):
        with pytest.raises(ValueError):
            Sha256Prng(0).getrandbits(-1)

    def test_stdlib_methods_work(self):
        rng = Sha256Prng(9)
        population = list(range(100))
        sample = rng.sample(population, 10)
        assert len(set(sample)) == 10
        choice = rng.choice(population)
        assert choice in population
        rng.shuffle(population)
        assert sorted(population) == list(range(100))

    def test_uniformity_rough(self):
        rng = Sha256Prng(11)
        mean = sum(rng.random() for _ in range(5000)) / 5000
        assert abs(mean - 0.5) < 0.02


class TestSpawnAndDerive:
    def test_spawn_independence(self):
        root = Sha256Prng(1)
        assert root.spawn("a").bytes(16) != root.spawn("b").bytes(16)

    def test_spawn_reproducible(self):
        assert Sha256Prng(1).spawn("x", 3).bytes(8) == Sha256Prng(1).spawn("x", 3).bytes(8)

    def test_derive_seed_sensitivity(self):
        assert derive_seed(1, "node", 1) != derive_seed(1, "node", 2)
        assert derive_seed(1, "node", 1) != derive_seed(2, "node", 1)
        # Label framing: ("ab",) vs ("a", "b") must differ.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    @given(seed=st.integers(min_value=0, max_value=2**64))
    def test_derive_seed_is_128_bit(self, seed):
        assert 0 <= derive_seed(seed, "x") < (1 << 128)

    def test_nonce_sizes(self):
        rng = Sha256Prng(3)
        assert len(rng.nonce()) == 16
        assert len(rng.nonce(8)) == 8
