"""Unit tests for the :mod:`repro.lint` framework and rule battery.

Each rule gets at least one seeded violation (true positive), one near-miss
that must NOT be flagged (false-positive guard), and the suppression
machinery is exercised against real findings.
"""

import json
import textwrap

import pytest

from repro.lint import LintConfig, LintRunner, Severity, lint_source
from repro.lint.config import _parse_minimal_toml_table, load_config
from repro.lint.core import PARSE_ERROR_RULE_ID, scope_path_for
from repro.lint.reporter import (
    apply_baseline,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)


def rules_in(findings):
    return {finding.rule_id for finding in findings}


def check(code, scope="repro/sim/fixture.py"):
    return lint_source(textwrap.dedent(code), scope_path=scope)


# ---------------------------------------------------------------------------
# determinism rules
# ---------------------------------------------------------------------------


class TestGlobalRandomRule:
    def test_flags_global_random_call(self):
        findings = check(
            """
            import random

            def pick(peers):
                return random.choice(peers)
            """
        )
        assert "det-global-random" in rules_in(findings)

    def test_flags_from_random_import(self):
        findings = check("from random import shuffle\n")
        assert "det-global-random" in rules_in(findings)

    def test_near_miss_injected_rng_ok(self):
        findings = check(
            """
            def pick(peers, rng):
                return rng.choice(peers)
            """
        )
        assert "det-global-random" not in rules_in(findings)

    def test_near_miss_seeded_instance_ok(self):
        findings = check(
            """
            import random

            def make_rng(seed):
                return random.Random(seed)
            """
        )
        assert "det-global-random" not in rules_in(findings)

    def test_from_random_import_random_class_ok(self):
        findings = check("from random import Random\n")
        assert "det-global-random" not in rules_in(findings)

    def test_inline_suppression(self):
        findings = check(
            """
            import random

            def jitter():
                return random.random()  # lint: disable=det-global-random -- demo only
            """
        )
        assert "det-global-random" not in rules_in(findings)


class TestWallClockRule:
    def test_flags_time_time(self):
        findings = check(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert "det-wall-clock" in rules_in(findings)

    def test_flags_datetime_now(self):
        findings = check(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        )
        assert "det-wall-clock" in rules_in(findings)

    def test_near_miss_method_named_time_ok(self):
        findings = check(
            """
            def elapsed(timer):
                return timer.time()
            """
        )
        assert "det-wall-clock" not in rules_in(findings)


class TestOsEntropyRule:
    def test_flags_os_urandom(self):
        findings = check(
            """
            import os

            def nonce():
                return os.urandom(16)
            """
        )
        assert "det-os-entropy" in rules_in(findings)

    def test_flags_secrets_import(self):
        findings = check("import secrets\n")
        assert "det-os-entropy" in rules_in(findings)

    def test_flags_uuid4(self):
        findings = check(
            """
            import uuid

            def fresh_id():
                return uuid.uuid4()
            """
        )
        assert "det-os-entropy" in rules_in(findings)

    def test_applies_to_tests_too(self):
        findings = check(
            """
            import os

            def nonce():
                return os.urandom(8)
            """,
            scope="tests/test_fixture.py",
        )
        assert "det-os-entropy" in rules_in(findings)

    def test_near_miss_os_path_ok(self):
        findings = check(
            """
            import os

            def join(a, b):
                return os.path.join(a, b)
            """
        )
        assert "det-os-entropy" not in rules_in(findings)


class TestSetIterationRule:
    def test_flags_for_over_set_call(self):
        findings = check(
            """
            def visit(items):
                for item in set(items):
                    yield item
            """
        )
        assert "det-set-iteration" in rules_in(findings)

    def test_flags_comprehension_over_set_literal(self):
        findings = check(
            """
            def build(a, b):
                return [x for x in {a, b}]
            """
        )
        assert "det-set-iteration" in rules_in(findings)

    def test_near_miss_sorted_set_ok(self):
        findings = check(
            """
            def visit(items):
                for item in sorted(set(items)):
                    yield item
            """
        )
        assert "det-set-iteration" not in rules_in(findings)

    def test_out_of_scope_package_ok(self):
        findings = check(
            """
            def visit(items):
                for item in set(items):
                    yield item
            """,
            scope="repro/analysis/fixture.py",
        )
        assert "det-set-iteration" not in rules_in(findings)


class TestUnguardedNumpyRule:
    def test_flags_bare_numpy_import_in_perf(self):
        findings = check("import numpy as np\n", scope="repro/perf/fixture.py")
        assert "det-unguarded-numpy" in rules_in(findings)

    def test_flags_from_numpy_import(self):
        findings = check(
            "from numpy import bincount\n", scope="repro/perf/fixture.py"
        )
        assert "det-unguarded-numpy" in rules_in(findings)

    def test_near_miss_guarded_import_ok(self):
        findings = check(
            """
            try:
                import numpy as np
            except ImportError:
                np = None
            """,
            scope="repro/perf/fixture.py",
        )
        assert "det-unguarded-numpy" not in rules_in(findings)

    def test_guard_must_catch_import_error(self):
        findings = check(
            """
            try:
                import numpy as np
            except ValueError:
                np = None
            """,
            scope="repro/perf/fixture.py",
        )
        assert "det-unguarded-numpy" in rules_in(findings)

    def test_type_checking_import_ok(self):
        findings = check(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                import numpy
            """,
            scope="repro/perf/fixture.py",
        )
        assert "det-unguarded-numpy" not in rules_in(findings)

    def test_out_of_scope_package_ok(self):
        findings = check("import numpy\n", scope="repro/analysis/fixture.py")
        assert "det-unguarded-numpy" not in rules_in(findings)

    def test_real_kernels_module_passes(self):
        import pathlib

        kernels = (
            pathlib.Path(__file__).parent.parent
            / "src" / "repro" / "perf" / "kernels.py"
        )
        findings = check(kernels.read_text(), scope="repro/perf/kernels.py")
        assert "det-unguarded-numpy" not in rules_in(findings)


# ---------------------------------------------------------------------------
# crypto-hygiene rules
# ---------------------------------------------------------------------------


class TestStdlibRandomImportRule:
    def test_flags_module_scope_import_in_sgx(self):
        findings = check("import random\n", scope="repro/sgx/fixture.py")
        assert "crypto-stdlib-random" in rules_in(findings)

    def test_near_miss_type_checking_gate_ok(self):
        findings = check(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                import random
            """,
            scope="repro/sgx/fixture.py",
        )
        assert "crypto-stdlib-random" not in rules_in(findings)

    def test_out_of_scope_package_ok(self):
        findings = check("import random\n", scope="repro/sim/fixture.py")
        assert "crypto-stdlib-random" not in rules_in(findings)

    def test_suppression_with_justification(self):
        findings = check(
            "import random  # lint: disable=crypto-stdlib-random -- subclassing Random\n",
            scope="repro/crypto/fixture.py",
        )
        assert "crypto-stdlib-random" not in rules_in(findings)


class TestDigestCompareRule:
    def test_flags_mac_equality(self):
        findings = check(
            """
            def verify(mac, expected_mac):
                return mac == expected_mac
            """
        )
        assert "crypto-digest-compare" in rules_in(findings)

    def test_flags_digest_call_equality(self):
        findings = check(
            """
            from repro.crypto.hashing import sha256

            def verify(payload, expected):
                return sha256(payload) == expected
            """
        )
        assert "crypto-digest-compare" in rules_in(findings)

    def test_near_miss_mode_string_ok(self):
        findings = check(
            """
            def configure(mode):
                return mode == "hmac"
            """
        )
        assert "crypto-digest-compare" not in rules_in(findings)

    def test_near_miss_none_check_ok(self):
        findings = check(
            """
            def missing(digest):
                return digest == None  # noqa: E711 - deliberate for the lint fixture
            """
        )
        assert "crypto-digest-compare" not in rules_in(findings)

    def test_constant_time_equal_ok(self):
        findings = check(
            """
            from repro.crypto.hashing import constant_time_equal

            def verify(mac, expected_mac):
                return constant_time_equal(mac, expected_mac)
            """
        )
        assert "crypto-digest-compare" not in rules_in(findings)


class TestWeakHashRule:
    def test_flags_md5(self):
        findings = check(
            """
            import hashlib

            def weak(data):
                return hashlib.md5(data).digest()
            """
        )
        assert "crypto-weak-hash" in rules_in(findings)

    def test_flags_hashlib_new_sha1(self):
        findings = check(
            """
            import hashlib

            def weak(data):
                return hashlib.new("sha1", data)
            """
        )
        assert "crypto-weak-hash" in rules_in(findings)

    def test_near_miss_sha256_ok(self):
        findings = check(
            """
            import hashlib

            def strong(data):
                return hashlib.sha256(data).digest()
            """
        )
        assert "crypto-weak-hash" not in rules_in(findings)


# ---------------------------------------------------------------------------
# enclave-boundary rules
# ---------------------------------------------------------------------------


class TestEnclavePrivateAccessRule:
    def test_flags_private_read_on_enclave_object(self):
        findings = check(
            """
            def steal(enclave):
                return enclave._group_key
            """,
            scope="repro/gossip/fixture.py",
        )
        assert "enclave-private-access" in rules_in(findings)

    def test_flags_raw_enclave_reference(self):
        findings = check(
            """
            def unwrap(host):
                return host._enclave
            """,
            scope="repro/gossip/fixture.py",
        )
        assert "enclave-private-access" in rules_in(findings)

    def test_near_miss_self_private_state_ok(self):
        findings = check(
            """
            class RapteeEnclaveView:
                def __init__(self):
                    self._cache = {}

                def get(self):
                    return self._cache
            """,
            scope="repro/gossip/fixture.py",
        )
        assert "enclave-private-access" not in rules_in(findings)

    def test_trusted_paths_exempt(self):
        findings = check(
            """
            def unwrap(host):
                return host._enclave
            """,
            scope="repro/sgx/fixture.py",
        )
        assert "enclave-private-access" not in rules_in(findings)

    def test_tests_exempt(self):
        findings = check(
            """
            def unwrap(host):
                return host._enclave
            """,
            scope="tests/test_fixture.py",
        )
        assert "enclave-private-access" not in rules_in(findings)


class TestEnclaveInternalImportRule:
    def test_flags_sealing_key_import(self):
        findings = check(
            "from repro.sgx.enclave import sealing_key_for\n",
            scope="repro/core/fixture.py",
        )
        assert "enclave-internal-import" in rules_in(findings)

    def test_flags_star_import(self):
        findings = check(
            "from repro.sgx.enclave import *\n",
            scope="repro/core/fixture.py",
        )
        assert "enclave-internal-import" in rules_in(findings)

    def test_near_miss_public_names_ok(self):
        findings = check(
            "from repro.sgx.enclave import Enclave, EnclaveHost, SgxDevice, ecall\n",
            scope="repro/core/fixture.py",
        )
        assert "enclave-internal-import" not in rules_in(findings)


class TestEnclaveBoundaryBypassRule:
    def test_flags_object_getattribute(self):
        findings = check(
            """
            def peek(host):
                return object.__getattribute__(host, "_enclave")
            """,
            scope="repro/core/fixture.py",
        )
        assert "enclave-boundary-bypass" in rules_in(findings)

    def test_flags_reflective_private_getattr(self):
        findings = check(
            """
            def peek(enclave_host):
                return getattr(enclave_host, "_measurement")
            """,
            scope="repro/core/fixture.py",
        )
        assert "enclave-boundary-bypass" in rules_in(findings)

    def test_near_miss_plain_getattr_ok(self):
        findings = check(
            """
            def lookup(config):
                return getattr(config, "name", None)
            """,
            scope="repro/core/fixture.py",
        )
        assert "enclave-boundary-bypass" not in rules_in(findings)


# ---------------------------------------------------------------------------
# sim-purity rules
# ---------------------------------------------------------------------------


class TestPurityRules:
    def test_flags_print_in_protocol_code(self):
        findings = check(
            """
            def push(view):
                print("pushing", view)
            """,
            scope="repro/brahms/fixture.py",
        )
        assert "purity-print" in rules_in(findings)

    def test_print_allowed_in_experiments_layer(self):
        findings = check(
            """
            def report(rows):
                print(rows)
            """,
            scope="repro/experiments/fixture.py",
        )
        assert "purity-print" not in rules_in(findings)

    def test_flags_open_and_socket(self):
        findings = check(
            """
            import socket

            def dump(view):
                with open("view.log", "w") as handle:
                    handle.write(str(view))
            """,
            scope="repro/gossip/fixture.py",
        )
        assert "purity-io" in rules_in(findings)
        assert sum(1 for f in findings if f.rule_id == "purity-io") == 2

    def test_near_miss_method_named_open_ok(self):
        findings = check(
            """
            def start(channel):
                return channel.open()
            """,
            scope="repro/gossip/fixture.py",
        )
        assert "purity-io" not in rules_in(findings)


# ---------------------------------------------------------------------------
# framework: suppressions, severities, parse errors, scope mapping
# ---------------------------------------------------------------------------


class TestFramework:
    def test_disable_next_suppression(self):
        findings = check(
            """
            import random

            def jitter():
                # lint: disable-next=det-global-random -- fixture
                return random.random()
            """
        )
        assert "det-global-random" not in rules_in(findings)

    def test_disable_file_suppression(self):
        findings = check(
            """
            # lint: disable-file=det-global-random -- fixture file
            import random

            def jitter():
                return random.random()

            def jitter2():
                return random.randint(0, 1)
            """
        )
        assert "det-global-random" not in rules_in(findings)

    def test_disable_all_on_line(self):
        findings = check(
            """
            import random

            def jitter():
                return random.random()  # lint: disable=all -- fixture
            """
        )
        assert findings == []

    def test_suppression_does_not_leak_to_other_lines(self):
        findings = check(
            """
            import random

            def jitter():
                a = random.random()  # lint: disable=det-global-random
                return random.random()
            """
        )
        assert "det-global-random" in rules_in(findings)

    def test_parse_error_reported_as_finding(self):
        findings = check("def broken(:\n")
        assert rules_in(findings) == {PARSE_ERROR_RULE_ID}

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.NOTE
        assert Severity.from_name("warning") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.from_name("fatal")

    def test_scope_path_mapping(self):
        assert scope_path_for("src/repro/sim/engine.py") == "repro/sim/engine.py"
        assert scope_path_for("tests/test_x.py") == "tests/test_x.py"
        assert scope_path_for("./src/repro/lint/core.py") == "repro/lint/core.py"
        assert scope_path_for("/root/repo/tests/test_x.py") == "tests/test_x.py"
        assert scope_path_for("/abs/path/src/repro/sim/engine.py") == "repro/sim/engine.py"

    def test_config_disable_drops_rule(self):
        config = LintConfig(disable=("det-global-random",))
        runner = LintRunner(config=config)
        findings = runner.lint_source(
            "import random\nx = random.random()\n",
            path="repro/sim/fixture.py",
            scope_path="repro/sim/fixture.py",
        )
        assert "det-global-random" not in rules_in(findings)

    def test_config_scope_override(self):
        config = LintConfig(scopes={"purity-print": ["repro/analysis"]})
        runner = LintRunner(config=config)
        findings = runner.lint_source(
            "print('hi')\n",
            path="repro/analysis/fixture.py",
            scope_path="repro/analysis/fixture.py",
        )
        assert "purity-print" in rules_in(findings)


# ---------------------------------------------------------------------------
# reporters, baseline, config parsing, CLI
# ---------------------------------------------------------------------------


class TestReportingAndCli:
    def _sample_findings(self):
        return check(
            """
            import random

            def pick(peers):
                return random.choice(peers)
            """
        )

    def test_render_text_mentions_rule_and_location(self):
        findings = self._sample_findings()
        text = render_text(findings)
        assert "det-global-random" in text
        assert "finding(s)" in text

    def test_render_json_round_trips(self):
        findings = self._sample_findings()
        payload = json.loads(render_json(findings))
        assert payload["count"] == len(findings)
        assert payload["findings"][0]["rule"] == "det-global-random"

    def test_render_text_clean(self):
        assert render_text([]) == "repro.lint: no findings"

    def test_baseline_round_trip(self, tmp_path):
        findings = self._sample_findings()
        baseline_file = tmp_path / "baseline.json"
        write_baseline(findings, str(baseline_file))
        fingerprints = load_baseline(str(baseline_file))
        assert apply_baseline(findings, fingerprints) == []

    def test_load_config_from_pyproject(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "\n".join(
                [
                    "[tool.repro-lint]",
                    'paths = ["src"]',
                    'disable = ["purity-print"]',
                    'exclude = ["repro/vendored"]',
                    "",
                    "[tool.repro-lint.scopes]",
                    '"det-set-iteration" = ["repro/sim"]',
                ]
            )
        )
        config = load_config(str(pyproject))
        assert config.disable == ("purity-print",)
        assert not config.rule_enabled("purity-print")
        assert config.excluded("repro/vendored/thing.py")
        assert config.scope_override("det-set-iteration") == ["repro/sim"]

    def test_minimal_toml_fallback_parser(self):
        table = _parse_minimal_toml_table(
            "\n".join(
                [
                    "[tool.other]",
                    'ignored = "yes"',
                    "[tool.repro-lint]",
                    'paths = ["src", "tests"]',
                    "disable = []",
                    "[tool.repro-lint.scopes]",
                    '"purity-io" = ["repro/sim"]',
                ]
            )
        )
        assert table["paths"] == ["src", "tests"]
        assert table["disable"] == []
        assert table["scopes"] == {"purity-io": ["repro/sim"]}

    def test_cli_clean_file_exits_zero(self, tmp_path, capsys):
        from repro.lint.cli import main

        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n")
        assert main([str(target)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_cli_violation_exits_one_and_json_reports(self, tmp_path, capsys):
        from repro.lint.cli import main

        target = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\nx = random.random()\n")
        assert main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] >= 1

    def test_cli_select_limits_rules(self, tmp_path, capsys):
        from repro.lint.cli import main

        target = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\nx = random.random()\nprint(x)\n")
        assert main([str(target), "--select", "purity-print"]) == 1
        out = capsys.readouterr().out
        assert "purity-print" in out
        assert "det-global-random" not in out

    def test_cli_baseline_workflow(self, tmp_path, capsys):
        from repro.lint.cli import main

        target = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(target), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main([str(target), "--baseline", str(baseline)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_cli_typoed_path_is_a_usage_error(self, tmp_path, capsys):
        from repro.lint.cli import main

        assert main([str(tmp_path / "no-such-dir")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_cli_unknown_rule_id_is_a_usage_error(self, capsys):
        from repro.lint.cli import main

        assert main(["--select", "det-globl-random"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        from repro.lint.cli import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("det-", "enclave-", "crypto-", "purity-"):
            assert family in out

    def test_repro_cli_forwards_to_lint(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n")
        assert main(["lint", str(target)]) == 0
        assert "no findings" in capsys.readouterr().out
