"""Determinism matrix for the perf layer.

PR 3 proved ``repeat()`` gives seed-ordered, element-wise identical results
whatever the worker count; this extends that guarantee to fast paths: the
workers run with the perf layer in its *default* state (enabled), and a
worker pool (fresh processes, fresh caches) must agree element-wise with
the serial path (warm schedule/pair caches) — i.e. cache warmth is not
observable.
"""

from __future__ import annotations

from repro.core.eviction import FixedEviction
from repro.experiments.runner import RunMetrics, repeat
from repro.experiments.scenarios import TopologySpec, build_raptee_simulation
from repro.perf.config import fastpaths_enabled
from repro.experiments.runner import run_bundle

SEEDS = [101, 202, 303, 404]
ROUNDS = 5


def _build_and_run_perf(seed: int) -> RunMetrics:
    # Module level so ProcessPoolExecutor can pickle it (workers > 1).
    # Encryption on: the scenario must cross every crypto fast path.
    assert fastpaths_enabled(), "workers must inherit the default perf state"
    spec = TopologySpec(
        n_nodes=30, byzantine_fraction=0.10, trusted_fraction=0.10,
        view_ratio=0.12, transport_encryption=True,
    )
    bundle = build_raptee_simulation(spec, seed, eviction=FixedEviction(0.6))
    return run_bundle(bundle, ROUNDS)


class TestPerfDeterminismMatrix:
    def test_workers_one_vs_four_element_wise_identical(self):
        serial = repeat(_build_and_run_perf, SEEDS, workers=1)
        pooled = repeat(_build_and_run_perf, SEEDS, workers=4)
        # RunMetrics is a frozen dataclass: == is field-wise equality.
        assert serial.runs == pooled.runs
        assert serial.resilience == pooled.resilience
        assert serial.discovery_round == pooled.discovery_round
        assert serial.stability_round == pooled.stability_round

    def test_repeated_serial_runs_identical(self):
        # Second pass runs with caches warm from the first — results must
        # not notice.
        assert repeat(_build_and_run_perf, SEEDS).runs == \
            repeat(_build_and_run_perf, SEEDS).runs
