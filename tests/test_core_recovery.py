"""Enclave recovery: retry policy, sealed restore, re-attestation ladder."""

import random

import pytest

from repro.core.node import RapteeNode
from repro.core.recovery import (
    EnclaveRecoveryManager,
    RetryPolicy,
    provision_with_retry,
)
from repro.sgx.errors import ProvisioningError
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.node import NodeKind


class TestRetryPolicy:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=1, multiplier=2, max_delay=8, jitter=0)
        rng = random.Random(0)
        delays = [policy.delay_rounds(attempt, rng) for attempt in range(5)]
        assert delays == [1, 2, 4, 8, 8]

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay=2, multiplier=1, max_delay=2, jitter=3)
        rng = random.Random(42)
        for _ in range(50):
            assert 2 <= policy.delay_rounds(0, rng) <= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=4, max_delay=2)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-1)
        with pytest.raises(ValueError):
            RetryPolicy().delay_rounds(-1, random.Random(0))


def make_deployment(infrastructure, small_raptee_config, node_id=1):
    """One provisioned trusted node inside a minimal simulation."""
    host, _device = infrastructure.new_trusted_enclave(node_id)
    node = RapteeNode(
        node_id, NodeKind.TRUSTED, small_raptee_config,
        random.Random(node_id), enclave=host,
    )
    simulation = Simulation(Network(random.Random(0)), [node], random.Random(0))
    manager = EnclaveRecoveryManager(infrastructure, random.Random(9))
    manager.adopt(node)
    return simulation, node, manager


class TestSealedRestore:
    def test_watchdog_restores_crashed_enclave_from_seal(
        self, infrastructure, small_raptee_config
    ):
        simulation, node, manager = make_deployment(
            infrastructure, small_raptee_config
        )
        node.enclave.crash()
        simulation.round_number = 1
        manager.tick(simulation)
        assert node.trusted
        assert not node.degraded
        assert node.enclave.is_provisioned()
        assert not node.enclave.crashed
        assert manager.stats.restores_from_seal == 1
        assert manager.stats.reprovisions == 0
        assert node.degradations_total == 1
        assert node.promotions_total == 1

    def test_restore_needs_no_attestation(
        self, infrastructure, small_raptee_config
    ):
        simulation, node, manager = make_deployment(
            infrastructure, small_raptee_config
        )
        infrastructure.attestation.set_available(False)  # total outage
        node.enclave.crash()
        simulation.round_number = 1
        manager.tick(simulation)
        assert node.trusted
        assert manager.stats.restores_from_seal == 1

    def test_restore_survives_device_revocation(
        self, infrastructure, small_raptee_config
    ):
        # Sealing is device-local: a revoked device cannot re-attest, but
        # it can still unseal its own blob and keep serving.
        simulation, node, manager = make_deployment(
            infrastructure, small_raptee_config
        )
        infrastructure.attestation.revoke_device(node.node_id)
        node.enclave.crash()
        simulation.round_number = 1
        manager.tick(simulation)
        assert node.trusted
        assert manager.stats.restores_from_seal == 1


class TestReattestation:
    def test_corrupted_blob_falls_back_to_reattestation(
        self, infrastructure, small_raptee_config
    ):
        simulation, node, manager = make_deployment(
            infrastructure, small_raptee_config
        )
        assert manager.corrupt_sealed_blob(node.node_id)
        node.enclave.crash()
        simulation.round_number = 1
        manager.tick(simulation)
        assert node.trusted
        assert manager.stats.corrupted_blobs == 1
        assert manager.stats.restores_from_seal == 0
        assert manager.stats.reprovisions == 1
        # The backup is refreshed after the re-provisioning.
        assert manager.sealed_blob(node.node_id) is not None

    def test_backoff_through_outage(self, infrastructure, small_raptee_config):
        simulation, node, manager = make_deployment(
            infrastructure, small_raptee_config
        )
        manager.policy = RetryPolicy(base_delay=2, multiplier=2, jitter=0)
        manager.corrupt_sealed_blob(node.node_id)
        infrastructure.attestation.set_available(False)
        node.enclave.crash()

        simulation.round_number = 1
        manager.tick(simulation)
        assert node.degraded
        assert manager.stats.failed_attempts == 1

        # Next round is inside the backoff window: no new attempt.
        simulation.round_number = 2
        manager.tick(simulation)
        assert manager.stats.failed_attempts == 1

        # Outage lifts; the retry fires once the backoff expires.
        infrastructure.attestation.set_available(True)
        simulation.round_number = 3
        manager.tick(simulation)
        assert node.trusted
        assert manager.stats.reprovisions == 1

    def test_exhaustion_after_max_attempts(
        self, infrastructure, small_raptee_config
    ):
        simulation, node, manager = make_deployment(
            infrastructure, small_raptee_config
        )
        manager.policy = RetryPolicy(base_delay=1, multiplier=1, max_delay=1,
                                     max_attempts=2, jitter=0)
        manager.corrupt_sealed_blob(node.node_id)
        infrastructure.attestation.revoke_device(node.node_id)  # permanent
        node.enclave.crash()
        for round_number in range(1, 6):
            simulation.round_number = round_number
            manager.tick(simulation)
        assert node.degraded
        assert manager.stats.failed_attempts == 2
        assert manager.exhausted_node_ids() == (node.node_id,)


class TestBootstrapRetry:
    def test_retries_through_transient_failures(self, infrastructure):
        refusals = iter(["flaky", "flaky"])

        def hook():
            return next(refusals, None)

        infrastructure.provisioner.set_fault_hook(hook)
        host = infrastructure.new_trusted_enclave(
            5, retry=RetryPolicy(max_attempts=5, jitter=0),
            retry_rng=random.Random(0),
        )[0]
        assert host.is_provisioned()
        assert infrastructure.provisioner.refused_count == 2

    def test_gives_up_after_max_attempts(self, infrastructure):
        infrastructure.new_trusted_enclave(6)
        infrastructure.provisioner.set_fault_hook(lambda: "always down")
        fresh = infrastructure.reload_enclave(6)
        with pytest.raises(ProvisioningError):
            provision_with_retry(
                infrastructure, fresh,
                RetryPolicy(max_attempts=3, jitter=0), random.Random(0),
            )

    def test_retry_policy_requires_rng(self, infrastructure):
        with pytest.raises(ValueError, match="retry_rng"):
            infrastructure.new_trusted_enclave(7, retry=RetryPolicy())


class TestFailureCauseChaining:
    """Exhausted retries must surface *why* the last attempt failed.

    Regression tests: the raised ProvisioningError used to swallow the
    underlying fault, leaving drills unable to tell an attestation outage
    from a corrupted key binding.
    """

    def test_bootstrap_exhaustion_chains_last_fault(self, infrastructure):
        infrastructure.new_trusted_enclave(6)
        infrastructure.provisioner.set_fault_hook(lambda: "always down")
        fresh = infrastructure.reload_enclave(6)
        with pytest.raises(ProvisioningError) as excinfo:
            provision_with_retry(
                infrastructure, fresh,
                RetryPolicy(max_attempts=3, jitter=0), random.Random(0),
            )
        error = excinfo.value
        assert "provisioning failed after 3 attempt(s)" in str(error)
        assert "always down" in str(error)
        assert isinstance(error.__cause__, ProvisioningError)
        assert "always down" in str(error.__cause__)

    def test_recovery_telemetry_carries_cause_and_detail(
        self, infrastructure, small_raptee_config
    ):
        from repro.telemetry import Telemetry

        simulation, node, manager = make_deployment(
            infrastructure, small_raptee_config
        )
        telemetry = Telemetry()
        manager.set_telemetry(telemetry)
        manager.policy = RetryPolicy(base_delay=1, multiplier=1, max_delay=1,
                                     max_attempts=1, jitter=0)
        manager.corrupt_sealed_blob(node.node_id)
        infrastructure.attestation.set_available(False)
        node.enclave.crash()
        telemetry.begin_round(1)
        simulation.round_number = 1
        manager.tick(simulation)
        telemetry.end_round(alive_nodes=1)

        # The outage's AttestationError arrives wrapped by the provisioner;
        # the detail string keeps the underlying outage visible.
        (failed,) = telemetry.trace.named("recovery.failed_attempts")
        assert failed.fields["cause"] == "ProvisioningError"
        assert "unavailable" in str(failed.fields["detail"])
        (exhausted,) = telemetry.trace.named("recovery.exhausted")
        assert exhausted.fields["cause"] == "ProvisioningError"
        assert "unavailable" in str(exhausted.fields["detail"])
        assert manager._states[node.node_id].last_cause == "ProvisioningError"


class TestNodeDegradation:
    def test_note_enclave_failure_is_trusted_only(self, small_raptee_config):
        node = RapteeNode(3, NodeKind.HONEST, small_raptee_config, random.Random(3))
        node.note_enclave_failure()
        assert not node.degraded
        assert node.degradations_total == 0

    def test_degraded_node_uses_private_key(
        self, infrastructure, small_raptee_config
    ):
        host, _device = infrastructure.new_trusted_enclave(8)
        node = RapteeNode(8, NodeKind.TRUSTED, small_raptee_config,
                          random.Random(8), enclave=host)
        assert node.trusted
        node.note_enclave_failure()
        assert not node.trusted
        assert node.trusted_role
        assert node._own_key is not None

    def test_promote_requires_provisioned_enclave(
        self, infrastructure, small_raptee_config
    ):
        host, _device = infrastructure.new_trusted_enclave(9)
        node = RapteeNode(9, NodeKind.TRUSTED, small_raptee_config,
                          random.Random(9), enclave=host)
        node.note_enclave_failure()
        with pytest.raises(ValueError):
            node.promote(infrastructure.reload_enclave(9))  # unprovisioned
        fresh = infrastructure.reload_enclave(9)
        infrastructure.provision_host(fresh)
        node.promote(fresh)
        assert node.trusted
        assert node.promotions_total == 1

    def test_promote_rejected_for_honest_nodes(self, small_raptee_config):
        node = RapteeNode(4, NodeKind.HONEST, small_raptee_config, random.Random(4))
        with pytest.raises(ValueError):
            node.promote(None)
