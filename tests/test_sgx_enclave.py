"""ECALL boundary, device, measurement, and quote tests."""

import pytest

from repro.crypto.prng import Sha256Prng
from repro.sgx.enclave import Enclave, EnclaveHost, SgxDevice, ecall
from repro.sgx.errors import EnclaveViolation
from repro.sgx.measurement import Measurement, measure_class


class CounterEnclave(Enclave):
    """Test enclave: one ECALL, one private method, private state."""

    def __init__(self, _device):
        super().__init__(_device)
        self._count = 0
        self._secret = b"top secret"

    @ecall
    def increment(self) -> int:
        self._count += 1
        return self._count

    def read_secret(self) -> bytes:
        return self._secret


class OtherEnclave(Enclave):
    @ecall
    def noop(self) -> None:
        return None


@pytest.fixture
def device(prng):
    return SgxDevice(1, prng.spawn("device"))


@pytest.fixture
def host(device):
    return device.load(CounterEnclave)


class TestEcallBoundary:
    def test_ecall_is_callable(self, host):
        assert host.increment() == 1
        assert host.increment() == 2

    def test_private_method_is_blocked(self, host):
        with pytest.raises(EnclaveViolation):
            host.read_secret()

    def test_private_attribute_is_blocked(self, host):
        with pytest.raises(EnclaveViolation):
            _ = host._secret

    def test_missing_name_is_blocked(self, host):
        with pytest.raises(EnclaveViolation):
            host.does_not_exist()

    def test_writes_are_blocked(self, host):
        with pytest.raises(EnclaveViolation):
            host.anything = 1

    def test_ecall_count(self, host):
        before = host.ecall_count
        host.increment()
        host.increment()
        assert host.ecall_count == before + 2

    def test_load_rejects_non_enclave(self, device):
        with pytest.raises(TypeError):
            device.load(object)


class TestMeasurement:
    def test_measurement_is_stable_per_class(self, device):
        first = device.load(CounterEnclave)
        second = device.load(CounterEnclave)
        assert first.measurement == second.measurement

    def test_measurement_differs_per_class(self, device):
        assert device.load(CounterEnclave).measurement != device.load(OtherEnclave).measurement

    def test_measure_class_versions_differ(self):
        assert measure_class(CounterEnclave, "1") != measure_class(CounterEnclave, "2")

    def test_measurement_requires_32_bytes(self):
        with pytest.raises(ValueError):
            Measurement(b"short")


class TestQuotes:
    def test_quote_carries_report_data(self, host):
        quote = host.generate_quote(b"bound data")
        assert quote.report_data.startswith(b"bound data")
        assert len(quote.report_data) == 64

    def test_quote_signature_verifies_with_device_key(self, device, host):
        quote = host.generate_quote(b"data")
        assert device.attestation_public_key.verify(quote.signed_payload(), quote.signature)

    def test_oversized_report_data_rejected(self, host):
        with pytest.raises(ValueError):
            host.generate_quote(b"x" * 65)

    def test_two_devices_have_distinct_keys(self, prng):
        a = SgxDevice(1, prng.spawn("a"))
        b = SgxDevice(2, prng.spawn("b"))
        assert a.attestation_public_key != b.attestation_public_key
