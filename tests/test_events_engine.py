"""Continuous-mode event engine: determinism, load, stragglers, churn.

The two ISSUE-8 determinism fixtures live here:

* identical metrics under ``repeat()`` with ``workers=1`` vs ``workers=4``
  (the scheduler key is ``(time, seq)`` — no per-process state leaks in);
* identical event sequences across two *fresh* interpreter processes with
  the same seed (the schedule log digest printed by a subprocess).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.eviction import AdaptiveEviction
from repro.crypto.prng import derive_seed
from repro.events import (
    ConstantLatency,
    EventOptions,
    LatencyConfig,
    LoadSpec,
    LogNormalLatency,
    StragglerProfile,
    wire_events,
)
from repro.experiments.runner import repeat, run_bundle
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)
from repro.faults.invariants import InvariantChecker
from repro.sim.churn import UniformChurn
from repro.telemetry import TelemetryConfig, wire_telemetry

ROUNDS = 8
_REPO_ROOT = Path(__file__).resolve().parents[1]


def _latency_options(seed, **overrides):
    base = dict(
        seed=seed,
        mode="continuous",
        latency=LatencyConfig(default=LogNormalLatency(0.04, 0.6)),
    )
    base.update(overrides)
    return EventOptions(**base)


def _raptee_bundle(seed):
    spec = TopologySpec(
        n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.10,
        view_ratio=0.10,
    )
    return build_raptee_simulation(spec, seed, eviction=AdaptiveEviction())


def _build_and_run_events(seed: int):
    """Module-level (picklable) task for repeat() worker-count tests."""
    bundle = _raptee_bundle(seed)
    return run_bundle(bundle, ROUNDS, events=_latency_options(seed))


class TestContinuousMode:
    def test_rounds_advance_and_invariants_hold(self):
        bundle = _raptee_bundle(5)
        harness = wire_events(bundle, _latency_options(5))
        checker = InvariantChecker(record_only=True)
        harness.run(ROUNDS, extra_observers=(checker,))
        assert bundle.simulation.round_number == ROUNDS
        assert harness.engine.rounds_completed == ROUNDS
        assert checker.rounds_checked == ROUNDS
        assert checker.violations == []
        # Every node cycled roughly once per round.
        assert harness.engine.cycles >= ROUNDS * len(bundle.simulation.nodes) // 2
        # Non-degenerate latency: pushes actually rode the queue.
        assert harness.engine.latency_network.deferred_pushes > 0

    def test_view_trace_records_every_round(self):
        bundle = _raptee_bundle(6)
        wire_events(bundle, _latency_options(6)).run(ROUNDS)
        assert [record.round_number for record in bundle.trace.records] == list(
            range(1, ROUNDS + 1)
        )

    def test_zero_latency_continuous_is_deterministic(self):
        def run():
            bundle = _raptee_bundle(9)
            options = EventOptions(seed=9, mode="continuous",
                                   latency=LatencyConfig(default=ConstantLatency(0.0)))
            wire_events(bundle, options).run(ROUNDS)
            return {
                node_id: tuple(node.view_ids())
                for node_id, node in sorted(bundle.simulation.nodes.items())
            }

        assert run() == run()

    def test_engine_is_single_shot(self):
        bundle = _raptee_bundle(5)
        harness = wire_events(bundle, _latency_options(5))
        harness.run(2)
        with pytest.raises(RuntimeError):
            harness.run(2)

    def test_churn_arrivals_get_cycles(self):
        from repro.brahms.node import BrahmsNode
        from repro.sim.node import NodeKind

        spec = TopologySpec(n_nodes=50, byzantine_fraction=0.10, view_ratio=0.08)
        bundle = build_brahms_simulation(spec, seed=47)
        simulation = bundle.simulation
        config = spec.brahms_config()

        def factory(node_id):
            node = BrahmsNode(
                node_id, NodeKind.HONEST, config,
                random.Random(derive_seed(47, "node", node_id)),
            )
            # Honest bootstrap contacts (IDs 0-4 are Byzantine here) so the
            # join round's pulls return real views.
            node.seed_view([10, 20, 30])
            return node

        simulation._churn = UniformChurn(leave_rate=0.02, join_rate=0.06)
        simulation._node_factory = factory
        harness = wire_events(bundle, _latency_options(47))
        harness.run(12)
        arrivals = [node_id for node_id in simulation.nodes if node_id >= 50]
        assert arrivals, "churn produced no arrivals; raise join_rate"
        # Arrivals were scheduled onto the event clock and gossiped: their
        # pulls expanded their known set past the bootstrap contacts, and
        # their pushes reached established correct nodes.
        learned = [node_id for node_id in arrivals
                   if len(simulation.nodes[node_id].known) > 4]
        assert learned
        established = [
            node for node in simulation.correct_nodes() if node.node_id < 50
        ]
        heard_of = [node_id for node_id in arrivals
                    if any(node_id in node.known for node in established)]
        assert heard_of


class TestLoadGenerator:
    def test_load_metrics_reach_registry(self):
        bundle = _raptee_bundle(7)
        harness = wire_telemetry(bundle, TelemetryConfig(tracing=False))
        options = _latency_options(7, load=LoadSpec(10, 30.0))
        run_bundle(bundle, ROUNDS, events=options)
        load = bundle.events.load
        assert load.served > 0
        registry = harness.telemetry.registry
        assert registry.value("load.requests") == load.served
        assert registry.value("load.failures") == load.failed
        assert registry.value("load.byzantine_samples") == load.byzantine_samples
        # Histogram value() reads the observation count.
        assert registry.value("load.latency_ms") == load.served
        assert len(load.records) == load.served + load.failed
        assert load.latencies_ms and min(load.latencies_ms) > 0

    def test_load_is_deterministic(self):
        def run():
            bundle = _raptee_bundle(8)
            options = _latency_options(8, load=LoadSpec(10, 30.0))
            wire_events(bundle, options).run(ROUNDS)
            return bundle.events.load.records

        assert run() == run()


class TestStragglers:
    def test_membership_is_deterministic_and_sized(self):
        profile = StragglerProfile(0.25, 8.0)
        factors = {node_id: profile.factor_for(3, node_id) for node_id in range(400)}
        assert factors == {node_id: profile.factor_for(3, node_id)
                           for node_id in range(400)}
        slow = sum(1 for factor in factors.values() if factor > 1.0)
        assert 50 <= slow <= 150  # ~25% of 400

    def test_stragglers_fall_behind(self):
        def late_fraction(profile):
            bundle = _raptee_bundle(4)
            harness = wire_events(bundle, _latency_options(4, stragglers=profile))
            harness.run(ROUNDS)
            return harness.engine.late_fraction

        baseline = late_fraction(None)
        straggling = late_fraction(StragglerProfile(0.2, 16.0))
        assert straggling > baseline


class TestCrossProcessDeterminism:
    def test_repeat_workers_1_vs_4_identical(self):
        seeds = [101, 102, 103, 104]
        serial = repeat(_build_and_run_events, seeds, workers=1)
        parallel = repeat(_build_and_run_events, seeds, workers=4)
        assert serial.runs == parallel.runs
        assert serial.resilience == parallel.resilience

    def test_fresh_processes_same_seed_same_event_sequence(self):
        script = (
            "import hashlib, json\n"
            "from tests.test_events_engine import _raptee_bundle, _latency_options\n"
            "from repro.events import LoadSpec, wire_events\n"
            "bundle = _raptee_bundle(12)\n"
            "options = _latency_options(12, load=LoadSpec(5, 30.0),"
            " record_schedule=True)\n"
            "harness = wire_events(bundle, options)\n"
            "harness.run(6)\n"
            "views = {n: tuple(node.view_ids())"
            " for n, node in sorted(bundle.simulation.nodes.items())}\n"
            "payload = json.dumps([harness.engine.schedule_log, views],"
            " sort_keys=True)\n"
            "print(hashlib.sha256(payload.encode()).hexdigest())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(_REPO_ROOT / "src"), str(_REPO_ROOT)]
        )
        digests = [
            subprocess.run(
                [sys.executable, "-c", script], env=env, cwd=str(_REPO_ROOT),
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            for _ in range(2)
        ]
        assert digests[0] and digests[0] == digests[1]


class TestSloFigure:
    def test_slo_figure_is_deterministic_and_non_degenerate(self):
        from repro.experiments.figures import Scale, slo_figure

        scale = Scale(n_nodes=40, rounds=8, repetitions=1, view_ratio=0.10)
        loads = ((5, 30.0), (20, 30.0))
        first = slo_figure(scale, loads=loads)
        second = slo_figure(scale, loads=loads)
        assert first.rows == second.rows
        served = [float(row[1]) for row in first.rows]
        assert all(count > 0 for count in served)
        # More clients => more served requests (throughput actually scales).
        assert served[1] > served[0]
        # Non-degenerate latency: p95 is a positive bucket bound.
        assert all(float(row[4]) > 0 for row in first.rows)
