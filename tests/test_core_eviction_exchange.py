"""Eviction policies (§IV-C) and the trusted half-view swap (§IV-B)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.core.trusted_exchange import apply_swap, build_offer


class TestFixedEviction:
    def test_constant_rate(self):
        policy = FixedEviction(0.6)
        assert policy.rate(0.0) == policy.rate(0.5) == policy.rate(1.0) == 0.6

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            FixedEviction(1.5)
        with pytest.raises(ValueError):
            FixedEviction(-0.1)

    def test_describe(self):
        assert FixedEviction(0.4).describe() == "fixed-40%"


class TestAdaptiveEviction:
    def test_paper_anchor_points(self):
        policy = AdaptiveEviction()
        assert policy.rate(0.0) == 0.8
        assert policy.rate(0.2) == 0.8
        assert policy.rate(0.8) == pytest.approx(0.2)
        assert policy.rate(1.0) == 0.2

    def test_linear_midpoint(self):
        assert AdaptiveEviction().rate(0.5) == pytest.approx(0.5)

    def test_paper_rule_equals_one_minus_share_in_linear_region(self):
        policy = AdaptiveEviction()
        for share in (0.25, 0.4, 0.6, 0.75):
            assert policy.rate(share) == pytest.approx(1.0 - share)

    @given(share=st.floats(min_value=0.0, max_value=1.0))
    def test_rate_always_within_anchors(self, share):
        rate = AdaptiveEviction().rate(share)
        assert 0.2 <= rate <= 0.8

    @given(
        a=st.floats(min_value=0.0, max_value=1.0),
        b=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotonically_non_increasing(self, a, b):
        policy = AdaptiveEviction()
        low, high = min(a, b), max(a, b)
        assert policy.rate(low) >= policy.rate(high)

    def test_out_of_range_share_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveEviction().rate(1.2)

    def test_anchor_validation(self):
        with pytest.raises(ValueError):
            AdaptiveEviction(low_share=0.8, high_share=0.2)
        with pytest.raises(ValueError):
            AdaptiveEviction(low_rate=0.9, high_rate=0.1)

    def test_custom_anchors(self):
        policy = AdaptiveEviction(low_share=0.1, high_share=0.9, low_rate=0.0, high_rate=1.0)
        assert policy.rate(0.05) == 1.0
        assert policy.rate(0.95) == 0.0
        assert policy.rate(0.5) == pytest.approx(0.5)


class TestTrustedExchange:
    def test_offer_half_view_with_self(self):
        rng = random.Random(0)
        view = list(range(1, 11))
        offer = build_offer(view, own_id=99, rng=rng, include_self=True)
        assert len(offer.offered) == 5  # c/2
        assert 99 in offer.offered
        assert len(offer.sent_from_view) == 4
        assert set(offer.sent_from_view) <= set(view)

    def test_offer_without_self(self):
        rng = random.Random(0)
        view = list(range(1, 11))
        offer = build_offer(view, own_id=99, rng=rng, include_self=False)
        assert len(offer.offered) == 5
        assert 99 not in offer.offered
        assert tuple(offer.sent_from_view) == offer.offered

    def test_offer_from_tiny_view(self):
        rng = random.Random(0)
        offer = build_offer([7], own_id=99, rng=rng, include_self=True)
        assert offer.offered == (99,)

    def test_swap_removes_sent_and_adds_received(self):
        rng = random.Random(1)
        view = list(range(1, 11))
        offer = build_offer(view, own_id=99, rng=rng, include_self=True)
        received = (201, 202, 203, 204, 205)
        new_view = apply_swap(view, offer, received, own_id=99)
        for sent in offer.sent_from_view:
            assert new_view.count(sent) == view.count(sent) - 1
        for peer in received:
            assert peer in new_view

    def test_swap_preserves_length(self):
        rng = random.Random(2)
        view = list(range(1, 11))
        offer = build_offer(view, own_id=99, rng=rng, include_self=False)
        received = tuple(range(100, 100 + len(offer.offered)))
        assert len(apply_swap(view, offer, received, own_id=99)) == len(view)

    def test_swap_filters_own_id(self):
        rng = random.Random(3)
        view = list(range(1, 11))
        offer = build_offer(view, own_id=99, rng=rng, include_self=True)
        new_view = apply_swap(view, offer, (99, 50), own_id=99)
        assert 99 not in new_view
        assert 50 in new_view

    def test_swap_multiset_semantics_with_duplicates(self):
        view = [1, 1, 2, 3]
        offer = build_offer([1], own_id=9, rng=random.Random(0), include_self=False)
        # offer sent_from_view == (1,): removing once keeps the second 1.
        new_view = apply_swap(view, offer, (7,), own_id=9)
        assert new_view.count(1) == 1
        assert 7 in new_view
