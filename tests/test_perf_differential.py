"""Differential equivalence: fast paths on vs off are byte-identical.

This is the contract that lets :mod:`repro.perf` default to *on*: for the
same seed, a run with every fast path enabled (T-table AES, cached key
schedules, shared CTR keystreams, numpy sketch kernels, batched network
tallies) must produce exactly what the unaccelerated reference produces —
the same exported trace JSONL, the same metrics CSV, the same final views,
the same per-round traffic series.

Three pinned scenarios cover the three configuration families: the Brahms
baseline, RAPTEE with fixed eviction + encrypted transport + count-min
unbiasing, and RAPTEE under an active fault plan.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import per_round_series
from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)
from repro.faults.harness import wire_faults
from repro.faults.plan import CrashRestartFault, FaultPlan, LossBurstFault, RoundWindow
from repro.perf.config import fastpaths, fastpaths_enabled
from repro.telemetry import (
    TelemetryConfig,
    metrics_to_csv,
    trace_to_jsonl,
    wire_telemetry,
)

ROUNDS = 6


def _observables(bundle, harness_runner, rounds):
    """Run and collect every deterministic-surface artifact of a bundle."""
    config = TelemetryConfig(tracing=True, trace_messages=True, trace_ecalls=True)
    telemetry_harness = wire_telemetry(bundle, config)
    harness_runner(rounds)
    telemetry = telemetry_harness.telemetry
    simulation = bundle.simulation
    stats = simulation.network.stats
    return {
        "trace_jsonl": trace_to_jsonl(telemetry.trace.events),
        "metrics_csv": metrics_to_csv(telemetry.registry),
        "final_views": {
            node_id: tuple(node.view_ids())
            for node_id, node in sorted(simulation.nodes.items())
        },
        "view_trace": bundle.trace.records,
        "pushes_series": per_round_series(stats.per_round_pushes, rounds),
        "requests_series": per_round_series(stats.per_round_requests, rounds),
        "losses_series": per_round_series(stats.per_round_losses, rounds),
        "totals": (
            stats.pushes_sent,
            stats.pushes_delivered,
            stats.requests_sent,
            stats.replies_delivered,
            stats.messages_lost,
            stats.bytes_encrypted,
        ),
    }


def _run_brahms(enabled: bool):
    with fastpaths(enabled):
        spec = TopologySpec(
            n_nodes=60, byzantine_fraction=0.10, view_ratio=0.08, loss_rate=0.05
        )
        bundle = build_brahms_simulation(spec, seed=11)
        return _observables(bundle, bundle.run, ROUNDS)


def _run_raptee_fixed(enabled: bool):
    with fastpaths(enabled):
        spec = TopologySpec(
            n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.10,
            view_ratio=0.10, transport_encryption=True,
        )
        bundle = build_raptee_simulation(
            spec, seed=23, eviction=FixedEviction(0.6),
            sketch_unbias_enabled=True,
        )
        return _observables(bundle, bundle.run, ROUNDS)


def _run_raptee_faults(enabled: bool):
    with fastpaths(enabled):
        spec = TopologySpec(
            n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.10,
            view_ratio=0.10, transport_encryption=True,
        )
        bundle = build_raptee_simulation(spec, seed=31, eviction=AdaptiveEviction())
        plan = FaultPlan([
            LossBurstFault(window=RoundWindow(2, 3), loss_rate=0.30),
            # Node 5 is trusted (IDs 4-7 here): the crash kills its enclave,
            # pulling the recovery manager into the differential surface.
            CrashRestartFault(node_id=5, at_round=2, down_rounds=2),
        ])
        # Telemetry must be wired before faults so injector events land in
        # the same hub; wire_faults picks it up from the bundle.
        def runner(rounds):
            fault_harness = wire_faults(bundle, plan, seed=31)
            fault_harness.run(rounds)

        return _observables(bundle, runner, ROUNDS)


_SCENARIOS = {
    "brahms-baseline": _run_brahms,
    "raptee-fixed-eviction": _run_raptee_fixed,
    "raptee-faults": _run_raptee_faults,
}


class TestFastPathDefault:
    def test_fast_paths_are_on_by_default(self):
        assert fastpaths_enabled()

    def test_context_restores_state(self):
        before = fastpaths_enabled()
        with fastpaths(False):
            assert not fastpaths_enabled()
            with fastpaths(True):
                assert fastpaths_enabled()
            assert not fastpaths_enabled()
        assert fastpaths_enabled() == before


@pytest.mark.parametrize("name", sorted(_SCENARIOS))
def test_fastpath_on_off_byte_identical(name):
    run = _SCENARIOS[name]
    fast = run(True)
    slow = run(False)
    # Byte-identical exported artifacts.
    assert fast["trace_jsonl"] == slow["trace_jsonl"]
    assert fast["metrics_csv"] == slow["metrics_csv"]
    # Identical protocol outcomes and per-round traffic series.
    assert fast["final_views"] == slow["final_views"]
    assert fast["view_trace"] == slow["view_trace"]
    assert fast["pushes_series"] == slow["pushes_series"]
    assert fast["requests_series"] == slow["requests_series"]
    assert fast["losses_series"] == slow["losses_series"]
    assert fast["totals"] == slow["totals"]


@pytest.mark.parametrize("name", sorted(_SCENARIOS))
def test_fastpath_runs_are_self_deterministic(name):
    """Same seed, same mode → identical artifacts (no hidden global state)."""
    run = _SCENARIOS[name]
    first = run(True)
    second = run(True)
    assert first == second


def test_encrypted_scenario_actually_encrypts():
    """Guard against the differential passing vacuously."""
    fast = _run_raptee_fixed(True)
    assert fast["totals"][-1] > 0  # bytes_encrypted
