"""Number theory: Miller-Rabin, prime generation, modular inverse."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto.numbers import generate_prime, is_probable_prime, modular_inverse

SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 97, 101, 997, 7919]
SMALL_COMPOSITES = [1, 4, 6, 8, 9, 15, 21, 25, 91, 100, 561, 1105, 6601]


class TestPrimality:
    @pytest.mark.parametrize("prime", SMALL_PRIMES)
    def test_known_primes(self, prime):
        assert is_probable_prime(prime)

    @pytest.mark.parametrize("composite", SMALL_COMPOSITES)
    def test_known_composites(self, composite):
        assert not is_probable_prime(composite)

    def test_carmichael_numbers_are_rejected(self):
        # Fermat pseudoprimes that defeat naive tests.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_probable_prime(carmichael)

    def test_negative_and_zero(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)
        assert not is_probable_prime(-7)

    def test_large_known_prime(self):
        assert is_probable_prime((1 << 61) - 1)  # Mersenne prime M61

    def test_large_known_composite(self):
        assert not is_probable_prime((1 << 61) - 3)

    def test_product_of_two_primes_is_composite(self):
        rng = random.Random(7)
        p = generate_prime(64, rng)
        q = generate_prime(64, rng)
        assert not is_probable_prime(p * q)


class TestGeneratePrime:
    def test_exact_bit_length(self):
        rng = random.Random(1)
        for bits in (16, 32, 64, 128):
            prime = generate_prime(bits, rng)
            assert prime.bit_length() == bits
            assert is_probable_prime(prime)

    def test_refuses_tiny_sizes(self):
        with pytest.raises(ValueError):
            generate_prime(4, random.Random(0))

    def test_deterministic_under_seed(self):
        assert generate_prime(48, random.Random(5)) == generate_prime(48, random.Random(5))


class TestModularInverse:
    def test_known_inverse(self):
        assert modular_inverse(3, 11) == 4  # 3*4 = 12 ≡ 1 (mod 11)

    def test_no_inverse_raises(self):
        with pytest.raises(ValueError):
            modular_inverse(6, 9)

    @given(st.integers(min_value=2, max_value=10_000))
    def test_inverse_property_mod_prime(self, a):
        p = 1_000_003  # prime
        inverse = modular_inverse(a, p)
        assert (a * inverse) % p == 1
        assert 0 <= inverse < p
