"""Attestation service tests."""

import pytest

from repro.crypto.prng import Sha256Prng
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import Enclave, SgxDevice, ecall
from repro.sgx.errors import AttestationError
from repro.sgx.measurement import Quote


class NoopEnclave(Enclave):
    @ecall
    def noop(self) -> None:
        return None


@pytest.fixture
def setup(prng):
    device = SgxDevice(10, prng.spawn("device"))
    host = device.load(NoopEnclave)
    service = AttestationService()
    service.register_device(10, device.attestation_public_key)
    service.trust_measurement(host.measurement)
    return service, device, host


class TestVerification:
    def test_valid_quote_passes(self, setup):
        service, _device, host = setup
        service.verify_quote(host.generate_quote(b"data"))

    def test_unknown_device_rejected(self, setup, prng):
        service, _device, _host = setup
        rogue_device = SgxDevice(99, prng.spawn("rogue"))
        rogue_host = rogue_device.load(NoopEnclave)
        with pytest.raises(AttestationError, match="unknown device"):
            service.verify_quote(rogue_host.generate_quote(b"data"))

    def test_revoked_device_rejected(self, setup):
        service, _device, host = setup
        quote = host.generate_quote(b"data")
        service.revoke_device(10)
        with pytest.raises(AttestationError, match="revoked"):
            service.verify_quote(quote)

    def test_untrusted_measurement_rejected(self, setup):
        service, device, _host = setup

        class ModifiedEnclave(Enclave):
            @ecall
            def noop(self):
                return None

        modified_host = device.load(ModifiedEnclave)
        with pytest.raises(AttestationError, match="not trusted"):
            service.verify_quote(modified_host.generate_quote(b"data"))

    def test_tampered_report_data_rejected(self, setup):
        service, _device, host = setup
        quote = host.generate_quote(b"original")
        forged = Quote(
            measurement=quote.measurement,
            report_data=b"forged".ljust(64, b"\x00"),
            device_id=quote.device_id,
            signature=quote.signature,
        )
        with pytest.raises(AttestationError, match="signature"):
            service.verify_quote(forged)

    def test_tampered_signature_rejected(self, setup):
        service, _device, host = setup
        quote = host.generate_quote(b"data")
        forged = Quote(
            measurement=quote.measurement,
            report_data=quote.report_data,
            device_id=quote.device_id,
            signature=bytes([quote.signature[0] ^ 1]) + quote.signature[1:],
        )
        with pytest.raises(AttestationError):
            service.verify_quote(forged)


class TestRegistry:
    def test_double_registration_rejected(self, setup, prng):
        service, device, _host = setup
        with pytest.raises(AttestationError, match="already registered"):
            service.register_device(10, device.attestation_public_key)

    def test_is_trusted_measurement(self, setup):
        service, _device, host = setup
        assert service.is_trusted_measurement(host.measurement)
