"""Telemetry unit tests: registry, traces, exporters, profiler, hub."""

import json

import pytest

from repro.telemetry import (
    MetricsRegistry,
    Profiler,
    Telemetry,
    TelemetryConfig,
    TraceCollector,
    metrics_to_csv,
    render_profile,
    render_summary,
    trace_to_jsonl,
    validate_trace_jsonl,
)


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        assert registry.value("hits") == 3

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        registry.gauge("alive").set(10)
        registry.gauge("alive").add(-3)
        assert registry.value("alive") == 7

    def test_histogram_mean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes")
        for value in (2, 4, 6):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(4.0)

    def test_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("req", kind="a").inc(5)
        registry.counter("req", kind="b").inc(7)
        assert registry.value("req", kind="a") == 5
        assert registry.value("req", kind="b") == 7
        assert registry.total("req") == 12
        assert registry.by_label("req", "kind") == {"a": 5, "b": 7}

    def test_value_does_not_create_series(self):
        registry = MetricsRegistry()
        assert registry.value("missing", default=-1) == -1
        assert registry.names() == []

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a", z=1).inc()
        registry.counter("a", y=2).inc()
        names = [(sample.name, sample.labels_text())
                 for sample in registry.snapshot()]
        assert names == sorted(names)


class TestTraceCollector:
    def test_emit_assigns_monotonic_seq(self):
        trace = TraceCollector()
        first = trace.emit("a", 1)
        second = trace.emit("b", 1, node=3, phase="gossip", extra=9)
        assert (first.seq, second.seq) == (0, 1)
        assert second.fields == {"extra": 9}
        assert len(trace) == 2

    def test_emit_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TraceCollector().emit("a", 1, kind="bogus")

    def test_span_links_end_to_begin(self):
        trace = TraceCollector()
        with trace.span("work", 2, node=1):
            trace.emit("inner", 2)
        begin, inner, end = trace.events
        assert (begin.kind, end.kind) == ("begin", "end")
        assert end.fields["span"] == begin.seq
        assert inner.seq == begin.seq + 1

    def test_named_and_in_round_filters(self):
        trace = TraceCollector()
        trace.emit("a", 1)
        trace.emit("a", 2)
        trace.emit("b", 2)
        assert len(trace.named("a")) == 2
        assert len(trace.in_round(2)) == 2


class TestExporters:
    def _trace(self):
        trace = TraceCollector()
        trace.emit("a", 1, node=0, text="x,\"y\"")
        with trace.span("s", 1):
            pass
        return trace

    def test_jsonl_round_trips_and_validates(self):
        text = trace_to_jsonl(self._trace().events)
        assert text.endswith("\n")
        assert validate_trace_jsonl(text) == 3
        first = json.loads(text.splitlines()[0])
        assert sorted(first) == ["fields", "kind", "name", "node", "phase",
                                 "round", "seq"]

    def test_validate_rejects_gapped_seq(self):
        lines = trace_to_jsonl(self._trace().events).splitlines()
        with pytest.raises(ValueError):
            validate_trace_jsonl("\n".join([lines[0], lines[2]]) + "\n")

    def test_validate_rejects_missing_key(self):
        record = json.loads(trace_to_jsonl(self._trace().events).splitlines()[0])
        del record["phase"]
        with pytest.raises(ValueError):
            validate_trace_jsonl(json.dumps(record) + "\n")

    def test_metrics_csv_quotes_labels(self):
        registry = MetricsRegistry()
        registry.counter("req", kind='Auth,"x"').inc()
        text = metrics_to_csv(registry)
        header, row = text.splitlines()
        assert header == "name,kind,labels,value,count,sum"
        assert row.startswith("req,counter,")
        assert '""x""' in row  # CSV-escaped quote

    def test_render_summary_mentions_rounds(self):
        telemetry = Telemetry()
        telemetry.begin_round(1)
        telemetry.end_round(alive_nodes=5)
        assert "rounds executed" in render_summary(telemetry)


class TestProfiler:
    def test_disabled_profiler_records_nothing(self):
        profiler = Profiler(enabled=False)
        with profiler.time("work"):
            pass
        assert profiler.rows() == []

    def test_enabled_profiler_counts_calls(self):
        profiler = Profiler(enabled=True)
        for _ in range(3):
            with profiler.time("work"):
                pass
        (row,) = profiler.rows()
        assert row[0] == "work"
        assert row[1] == 3  # calls
        assert "work" in render_profile(profiler)
        profiler.reset()
        assert profiler.rows() == []


class TestTelemetryHub:
    def test_round_clock_stamps_events(self):
        telemetry = Telemetry()
        telemetry.begin_round(4)
        with telemetry.phase("gossip"):
            telemetry.event("thing", node=2)
        (event,) = telemetry.trace.named("thing")
        assert (event.round, event.phase, event.node) == (4, "gossip", 2)
        assert telemetry.registry.value("sim.rounds") == 1

    def test_tracing_disabled_drops_events(self):
        telemetry = Telemetry(TelemetryConfig(tracing=False))
        telemetry.begin_round(1)
        telemetry.event("thing")
        telemetry.end_round(alive_nodes=3)
        assert telemetry.trace is None
        assert telemetry.registry.value("sim.rounds") == 1
