"""Hash utility tests."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import (
    concat_hash,
    constant_time_equal,
    hkdf,
    hmac_sha256,
    int_digest,
    iter_hash_chain,
    sha256,
)


class TestSha256:
    def test_matches_hashlib(self):
        assert sha256(b"abc") == hashlib.sha256(b"abc").digest()


class TestConcatHash:
    def test_framing_prevents_boundary_ambiguity(self):
        # Without framing these two would collide: "ab"+"c" vs "a"+"bc".
        assert concat_hash(b"ab", b"c") != concat_hash(b"a", b"bc")

    def test_deterministic(self):
        assert concat_hash(b"x", b"y") == concat_hash(b"x", b"y")

    def test_order_matters(self):
        assert concat_hash(b"x", b"y") != concat_hash(b"y", b"x")

    def test_empty_parts_are_distinguished(self):
        assert concat_hash(b"", b"x") != concat_hash(b"x", b"")


class TestHmac:
    def test_matches_stdlib_hmac(self):
        key, message = b"k" * 16, b"payload"
        expected = stdlib_hmac.new(key, message, hashlib.sha256).digest()
        assert hmac_sha256(key, message) == expected

    def test_prototype_cache_does_not_leak_state(self):
        key = b"cache-key-000000"
        first = hmac_sha256(key, b"m1")
        second = hmac_sha256(key, b"m2")
        # Re-computing m1 after m2 must still match (copy semantics).
        assert hmac_sha256(key, b"m1") == first
        assert first != second

    @given(key=st.binary(min_size=1, max_size=64), message=st.binary(max_size=128))
    def test_always_matches_stdlib(self, key, message):
        expected = stdlib_hmac.new(key, message, hashlib.sha256).digest()
        assert hmac_sha256(key, message) == expected


class TestHkdf:
    def test_output_length(self):
        for length in (1, 16, 32, 64, 100):
            assert len(hkdf(b"ikm", b"info", length=length)) == length

    def test_info_separates_outputs(self):
        assert hkdf(b"ikm", b"auth") != hkdf(b"ikm", b"transport")

    def test_salt_separates_outputs(self):
        assert hkdf(b"ikm", b"i", salt=b"s1") != hkdf(b"ikm", b"i", salt=b"s2")

    def test_rfc5869_test_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        okm = hkdf(ikm, info, length=42, salt=salt)
        expected = bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )
        assert okm == expected

    def test_too_long_output_rejected(self):
        with pytest.raises(ValueError):
            hkdf(b"ikm", b"info", length=255 * 32 + 1)


class TestMisc:
    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")
        assert not constant_time_equal(b"abc", b"abcd")

    def test_int_digest_range(self):
        for bits in (1, 8, 61, 64, 256):
            value = int_digest(b"data", bits=bits)
            assert 0 <= value < (1 << bits)

    def test_int_digest_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            int_digest(b"data", bits=0)
        with pytest.raises(ValueError):
            int_digest(b"data", bits=257)

    def test_hash_chain_length_and_determinism(self):
        chain = list(iter_hash_chain(b"seed", 5))
        assert len(chain) == 5
        assert len(set(chain)) == 5
        assert chain == list(iter_hash_chain(b"seed", 5))
