"""Count-min sketch and stream-unbiasing tests (future-work extension)."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.brahms.countmin import CountMinSketch, StreamUnbiaser
from repro.core.eviction import FixedEviction
from repro.experiments.runner import run_bundle
from repro.experiments.scenarios import TopologySpec, build_raptee_simulation


class TestCountMinSketch:
    def test_estimate_upper_bounds_true_count(self):
        sketch = CountMinSketch(width=64, depth=4, rng=random.Random(0))
        for _ in range(10):
            sketch.update(42)
        sketch.update(7)
        assert sketch.estimate(42) >= 10
        assert sketch.estimate(7) >= 1

    def test_estimate_is_accurate_for_sparse_streams(self):
        sketch = CountMinSketch(width=512, depth=4, rng=random.Random(0))
        truth = {item: item % 5 + 1 for item in range(20)}
        for item, count in truth.items():
            sketch.update(item, count)
        for item, count in truth.items():
            assert sketch.estimate(item) == count  # no collisions at this load

    def test_unseen_item_estimates_near_zero(self):
        sketch = CountMinSketch(width=256, depth=4, rng=random.Random(0))
        sketch.update_batch(range(10))
        assert sketch.estimate(999_999) <= 1

    def test_total_tracks_updates(self):
        sketch = CountMinSketch(width=16, depth=2, rng=random.Random(0))
        sketch.update(1, 5)
        sketch.update(2)
        assert sketch.total == 6

    def test_decay_halves_counters(self):
        sketch = CountMinSketch(width=16, depth=2, rng=random.Random(0))
        sketch.update(1, 8)
        sketch.decay(0.5)
        assert sketch.estimate(1) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(0, 4, random.Random(0))
        sketch = CountMinSketch(8, 2, random.Random(0))
        with pytest.raises(ValueError):
            sketch.update(1, 0)
        with pytest.raises(ValueError):
            sketch.decay(1.5)

    @given(items=st.lists(st.integers(min_value=0, max_value=100), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_estimate_never_underestimates(self, items):
        sketch = CountMinSketch(width=32, depth=3, rng=random.Random(1))
        sketch.update_batch(items)
        truth = Counter(items)
        for item, count in truth.items():
            assert sketch.estimate(item) >= count


class TestStreamUnbiaser:
    def test_uniform_stream_mostly_kept(self):
        unbiaser = StreamUnbiaser(random.Random(0), width=512)
        batch = list(range(100))
        unbiaser.observe(batch)
        kept = unbiaser.unbias(batch)
        assert len(kept) > 80  # all estimates equal → keep ≈ everything

    def test_over_advertised_id_is_suppressed(self):
        unbiaser = StreamUnbiaser(random.Random(0), width=512)
        # ID 1 advertised 50×, IDs 2..11 once each.
        batch = [1] * 50 + list(range(2, 12))
        unbiaser.observe(batch)
        kept = unbiaser.unbias(batch)
        counts = Counter(kept)
        assert counts[1] <= 10  # ~50/50 = 1 expected, allow slack
        rare_kept = sum(counts[item] for item in range(2, 12))
        assert rare_kept >= 7

    def test_empty_batch(self):
        unbiaser = StreamUnbiaser(random.Random(0))
        assert unbiaser.unbias([]) == []

    def test_never_returns_empty_from_nonempty(self):
        unbiaser = StreamUnbiaser(random.Random(0))
        batch = [5] * 1000
        for _ in range(30):
            unbiaser.observe(batch)
        assert len(unbiaser.unbias(batch)) >= 1

    def test_periodic_decay_runs(self):
        unbiaser = StreamUnbiaser(random.Random(0), decay_every=2)
        unbiaser.observe([1, 2, 3])
        total_before = unbiaser.sketch.total
        unbiaser.observe([1, 2, 3])  # triggers decay
        assert unbiaser.sketch.total < total_before + 3


class TestRapteeIntegration:
    def test_sketch_unbias_runs_end_to_end(self):
        spec = TopologySpec(
            n_nodes=80, byzantine_fraction=0.2, trusted_fraction=0.1, view_ratio=0.1
        )
        bundle = build_raptee_simulation(
            spec, seed=4, eviction=FixedEviction(0.4), sketch_unbias_enabled=True
        )
        metrics = run_bundle(bundle, rounds=15)
        assert 0.0 <= metrics.resilience <= 1.0

    def test_unbias_reduces_pollution_vs_disabled(self):
        """The adversary's pull answers over-advertise Byzantine IDs; the
        sketch should blunt that edge (weak directional check, one seed)."""
        spec = TopologySpec(
            n_nodes=120, byzantine_fraction=0.25, trusted_fraction=0.1, view_ratio=0.1
        )
        plain = run_bundle(
            build_raptee_simulation(spec, 6, eviction=FixedEviction(0.0)), rounds=30
        )
        unbiased = run_bundle(
            build_raptee_simulation(
                spec, 6, eviction=FixedEviction(0.0), sketch_unbias_enabled=True
            ),
            rounds=30,
        )
        assert unbiased.resilience <= plain.resilience + 0.05
