"""Brahms configuration and sampling-component tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.brahms.config import BrahmsConfig
from repro.brahms.sampler import Sampler, SamplerGroup
from repro.crypto.minwise import MinWiseFamily


class TestConfig:
    def test_defaults_follow_the_paper(self):
        config = BrahmsConfig()
        assert (config.alpha, config.beta, config.gamma) == (0.4, 0.4, 0.2)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            BrahmsConfig(alpha=0.5, beta=0.5, gamma=0.5)

    def test_counts_partition_the_view(self):
        config = BrahmsConfig(view_size=200, sample_size=100)
        assert config.alpha_count == 80
        assert config.beta_count == 80
        assert config.gamma_count == 40

    def test_small_views_keep_gamma_slots(self):
        config = BrahmsConfig(view_size=8, sample_size=4)
        assert config.gamma_count >= 1

    def test_scaled_matches_paper_ratio(self):
        config = BrahmsConfig().scaled(10_000, view_ratio=0.02)
        assert config.view_size == 200
        assert config.sample_size == 100

    def test_scaled_clamps_tiny_systems(self):
        config = BrahmsConfig().scaled(50)
        assert config.view_size >= 8
        assert config.sample_size >= 4

    def test_effective_push_limit_defaults_to_alpha(self):
        config = BrahmsConfig(view_size=20)
        assert config.effective_push_limit == config.alpha_count
        assert BrahmsConfig(push_limit=99).effective_push_limit == 99

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            BrahmsConfig(view_size=0)
        with pytest.raises(ValueError):
            BrahmsConfig(sample_size=0)
        with pytest.raises(ValueError):
            BrahmsConfig(push_limit=0)
        with pytest.raises(ValueError):
            BrahmsConfig(validation_period=-1)


@pytest.fixture
def family(rng):
    return MinWiseFamily(rng)


class TestSampler:
    def test_empty_sampler_returns_none(self, family):
        assert Sampler(family.draw()).sample() is None

    def test_sample_is_stream_element(self, family):
        sampler = Sampler(family.draw())
        stream = [10, 20, 30, 40]
        for element in stream:
            sampler.next(element)
        assert sampler.sample() in stream

    def test_sample_is_permutation_invariant(self, family):
        h = family.draw()
        stream = list(range(50))
        forward, backward = Sampler(h), Sampler(h)
        for element in stream:
            forward.next(element)
        for element in reversed(stream):
            backward.next(element)
        assert forward.sample() == backward.sample()

    def test_reset_clears_state(self, family):
        sampler = Sampler(family.draw())
        sampler.next(42)
        sampler.reset(family.draw())
        assert sampler.sample() is None


class TestSamplerGroup:
    def test_size_validation(self, family):
        with pytest.raises(ValueError):
            SamplerGroup(0, family)

    def test_numpy_path_matches_object_samplers(self, rng):
        """The vectorized group must retain exactly what per-element
        Sampler objects would retain under the same hash functions."""
        seed_rng = random.Random(7)
        group = SamplerGroup(8, MinWiseFamily(random.Random(7)))
        # Rebuild the identical hash functions for the reference samplers.
        reference_family = MinWiseFamily(random.Random(7))
        references = [Sampler(reference_family.draw()) for _ in range(8)]
        stream = [seed_rng.randrange(10_000) for _ in range(500)]
        group.update(stream[:200])
        group.update(stream[200:])
        for element in stream:
            for sampler in references:
                sampler.next(element)
        assert group.sample_list() == [s.sample() for s in references]

    def test_sample_list_grows_to_group_size(self, family):
        group = SamplerGroup(5, family)
        group.update(range(100))
        assert len(group.sample_list()) == 5

    def test_empty_update_is_noop(self, family):
        group = SamplerGroup(3, family)
        group.update([])
        assert group.sample_list() == []

    def test_random_samples_come_from_sample_list(self, family, rng):
        group = SamplerGroup(4, family)
        group.update(range(100))
        samples = group.random_samples(20, rng)
        assert len(samples) == 20
        assert set(samples) <= set(group.sample_list())

    def test_random_samples_empty_group(self, family, rng):
        assert SamplerGroup(4, family).random_samples(5, rng) == []

    def test_validate_resets_dead_samples(self, family):
        group = SamplerGroup(6, family)
        group.update(range(50))
        reset = group.validate(lambda node_id: False)  # everything dead
        assert reset == 6
        assert group.sample_list() == []

    def test_validate_keeps_alive_samples(self, family):
        group = SamplerGroup(6, family)
        group.update(range(50))
        before = group.sample_list()
        assert group.validate(lambda node_id: True) == 0
        assert group.sample_list() == before

    def test_invalidate_specific_id(self, family):
        group = SamplerGroup(6, family)
        group.update(range(10))
        victim = group.sample_list()[0]
        reset = group.invalidate_id(victim)
        assert reset >= 1
        assert victim not in group.sample_list()

    def test_cryptographic_mode(self, rng):
        group = SamplerGroup(3, MinWiseFamily(rng, cryptographic=True))
        group.update(range(20))
        assert len(group.sample_list()) == 3

    @given(stream=st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_samples_always_from_stream(self, stream):
        group = SamplerGroup(4, MinWiseFamily(random.Random(3)))
        group.update(stream)
        assert set(group.sample_list()) <= set(stream)

    def test_uniformity_over_distinct_ids(self):
        """Occurrence frequency must not bias the sample: an ID seen 100
        times is no likelier to be retained than one seen once."""
        from collections import Counter
        winners = Counter()
        for trial in range(400):
            group = SamplerGroup(1, MinWiseFamily(random.Random(trial)))
            group.update([1] * 100 + [2])
            winners[group.sample_list()[0]] += 1
        assert 120 < winners[2] < 280  # ≈ 200 under uniformity
