"""The self-testing conformance suite: replay every committed vector.

Collection is data-driven: each ``vectors/*.vec`` file becomes one test
case that re-runs its embedded spec on the current code and requires the
byte-exact sections the vector records.  A code change that alters any
deterministic surface — protocol logic, RNG consumption order, telemetry
layout, metrics accounting — fails here with the drifted section named,
before it can silently rewrite history.

The negative tests prove the suite can actually fail: a perturbed
section is detected as drift, and a corrupted file is detected as an
integrity error naming the section.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenario import (
    CATALOG,
    VectorIntegrityError,
    generate_vector,
    read_vector,
    spec_from_dict,
    verify_vector,
    write_vector,
)

VECTOR_DIR = Path(__file__).resolve().parents[1] / "vectors"
VECTOR_PATHS = sorted(VECTOR_DIR.glob("*.vec"))


def test_commitment_floor():
    """The acceptance bar: at least 25 committed vectors, whole catalog."""
    assert len(VECTOR_PATHS) >= 25
    committed = {path.stem for path in VECTOR_PATHS}
    catalog = {entry["name"] for entry in CATALOG}
    assert catalog <= committed, f"missing vectors: {sorted(catalog - committed)}"


def test_coverage_axes():
    """Committed vectors span both engines, faults, churn, membership and
    several adversary mixes — the acceptance criteria's axes."""
    specs = [read_vector(str(path))[1]["spec"] for path in VECTOR_PATHS]
    assert any(spec["engine"]["kind"] == "rounds" for spec in specs)
    assert any(spec["engine"]["kind"] == "events" for spec in specs)
    assert any(spec["faults"] for spec in specs)
    assert any(spec["churn"]["kind"] != "none" for spec in specs)
    assert any(spec["membership"] is not None for spec in specs)
    assert len({spec["adversary_strategy"] for spec in specs}) >= 2
    assert len({spec["topology"]["byzantine_fraction"] for spec in specs}) >= 4


@pytest.mark.parametrize(
    "path", VECTOR_PATHS, ids=[path.stem for path in VECTOR_PATHS]
)
def test_vector_replays_identically(path):
    result = verify_vector(str(path))
    assert result.ok, (
        f"{result.name} drifted in section(s) {sorted(result.drifted)}; "
        f"details: {json.dumps(result.details, sort_keys=True)[:2000]}"
    )


class TestRunnerDetectsPerturbation:
    """Negative controls: the suite must be able to fail."""

    _SPEC = {
        "name": "perturb-probe",
        "protocol": "brahms",
        "seed": 5,
        "rounds": 3,
        "topology": {"n_nodes": 30, "byzantine_fraction": 0.1,
                     "view_ratio": 0.2},
    }

    def test_perturbed_section_reported_as_drift(self, tmp_path):
        vector_file = tmp_path / "probe.vec"
        sections = generate_vector(spec_from_dict(self._SPEC), str(vector_file))
        # An implementation whose pollution stats differ by one count must
        # fail verification on exactly that section.
        sections["pollution"]["network"]["pushes_sent"] += 1
        write_vector(str(vector_file), sections)
        result = verify_vector(str(vector_file))
        assert not result.ok
        assert set(result.drifted) == {"pollution"}
        detail = result.details["pollution"]
        recorded = detail["recorded"]["network"]["pushes_sent"]
        actual = detail["actual"]["network"]["pushes_sent"]
        assert recorded == actual + 1

    def test_perturbed_trace_digest_reported_as_drift(self, tmp_path):
        vector_file = tmp_path / "probe.vec"
        sections = generate_vector(spec_from_dict(self._SPEC), str(vector_file))
        sections["trace_digest"]["sha256"] = "0" * 64
        write_vector(str(vector_file), sections)
        result = verify_vector(str(vector_file))
        assert not result.ok
        assert set(result.drifted) == {"trace_digest"}

    def test_corrupted_section_bytes_fail_integrity(self, tmp_path):
        """Stale per-section digests (tampered payload) are an integrity
        failure naming the section, distinct from drift."""
        import pickle
        import zlib

        from repro.snapshot.format import write_envelope
        from repro.scenario.vectors import VECTOR_KIND

        vector_file = tmp_path / "probe.vec"
        generate_vector(spec_from_dict(self._SPEC), str(vector_file))
        header_meta, _sections = read_vector(str(vector_file))
        # Re-write the envelope with one section's bytes flipped but the
        # original digest table — a valid envelope whose section content
        # no longer matches its recorded checksum.
        raw = vector_file.read_bytes()
        newline = raw.index(b"\n", raw.index(b"\n") + 1) + 1
        payload = pickle.loads(zlib.decompress(raw[newline:]))
        text = payload["sections"]["final_views"]
        payload["sections"]["final_views"] = text.replace("[", "[ ", 1)
        write_envelope(
            str(vector_file), VECTOR_KIND,
            {
                "vector_version": header_meta["vector_version"],
                "scenario": header_meta["scenario"],
                "spec_version": header_meta["spec_version"],
                "section_sha256": header_meta["section_sha256"],
            },
            payload,
        )
        with pytest.raises(VectorIntegrityError) as excinfo:
            read_vector(str(vector_file))
        assert excinfo.value.section == "final_views"
        assert "final_views" in str(excinfo.value)
