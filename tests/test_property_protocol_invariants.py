"""Property-based invariants at the protocol level.

Brahms' view renewal must stay within the α/β/γ budget and draw only from
its declared sources; the eviction arithmetic must hit the requested
proportion exactly for any pool.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.brahms.config import BrahmsConfig
from repro.brahms.node import BrahmsNode, PulledBatch
from repro.core.config import RapteeConfig
from repro.core.eviction import FixedEviction
from repro.core.node import RapteeNode
from repro.sim.node import NodeKind


class TestRenewalProperties:
    @given(
        pushed=st.lists(st.integers(min_value=1, max_value=60), min_size=1, max_size=30),
        pulled=st.lists(st.integers(min_value=61, max_value=120), min_size=1, max_size=60),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_renewed_view_respects_source_budget(self, pushed, pulled, seed):
        config = BrahmsConfig(view_size=10, sample_size=5)
        node = BrahmsNode(0, NodeKind.HONEST, config, random.Random(seed))
        node.samplers.update(range(200, 210))
        new_view = node._renew_view(pushed, pulled)

        pushed_part = [p for p in new_view if 1 <= p <= 60]
        pulled_part = [p for p in new_view if 61 <= p <= 120]
        history_part = [p for p in new_view if p >= 200]
        assert len(pushed_part) <= config.alpha_count
        assert len(pulled_part) == config.beta_count
        assert len(history_part) == config.gamma_count
        # Nothing outside the three sources.
        assert len(pushed_part) + len(pulled_part) + len(history_part) == len(new_view)

    @given(
        pushed=st.lists(st.integers(min_value=1, max_value=60), min_size=1, max_size=30),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_renewal_without_pulls_or_history(self, pushed, seed):
        config = BrahmsConfig(view_size=10, sample_size=5)
        node = BrahmsNode(0, NodeKind.HONEST, config, random.Random(seed))
        new_view = node._renew_view(pushed, [])
        # Only the push portion can be present (empty samplers, no pulls).
        assert len(new_view) <= config.alpha_count
        assert set(new_view) <= set(pushed)


class TestEvictionArithmetic:
    @given(
        pool_size=st.integers(min_value=0, max_value=200),
        rate_percent=st.integers(min_value=0, max_value=100),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_exact_eviction_proportion(self, pool_size, rate_percent, seed):
        rate = rate_percent / 100.0
        config = RapteeConfig(
            brahms=BrahmsConfig(view_size=8, sample_size=4),
            eviction=FixedEviction(rate),
        )
        # Build a bare trusted node without the full provisioning flow:
        # the eviction arithmetic does not touch the enclave.
        node = RapteeNode.__new__(RapteeNode)
        BrahmsNode.__init__(node, 0, NodeKind.TRUSTED, config.brahms, random.Random(seed))
        node.raptee_config = config
        node._trusted_role = True
        node.degraded = False
        node._unbiaser = None
        node._pulled = [PulledBatch(source=1, ids=tuple(range(100, 100 + pool_size)))]
        node._id_contacts = 1
        node._trusted_id_contacts = 0
        node.last_eviction_rate = None
        node.evicted_ids_total = 0

        kept = node._effective_pulled_ids()
        expected_kept = pool_size - int(round(rate * pool_size))
        assert len(kept) == max(0, expected_kept)
        assert node.evicted_ids_total == pool_size - len(kept)
