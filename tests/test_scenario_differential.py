"""Differential equivalence: legacy builder path vs spec compilation.

The builder functions in :mod:`repro.experiments.scenarios` are now thin
shims that express each call as a :class:`ScenarioSpec` and compile it.
This suite is the proof obligation for that refactor: for every
pre-existing pinned scenario family (the ones the perf/snapshot/events
differential suites run through the builders), the direct legacy
assembly path (``_build_*_impl``) and the spec-compiled path must
produce byte-identical runs — same trace JSONL, same metrics CSV, same
final views, same traffic series.

Each scenario is expressed three ways and all must agree:

1. legacy: ``_build_*_impl`` called directly (the pre-refactor path);
2. shim: the public builder function (spec built in memory);
3. loaded: the same scenario as a plain dict through
   :func:`spec_from_dict` → :func:`compile_spec` (what a vector replays).
"""

from __future__ import annotations

import pytest

from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.experiments.scenarios import (
    TopologySpec,
    _build_brahms_impl,
    _build_raptee_impl,
    build_brahms_simulation,
    build_raptee_simulation,
)
from repro.faults.harness import wire_faults
from repro.faults.plan import CrashRestartFault, FaultPlan, LossBurstFault, RoundWindow
from repro.membership import MembershipConfig
from repro.scenario import compile_spec, spec_from_dict

from tests.test_perf_differential import _observables

ROUNDS = 6


# Every pre-existing pinned scenario family, expressed once as builder
# kwargs (the legacy surface) and once as a spec dict (the loaded
# surface).  IDs mirror the scenario names of the earlier differential
# suites.
_BRAHMS_CASES = {
    "brahms-baseline": {
        "spec": TopologySpec(
            n_nodes=60, byzantine_fraction=0.10, view_ratio=0.08, loss_rate=0.05
        ),
        "seed": 11,
        "kwargs": {},
        "dict": {
            "name": "brahms-baseline",
            "protocol": "brahms",
            "seed": 11,
            "rounds": ROUNDS,
            "topology": {
                "n_nodes": 60,
                "byzantine_fraction": 0.10,
                "view_ratio": 0.08,
                "loss_rate": 0.05,
            },
        },
    },
}

_RAPTEE_CASES = {
    "raptee-fixed-eviction": {
        "spec": TopologySpec(
            n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.10,
            view_ratio=0.10, transport_encryption=True,
        ),
        "seed": 23,
        "kwargs": {
            "eviction": FixedEviction(0.6),
            "sketch_unbias_enabled": True,
        },
        "dict": {
            "name": "raptee-fixed-eviction",
            "protocol": "raptee",
            "seed": 23,
            "rounds": ROUNDS,
            "topology": {
                "n_nodes": 40,
                "byzantine_fraction": 0.10,
                "trusted_fraction": 0.10,
                "view_ratio": 0.10,
                "transport_encryption": True,
            },
            "raptee": {
                "eviction": {"kind": "fixed", "value": 0.6},
                "sketch_unbias_enabled": True,
            },
        },
    },
    "raptee-membership": {
        "spec": TopologySpec(
            n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.15,
            view_ratio=0.10, transport_encryption=True,
        ),
        "seed": 53,
        "kwargs": {
            "eviction": AdaptiveEviction(),
            "membership": MembershipConfig(join_rate=0.05, leave_rate=0.03),
        },
        "dict": {
            "name": "raptee-membership",
            "protocol": "raptee",
            "seed": 53,
            "rounds": ROUNDS,
            "topology": {
                "n_nodes": 40,
                "byzantine_fraction": 0.10,
                "trusted_fraction": 0.15,
                "view_ratio": 0.10,
                "transport_encryption": True,
            },
            "raptee": {"eviction": {"kind": "adaptive"}},
            "membership": {"join_rate": 0.05, "leave_rate": 0.03},
        },
    },
    "raptee-poisoned-cycles": {
        "spec": TopologySpec(
            n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.10,
            poisoned_fraction=0.05, view_ratio=0.10,
        ),
        "seed": 29,
        "kwargs": {
            "eviction": AdaptiveEviction(),
            "probe_pulls": 2,
            "auth_mode": "aes-ctr",
            "with_cycle_accounting": True,
        },
        "dict": {
            "name": "raptee-poisoned-cycles",
            "protocol": "raptee",
            "seed": 29,
            "rounds": ROUNDS,
            "topology": {
                "n_nodes": 40,
                "byzantine_fraction": 0.10,
                "trusted_fraction": 0.10,
                "poisoned_fraction": 0.05,
                "view_ratio": 0.10,
            },
            "raptee": {
                "eviction": {"kind": "adaptive"},
                "probe_pulls": 2,
                "auth_mode": "aes-ctr",
                "with_cycle_accounting": True,
            },
        },
    },
}

_FAULT_PLAN = [
    LossBurstFault(window=RoundWindow(2, 3), loss_rate=0.30),
    CrashRestartFault(node_id=5, at_round=2, down_rounds=2),
]

_RAPTEE_FAULTS_CASE = {
    "spec": TopologySpec(
        n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.10,
        view_ratio=0.10, transport_encryption=True,
    ),
    "seed": 31,
    "kwargs": {"eviction": AdaptiveEviction()},
    "dict": {
        "name": "raptee-faults",
        "protocol": "raptee",
        "seed": 31,
        "rounds": ROUNDS,
        "topology": {
            "n_nodes": 40,
            "byzantine_fraction": 0.10,
            "trusted_fraction": 0.10,
            "view_ratio": 0.10,
            "transport_encryption": True,
        },
        "raptee": {"eviction": {"kind": "adaptive"}},
        "faults": [
            {"kind": "loss-burst", "window": {"start": 2, "end": 3},
             "loss_rate": 0.30},
            {"kind": "crash-restart", "node_id": 5, "at_round": 2,
             "down_rounds": 2},
        ],
    },
}


def _assert_identical(reference, candidate, label):
    assert candidate["trace_jsonl"] == reference["trace_jsonl"], (
        f"{label}: trace JSONL diverged"
    )
    assert candidate["metrics_csv"] == reference["metrics_csv"], (
        f"{label}: metrics CSV diverged"
    )
    for key in reference:
        assert candidate[key] == reference[key], f"{label}: {key} diverged"


class TestBrahmsPaths:
    @pytest.mark.parametrize("name", sorted(_BRAHMS_CASES))
    def test_legacy_shim_and_loaded_specs_agree(self, name):
        case = _BRAHMS_CASES[name]

        legacy = _build_brahms_impl(case["spec"], case["seed"], **case["kwargs"])
        reference = _observables(legacy, legacy.run, ROUNDS)

        shim = build_brahms_simulation(case["spec"], case["seed"], **case["kwargs"])
        _assert_identical(
            reference, _observables(shim, shim.run, ROUNDS), f"{name} (shim)"
        )

        loaded = compile_spec(spec_from_dict(case["dict"]))
        _assert_identical(
            reference, _observables(loaded, loaded.run, ROUNDS), f"{name} (loaded)"
        )


class TestRapteePaths:
    @pytest.mark.parametrize("name", sorted(_RAPTEE_CASES))
    def test_legacy_shim_and_loaded_specs_agree(self, name):
        case = _RAPTEE_CASES[name]

        legacy = _build_raptee_impl(case["spec"], case["seed"], **case["kwargs"])
        reference = _observables(legacy, legacy.run, ROUNDS)

        shim = build_raptee_simulation(case["spec"], case["seed"], **case["kwargs"])
        _assert_identical(
            reference, _observables(shim, shim.run, ROUNDS), f"{name} (shim)"
        )

        loaded = compile_spec(spec_from_dict(case["dict"]))
        _assert_identical(
            reference, _observables(loaded, loaded.run, ROUNDS), f"{name} (loaded)"
        )


class TestRapteeFaultsPath:
    def test_fault_scenario_agrees_across_paths(self):
        case = _RAPTEE_FAULTS_CASE

        def runner_for(bundle):
            def run(rounds):
                harness = wire_faults(
                    bundle, FaultPlan(list(_FAULT_PLAN)), seed=case["seed"]
                )
                harness.run(rounds)

            return run

        legacy = _build_raptee_impl(case["spec"], case["seed"], **case["kwargs"])
        reference = _observables(legacy, runner_for(legacy), ROUNDS)

        shim = build_raptee_simulation(case["spec"], case["seed"], **case["kwargs"])
        _assert_identical(
            reference,
            _observables(shim, runner_for(shim), ROUNDS),
            "raptee-faults (shim)",
        )

        # The loaded path carries the fault plan inside the spec; wiring it
        # through wire_faults with the spec seed is exactly what
        # run_scenario does, so drive it the same way here.
        loaded = compile_spec(spec_from_dict(case["dict"]))
        _assert_identical(
            reference,
            _observables(loaded, runner_for(loaded), ROUNDS),
            "raptee-faults (loaded)",
        )


class TestViewSizeValidation:
    """Satellite fix: oversized views are rejected at construction."""

    def test_topology_spec_rejects_view_ratio_ge_population(self):
        with pytest.raises(ValueError, match="view_ratio"):
            TopologySpec(n_nodes=10, byzantine_fraction=0.0, view_ratio=0.97)

    def test_topology_spec_rejects_view_ratio_out_of_range(self):
        with pytest.raises(ValueError, match="view_ratio"):
            TopologySpec(n_nodes=50, byzantine_fraction=0.0, view_ratio=1.2)
        with pytest.raises(ValueError, match="view_ratio"):
            TopologySpec(n_nodes=50, byzantine_fraction=0.0, view_ratio=0.0)

    def test_builders_reject_oversized_config_override(self):
        from repro.brahms.config import BrahmsConfig

        spec = TopologySpec(n_nodes=20, byzantine_fraction=0.10, view_ratio=0.4)
        oversized = BrahmsConfig(view_size=30, sample_size=10)
        with pytest.raises(ValueError, match="view_size"):
            build_brahms_simulation(spec, seed=1, config_override=oversized)
        with pytest.raises(ValueError, match="view_size"):
            build_raptee_simulation(
                spec, seed=1, eviction=AdaptiveEviction(),
                config_override=oversized,
            )

    def test_impls_reject_oversized_config_override(self):
        from repro.brahms.config import BrahmsConfig

        spec = TopologySpec(n_nodes=20, byzantine_fraction=0.10, view_ratio=0.4)
        oversized = BrahmsConfig(view_size=30, sample_size=10)
        with pytest.raises(ValueError, match="view_size"):
            _build_brahms_impl(spec, seed=1, config_override=oversized)
        with pytest.raises(ValueError, match="view_size"):
            _build_raptee_impl(
                spec, seed=1, eviction=AdaptiveEviction(),
                config_override=oversized,
            )

    def test_valid_view_sizes_still_accepted(self):
        spec = TopologySpec(n_nodes=20, byzantine_fraction=0.10, view_ratio=0.4)
        bundle = build_brahms_simulation(spec, seed=1)
        assert len(bundle.simulation.nodes) == 20
