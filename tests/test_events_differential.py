"""Differential equivalence: the round engine is a special case of the
event engine.

Contract (ISSUE 8 acceptance): an :class:`~repro.events.EventEngine` in
**barrier** mode with zero-latency links must reproduce the round
engine's run *byte for byte* — same exported trace JSONL, same metrics
CSV, same final views, same per-round traffic series — on the same three
pinned scenarios the perf differential uses (Brahms baseline, RAPTEE
with fixed eviction + encrypted transport, RAPTEE under an active fault
plan with a mid-run crash).

The observable-collection helper is shared with
``tests/test_perf_differential.py`` so the two differentials can never
drift apart in what they consider "the deterministic surface".
"""

from __future__ import annotations

import pytest

from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.events import EventOptions, wire_events
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)
from repro.faults.harness import wire_faults
from repro.faults.plan import CrashRestartFault, FaultPlan, LossBurstFault, RoundWindow
from tests.test_perf_differential import _observables

ROUNDS = 6


def _events_runner(bundle, seed):
    """A runner that drives the bundle from the event queue, barrier mode."""

    def runner(rounds):
        wire_events(bundle, EventOptions(seed=seed, mode="barrier")).run(rounds)

    return runner


def _run_brahms(engine: str):
    spec = TopologySpec(
        n_nodes=60, byzantine_fraction=0.10, view_ratio=0.08, loss_rate=0.05
    )
    bundle = build_brahms_simulation(spec, seed=11)
    runner = bundle.run if engine == "rounds" else _events_runner(bundle, 11)
    return _observables(bundle, runner, ROUNDS)


def _run_raptee_fixed(engine: str):
    spec = TopologySpec(
        n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.10,
        view_ratio=0.10, transport_encryption=True,
    )
    bundle = build_raptee_simulation(
        spec, seed=23, eviction=FixedEviction(0.6), sketch_unbias_enabled=True
    )
    runner = bundle.run if engine == "rounds" else _events_runner(bundle, 23)
    return _observables(bundle, runner, ROUNDS)


def _run_raptee_faults(engine: str):
    spec = TopologySpec(
        n_nodes=40, byzantine_fraction=0.10, trusted_fraction=0.10,
        view_ratio=0.10, transport_encryption=True,
    )
    bundle = build_raptee_simulation(spec, seed=31, eviction=AdaptiveEviction())
    plan = FaultPlan([
        LossBurstFault(window=RoundWindow(2, 3), loss_rate=0.30),
        CrashRestartFault(node_id=5, at_round=2, down_rounds=2),
    ])

    def runner(rounds):
        # wire_faults installs the FaultController on the simulation; in
        # barrier mode the event engine fires it through run_round, the
        # identical code path the round engine uses.
        fault_harness = wire_faults(bundle, plan, seed=31)
        if engine == "rounds":
            fault_harness.run(rounds)
        else:
            _events_runner(bundle, 31)(rounds)

    return _observables(bundle, runner, ROUNDS)


_SCENARIOS = {
    "brahms-baseline": _run_brahms,
    "raptee-fixed-eviction": _run_raptee_fixed,
    "raptee-faults": _run_raptee_faults,
}


@pytest.mark.parametrize("name", sorted(_SCENARIOS))
def test_barrier_event_engine_byte_identical_to_round_engine(name):
    run = _SCENARIOS[name]
    rounds_engine = run("rounds")
    event_engine = run("events")
    # Byte-identical exported artifacts.
    assert rounds_engine["trace_jsonl"] == event_engine["trace_jsonl"]
    assert rounds_engine["metrics_csv"] == event_engine["metrics_csv"]
    # Identical protocol outcomes and per-round traffic series.
    assert rounds_engine["final_views"] == event_engine["final_views"]
    assert rounds_engine["view_trace"] == event_engine["view_trace"]
    assert rounds_engine["pushes_series"] == event_engine["pushes_series"]
    assert rounds_engine["requests_series"] == event_engine["requests_series"]
    assert rounds_engine["losses_series"] == event_engine["losses_series"]
    assert rounds_engine["totals"] == event_engine["totals"]


def test_differential_is_not_vacuous():
    """Guard: the scenarios actually produce traffic and trace events."""
    observed = _run_brahms("events")
    assert observed["totals"][0] > 0  # pushes_sent
    assert observed["trace_jsonl"]


def test_barrier_mode_rejects_latency_and_stragglers():
    from repro.events import ConstantLatency, LatencyConfig, StragglerProfile

    with pytest.raises(ValueError):
        EventOptions(seed=1, mode="barrier",
                     latency=LatencyConfig(default=ConstantLatency(0.01)))
    with pytest.raises(ValueError):
        EventOptions(seed=1, mode="barrier",
                     stragglers=StragglerProfile(0.1, 8.0))
    with pytest.raises(ValueError):
        EventOptions(seed=1, mode="sliding")
    with pytest.raises(ValueError):
        EventOptions(seed=1, tick_interval=0.0)
