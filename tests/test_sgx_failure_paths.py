"""SGX failure modes and their combinations (crash, outage, rot, revocation)."""

import random

import pytest

from repro.sgx.errors import EnclaveUnavailable, ProvisioningError, SealingError


class TestEnclaveCrash:
    def test_ecall_after_crash_raises(self, infrastructure):
        host, _device = infrastructure.new_trusted_enclave(1)
        assert not host.crashed
        host.crash()
        assert host.crashed
        with pytest.raises(EnclaveUnavailable, match="crashed"):
            host.is_provisioned()
        with pytest.raises(EnclaveUnavailable):
            host.seal_group_key()

    def test_fresh_enclave_on_same_device_works(self, infrastructure):
        host, _device = infrastructure.new_trusted_enclave(1)
        blob = host.seal_group_key()
        host.crash()
        fresh = infrastructure.reload_enclave(1)
        assert not fresh.crashed
        assert not fresh.is_provisioned()
        fresh.restore_group_key(blob)
        assert fresh.is_provisioned()


class TestAttestationOutage:
    def test_outage_blocks_provisioning(self, infrastructure):
        infrastructure.new_trusted_enclave(1)
        infrastructure.attestation.set_available(False)
        assert not infrastructure.attestation.available
        fresh = infrastructure.reload_enclave(1)
        with pytest.raises(ProvisioningError, match="unavailable"):
            infrastructure.provision_host(fresh)

    def test_outage_lifts(self, infrastructure):
        infrastructure.new_trusted_enclave(1)
        infrastructure.attestation.set_available(False)
        infrastructure.attestation.set_available(True)
        fresh = infrastructure.reload_enclave(1)
        infrastructure.provision_host(fresh)
        assert fresh.is_provisioned()


class TestSealedBlobCorruption:
    def test_corrupted_blob_fails_then_reattestation_recovers(
        self, infrastructure
    ):
        # The satellite combo: corruption -> unseal failure -> the node can
        # still recover with a full re-attestation.
        host, _device = infrastructure.new_trusted_enclave(1)
        blob = host.seal_group_key()
        corrupted = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        host.crash()

        fresh = infrastructure.reload_enclave(1)
        with pytest.raises(SealingError):
            fresh.restore_group_key(corrupted)
        assert not fresh.is_provisioned()

        infrastructure.provision_host(fresh)
        assert fresh.is_provisioned()


class TestDeviceRevocation:
    def test_revocation_spares_existing_key_but_blocks_reprovisioning(
        self, infrastructure, prng
    ):
        # The satellite combo: after revocation the provisioned group key
        # keeps working (the enclave already holds K_T) and sealed restore
        # still works (sealing is device-local) — but any future
        # attestation round-trip is dead.
        host, _device = infrastructure.new_trusted_enclave(1)
        peer, _peer_device = infrastructure.new_trusted_enclave(2)
        infrastructure.attestation.revoke_device(1)

        # K_T still in use: a sealed round-trip and a mutual auth succeed.
        blob = host.seal_group_key()
        restored = infrastructure.reload_enclave(1)
        restored.restore_group_key(blob)
        assert restored.is_provisioned()
        r_a = b"\x07" * 16
        r_b, proof = restored.auth_respond(r_a)
        assert peer.auth_check_response(r_a, r_b, proof)

        # But the revoked device can never re-attest.
        fresh = infrastructure.reload_enclave(1)
        with pytest.raises(ProvisioningError, match="attestation failed"):
            infrastructure.provision_host(fresh)

    def test_revoke_unknown_device_id_is_lenient(self, infrastructure):
        """Pin the blacklist semantics for ids nobody has registered yet.

        ``revoke_device`` is a pre-emptive blacklist add, not a lookup: an
        unknown id is accepted (no error), the call is idempotent, and a
        device that later registers under that id can attest its public key
        but never pass verification.
        """
        attestation = infrastructure.attestation
        attestation.revoke_device(999)
        attestation.revoke_device(999)  # idempotent, still no error
        # An unrelated registration and attestation are unaffected.
        host, _device = infrastructure.new_trusted_enclave(1)
        assert host.is_provisioned()
        # The pre-revoked id is dead on arrival once a device claims it.
        with pytest.raises(ProvisioningError, match="attestation failed"):
            infrastructure.new_trusted_enclave(999)

    def test_revocation_mid_recovery_degrades_permanently(
        self, infrastructure, small_raptee_config
    ):
        """Satellite combo matrix: revocation landing *during* the backoff
        ladder must abandon recovery permanently — no infinite backoff —
        across every rung the ladder can be on when the revocation lands.
        """
        from repro.core.deployment import TrustedInfrastructure
        from repro.core.node import RapteeNode
        from repro.core.recovery import EnclaveRecoveryManager, RetryPolicy
        from repro.crypto.prng import Sha256Prng, derive_seed
        from repro.sim.engine import Simulation
        from repro.sim.network import Network
        from repro.sim.node import NodeKind

        # (corrupt the sealed blob?, attestation outage?) — the revocation
        # check must win over both rungs either way.
        combos = [(False, False), (True, False), (False, True), (True, True)]
        for index, (corrupt_blob, outage) in enumerate(combos):
            fresh_infrastructure = TrustedInfrastructure(
                Sha256Prng(derive_seed(7, "combo", index)),
                provisioning_key_bits=384,
            )
            host, _device = fresh_infrastructure.new_trusted_enclave(1)
            node = RapteeNode(
                1, NodeKind.TRUSTED, small_raptee_config,
                random.Random(1), enclave=host,
            )
            simulation = Simulation(
                Network(random.Random(0)), [node], random.Random(0)
            )
            manager = EnclaveRecoveryManager(
                fresh_infrastructure, random.Random(9),
                policy=RetryPolicy(base_delay=1, multiplier=1, max_delay=1,
                                   jitter=0),
            )
            manager.adopt(node)
            revoked = {1}
            manager.set_revocation_check(lambda node_id: node_id in revoked)
            if corrupt_blob:
                manager.corrupt_sealed_blob(1)
            fresh_infrastructure.attestation.set_available(not outage)
            fresh_infrastructure.attestation.revoke_device(1)
            node.enclave.crash()

            for round_number in range(1, 8):
                simulation.round_number = round_number
                manager.tick(simulation)

            combo = f"corrupt_blob={corrupt_blob}, outage={outage}"
            assert node.degraded, combo
            assert manager.exhausted_node_ids() == (1,), combo
            assert manager.stats.revoked_abandons == 1, combo
            # The abandon fires before any rung: the ladder never spun.
            assert manager.stats.failed_attempts == 0, combo
            assert manager.stats.restores_from_seal == 0, combo
            # The stale sealed blob is gone — it wraps a key the node may
            # no longer hold legitimately.
            assert manager.sealed_blob(1) is None, combo
            # And the outage lifting later changes nothing: permanent.
            fresh_infrastructure.attestation.set_available(True)
            simulation.round_number = 20
            manager.tick(simulation)
            assert node.degraded, combo
            assert manager.stats.failed_attempts == 0, combo


class TestProvisioningFlakiness:
    def test_fault_hook_refuses_with_reason(self, infrastructure):
        infrastructure.new_trusted_enclave(1)
        infrastructure.provisioner.set_fault_hook(lambda: "rate limited")
        fresh = infrastructure.reload_enclave(1)
        with pytest.raises(ProvisioningError, match="injected fault: rate limited"):
            infrastructure.provision_host(fresh)
        assert infrastructure.provisioner.refused_count == 1

    def test_hook_cleared_restores_service(self, infrastructure):
        infrastructure.new_trusted_enclave(1)
        infrastructure.provisioner.set_fault_hook(lambda: "down")
        infrastructure.provisioner.set_fault_hook(None)
        fresh = infrastructure.reload_enclave(1)
        infrastructure.provision_host(fresh)
        assert fresh.is_provisioned()
