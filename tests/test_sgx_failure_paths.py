"""SGX failure modes and their combinations (crash, outage, rot, revocation)."""

import pytest

from repro.sgx.errors import EnclaveUnavailable, ProvisioningError, SealingError


class TestEnclaveCrash:
    def test_ecall_after_crash_raises(self, infrastructure):
        host, _device = infrastructure.new_trusted_enclave(1)
        assert not host.crashed
        host.crash()
        assert host.crashed
        with pytest.raises(EnclaveUnavailable, match="crashed"):
            host.is_provisioned()
        with pytest.raises(EnclaveUnavailable):
            host.seal_group_key()

    def test_fresh_enclave_on_same_device_works(self, infrastructure):
        host, _device = infrastructure.new_trusted_enclave(1)
        blob = host.seal_group_key()
        host.crash()
        fresh = infrastructure.reload_enclave(1)
        assert not fresh.crashed
        assert not fresh.is_provisioned()
        fresh.restore_group_key(blob)
        assert fresh.is_provisioned()


class TestAttestationOutage:
    def test_outage_blocks_provisioning(self, infrastructure):
        infrastructure.new_trusted_enclave(1)
        infrastructure.attestation.set_available(False)
        assert not infrastructure.attestation.available
        fresh = infrastructure.reload_enclave(1)
        with pytest.raises(ProvisioningError, match="unavailable"):
            infrastructure.provision_host(fresh)

    def test_outage_lifts(self, infrastructure):
        infrastructure.new_trusted_enclave(1)
        infrastructure.attestation.set_available(False)
        infrastructure.attestation.set_available(True)
        fresh = infrastructure.reload_enclave(1)
        infrastructure.provision_host(fresh)
        assert fresh.is_provisioned()


class TestSealedBlobCorruption:
    def test_corrupted_blob_fails_then_reattestation_recovers(
        self, infrastructure
    ):
        # The satellite combo: corruption -> unseal failure -> the node can
        # still recover with a full re-attestation.
        host, _device = infrastructure.new_trusted_enclave(1)
        blob = host.seal_group_key()
        corrupted = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        host.crash()

        fresh = infrastructure.reload_enclave(1)
        with pytest.raises(SealingError):
            fresh.restore_group_key(corrupted)
        assert not fresh.is_provisioned()

        infrastructure.provision_host(fresh)
        assert fresh.is_provisioned()


class TestDeviceRevocation:
    def test_revocation_spares_existing_key_but_blocks_reprovisioning(
        self, infrastructure, prng
    ):
        # The satellite combo: after revocation the provisioned group key
        # keeps working (the enclave already holds K_T) and sealed restore
        # still works (sealing is device-local) — but any future
        # attestation round-trip is dead.
        host, _device = infrastructure.new_trusted_enclave(1)
        peer, _peer_device = infrastructure.new_trusted_enclave(2)
        infrastructure.attestation.revoke_device(1)

        # K_T still in use: a sealed round-trip and a mutual auth succeed.
        blob = host.seal_group_key()
        restored = infrastructure.reload_enclave(1)
        restored.restore_group_key(blob)
        assert restored.is_provisioned()
        r_a = b"\x07" * 16
        r_b, proof = restored.auth_respond(r_a)
        assert peer.auth_check_response(r_a, r_b, proof)

        # But the revoked device can never re-attest.
        fresh = infrastructure.reload_enclave(1)
        with pytest.raises(ProvisioningError, match="attestation failed"):
            infrastructure.provision_host(fresh)


class TestProvisioningFlakiness:
    def test_fault_hook_refuses_with_reason(self, infrastructure):
        infrastructure.new_trusted_enclave(1)
        infrastructure.provisioner.set_fault_hook(lambda: "rate limited")
        fresh = infrastructure.reload_enclave(1)
        with pytest.raises(ProvisioningError, match="injected fault: rate limited"):
            infrastructure.provision_host(fresh)
        assert infrastructure.provisioner.refused_count == 1

    def test_hook_cleared_restores_service(self, infrastructure):
        infrastructure.new_trusted_enclave(1)
        infrastructure.provisioner.set_fault_hook(lambda: "down")
        infrastructure.provisioner.set_fault_hook(None)
        fresh = infrastructure.reload_enclave(1)
        infrastructure.provision_host(fresh)
        assert fresh.is_provisioned()
