"""Tier-1 gate: the source tree satisfies every lint invariant.

This is the test that makes :mod:`repro.lint` bite — a PR that introduces a
determinism, enclave-boundary, crypto-hygiene or purity violation anywhere
under ``src/`` or ``tests/`` fails here with the full finding list.
"""

import os

from repro.lint import LintRunner, load_config
from repro.lint.reporter import render_text

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _lint(*relative_paths):
    config = load_config(os.path.join(REPO_ROOT, "pyproject.toml"))
    runner = LintRunner(config=config)
    return runner.lint_paths([os.path.join(REPO_ROOT, path) for path in relative_paths])


def test_src_tree_is_violation_free():
    findings = _lint("src")
    assert findings == [], "\n" + render_text(findings)


def test_test_tree_is_violation_free():
    findings = _lint("tests")
    assert findings == [], "\n" + render_text(findings)


def test_rule_battery_is_present():
    """All four invariant families stay wired into the default battery."""
    runner = LintRunner()
    families = {rule.rule_id.split("-")[0] for rule in runner.rules}
    assert {"det", "enclave", "crypto", "purity"} <= families
    assert len(runner.rules) >= 10
