"""Tier-1 gate: the source tree satisfies every lint invariant.

This is the test that makes :mod:`repro.lint` bite — a PR that introduces a
determinism, enclave-boundary, crypto-hygiene, purity or whole-program flow
violation anywhere under ``src/`` or ``tests/`` fails here with the full
finding list.  The whole-program pass runs with the analysis cache both
cold and warm so a caching bug can never hide a finding.
"""

import os

from repro.lint import LintRunner, load_config
from repro.lint.analysis.cache import AnalysisCache
from repro.lint.reporter import render_text

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _lint(*relative_paths, cache=None, jobs=1):
    config = load_config(os.path.join(REPO_ROOT, "pyproject.toml"))
    runner = LintRunner(config=config, cache=cache, jobs=jobs)
    return runner.lint_paths([os.path.join(REPO_ROOT, path) for path in relative_paths])


def test_src_tree_is_violation_free():
    findings = _lint("src")
    assert findings == [], "\n" + render_text(findings)


def test_test_tree_is_violation_free():
    findings = _lint("tests")
    assert findings == [], "\n" + render_text(findings)


def test_src_tree_clean_under_cold_and_warm_cache(tmp_path):
    """Whole-program findings are identical on a cold and a warm cache."""
    cache = AnalysisCache(str(tmp_path / "lint-cache"))
    cold = _lint("src", cache=cache)
    assert cache.misses > 0 and cache.hits == 0
    warm_cache = AnalysisCache(str(tmp_path / "lint-cache"))
    warm = _lint("src", cache=warm_cache)
    assert warm_cache.hits > 0 and warm_cache.misses == 0
    assert cold == warm == []


def test_rule_battery_is_present():
    """All invariant families stay wired into the default battery."""
    runner = LintRunner()
    families = {rule.rule_id.split("-")[0] for rule in runner.rules}
    assert {"det", "enclave", "crypto", "purity", "flow", "snapshot"} <= families
    whole_program = {rule.rule_id for rule in runner.project_rules}
    assert {
        "flow-unseeded-entropy",
        "flow-secret-leak",
        "flow-unpicklable-task",
        "snapshot-missing-attr",
    } <= whole_program
    assert len(runner.rules) >= 14
