"""Unit tests for :mod:`repro.lint.analysis` — the whole-program layer.

Covers the module/project model (symbol table, pickle-hook analysis), the
call graph, the dataflow/taint engine, the content-hash cache and the
``--jobs`` parallel path.  Flow-rule behaviour (sources/sinks of the four
shipped families) lives in ``test_lint_flow_rules.py``.
"""

import os
import pickle

from repro.lint.analysis import (
    AnalysisCache,
    CallGraph,
    TaintAnalysis,
    build_module_model,
    evaluate_bindings,
    project_from_sources,
)
from repro.lint.analysis.dataflow import TaintPolicy
from repro.lint.core import LintRunner, lint_project


# -- module model -------------------------------------------------------------


def _model(source, scope_path="repro/sim/fixture.py"):
    return build_module_model(source, path=scope_path, scope_path=scope_path)


def test_module_model_records_functions_classes_and_imports():
    model = _model(
        "import os\n"
        "from repro.crypto.prng import derive_seed as ds\n"
        "\n"
        "def top(a, b):\n"
        "    return a\n"
        "\n"
        "class Thing:\n"
        "    def __init__(self, size):\n"
        "        self.size = size\n"
        "        self.items = []\n"
    )
    assert model.module_name == "repro.sim.fixture"
    assert model.imports["os"] == "os"
    assert model.from_imports["ds"] == "repro.crypto.prng.derive_seed"
    assert model.functions["top"].params == ("a", "b")
    thing = model.classes["Thing"]
    assert not thing.init_attrs["size"].mutable
    assert thing.init_attrs["items"].mutable


def test_module_model_analyzes_pickle_hooks():
    model = _model(
        "class T:\n"
        "    def __init__(self):\n"
        "        self._cache = {}\n"
        "        self._tally = {}\n"
        "    def __getstate__(self):\n"
        "        state = dict(self.__dict__)\n"
        "        del state['_cache']\n"
        "        state['_tally'] = {}\n"
        "        return state\n"
        "    def __setstate__(self, state):\n"
        "        self.__dict__.update(state)\n"
        "        self._cache = {}\n"
    )
    cls = model.classes["T"]
    assert cls.getstate.returns_dict_copy
    assert cls.getstate.dropped == ("_cache",)
    assert cls.getstate.reset == ("_tally",)
    assert cls.setstate.updates_dict
    assert "_cache" in cls.setstate.assigned_attrs


def test_module_model_is_picklable():
    model = _model("def f(x):\n    y = x + 1\n    return y\n")
    clone = pickle.loads(pickle.dumps(model))
    assert clone.functions["f"].events == model.functions["f"].events


# -- project model and call graph ---------------------------------------------


def test_project_resolves_reexports_and_methods():
    project = project_from_sources({
        "repro/pkg/__init__.py": "from repro.pkg.impl import work\n",
        "repro/pkg/impl.py": "def work():\n    return 1\n",
        "repro/user.py": (
            "from repro.pkg import work\n"
            "def go():\n"
            "    return work()\n"
        ),
    })
    graph = CallGraph.for_project(project)
    assert "repro.pkg.impl.work" in graph.callees("repro.user.go")
    # Memoised: a second build returns the same object.
    assert CallGraph.for_project(project) is graph


def test_callgraph_resolves_self_methods_and_constructors():
    project = project_from_sources({
        "repro/mod.py": (
            "class Worker:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "    def step(self):\n"
            "        return self.bump()\n"
            "    def bump(self):\n"
            "        self.count += 1\n"
            "\n"
            "def run():\n"
            "    w = Worker()\n"
            "    return w.step()\n"
        ),
    })
    graph = CallGraph.for_project(project)
    assert "repro.mod.Worker.bump" in graph.callees("repro.mod.Worker.step")
    # Constructor call edges into __init__, and the binding types w.step().
    assert "repro.mod.Worker.__init__" in graph.callees("repro.mod.run")
    assert "repro.mod.Worker.step" in graph.callees("repro.mod.run")
    assert "repro.mod.run" in graph.callers("repro.mod.Worker.step")


def test_callgraph_dump_lists_edges_and_unresolved_counts():
    project = project_from_sources({
        "repro/a.py": "def f():\n    return g()\n\ndef g():\n    return mystery()\n",
    })
    dump = CallGraph.for_project(project).dump("repro.a")
    assert "repro.a.f -> repro.a.g" in dump
    assert "unresolved call sites" in dump


def test_import_graph_and_closure():
    project = project_from_sources({
        "repro/a.py": "from repro.b import helper\n",
        "repro/b.py": "import repro.c\n\ndef helper():\n    return None\n",
        "repro/c.py": "X = 1\n",
    })
    graph = project.import_graph()
    assert "repro.b" in graph["repro.a"]
    closure = project.import_closure(["repro.a"])
    assert {"repro.a", "repro.b", "repro.c"} <= closure


# -- dataflow and taint -------------------------------------------------------


def test_evaluate_bindings_tracks_constructor_and_local_defs():
    model = _model(
        "def f():\n"
        "    w = Thing()\n"
        "    def inner():\n"
        "        return w\n"
        "    return inner\n"
        "class Thing:\n"
        "    pass\n"
    )
    fn = model.functions["f"]
    bindings = evaluate_bindings(fn)
    assert bindings["w"][0] == "call"
    assert bindings["inner"][0] == "localfunc"
    assert bindings["inner"][2] is True  # closes over w


class _TracerPolicy(TaintPolicy):
    """Minimal policy: poison() is a source, burn() a sink."""

    def call_result_sources(self, call, targets, constructed, fn, module):
        func = call[1]
        name = func[1] if func[0] == "name" else None
        return {"poison"} if name == "poison" else set()

    def sinks_for_call(self, call, targets, constructed, fn, module):
        func = call[1]
        name = func[1] if func[0] == "name" else None
        return [("burn", None)] if name == "burn" else []

    def is_sanitizer(self, call, targets, fn, module):
        func = call[1]
        return func[0] == "name" and func[1] == "scrub"


def test_taint_flows_through_assignments_and_calls():
    project = project_from_sources({
        "repro/t.py": (
            "def direct():\n"
            "    x = poison()\n"
            "    y = x\n"
            "    burn(y)\n"
            "\n"
            "def clean():\n"
            "    x = scrub(poison())\n"
            "    burn(x)\n"
        ),
    })
    graph = CallGraph.for_project(project)
    hits = TaintAnalysis(project, graph, _TracerPolicy()).run()
    assert len(hits) == 1
    assert hits[0].qualname == "repro.t.direct"
    assert hits[0].labels == frozenset({"poison"})


def test_taint_propagates_interprocedurally_with_via_chain():
    project = project_from_sources({
        "repro/t.py": (
            "def make():\n"
            "    return poison()\n"
            "\n"
            "def sink_helper(value):\n"
            "    burn(value)\n"
            "\n"
            "def outer():\n"
            "    sink_helper(make())\n"
        ),
    })
    graph = CallGraph.for_project(project)
    analysis = TaintAnalysis(project, graph, _TracerPolicy())
    hits = analysis.run()
    # Two reports of the same leak: inside sink_helper (param-tainted flows
    # are recorded at the caller) and at outer's call site with a via chain.
    outer_hits = [h for h in hits if h.qualname == "repro.t.outer"]
    assert outer_hits and outer_hits[0].via == ("repro.t.sink_helper",)
    summary = analysis.summary("repro.t.make")
    assert summary.returns_sources == frozenset({"poison"})
    assert analysis.summary("repro.t.sink_helper").param_sinks.get(0)
    assert analysis.passes <= 4


# -- cache --------------------------------------------------------------------


def test_cache_roundtrip_and_corruption_tolerance(tmp_path):
    cache = AnalysisCache(str(tmp_path / "c"))
    key = cache.key_for("x = 1\n", "battery-v1")
    assert cache.get(key) is None          # miss on empty
    cache.put(key, {"payload": 42})
    assert cache.get(key) == {"payload": 42}
    # Different source or battery -> different key.
    assert key != cache.key_for("x = 2\n", "battery-v1")
    assert key != cache.key_for("x = 1\n", "battery-v2")
    # A corrupt entry degrades to a miss, never an exception.
    path = cache._path_for(key)
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    assert cache.get(key) is None
    assert "hit" in cache.stats()


def test_runner_uses_cache_and_warm_run_matches(tmp_path):
    tree = tmp_path / "src" / "repro" / "sim"
    os.makedirs(tree)
    (tree / "mod.py").write_text(
        "import time\n\ndef bad():\n    return time.time()\n"
    )
    cache = AnalysisCache(str(tmp_path / "cache"))
    runner = LintRunner(cache=cache)
    cold = runner.lint_paths([str(tmp_path / "src")])
    assert any(f.rule_id == "det-wall-clock" for f in cold)
    warm_runner = LintRunner(cache=AnalysisCache(str(tmp_path / "cache")))
    warm = warm_runner.lint_paths([str(tmp_path / "src")])
    assert warm == cold
    assert warm_runner.cache.hits == 1 and warm_runner.cache.misses == 0


def test_parallel_jobs_match_serial(tmp_path):
    tree = tmp_path / "src" / "repro" / "sim"
    os.makedirs(tree)
    for index in range(6):
        (tree / f"mod{index}.py").write_text(
            f"import time\n\ndef bad{index}():\n    return time.time()\n"
        )
    serial = LintRunner().lint_paths([str(tmp_path / "src")])
    parallel = LintRunner(jobs=2).lint_paths([str(tmp_path / "src")])
    assert serial == parallel
    assert len(serial) == 6


# -- whole-program entry points ----------------------------------------------


def test_lint_project_reports_parse_errors_without_crashing():
    findings = lint_project({
        "repro/sim/good.py": "x = 1\n",
        "repro/sim/bad.py": "def broken(:\n",
    })
    assert any(f.rule_id == "parse-error" for f in findings)
