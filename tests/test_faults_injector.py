"""Fault injector: network-layer faults, node faults, and determinism."""

import random

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CrashRestartFault,
    EclipseFault,
    FaultPlan,
    LinkFault,
    LossBurstFault,
    OmissionFault,
    PartitionFault,
    RoundWindow,
)
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.node import NodeBase, NodeKind


class ChattyNode(NodeBase):
    """Pushes to every other node each round, recording what arrives."""

    def __init__(self, node_id, peers):
        super().__init__(node_id, NodeKind.HONEST)
        self.peers = peers
        self.received = []

    def begin_round(self, ctx):
        return None

    def gossip(self, ctx):
        for peer in self.peers:
            if peer != self.node_id:
                ctx.send_push(self.node_id, peer)

    def end_round(self, ctx):
        return None

    def on_push(self, sender_id):
        self.received.append(sender_id)

    def handle_request(self, message):
        return None

    def view_ids(self):
        return []

    def known_ids(self):
        return list(self.peers)

    def seed_view(self, ids):
        return None


def make_sim(n=6, plan=None, seed=3):
    network = Network(random.Random(seed))
    peers = list(range(n))
    nodes = [ChattyNode(i, peers) for i in peers]
    sim = Simulation(network, nodes, random.Random(seed))
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, random.Random(seed + 1))
        injector.attach(sim)
    return sim, nodes, injector


class TestNetworkFaults:
    def test_partition_cuts_both_directions(self):
        plan = FaultPlan([
            PartitionFault(frozenset({0, 1, 2}), frozenset({3, 4, 5}),
                           RoundWindow(1, 2)),
        ])
        sim, nodes, injector = make_sim(plan=plan)
        sim.run_round()
        for node in nodes[:3]:
            assert all(sender < 3 for sender in node.received)
        for node in nodes[3:]:
            assert all(sender >= 3 for sender in node.received)
        assert injector.stats.drops_by_cause["partition"] == 18

    def test_partition_expires_with_window(self):
        plan = FaultPlan([
            PartitionFault(frozenset({0, 1, 2}), frozenset({3, 4, 5}),
                           RoundWindow(1, 1)),
        ])
        sim, nodes, _ = make_sim(plan=plan)
        sim.run_round()
        for node in nodes:
            node.received.clear()
        sim.run_round()
        assert any(sender >= 3 for sender in nodes[0].received)

    def test_eclipse_isolates_victim_except_allowed(self):
        plan = FaultPlan([
            EclipseFault(0, RoundWindow(1, 5), allowed=frozenset({1})),
        ])
        sim, nodes, _ = make_sim(plan=plan)
        sim.run_round()
        assert set(nodes[0].received) == {1}
        for node in nodes[2:]:
            assert 0 not in node.received

    def test_unidirectional_link_fault(self):
        plan = FaultPlan([
            LinkFault(0, 1, RoundWindow(1, 5), loss_rate=1.0),
        ])
        sim, nodes, _ = make_sim(plan=plan)
        sim.run_round()
        assert 0 not in nodes[1].received   # 0 -> 1 cut
        assert 1 in nodes[0].received       # 1 -> 0 untouched

    def test_bidirectional_link_fault(self):
        plan = FaultPlan([
            LinkFault(0, 1, RoundWindow(1, 5), loss_rate=1.0, bidirectional=True),
        ])
        sim, nodes, _ = make_sim(plan=plan)
        sim.run_round()
        assert 0 not in nodes[1].received
        assert 1 not in nodes[0].received

    def test_omission_node_drops_own_sends(self):
        plan = FaultPlan([
            OmissionFault(2, RoundWindow(1, 5), drop_rate=1.0),
        ])
        sim, nodes, injector = make_sim(plan=plan)
        sim.run_round()
        for node in nodes:
            assert 2 not in node.received
        # The omission node still *receives* everyone else's pushes.
        assert len(nodes[2].received) == 5
        assert injector.stats.drops_by_cause["omission"] == 5

    def test_loss_burst_drops_roughly_the_rate(self):
        plan = FaultPlan([LossBurstFault(RoundWindow(1, 10), 0.5)])
        sim, _nodes, injector = make_sim(plan=plan)
        sim.run(10)
        total = 6 * 5 * 10
        dropped = injector.stats.drops_by_cause["loss-burst"]
        assert 0.35 * total < dropped < 0.65 * total

    def test_injected_drops_are_counted_as_network_losses(self):
        plan = FaultPlan([
            PartitionFault(frozenset({0, 1, 2}), frozenset({3, 4, 5}),
                           RoundWindow(1, 1)),
        ])
        sim, _nodes, injector = make_sim(plan=plan)
        sim.run_round()
        stats = sim.network.stats
        assert stats.messages_lost == injector.stats.messages_dropped == 18
        assert stats.per_round_losses[1] == 18
        assert stats.pushes_sent == 30
        assert stats.pushes_delivered == 12


class TestNodeFaults:
    def test_crash_restart_cycle(self):
        plan = FaultPlan([CrashRestartFault(3, at_round=2, down_rounds=2,
                                            crash_enclave=False)])
        sim, nodes, injector = make_sim(plan=plan)
        sim.run_round()
        assert nodes[3].alive
        sim.run_round()                     # crashes at round 2
        assert not nodes[3].alive
        sim.run_round()
        assert not nodes[3].alive
        sim.run_round()                     # revives at round 4
        assert nodes[3].alive
        assert injector.stats.crashes == 1
        assert injector.stats.restarts == 1

    def test_crashed_node_gets_no_messages(self):
        plan = FaultPlan([CrashRestartFault(3, at_round=1, down_rounds=1,
                                            crash_enclave=False)])
        sim, nodes, _ = make_sim(plan=plan)
        sim.run_round()
        assert nodes[3].received == []

    def test_kind_cache_follows_liveness(self):
        plan = FaultPlan([CrashRestartFault(3, at_round=1, down_rounds=1,
                                            crash_enclave=False)])
        sim, _nodes, _ = make_sim(plan=plan)
        sim.run_round()
        assert 3 not in sim.ids_of_kind(NodeKind.HONEST)
        sim.run_round()
        assert 3 in sim.ids_of_kind(NodeKind.HONEST)


class TestDeterminismAndHygiene:
    def _delivery_log(self, plan_faults, seed):
        plan = FaultPlan(plan_faults)
        sim, nodes, _ = make_sim(plan=plan, seed=seed)
        sim.run(5)
        return [tuple(node.received) for node in nodes]

    def test_same_seed_same_plan_identical_runs(self):
        faults = [
            LossBurstFault(RoundWindow(2, 4), 0.3),
            OmissionFault(1, RoundWindow(1, 5), drop_rate=0.5),
        ]
        assert self._delivery_log(faults, seed=11) == self._delivery_log(faults, seed=11)

    def test_different_seed_differs(self):
        faults = [LossBurstFault(RoundWindow(1, 5), 0.5)]
        assert self._delivery_log(faults, seed=11) != self._delivery_log(faults, seed=12)

    def test_empty_plan_is_byte_identical_to_no_injector(self):
        sim_plain, nodes_plain, _ = make_sim(plan=None, seed=5)
        sim_plain.run(5)
        sim_empty, nodes_empty, _ = make_sim(plan=FaultPlan(), seed=5)
        sim_empty.run(5)
        assert [n.received for n in nodes_plain] == [n.received for n in nodes_empty]
        assert sim_plain.network.stats == sim_empty.network.stats

    def test_sgx_plan_without_infrastructure_is_rejected(self):
        from repro.faults.plan import AttestationOutageFault

        plan = FaultPlan([AttestationOutageFault(RoundWindow(1, 2))])
        network = Network(random.Random(0))
        sim = Simulation(network, [ChattyNode(0, [0])], random.Random(0))
        injector = FaultInjector(plan, random.Random(1))
        with pytest.raises(ValueError, match="SGX faults"):
            injector.attach(sim)

    def test_double_attach_rejected(self):
        sim, _nodes, injector = make_sim(plan=FaultPlan())
        with pytest.raises(RuntimeError):
            injector.attach(sim)
