"""CLI tests."""

import pytest

from repro.cli import build_parser, main, parse_eviction
from repro.core.eviction import AdaptiveEviction, FixedEviction


class TestParseEviction:
    def test_adaptive(self):
        assert isinstance(parse_eviction("adaptive"), AdaptiveEviction)

    def test_fixed(self):
        policy = parse_eviction("0.6")
        assert isinstance(policy, FixedEviction)
        assert policy.value == 0.6

    def test_garbage_rejected(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            parse_eviction("lots")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_eviction("1.5")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "raptee"
        assert args.nodes == 300

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig9"])
        assert args.figure_id == "fig9"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_run_brahms(self, capsys):
        exit_code = main([
            "run", "--protocol", "brahms", "--nodes", "60",
            "--rounds", "8", "--f", "0.1",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "byz IDs in views" in out
        assert "protocol:           brahms" in out

    def test_run_raptee_with_sketch(self, capsys):
        exit_code = main([
            "run", "--nodes", "60", "--rounds", "6", "--t", "0.1",
            "--eviction", "0.4", "--sketch-unbias",
        ])
        assert exit_code == 0
        assert "trusted 6" in capsys.readouterr().out

    def test_attack_command(self, capsys):
        exit_code = main([
            "attack", "--nodes", "60", "--rounds", "6",
            "--f", "0.2", "--t", "0.2", "--eviction", "1.0",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "precision" in out and "F1" in out


class TestFaultsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.drill == "enclave-outage"
        assert args.nodes == 200
        assert args.rounds == 50

    def test_unknown_drill_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--drill", "nope"])

    def test_drill_smoke(self, capsys):
        exit_code = main([
            "faults", "--drill", "enclave-outage",
            "--nodes", "60", "--rounds", "12", "--seed", "2",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "fault drill:        enclave-outage" in out
        assert "0 violation(s)" in out


class TestTraceCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.protocol == "raptee"
        assert args.nodes == 50
        assert args.rounds == 30
        assert args.out == "trace.jsonl"
        assert args.metrics_out is None
        assert not args.profile

    def test_trace_smoke(self, capsys, tmp_path):
        from repro.telemetry import validate_trace_jsonl

        out = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.csv"
        exit_code = main([
            "trace", "--nodes", "30", "--rounds", "6", "--seed", "2",
            "--out", str(out), "--metrics-out", str(metrics),
        ])
        printed = capsys.readouterr().out
        assert exit_code == 0
        assert "rounds executed" in printed
        assert validate_trace_jsonl(out.read_text(encoding="utf-8")) > 0
        assert metrics.read_text(encoding="utf-8").startswith(
            "name,kind,labels,value,count,sum"
        )

    def test_trace_profile_flag_prints_hot_paths(self, capsys, tmp_path):
        exit_code = main([
            "trace", "--nodes", "30", "--rounds", "6", "--seed", "2",
            "--profile", "--no-message-events",
            "--out", str(tmp_path / "t.jsonl"),
        ])
        printed = capsys.readouterr().out
        assert exit_code == 0
        assert "sampler.update" in printed
