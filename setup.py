"""Setup shim: enables legacy editable installs on environments without the
``wheel`` package (pip falls back to ``setup.py develop`` with
``--no-use-pep517``).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
