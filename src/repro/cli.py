"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common workflows:

* ``run`` — execute one Brahms or RAPTEE simulation and print the paper's
  three metrics; ``--checkpoint-every N`` saves a resumable snapshot every
  N rounds and ``--resume PATH`` continues one (:mod:`repro.snapshot`);
* ``snapshot`` — inspect or resume snapshots
  (forwards to ``python -m repro.snapshot``);
* ``figure`` — regenerate one paper table/figure (scaled topology) and
  print its rows;
* ``attack`` — run the §VI-A trusted-node identification attack and print
  precision/recall/F1;
* ``faults`` — run a named fault-injection drill (:mod:`repro.faults`)
  and print the recovery/invariant report;
* ``trace`` — run one scenario with telemetry wired
  (:mod:`repro.telemetry`) and export the JSONL trace / CSV metrics;
* ``lint`` — run the :mod:`repro.lint` invariant checks (determinism,
  enclave boundary, crypto hygiene, sim purity);
* ``bench`` — run the pinned performance scenarios (:mod:`repro.perf` and
  the shard suite, :mod:`repro.shard.bench`) and write/refresh the
  ``BENCH_perf.json`` / ``BENCH_shard.json`` regression reports at the
  repository root;
* ``vectors`` — generate/verify the conformance vector suite
  (forwards to ``python -m repro.scenario``).

Examples::

    python -m repro run --protocol raptee --nodes 300 --f 0.1 --t 0.1
    python -m repro run --nodes 300 --rounds 200 --checkpoint-every 20
    python -m repro run --shards 8 --nodes 10000 --view-ratio 0.02 --rounds 5
    python -m repro run --engine events --latency-model lognormal:40:0.6 \\
        --load 40:30 --straggler 0.1:8 --events-trace-out latency.jsonl
    python -m repro run --resume repro-run.snapshot
    python -m repro snapshot info repro-run.snapshot
    python -m repro figure fig9 --scale test
    python -m repro attack --f 0.2 --t 0.2 --eviction 1.0
    python -m repro faults --drill enclave-outage --nodes 200 --rounds 50
    python -m repro faults --drill membership-churn --trace-out churn.jsonl
    python -m repro trace --nodes 50 --rounds 30 --seed 7 --out trace.jsonl
    python -m repro lint src tests --format json
    python -m repro bench --smoke
    python -m repro bench --suite shard --smoke
    python -m repro vectors generate
    python -m repro vectors verify --report drift.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.adversary.identification import IdentificationAttack
from repro.core.eviction import AdaptiveEviction, EvictionPolicy, FixedEviction
from repro.experiments.figures import (
    BENCH_SCALE,
    TEST_SCALE,
    Scale,
    figure3_brahms_baseline,
    figure9_adaptive,
    figure13_poisoned_injection,
    fixed_eviction_figure,
    identification_figure,
    membership_churn_figure,
    slo_figure,
    straggler_figure,
    table1_sgx_overhead,
)
from repro.experiments.runner import bundle_metrics
from repro.faults.drills import DRILLS, run_drill
from repro.experiments.scenarios import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)

__all__ = ["main", "build_parser", "parse_eviction"]

_SCALES = {"test": TEST_SCALE, "bench": BENCH_SCALE}

#: Where ``repro run --checkpoint-every N`` saves when no --checkpoint-out
#: is given — and where ``repro run --resume`` therefore finds it.
DEFAULT_CHECKPOINT = "repro-run.snapshot"
DEFAULT_RUN_ROUNDS = 80


def parse_eviction(value: str) -> EvictionPolicy:
    """Parse ``--eviction``: 'adaptive' or a fixed rate in [0, 1]."""
    if value == "adaptive":
        return AdaptiveEviction()
    try:
        rate = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"eviction must be 'adaptive' or a number in [0, 1], got {value!r}"
        )
    if not 0.0 <= rate <= 1.0:
        raise argparse.ArgumentTypeError("fixed eviction rate must be in [0, 1]")
    return FixedEviction(rate)


def parse_latency_option(value: str):
    """argparse type for ``--latency-model`` (see repro.events.latency)."""
    from repro.events import parse_latency_model

    try:
        return parse_latency_model(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def parse_load_option(value: str):
    """argparse type for ``--load`` (see repro.events.load)."""
    from repro.events import parse_load

    try:
        return parse_load(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def parse_straggler_option(value: str):
    """argparse type for ``--straggler`` (see repro.events.engine)."""
    from repro.events import parse_straggler

    try:
        return parse_straggler(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RAPTEE reproduction toolkit"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one simulation")
    run_parser.add_argument("--protocol", choices=("brahms", "raptee"), default="raptee")
    run_parser.add_argument("--nodes", type=int, default=300)
    run_parser.add_argument("--f", type=float, default=0.10, help="Byzantine fraction")
    run_parser.add_argument("--t", type=float, default=0.10, help="trusted fraction")
    run_parser.add_argument("--poisoned", type=float, default=0.0,
                            help="injected view-poisoned trusted fraction")
    run_parser.add_argument("--rounds", type=int, default=None,
                            help="total round target (default: 80, or the "
                                 "stored target when resuming)")
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--view-ratio", type=float, default=0.08)
    run_parser.add_argument("--eviction", type=parse_eviction, default=AdaptiveEviction())
    run_parser.add_argument("--sketch-unbias", action="store_true",
                            help="enable count-min stream unbiasing (future work)")
    run_parser.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                            help="save a resumable snapshot every N rounds "
                                 "(see repro.snapshot)")
    run_parser.add_argument("--checkpoint-out", default=None, metavar="PATH",
                            help=f"snapshot path (default: {DEFAULT_CHECKPOINT})")
    run_parser.add_argument("--resume", default=None, metavar="PATH",
                            help="restore a snapshot and continue it "
                                 "(topology flags are ignored; state comes "
                                 "from the snapshot)")
    run_parser.add_argument("--engine", choices=("rounds", "events"),
                            default="rounds",
                            help="simulation clock: lockstep rounds (default) "
                                 "or the event-driven engine (repro.events)")
    run_parser.add_argument("--shards", type=int, default=None, metavar="N",
                            help="run on the sharded batch engine "
                                 "(repro.shard) with N partitions; output is "
                                 "byte-identical for any N")
    run_parser.add_argument("--shard-workers", type=int, default=1, metavar="W",
                            help="processes for the shard partition phases "
                                 "(default 1 = inline)")
    run_parser.add_argument("--loss", type=float, default=0.0,
                            help="uniform message loss rate (shard engine)")
    run_parser.add_argument("--latency-model", type=parse_latency_option,
                            default=None, metavar="SPEC",
                            help="per-link one-way delay for --engine events: "
                                 "zero | constant:MS | uniform:LO:HI | "
                                 "lognormal:MEDIAN:SIGMA (times in ms)")
    run_parser.add_argument("--load", type=parse_load_option, default=None,
                            metavar="CLIENTS:RPM",
                            help="client load for --engine events: active "
                                 "clients x requests/minute each (e.g. 40:30)")
    run_parser.add_argument("--straggler", type=parse_straggler_option,
                            default=None, metavar="FRAC:FACTOR",
                            help="slow a deterministic node subset under "
                                 "--engine events (e.g. 0.1:8 = 10%% of "
                                 "nodes at 8x)")
    run_parser.add_argument("--tick-interval", type=float, default=1.0,
                            metavar="SECONDS",
                            help="round period on the event clock (default 1.0)")
    run_parser.add_argument("--events-trace-out", default=None, metavar="PATH",
                            help="write the per-request latency trace (JSON "
                                 "Lines) of --engine events --load here")

    figure_parser = subparsers.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument(
        "figure_id",
        choices=("fig3", "table1", "fig5", "fig6", "fig7", "fig8", "fig9",
                 "fig10", "fig11", "fig12", "fig13", "churn", "slo",
                 "straggler"),
    )
    figure_parser.add_argument("--scale", choices=sorted(_SCALES), default="test")

    attack_parser = subparsers.add_parser(
        "attack", help="run the trusted-node identification attack"
    )
    attack_parser.add_argument("--nodes", type=int, default=200)
    attack_parser.add_argument("--f", type=float, default=0.20)
    attack_parser.add_argument("--t", type=float, default=0.20)
    attack_parser.add_argument("--rounds", type=int, default=20)
    attack_parser.add_argument("--seed", type=int, default=1)
    attack_parser.add_argument("--view-ratio", type=float, default=0.08)
    attack_parser.add_argument("--eviction", type=parse_eviction, default=AdaptiveEviction())

    faults_parser = subparsers.add_parser(
        "faults", help="run a named fault-injection drill (see repro.faults)"
    )
    faults_parser.add_argument(
        "--drill", choices=sorted(DRILLS), default="enclave-outage"
    )
    faults_parser.add_argument("--nodes", type=int, default=200)
    faults_parser.add_argument("--rounds", type=int, default=50)
    faults_parser.add_argument("--seed", type=int, default=1)
    faults_parser.add_argument("--trace-out", default=None, metavar="PATH",
                               help="also write the drill's telemetry trace "
                                    "here as JSON Lines")

    trace_parser = subparsers.add_parser(
        "trace", help="run one scenario with telemetry and export the trace"
    )
    trace_parser.add_argument("--protocol", choices=("brahms", "raptee"),
                              default="raptee")
    trace_parser.add_argument("--nodes", type=int, default=50)
    trace_parser.add_argument("--f", type=float, default=0.10,
                              help="Byzantine fraction")
    trace_parser.add_argument("--t", type=float, default=0.10,
                              help="trusted fraction")
    trace_parser.add_argument("--rounds", type=int, default=30)
    trace_parser.add_argument("--seed", type=int, default=1)
    trace_parser.add_argument("--view-ratio", type=float, default=0.08)
    trace_parser.add_argument("--eviction", type=parse_eviction,
                              default=AdaptiveEviction())
    trace_parser.add_argument("--out", default="trace.jsonl",
                              help="JSONL trace output path")
    trace_parser.add_argument("--metrics-out", default=None,
                              help="also write a CSV metrics snapshot here")
    trace_parser.add_argument("--no-message-events", action="store_true",
                              help="omit per-message net.*/fault.drop events")
    trace_parser.add_argument("--ecall-events", action="store_true",
                              help="emit one trace event per SGX ECALL")
    trace_parser.add_argument("--profile", action="store_true",
                              help="enable wall-clock profiling of hot paths")

    snapshot_parser = subparsers.add_parser(
        "snapshot", help="inspect or resume run snapshots (see repro.snapshot)"
    )
    snapshot_parser.add_argument(
        "snapshot_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.snapshot",
    )

    lint_parser = subparsers.add_parser(
        "lint", help="run the static invariant checks (see repro.lint)"
    )
    lint_parser.add_argument(
        "lint_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.lint",
    )

    vectors_parser = subparsers.add_parser(
        "vectors",
        help="generate/verify conformance vectors (see repro.scenario)",
    )
    vectors_parser.add_argument(
        "vectors_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.scenario",
    )

    bench_parser = subparsers.add_parser(
        "bench", help="run the pinned perf scenarios (see repro.perf.bench)"
    )
    bench_parser.add_argument(
        "--suite", choices=("perf", "shard", "all"), default="perf",
        help="which pinned suite to run: the legacy-engine perf suite "
             "(default), the shard-engine suite (repro.shard.bench), or both",
    )
    bench_parser.add_argument(
        "--scenario", action="append", default=None, dest="scenarios",
        help="run only this pinned scenario (repeatable; default: all)",
    )
    bench_parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale CI variant of every scenario",
    )
    bench_parser.add_argument(
        "--no-baseline", action="store_true",
        help="skip the fast-path-off reference runs (no speedup column)",
    )
    bench_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here instead of the default "
             "BENCH_perf.json / BENCH_shard.json at the repository root "
             "(only with a single --suite)",
    )

    return parser


def _build_run_bundle(args, protocol: str):
    spec = TopologySpec(
        n_nodes=args.nodes,
        byzantine_fraction=args.f,
        trusted_fraction=args.t if protocol == "raptee" else 0.0,
        poisoned_fraction=args.poisoned if protocol == "raptee" else 0.0,
        view_ratio=args.view_ratio,
    )
    if protocol == "brahms":
        return build_brahms_simulation(spec, args.seed)
    return build_raptee_simulation(
        spec, args.seed, eviction=args.eviction,
        sketch_unbias_enabled=args.sketch_unbias,
    )


def _command_run_events(args) -> int:
    import json

    from repro.events import ConstantLatency, EventOptions, LatencyConfig
    from repro.experiments.runner import run_bundle
    from repro.telemetry import TelemetryConfig, wire_telemetry

    if args.resume or args.checkpoint_every:
        print("error: --engine events has no snapshot support; use the "
              "default rounds engine with --resume/--checkpoint-every",
              file=sys.stderr)
        return 2
    rounds = args.rounds if args.rounds is not None else DEFAULT_RUN_ROUNDS
    bundle = _build_run_bundle(args, args.protocol)
    wire_telemetry(bundle, TelemetryConfig(tracing=False))
    options = EventOptions(
        seed=args.seed,
        mode="continuous",
        tick_interval=args.tick_interval,
        latency=LatencyConfig(default=args.latency_model or ConstantLatency(0.0)),
        load=args.load,
        stragglers=args.straggler,
    )
    metrics = run_bundle(bundle, rounds, events=options)
    engine = bundle.events.engine
    spec = bundle.spec
    print(f"protocol:           {args.protocol}")
    print(f"nodes:              {spec.n_nodes} (byz {spec.n_byzantine}, "
          f"trusted {spec.n_trusted}, poisoned +{spec.n_poisoned})")
    print(f"rounds:             {rounds}")
    print(f"engine:             events (continuous, tick "
          f"{options.tick_interval:g} s)")
    print(f"latency model:      {options.latency.describe()}")
    if options.stragglers is not None:
        print(f"stragglers:         {options.stragglers.describe()}")
    print(f"cycles:             {engine.cycles} "
          f"(late {100.0 * engine.late_fraction:.1f}%)")
    load = engine.load
    if load is not None:
        print(f"load:               {load.spec.describe()} -> "
              f"{load.served} served, {load.failed} failed")
        print(f"request latency:    p50 {load.latency_percentile_ms(0.50):.1f} ms, "
              f"p95 {load.latency_percentile_ms(0.95):.1f} ms, "
              f"p99 {load.latency_percentile_ms(0.99):.1f} ms")
        print(f"byz samples:        {100.0 * load.byzantine_fraction:.1f}%")
    print(f"byz IDs in views:   {metrics.resilience_percent:.1f}%")
    print(f"discovery round:    {metrics.discovery_round if metrics.discovery_round > 0 else 'not reached'}")
    print(f"stability round:    {metrics.stability_round if metrics.stability_round > 0 else 'not reached'}")
    if args.events_trace_out:
        records = [] if load is None else load.records
        with open(args.events_trace_out, "w", encoding="utf-8") as stream:
            for record in records:
                stream.write(json.dumps(record, sort_keys=True))
                stream.write("\n")
        print(f"latency trace:      {args.events_trace_out} "
              f"({len(records)} requests)")
    return 0


def _command_run_shard(args) -> int:
    from repro.shard.compile import ShardUnsupportedError, shard_config_from_topology
    from repro.shard.engine import ShardSimulation

    if args.engine == "events":
        print("error: --shards selects the sharded rounds engine; it has no "
              "event clock (drop --engine events)", file=sys.stderr)
        return 2
    if args.resume or args.checkpoint_every:
        print("error: the shard engine has no snapshot support; use the "
              "default rounds engine with --resume/--checkpoint-every",
              file=sys.stderr)
        return 2
    if args.sketch_unbias:
        print("error: the shard engine does not model count-min sketch "
              "unbiasing", file=sys.stderr)
        return 2
    topology = TopologySpec(
        n_nodes=args.nodes,
        byzantine_fraction=args.f,
        trusted_fraction=args.t if args.protocol == "raptee" else 0.0,
        poisoned_fraction=args.poisoned if args.protocol == "raptee" else 0.0,
        view_ratio=args.view_ratio,
        loss_rate=args.loss,
    )
    try:
        config = shard_config_from_topology(
            topology, args.seed, protocol=args.protocol, eviction=args.eviction,
        )
    except ShardUnsupportedError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    simulation = ShardSimulation(
        config, shards=args.shards, workers=args.shard_workers
    )
    rounds = args.rounds if args.rounds is not None else DEFAULT_RUN_ROUNDS
    simulation.run(rounds)
    last = simulation.trace_records[-1]
    share = (
        100.0 * last["byz_entries"] / last["view_entries"]
        if last["view_entries"] else 0.0
    )
    stats = simulation.stats
    state = simulation.state
    print(f"protocol:           {args.protocol} (shard engine)")
    print(f"nodes:              {config.n_nodes} (byz {config.n_byzantine}, "
          f"trusted {config.n_trusted})")
    print(f"shards:             {args.shards} "
          f"(workers {args.shard_workers})")
    print(f"rounds:             {rounds}")
    print(f"byz IDs in views:   {share:.1f}%")
    print(f"pushes sent:        {stats.pushes_sent}")
    print(f"requests sent:      {stats.requests_sent}")
    print(f"messages lost:      {stats.messages_lost}")
    print(f"renewals:           {state.renewals} "
          f"(blocked {state.blocked_rounds}, evicted {state.evicted_ids})")
    return 0


def _command_run(args) -> int:
    from repro.snapshot import RunState, restore, run_with_checkpoints

    if args.shards is not None:
        return _command_run_shard(args)
    if args.engine == "events":
        return _command_run_events(args)
    if args.resume:
        from repro.snapshot import SnapshotError

        try:
            state = restore(args.resume)
        except (SnapshotError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        protocol = state.label or "raptee"
        rounds = args.rounds if args.rounds is not None else state.rounds_total
        # Keep checkpointing to the same file unless redirected.
        checkpoint_path = args.checkpoint_out or (
            args.resume if args.checkpoint_every else None
        )
    else:
        protocol = args.protocol
        rounds = args.rounds if args.rounds is not None else DEFAULT_RUN_ROUNDS
        bundle = _build_run_bundle(args, protocol)
        state = RunState(
            simulation=bundle.simulation, bundle=bundle, label=protocol
        )
        checkpoint_path = args.checkpoint_out or (
            DEFAULT_CHECKPOINT if args.checkpoint_every else None
        )

    if state.bundle is None:
        print("error: this snapshot holds a bare simulation (no metric "
              "observers); resume it with python -m repro.snapshot resume",
              file=sys.stderr)
        return 2
    run_with_checkpoints(
        state,
        rounds=max(rounds, state.rounds_completed),
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=checkpoint_path,
    )
    spec = state.bundle.spec
    metrics = bundle_metrics(state.bundle, state.rounds_completed)
    print(f"protocol:           {protocol}")
    print(f"nodes:              {spec.n_nodes} (byz {spec.n_byzantine}, "
          f"trusted {spec.n_trusted}, poisoned +{spec.n_poisoned})")
    print(f"rounds:             {state.rounds_completed}")
    print(f"byz IDs in views:   {metrics.resilience_percent:.1f}%")
    print(f"discovery round:    {metrics.discovery_round if metrics.discovery_round > 0 else 'not reached'}")
    print(f"stability round:    {metrics.stability_round if metrics.stability_round > 0 else 'not reached'}")
    if checkpoint_path:
        print(f"checkpoint:         {checkpoint_path}")
    return 0


def _command_figure(args) -> int:
    scale: Scale = _SCALES[args.scale]
    builders = {
        "fig3": lambda: figure3_brahms_baseline(scale),
        "table1": lambda: table1_sgx_overhead(scale),
        "fig5": lambda: fixed_eviction_figure(0.0, scale),
        "fig6": lambda: fixed_eviction_figure(0.4, scale),
        "fig7": lambda: fixed_eviction_figure(0.6, scale),
        "fig8": lambda: fixed_eviction_figure(1.0, scale),
        "fig9": lambda: figure9_adaptive(scale),
        "fig10": lambda: identification_figure(
            "Fig. 10 — identification attack, f = 10%", 0.10, scale),
        "fig11": lambda: identification_figure(
            "Fig. 11 — identification attack, f = 30%", 0.30, scale),
        "fig12": lambda: identification_figure(
            "Fig. 12 — identification attack, adaptive", 0.10, scale,
            policies=(AdaptiveEviction(),)),
        "fig13": lambda: figure13_poisoned_injection(scale),
        "churn": lambda: membership_churn_figure(scale),
        "slo": lambda: slo_figure(scale),
        "straggler": lambda: straggler_figure(scale),
    }
    result = builders[args.figure_id]()
    print(result.render())
    return 0


def _command_attack(args) -> int:
    spec = TopologySpec(
        n_nodes=args.nodes,
        byzantine_fraction=args.f,
        trusted_fraction=args.t,
        view_ratio=args.view_ratio,
    )
    config = spec.brahms_config()
    bundle = build_raptee_simulation(
        spec, args.seed, eviction=args.eviction, probe_pulls=config.beta_count
    )
    bundle.run(args.rounds)
    attack = IdentificationAttack(bundle.coordinator)
    report = attack.classify(bundle.trusted_ids, since_round=1, until_round=args.rounds)
    print(f"eviction policy:  {args.eviction.describe()}")
    print(f"observed nodes:   {len(attack.observed_nodes())}")
    print(f"labeled trusted:  {len(report.labeled_trusted)}")
    print(f"precision:        {report.precision:.2f}")
    print(f"recall:           {report.recall:.2f}")
    print(f"F1:               {report.f1:.2f}")
    return 0


def _command_faults(args) -> int:
    report = run_drill(
        args.drill, nodes=args.nodes, rounds=args.rounds, seed=args.seed,
        capture_trace=bool(args.trace_out),
    )
    print(report.render())
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as stream:
            stream.write(report.trace_jsonl or "")
        print(f"trace:              {args.trace_out}")
    return 0 if report.violations == 0 else 1


def _command_trace(args) -> int:
    from repro.telemetry import (
        TelemetryConfig,
        metrics_to_csv,
        render_profile,
        render_summary,
        trace_to_jsonl,
        wire_telemetry,
    )

    spec = TopologySpec(
        n_nodes=args.nodes,
        byzantine_fraction=args.f,
        trusted_fraction=args.t if args.protocol == "raptee" else 0.0,
        view_ratio=args.view_ratio,
    )
    if args.protocol == "brahms":
        bundle = build_brahms_simulation(spec, args.seed)
    else:
        bundle = build_raptee_simulation(spec, args.seed, eviction=args.eviction)
    config = TelemetryConfig(
        trace_messages=not args.no_message_events,
        trace_ecalls=args.ecall_events,
        profiling=args.profile,
    )
    harness = wire_telemetry(bundle, config)
    harness.run(args.rounds)

    telemetry = harness.telemetry
    with open(args.out, "w", encoding="utf-8") as stream:
        stream.write(trace_to_jsonl(telemetry.trace.events))
    print(f"trace:              {args.out} ({len(telemetry.trace)} events)")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as stream:
            stream.write(metrics_to_csv(telemetry.registry))
        print(f"metrics:            {args.metrics_out}")
    print()
    print(render_summary(telemetry))
    if args.profile:
        print()
        print(render_profile(telemetry.profiler))
    return 0


def _command_snapshot(args) -> int:
    from repro.snapshot.__main__ import main as snapshot_main

    return snapshot_main(args.snapshot_args)


def _command_lint(args) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(args.lint_args)


def _command_vectors(args) -> int:
    from repro.scenario.cli import main as vectors_main

    return vectors_main(args.vectors_args)


def _repo_root():
    """Nearest ancestor with a pyproject.toml — where BENCH_*.json belong.

    ``repro bench`` used to write only where ``--out`` pointed, so the
    tracked trajectory files at the repository root never got refreshed;
    anchoring the default here fixes that regardless of the working
    directory the command runs from.
    """
    from pathlib import Path

    here = Path.cwd()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return here


def _command_bench(args) -> int:
    import json

    suites = ("perf", "shard") if args.suite == "all" else (args.suite,)
    if len(suites) > 1 and (args.out or args.scenarios):
        print("error: --out/--scenario need a single --suite",
              file=sys.stderr)
        return 2
    for suite in suites:
        if suite == "perf":
            from repro.perf.bench import (
                render_bench_report as render,
                run_bench,
                validate_bench_report as validate,
            )

            payload = run_bench(
                names=args.scenarios,
                smoke=args.smoke,
                with_baseline=not args.no_baseline,
            )
            default_name = "BENCH_perf.json"
        else:
            from repro.shard.bench import (
                render_shard_report as render,
                run_shard_bench,
                validate_shard_report as validate,
            )

            payload = run_shard_bench(names=args.scenarios, smoke=args.smoke)
            default_name = "BENCH_shard.json"
        validate(payload)
        out = args.out if args.out else str(_repo_root() / default_name)
        with open(out, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"report:             {out}")
        print(render(payload))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "figure": _command_figure,
        "attack": _command_attack,
        "faults": _command_faults,
        "trace": _command_trace,
        "snapshot": _command_snapshot,
        "lint": _command_lint,
        "vectors": _command_vectors,
        "bench": _command_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module CLI shim
    sys.exit(main())
