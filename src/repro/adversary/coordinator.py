"""The global adversary (§III-B).

One coordinator controls every Byzantine identity.  It has full knowledge of
the system membership (Byzantine *and* correct IDs) but cannot tell which
correct nodes are SGX-capable.  Push strategies:

* **adaptive_balanced** (default) — the strategy the Brahms analysis proves
  optimal, executed against Brahms' attack-detection defense: every correct
  node receives the same number of Byzantine pushes, and that number is
  chosen *just below the blocking threshold*.  A node blocks its view
  update when it receives more than the expected α·l1 pushes; honest nodes
  only deliver about α·l1·(1−v) pushes to correct targets when views carry
  a Byzantine fraction v (the rest land on Byzantine IDs), so the adversary
  can fill the slack ≈ α·l1·v per victim.  This creates Brahms' well-known
  death spiral — pollution frees push slack, which buys more pollution —
  and reproduces the paper's Fig. 3 collapse (81 % Byzantine IDs at
  f = 18 %).  The adversary estimates v from the pull answers its nodes
  receive (the same intelligence the §VI-A attack uses).
* **balanced** — the naive fixed-budget variant: every identity spends
  exactly its rate-limit allowance, spread evenly.
* **targeted** — a configurable subset of victims receives a concentrated
  flood (exercises blocking + history-sample defenses), remainder balanced.

Every strategy is capped by the rate limit: total pushes per round can
never exceed (number of Byzantine identities) × per-identity limit.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

__all__ = ["AdversaryCoordinator"]


class AdversaryCoordinator:
    """Central brain for all Byzantine identities."""

    STRATEGIES = ("adaptive_balanced", "balanced", "targeted")

    def __init__(
        self,
        byzantine_ids: Iterable[int],
        correct_ids: Iterable[int],
        push_limit: int,
        rng: random.Random,
        strategy: str = "adaptive_balanced",
        expected_pushes: Optional[int] = None,
        flood_targets: Optional[Sequence[int]] = None,
        flood_share: float = 0.5,
    ):
        self.byzantine_ids: List[int] = sorted(set(byzantine_ids))
        self.correct_ids: List[int] = sorted(set(correct_ids))
        if push_limit <= 0:
            raise ValueError("push_limit must be positive")
        if strategy not in self.STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        if not 0.0 <= flood_share <= 1.0:
            raise ValueError("flood_share must be in [0, 1]")
        self.push_limit = push_limit
        self.strategy = strategy
        #: The victims' blocking threshold α·l1 the adaptive strategy aims at.
        self.expected_pushes = expected_pushes
        self.flood_targets = list(flood_targets or [])
        self.flood_share = flood_share
        self._rng = rng
        self._assignments: Dict[int, List[int]] = {}
        self._assigned_round = -1
        self._pollution_probe: Optional[Callable[[], float]] = None
        # Identification-attack intelligence: observed pull-answer
        # compositions, per correct node, with the round they were seen in.
        self.intel: Dict[int, List[tuple]] = defaultdict(list)
        self._byzantine_set: Set[int] = set(self.byzantine_ids)
        # Rotating fake-view service (cheap per-answer slicing).
        self._fake_pool: List[int] = list(self.byzantine_ids)
        self._fake_cursor = 0

    # -- situational awareness -------------------------------------------------

    def set_pollution_probe(self, probe: Callable[[], float]) -> None:
        """Install the adversary's estimate of the current mean Byzantine
        fraction v in correct views.  The §VI-A identification attack already
        grants the adversary exactly this aggregate (its nodes average the
        pull answers they receive); the probe is the simulator's shortcut
        for that estimation."""
        self._pollution_probe = probe

    def _estimated_pollution(self) -> float:
        if self._pollution_probe is not None:
            return max(0.0, min(1.0, self._pollution_probe()))
        # Fallback estimate from collected pull-answer intel (last 200 obs).
        observations = [
            fraction
            for per_node in self.intel.values()
            for (_round, fraction) in per_node[-5:]
        ]
        if not observations:
            return 0.0
        recent = observations[-200:]
        return sum(recent) / len(recent)

    # -- push scheduling ----------------------------------------------------

    @property
    def total_budget(self) -> int:
        return len(self.byzantine_ids) * self.push_limit

    def _balanced_target_multiset(self, budget: int) -> List[int]:
        """Spread ``budget`` pushes as evenly as possible over correct IDs."""
        if not self.correct_ids or budget <= 0:
            return []
        quota, remainder = divmod(budget, len(self.correct_ids))
        targets: List[int] = []
        order = list(self.correct_ids)
        self._rng.shuffle(order)
        for node in order:
            targets.extend([node] * quota)
        targets.extend(order[:remainder])
        return targets

    def _adaptive_budget(self) -> int:
        """Victim-count × per-victim slack, capped by the rate limit."""
        if self.expected_pushes is None:
            return self.total_budget
        pollution = self._estimated_pollution()
        # Slack per victim: the blocking threshold minus the honest pushes
        # the victim is expected to receive, with one push of safety margin.
        honest_arrivals = self.expected_pushes * (1.0 - pollution)
        slack = max(0.0, self.expected_pushes - honest_arrivals - 1.0)
        wanted = int(slack * len(self.correct_ids))
        # Even with zero estimated pollution the adversary spends a minimal
        # probe budget, otherwise the spiral could never start.
        wanted = max(wanted, len(self.correct_ids) // 2)
        return min(wanted, self.total_budget)

    def _build_assignments(self, round_number: int) -> None:
        if self.strategy == "targeted" and not self.flood_targets:
            raise ValueError("targeted strategy requires flood_targets to be set")
        budget = self.total_budget
        targets: List[int] = []
        if self.strategy == "targeted" and self.flood_targets:
            flood_budget = int(budget * self.flood_share)
            per_victim, extra = divmod(flood_budget, len(self.flood_targets))
            for victim in self.flood_targets:
                targets.extend([victim] * per_victim)
            targets.extend(self.flood_targets[:extra])
            targets.extend(self._balanced_target_multiset(budget - flood_budget))
        elif self.strategy == "adaptive_balanced":
            targets = self._balanced_target_multiset(self._adaptive_budget())
        else:
            targets = self._balanced_target_multiset(budget)

        self._rng.shuffle(targets)
        self._assignments = {}
        for index, byz_id in enumerate(self.byzantine_ids):
            chunk = targets[index * self.push_limit : (index + 1) * self.push_limit]
            self._assignments[byz_id] = chunk
        self._assigned_round = round_number

    def push_targets_for(self, byz_id: int, round_number: int) -> List[int]:
        """The pushes one Byzantine identity sends this round."""
        if round_number != self._assigned_round:
            self._build_assignments(round_number)
        return self._assignments.get(byz_id, [])

    # -- pull probing (cover traffic + intelligence) -----------------------------

    def pull_targets_for(self, byz_id: int, count: int) -> List[int]:
        """Correct nodes a Byzantine identity probes with pulls this round."""
        if not self.correct_ids or count <= 0:
            return []
        return self._rng.choices(self.correct_ids, k=count)

    def record_pull_answer(self, observed_node: int, ids: Sequence[int], round_number: int) -> None:
        """Store the Byzantine-ID fraction of one observed pull answer."""
        if not ids:
            return
        byzantine_set = self._byzantine_set
        fraction = sum(1 for peer in ids if peer in byzantine_set) / len(ids)
        self.intel[observed_node].append((round_number, fraction))

    def fake_view(self, size: int) -> List[int]:
        """A pull answer: exclusively Byzantine IDs (§V-B).

        Served from a rotating shuffled pool so that, across answers, every
        Byzantine identity is advertised equally often (the adversary wants
        all of its identities represented, not a lucky few).
        """
        pool = self._fake_pool
        if not pool:
            return []
        if size >= len(pool):
            return list(pool)
        start = self._fake_cursor
        end = start + size
        if end <= len(pool):
            view = pool[start:end]
        else:
            view = pool[start:] + pool[: end - len(pool)]
            self._rng.shuffle(pool)
        self._fake_cursor = end % len(pool)
        return view
