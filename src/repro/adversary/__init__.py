"""Adversary models: the paper's attack strategies (§III-B, §VI)."""

from repro.adversary.byzantine import ByzantineNode
from repro.adversary.coordinator import AdversaryCoordinator
from repro.adversary.identification import (
    IdentificationAttack,
    IdentificationReport,
    PAPER_THRESHOLD,
)
from repro.adversary.poisoned import build_poisoned_trusted_node, poison_initial_state

__all__ = [
    "ByzantineNode",
    "AdversaryCoordinator",
    "IdentificationAttack",
    "IdentificationReport",
    "PAPER_THRESHOLD",
    "build_poisoned_trusted_node",
    "poison_initial_state",
]
