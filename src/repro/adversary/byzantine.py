"""Byzantine node behaviour (§III-B, §V-B).

A Byzantine node:

* pushes its ID to the victims the coordinator assigns (balanced or
  targeted schedule, within the rate limit — it cannot exceed it, the
  limiter is enforced system-side);
* answers every pull request with a view of exclusively Byzantine IDs;
* participates in the mutual-auth handshake with a random key of its own —
  it cannot forge K_T, and refusing to answer would make it conspicuous;
* optionally issues pull requests of its own ("probing"), both as cover
  traffic and to collect the view compositions the §VI-A identification
  attack feeds on.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.adversary.coordinator import AdversaryCoordinator
from repro.core.auth import AuthScheme, KEY_BYTES
from repro.sim.engine import RoundContext
from repro.sim.messages import (
    AuthChallenge,
    AuthConfirm,
    AuthResponse,
    AuthResult,
    Message,
    PullReply,
    PullRequest,
)
from repro.sim.node import NodeBase, NodeKind

__all__ = ["ByzantineNode"]


class ByzantineNode(NodeBase):
    """One Byzantine identity driven by the global coordinator."""

    def __init__(
        self,
        node_id: int,
        coordinator: AdversaryCoordinator,
        view_size: int,
        rng: random.Random,
        probe_pulls: int = 0,
        auth_mode: str = "hmac",
    ):
        super().__init__(node_id, NodeKind.BYZANTINE)
        self.coordinator = coordinator
        self.view_size = view_size
        self.rng = rng
        self.probe_pulls = probe_pulls
        self._scheme = AuthScheme(auth_mode)
        # The adversary cannot forge the group key; each identity blends in
        # with an ordinary random key, like any untrusted node.
        self._own_key = rng.getrandbits(KEY_BYTES * 8).to_bytes(KEY_BYTES, "big")
        self._pending_auth: Dict[int, tuple] = {}

    # -- introspection ---------------------------------------------------------

    def view_ids(self) -> List[int]:
        """A Byzantine 'view' is whatever the adversary wants to advertise."""
        return self.coordinator.fake_view(self.view_size)

    def known_ids(self) -> List[int]:
        # Global knowledge (§III-B): the adversary knows the membership.
        return list(self.coordinator.correct_ids) + list(self.coordinator.byzantine_ids)

    def seed_view(self, ids: List[int]) -> None:
        # Membership knowledge is global; the bootstrap sample is ignored.
        return None

    # -- active behaviour ---------------------------------------------------------

    def begin_round(self, ctx: RoundContext) -> None:
        self._pending_auth = {}

    def gossip(self, ctx: RoundContext) -> None:
        for victim in self.coordinator.push_targets_for(self.node_id, ctx.round_number):
            ctx.send_push(self.node_id, victim)
        for target in self.coordinator.pull_targets_for(self.node_id, self.probe_pulls):
            self._probe(ctx, target)

    def _probe(self, ctx: RoundContext, target: int) -> None:
        """Full protocol-conformant pull session, recording the answer."""
        r_a = AuthScheme.make_challenge(self.rng)
        response = ctx.request(
            self.node_id, target, AuthChallenge(sender=self.node_id, r_a=r_a)
        )
        if not isinstance(response, AuthResponse):
            return
        confirm = self._scheme.confirm(self._own_key, r_a, response.r_b)
        ctx.request(self.node_id, target, AuthConfirm(sender=self.node_id, proof=confirm))
        reply = ctx.request(self.node_id, target, PullRequest(self.node_id))
        if isinstance(reply, PullReply):
            self.coordinator.record_pull_answer(target, reply.ids, ctx.round_number)

    # -- passive behaviour -----------------------------------------------------------

    def on_push(self, sender_id: int) -> None:
        # Nothing to learn: membership is already global knowledge.
        return None

    def handle_request(self, message: Message) -> Optional[Message]:
        if isinstance(message, AuthChallenge):
            parts = self._scheme.respond(self._own_key, message.r_a, self.rng)
            self._pending_auth[message.sender] = (message.r_a, parts.r_b)
            return AuthResponse(sender=self.node_id, r_b=parts.r_b, proof=parts.proof)
        if isinstance(message, AuthConfirm):
            self._pending_auth.pop(message.sender, None)
            return AuthResult(sender=self.node_id, mutual=False)
        if isinstance(message, PullRequest):
            return PullReply(
                sender=self.node_id,
                ids=tuple(self.coordinator.fake_view(self.view_size)),
            )
        # TrustedSwapRequest etc.: a Byzantine node can never have passed
        # the confirm check, so honest trusted nodes never send these; an
        # unsolicited one is simply dropped.
        return None
