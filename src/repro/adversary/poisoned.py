"""View-poisoned trusted-node injection (§VI-B).

The adversary purchases genuine SGX devices and runs the *unmodified*
RAPTEE enclave on them — so attestation and provisioning succeed and the
nodes hold the real group key.  Before joining the actual network, the
adversary bootstraps them "in a network that contains only Byzantine nodes"
to fill their views (and samplers) with Byzantine identifiers, then releases
them among honest nodes hoping they spread those IDs through trusted
exchanges.

Because the enclave code is genuine, the injected nodes *behave* correctly
from the moment they join; the only adversarial leverage is their initial
state.  This module builds such nodes.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.core.config import RapteeConfig
from repro.core.deployment import TrustedInfrastructure
from repro.core.node import RapteeNode
from repro.sim.node import NodeKind

__all__ = ["build_poisoned_trusted_node", "poison_initial_state"]


#: Share of the injected node's view that comes from the real network's
#: bootstrap when it joins (§VI-B: the adversary "move[s] these
#: view-poisoned trusted nodes into the actual network" — joining requires
#: contacting the bootstrap, which hands out a few genuine entries; without
#: them the node would only ever talk to Byzantine identities and the
#: attack could never reach a single trusted node).
JOIN_FRACTION = 0.1


def poison_initial_state(
    node: RapteeNode,
    byzantine_ids: Sequence[int],
    rng: random.Random,
    join_ids: Sequence[int] = (),
) -> None:
    """Simulate the Byzantine-only pre-deployment: the node's view and
    sampler stream are saturated with Byzantine identifiers, except for the
    few genuine entries obtained when (re-)joining the real network."""
    if not byzantine_ids:
        raise ValueError("cannot poison without Byzantine identifiers")
    view_size = node.config.view_size
    join_count = min(len(join_ids), max(1, int(round(view_size * JOIN_FRACTION)))) if join_ids else 0
    population = list(byzantine_ids)
    poison_count = view_size - join_count
    if len(population) >= poison_count:
        poisoned_view = rng.sample(population, poison_count)
    else:
        poisoned_view = [rng.choice(population) for _ in range(poison_count)]
    if join_count:
        poisoned_view.extend(rng.sample(list(join_ids), join_count))
    node.seed_view(poisoned_view)
    # The pre-deployment rounds also drove the samplers: everything the
    # node has ever sampled is Byzantine.
    node.samplers.update(poisoned_view)


def build_poisoned_trusted_node(
    node_id: int,
    config: RapteeConfig,
    infrastructure: TrustedInfrastructure,
    byzantine_ids: Sequence[int],
    rng: random.Random,
    join_ids: Sequence[int] = (),
) -> RapteeNode:
    """A genuine, provisioned trusted node with an adversarial initial state."""
    enclave, _device = infrastructure.new_trusted_enclave(device_id=node_id)
    node = RapteeNode(
        node_id=node_id,
        kind=NodeKind.POISONED_TRUSTED,
        config=config,
        rng=rng,
        enclave=enclave,
    )
    poison_initial_state(node, byzantine_ids, rng, join_ids=join_ids)
    return node
