"""Trusted-node identification attack (§VI-A).

Each Byzantine node reports the Byzantine-ID fraction of every pull answer
it receives from a correct node.  The adversary then:

1. computes the average fraction over all observed correct nodes;
2. labels a node *trusted* when its own observed fraction sits more than a
   threshold *below* that average (trusted nodes evict, so their answers
   contain fewer Byzantine IDs).  The paper's threshold — the one that
   empirically maximizes attack effectiveness — is 10 %.

Effectiveness is reported as precision, recall and F1 against the ground
truth, exactly as Figures 10-12 do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.adversary.coordinator import AdversaryCoordinator

__all__ = ["IdentificationReport", "IdentificationAttack"]

PAPER_THRESHOLD = 0.10


@dataclass(frozen=True)
class IdentificationReport:
    """Outcome of one classification attempt."""

    labeled_trusted: frozenset
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


class IdentificationAttack:
    """The adversary's classifier over accumulated pull-answer intel."""

    def __init__(self, coordinator: AdversaryCoordinator, threshold: float = PAPER_THRESHOLD):
        if threshold <= 0.0:
            raise ValueError("threshold must be positive")
        self.coordinator = coordinator
        self.threshold = threshold

    def _mean_fraction_per_node(
        self, since_round: int, until_round: int
    ) -> Dict[int, float]:
        means: Dict[int, float] = {}
        for node_id, observations in self.coordinator.intel.items():
            window = [
                fraction
                for (round_number, fraction) in observations
                if since_round <= round_number <= until_round
            ]
            if window:
                means[node_id] = sum(window) / len(window)
        return means

    def classify(
        self,
        true_trusted: Iterable[int],
        since_round: int = 0,
        until_round: int = 10**9,
    ) -> IdentificationReport:
        """Run the §VI-A classifier over the observation window."""
        truth: Set[int] = set(true_trusted)
        means = self._mean_fraction_per_node(since_round, until_round)
        labeled: Set[int] = set()
        if means:
            population_mean = sum(means.values()) / len(means)
            for node_id, fraction in means.items():
                if population_mean - fraction > self.threshold:
                    labeled.add(node_id)

        true_positives = len(labeled & truth)
        false_positives = len(labeled - truth)
        false_negatives = len(truth - labeled)
        return IdentificationReport(
            labeled_trusted=frozenset(labeled),
            true_positives=true_positives,
            false_positives=false_positives,
            false_negatives=false_negatives,
        )

    def observed_nodes(self) -> List[int]:
        return sorted(self.coordinator.intel)
