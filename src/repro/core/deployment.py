"""Trusted-side deployment plumbing: devices, attestation, provisioning.

Bundles everything a RAPTEE operator runs *once* per deployment — the
attestation authority, the group-key provisioner, and the per-trusted-node
flow (manufacture device → register with the authority → load enclave →
attest → provision K_T) — so experiment code can simply ask for "a
provisioned trusted enclave".
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.enclave import RapteeEnclave
from repro.crypto.prng import Sha256Prng
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveHost, SgxDevice
from repro.sgx.provisioning import GroupKeyProvisioner

__all__ = ["TrustedInfrastructure"]


class TrustedInfrastructure:
    """The deployment-wide trusted computing base.

    One instance per simulated system: it owns the group key K_T, the
    attestation service (Intel's role), and the provisioner, and
    manufactures provisioned enclaves for trusted nodes.
    """

    def __init__(
        self,
        rng: Sha256Prng,
        auth_mode: str = "hmac",
        provisioning_key_bits: int = 512,
    ):
        self._rng = rng
        self._auth_mode = auth_mode
        self._provisioning_key_bits = provisioning_key_bits
        self.attestation = AttestationService()
        self.group_key = rng.bytes(16)
        self.provisioner = GroupKeyProvisioner(
            self.attestation, self.group_key, rng.spawn("provisioner")
        )
        self._measurement_trusted = False
        self.devices: Dict[int, SgxDevice] = {}

    def new_trusted_enclave(self, device_id: int) -> Tuple[EnclaveHost, SgxDevice]:
        """Manufacture, attest and provision one trusted node's enclave."""
        device = SgxDevice(device_id, self._rng.spawn("device", device_id))
        self.attestation.register_device(device_id, device.attestation_public_key)
        self.devices[device_id] = device
        host = device.load(
            RapteeEnclave,
            auth_mode=self._auth_mode,
            provisioning_key_bits=self._provisioning_key_bits,
        )
        if not self._measurement_trusted:
            self.attestation.trust_measurement(host.measurement)
            self._measurement_trusted = True
        quote, public_key = host.begin_provisioning()
        ciphertext = self.provisioner.provision(quote, public_key)
        host.complete_provisioning(ciphertext)
        return host, device
