"""Trusted-side deployment plumbing: devices, attestation, provisioning.

Bundles everything a RAPTEE operator runs *once* per deployment — the
attestation authority, the group-key provisioner, and the per-trusted-node
flow (manufacture device → register with the authority → load enclave →
attest → provision K_T) — so experiment code can simply ask for "a
provisioned trusted enclave".
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.enclave import RapteeEnclave
from repro.core.recovery import RetryPolicy, provision_with_retry
from repro.crypto.prng import Sha256Prng
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveHost, SgxDevice
from repro.sgx.provisioning import GroupKeyProvisioner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.membership.service import ReplicatedProvisioningService

__all__ = ["TrustedInfrastructure"]


class TrustedInfrastructure:
    """The deployment-wide trusted computing base.

    One instance per simulated system: it owns the group key K_T, the
    attestation service (Intel's role), and the provisioner, and
    manufactures provisioned enclaves for trusted nodes.
    """

    def __init__(
        self,
        rng: Sha256Prng,
        auth_mode: str = "hmac",
        provisioning_key_bits: int = 512,
    ):
        self._rng = rng
        self._auth_mode = auth_mode
        self._provisioning_key_bits = provisioning_key_bits
        self.attestation = AttestationService()
        self.group_key = rng.bytes(16)
        self.provisioner = GroupKeyProvisioner(
            self.attestation, self.group_key, rng.spawn("provisioner")
        )
        self._measurement_trusted = False
        self.devices: Dict[int, SgxDevice] = {}
        self._membership: Optional["ReplicatedProvisioningService"] = None

    def enable_membership(
        self, service: "ReplicatedProvisioningService"
    ) -> None:
        """Route all future provisioning through a replicated service.

        Replica 0 of the service wraps :attr:`provisioner`, so existing
        hooks and counters keep observing the same object; the service
        adds quorum verification, failover, and group-key epochs.
        """
        self._membership = service

    @property
    def membership(self) -> Optional["ReplicatedProvisioningService"]:
        return self._membership

    def reload_enclave(self, device_id: int) -> EnclaveHost:
        """Load a fresh, unprovisioned enclave on an existing device.

        The recovery path after an enclave crash: the device (and its
        attestation registration) survives, only the enclave instance is
        gone.  The returned host still needs K_T — via sealed-storage
        restore or :meth:`provision_host`.
        """
        device = self.devices.get(device_id)
        if device is None:
            raise KeyError(f"no SGX device {device_id} in this deployment")
        host = device.load(
            RapteeEnclave,
            auth_mode=self._auth_mode,
            provisioning_key_bits=self._provisioning_key_bits,
        )
        if not self._measurement_trusted:
            self.attestation.trust_measurement(host.measurement)
            self._measurement_trusted = True
        return host

    def provision_host(self, host: EnclaveHost) -> None:
        """Attest and provision K_T into a loaded enclave (one attempt)."""
        if not self._measurement_trusted:
            self.attestation.trust_measurement(host.measurement)
            self._measurement_trusted = True
        quote, public_key = host.begin_provisioning()
        provisioner = (
            self._membership if self._membership is not None else self.provisioner
        )
        ciphertext = provisioner.provision(quote, public_key)
        host.complete_provisioning(ciphertext)

    def new_trusted_enclave(
        self,
        device_id: int,
        retry: Optional[RetryPolicy] = None,
        retry_rng: Optional[random.Random] = None,
    ) -> Tuple[EnclaveHost, SgxDevice]:
        """Manufacture, attest and provision one trusted node's enclave.

        With a ``retry`` policy (and its rng), transient attestation or
        provisioning failures are retried under the policy's attempt bound
        instead of aborting the bootstrap.
        """
        device = SgxDevice(device_id, self._rng.spawn("device", device_id))
        self.attestation.register_device(device_id, device.attestation_public_key)
        self.devices[device_id] = device
        host = self.reload_enclave(device_id)
        if retry is None:
            self.provision_host(host)
        else:
            if retry_rng is None:
                raise ValueError("retry_rng is required when a retry policy is set")
            provision_with_retry(self, host, retry, retry_rng)
        return host, device
