"""The RAPTEE node (§IV): Brahms + mutual auth + trusted comms + eviction.

Every non-Byzantine node in a RAPTEE deployment runs this class:

* **honest untrusted** nodes (kind ``HONEST``) participate in the mutual
  authentication that precedes every pull — each with its own random key,
  so no handshake ever succeeds for them — and otherwise execute Brahms
  unmodified;
* **trusted** nodes (kind ``TRUSTED`` or ``POISONED_TRUSTED``) carry a
  provisioned :class:`~repro.core.enclave.RapteeEnclave`.  When a pull
  partner proves knowledge of the group key, the pair runs the §IV-B
  half-view swap, and at round end the node evicts a policy-determined
  fraction of the IDs pulled from *untrusted* peers (§IV-C).

Crucially, a trusted node's observable behaviour is identical to an honest
node's: same number of pushes, pulls, and auth messages per round.  Only
the *content* of its pull answers can differ — the leakage channel §VI-A's
identification attack exploits.

**Failure hardening.**  A trusted node whose enclave becomes unavailable
(crash, EPC loss — raised as :class:`~repro.sgx.errors.EnclaveUnavailable`
at the first ECALL) does not take the whole node down: it *degrades* to
honest-untrusted Brahms behaviour — same message pattern, a private random
auth key that proves nothing — and keeps gossiping.  Once a fresh enclave
is restored (sealed-storage reload or re-attestation, driven by
:class:`~repro.core.recovery.EnclaveRecoveryManager`), the node *promotes*
itself back and resumes trusted swaps and eviction.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.brahms.countmin import StreamUnbiaser
from repro.brahms.node import BrahmsNode, PulledBatch
from repro.core.auth import AuthScheme, KEY_BYTES
from repro.core.config import RapteeConfig
from repro.core.trusted_exchange import apply_swap, build_offer
from repro.sgx.cycles import CycleAccountant, PeerSamplingFunction
from repro.sgx.enclave import EnclaveHost
from repro.sgx.errors import EnclaveUnavailable
from repro.sim.engine import RoundContext
from repro.sim.messages import (
    AuthChallenge,
    AuthConfirm,
    AuthResponse,
    AuthResult,
    Message,
    PullReply,
    PullRequest,
    TrustedSwapReply,
    TrustedSwapRequest,
)
from repro.sim.node import NodeKind

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.membership.log import NodeMembershipView

__all__ = ["RapteeNode"]


class RapteeNode(BrahmsNode):
    """A node executing the RAPTEE-modified Brahms."""

    def __init__(
        self,
        node_id: int,
        kind: NodeKind,
        config: RapteeConfig,
        rng: random.Random,
        enclave: Optional[EnclaveHost] = None,
        cycle_accountant: Optional[CycleAccountant] = None,
    ):
        super().__init__(node_id, kind, config.brahms, rng, cycle_accountant)
        self.raptee_config = config
        self._scheme = AuthScheme(config.auth_mode)
        self._trusted_role = kind.runs_trusted_code
        self.degraded = False
        if self._trusted_role:
            if enclave is None:
                raise ValueError("trusted nodes require a provisioned enclave")
            if not enclave.is_provisioned():
                raise ValueError("enclave must be provisioned with the group key")
            self.enclave = enclave
            self._own_key: Optional[bytes] = None
        else:
            if enclave is not None:
                raise ValueError("untrusted nodes must not carry an enclave")
            self.enclave = None
            self._own_key = rng.getrandbits(KEY_BYTES * 8).to_bytes(KEY_BYTES, "big")

        self._unbiaser = (
            StreamUnbiaser(rng) if config.sketch_unbias_enabled else None
        )
        # Per-round authentication and contact bookkeeping.
        self._pending_auth: Dict[int, Tuple[bytes, bytes]] = {}
        self._trusted_sessions: Set[int] = set()
        self._id_contacts = 0          # sessions in which this node received IDs
        self._trusted_id_contacts = 0  # ... of which the peer proved trusted
        self.last_eviction_rate: Optional[float] = None
        self.evicted_ids_total = 0
        self.trusted_exchanges_total = 0
        self.degradations_total = 0
        self.promotions_total = 0
        # Dynamic trusted-set membership (None = legacy static deployment).
        self.membership_view: Optional["NodeMembershipView"] = None
        self.enclave_epoch = 0
        self._round_exchange_epochs: List[int] = []

    # -- trusted status and enclave failure handling -----------------------------

    @property
    def trusted(self) -> bool:
        """Whether the node *currently* operates as a trusted node.

        A trusted-role node that lost its enclave is ``trusted == False``
        until re-promoted — observationally an honest untrusted node.
        """
        return self._trusted_role and not self.degraded

    @property
    def trusted_role(self) -> bool:
        """Whether the node was deployed as a trusted node (never changes)."""
        return self._trusted_role

    def note_enclave_failure(self) -> None:
        """Degrade to honest-untrusted behaviour after an enclave failure.

        Idempotent.  The node draws a private random auth key (exactly what
        honest untrusted nodes carry) so handshakes keep their shape but
        never prove knowledge of K_T.
        """
        if not self._trusted_role or self.degraded:
            return
        self.degraded = True
        self.degradations_total += 1
        if self.telemetry is not None:
            self.telemetry.counter("raptee.degradations").inc()
            self.telemetry.event("node.degrade", node=self.node_id)
        if self._own_key is None:
            self._own_key = self.rng.getrandbits(KEY_BYTES * 8).to_bytes(
                KEY_BYTES, "big"
            )

    def promote(self, enclave: EnclaveHost) -> None:
        """Resume trusted operation with a restored, provisioned enclave."""
        if not self._trusted_role:
            raise ValueError("only trusted-role nodes can be promoted")
        if enclave is None or not enclave.is_provisioned():
            raise ValueError("promotion requires a provisioned enclave")
        self.enclave = enclave
        if self.telemetry is not None:
            # Freshly reloaded hosts predate wiring; adopt them here so
            # their ECALLs keep being counted after recovery.
            enclave.set_telemetry(self.telemetry, self.node_id)
        if self.membership_view is not None:
            # The restored enclave may hold a rotated key: re-cache its
            # epoch so the §IV-B membership gate judges the right one.
            self.refresh_enclave_epoch()
        if self.degraded:
            self.degraded = False
            self.promotions_total += 1
            if self.telemetry is not None:
                self.telemetry.counter("raptee.promotions").inc()
                self.telemetry.event("node.promote", node=self.node_id)

    # -- dynamic trusted-set membership ------------------------------------------

    def set_membership_view(self, view: "NodeMembershipView") -> None:
        """Attach this node's verified membership-log view (see
        :mod:`repro.membership`)."""
        if not self._trusted_role:
            raise ValueError("only trusted-role nodes track membership")
        self.membership_view = view

    def refresh_enclave_epoch(self) -> None:
        """Cache the enclave's group-key epoch (one ECALL).

        The cache is what the per-exchange gate consults — an ECALL per
        swap would distort the paper's cycle accounting.
        """
        self.enclave_epoch = self.enclave.group_epoch()

    @property
    def round_exchange_epochs(self) -> Tuple[int, ...]:
        """Epochs under which this node completed swaps this round."""
        return tuple(self._round_exchange_epochs)

    def _membership_permits(self, peer_id: int) -> bool:
        """§IV-B gate extension: both ends current members on the current
        epoch.  Without a membership view (the legacy deployment) the gate
        is a constant True."""
        view = self.membership_view
        if view is None or not self.raptee_config.membership_enabled:
            return True
        return view.permits(self.node_id, self.enclave_epoch) and view.permits(
            peer_id, self.enclave_epoch
        )

    # -- round lifecycle -------------------------------------------------------

    def begin_round(self, ctx: RoundContext) -> None:
        super().begin_round(ctx)
        self._pending_auth = {}
        self._trusted_sessions = set()
        self._id_contacts = 0
        self._trusted_id_contacts = 0
        self._round_exchange_epochs = []

    # -- active pull with mutual authentication ----------------------------------

    def _do_pull(self, ctx: RoundContext, target: int) -> Optional[PulledBatch]:
        self._charge(PeerSamplingFunction.PULL_REQUEST)

        # §IV-A handshake, initiator side.
        r_a = AuthScheme.make_challenge(self.rng)
        response = ctx.request(
            self.node_id, target, AuthChallenge(sender=self.node_id, r_a=r_a)
        )
        if not isinstance(response, AuthResponse):
            return None
        peer_trusted = False
        confirm_proof: Optional[bytes] = None
        if self.trusted:
            try:
                peer_trusted = self.enclave.auth_check_response(
                    r_a, response.r_b, response.proof
                )
                confirm_proof = self.enclave.auth_confirm(r_a, response.r_b)
            except EnclaveUnavailable:
                # The enclave died mid-handshake: degrade and finish the
                # session as an honest node would (peer no longer provable).
                self.note_enclave_failure()
                peer_trusted = False
                confirm_proof = None
        if confirm_proof is None:
            peer_trusted = self._scheme.check_response(
                self._own_key, r_a, response.r_b, response.proof
            )
            confirm_proof = self._scheme.confirm(self._own_key, r_a, response.r_b)
        ctx.request(
            self.node_id, target, AuthConfirm(sender=self.node_id, proof=confirm_proof)
        )

        # Ordinary Brahms pull (all node types issue it identically — a
        # trusted node that skipped it would be trivially identifiable).
        reply = ctx.request(self.node_id, target, PullRequest(self.node_id))
        batch: Optional[PulledBatch] = None
        if isinstance(reply, PullReply):
            batch = PulledBatch(
                source=target,
                ids=reply.ids,
                trusted_source=self.trusted and peer_trusted,
            )
            self._id_contacts += 1
            if batch.trusted_source:
                self._trusted_id_contacts += 1

        # §IV-B trusted communication, initiator side.
        if (
            self.trusted
            and peer_trusted
            and self.raptee_config.trusted_exchange_enabled
            and self._membership_permits(target)
        ):
            self._run_trusted_swap(ctx, target)

        return batch

    def _run_trusted_swap(self, ctx: RoundContext, target: int) -> None:
        self._charge(PeerSamplingFunction.TRUSTED_COMMUNICATIONS)
        offer = build_offer(self.view, self.node_id, self.rng, include_self=True)
        swap_reply = ctx.request(
            self.node_id,
            target,
            TrustedSwapRequest(sender=self.node_id, offered=offer.offered),
        )
        if not isinstance(swap_reply, TrustedSwapReply):
            return
        self.view = apply_swap(self.view, offer, swap_reply.offered, self.node_id)
        self._pulled.append(
            PulledBatch(source=target, ids=swap_reply.offered, trusted_source=True)
        )
        self.known.update(swap_reply.offered)
        self.trusted_exchanges_total += 1
        self._round_exchange_epochs.append(self.enclave_epoch)

    # -- passive side ---------------------------------------------------------------

    def handle_request(self, message: Message) -> Optional[Message]:
        if isinstance(message, AuthChallenge):
            r_b: Optional[bytes] = None
            proof = b""
            if self.trusted:
                try:
                    r_b, proof = self.enclave.auth_respond(message.r_a)
                except EnclaveUnavailable:
                    self.note_enclave_failure()
            if r_b is None:
                parts = self._scheme.respond(self._own_key, message.r_a, self.rng)
                r_b, proof = parts.r_b, parts.proof
            self._pending_auth[message.sender] = (message.r_a, r_b)
            return AuthResponse(sender=self.node_id, r_b=r_b, proof=proof)

        if isinstance(message, AuthConfirm):
            pending = self._pending_auth.pop(message.sender, None)
            mutual = False
            if pending is not None:
                r_a, r_b = pending
                if self.trusted:
                    try:
                        mutual = self.enclave.auth_check_confirm(
                            r_a, r_b, message.proof
                        )
                    except EnclaveUnavailable:
                        # A degraded responder can no longer verify K_T
                        # proofs, so the session is not mutually trusted.
                        self.note_enclave_failure()
                        mutual = False
                else:
                    mutual = self._scheme.check_confirm(
                        self._own_key, r_a, r_b, message.proof
                    )
            if mutual:
                self._trusted_sessions.add(message.sender)
            return AuthResult(sender=self.node_id, mutual=mutual)

        if isinstance(message, TrustedSwapRequest):
            return self._handle_trusted_swap(message)

        return super().handle_request(message)

    def _handle_trusted_swap(
        self, message: TrustedSwapRequest
    ) -> Optional[TrustedSwapReply]:
        """Responder side of §IV-B.

        Only honoured for peers that proved knowledge of K_T *this round*
        (the ``AuthConfirm`` check) — a Byzantine node that merely observed
        a swap message cannot replay its way into one.
        """
        if (
            not self.trusted
            or not self.raptee_config.trusted_exchange_enabled
            or message.sender not in self._trusted_sessions
            or not self._membership_permits(message.sender)
        ):
            return None
        self._charge(PeerSamplingFunction.TRUSTED_COMMUNICATIONS)
        offer = build_offer(self.view, self.node_id, self.rng, include_self=False)
        self.view = apply_swap(self.view, offer, message.offered, self.node_id)
        self._pulled.append(
            PulledBatch(source=message.sender, ids=message.offered, trusted_source=True)
        )
        self.known.update(message.offered)
        self._id_contacts += 1
        self._trusted_id_contacts += 1
        self.trusted_exchanges_total += 1
        self._round_exchange_epochs.append(self.enclave_epoch)
        return TrustedSwapReply(sender=self.node_id, offered=offer.offered)

    # -- Byzantine eviction (§IV-C) ----------------------------------------------

    def _unbias(self, ids: List[int]) -> List[int]:
        """Optional count-min-sketch stream flattening (future work, §VIII)."""
        if self._unbiaser is None or not ids:
            return ids
        self._unbiaser.observe(ids)
        return self._unbiaser.unbias(ids)

    def _effective_pulled_ids(self) -> List[int]:
        if not self.trusted or not self.raptee_config.eviction_enabled:
            return self._unbias(super()._effective_pulled_ids())

        trusted_ids: List[int] = []
        untrusted_ids: List[int] = []
        for batch in self._pulled:
            (trusted_ids if batch.trusted_source else untrusted_ids).extend(batch.ids)

        trusted_share = (
            self._trusted_id_contacts / self._id_contacts if self._id_contacts else 0.0
        )
        rate = self.raptee_config.eviction.rate(trusted_share)
        self.last_eviction_rate = rate

        untrusted_ids = self._unbias(untrusted_ids)
        keep_count = len(untrusted_ids) - int(round(rate * len(untrusted_ids)))
        self.evicted_ids_total += len(untrusted_ids) - keep_count
        if keep_count <= 0:
            kept: List[int] = []
        elif keep_count >= len(untrusted_ids):
            kept = untrusted_ids
        else:
            kept = self.rng.sample(untrusted_ids, keep_count)
        return trusted_ids + kept
