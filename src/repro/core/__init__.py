"""RAPTEE: the paper's primary contribution.

A RAPTEE deployment = Brahms everywhere + mutual authentication before every
pull (§IV-A) + half-view swaps between mutually-authenticated trusted nodes
(§IV-B) + Byzantine eviction of untrusted pull answers at trusted nodes
(§IV-C), with the group key living inside SGX enclaves
(:mod:`repro.core.enclave`).
"""

from repro.core.auth import AuthScheme, KEY_BYTES, NONCE_BYTES
from repro.core.config import RapteeConfig
from repro.core.deployment import TrustedInfrastructure
from repro.core.enclave import RapteeEnclave
from repro.core.eviction import AdaptiveEviction, EvictionPolicy, FixedEviction
from repro.core.node import RapteeNode
from repro.core.recovery import (
    EnclaveRecoveryManager,
    RecoveryState,
    RetryPolicy,
    provision_with_retry,
)
from repro.core.trusted_exchange import SwapOffer, apply_swap, build_offer

__all__ = [
    "AuthScheme",
    "KEY_BYTES",
    "NONCE_BYTES",
    "RapteeConfig",
    "TrustedInfrastructure",
    "RapteeEnclave",
    "AdaptiveEviction",
    "EvictionPolicy",
    "FixedEviction",
    "RapteeNode",
    "EnclaveRecoveryManager",
    "RecoveryState",
    "RetryPolicy",
    "provision_with_retry",
    "SwapOffer",
    "apply_swap",
    "build_offer",
]
