"""RAPTEE configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.brahms.config import BrahmsConfig
from repro.core.eviction import AdaptiveEviction, EvictionPolicy

__all__ = ["RapteeConfig"]


@dataclass(frozen=True)
class RapteeConfig:
    """Parameters of a RAPTEE deployment.

    Attributes:
        brahms: the underlying Brahms parameters (all nodes run them).
        eviction: the trusted nodes' Byzantine-eviction policy (§IV-C).
        auth_mode: proof scheme for mutual authentication — "hmac" (fast)
            or "aes-ctr" (the paper's literal construction); see
            :mod:`repro.core.auth`.
        trusted_exchange_enabled: ablation switch for the §IV-B half-view
            swap between trusted nodes.
        eviction_enabled: ablation switch for §IV-C (False behaves as a
            permanent 0 % rate).
        sketch_unbias_enabled: the paper's stated future-work extension
            (§VIII, after Anceaume et al.): flatten the pulled-ID stream's
            occurrence bias with a count-min sketch before view renewal.
            See :mod:`repro.brahms.countmin`.
        membership_enabled: dynamic trusted-set membership (see
            :mod:`repro.membership`): trusted nodes additionally gate
            §IV-B swaps on their verified membership view — peer still a
            member, not revoked, and both sides on the current group-key
            epoch.  Off by default; the legacy static deployment is
            byte-identical.
    """

    brahms: BrahmsConfig = field(default_factory=BrahmsConfig)
    eviction: EvictionPolicy = field(default_factory=AdaptiveEviction)
    auth_mode: str = "hmac"
    trusted_exchange_enabled: bool = True
    eviction_enabled: bool = True
    sketch_unbias_enabled: bool = False
    membership_enabled: bool = False

    def __post_init__(self) -> None:
        if self.auth_mode not in ("hmac", "aes-ctr"):
            raise ValueError(f"unknown auth_mode {self.auth_mode!r}")
