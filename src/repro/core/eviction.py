"""Byzantine eviction policies (§IV-C).

At the end of each round a trusted node ignores a fraction — the *eviction
rate* — of the IDs pulled from untrusted peers: they are neither streamed to
the samplers nor eligible for the β·l1 slots of the view renewal.

Two policies from the paper:

* :class:`FixedEviction` — one system-wide constant rate in [0, 1]
  (the paper evaluates 0 %, 40 %, 60 % and 100 %);
* :class:`AdaptiveEviction` — the local rule: the larger the share of this
  round's exchanges that were with trusted peers, the less eviction is
  needed.  The paper anchors the rule at (trusted share ≥ 80 % → rate 20 %)
  and (trusted share ≤ 20 % → rate 80 %) with a linear segment in between,
  i.e. ``rate = clamp(1 − trusted_share, 0.20, 0.80)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EvictionPolicy", "FixedEviction", "AdaptiveEviction"]


class EvictionPolicy:
    """Maps the round's trusted-contact share to an eviction rate."""

    def rate(self, trusted_share: float) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedEviction(EvictionPolicy):
    """A constant eviction rate, whatever the trusted-contact share."""

    value: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.value <= 1.0:
            raise ValueError(f"eviction rate must be in [0, 1], got {self.value}")

    def rate(self, trusted_share: float) -> float:
        return self.value

    def describe(self) -> str:
        return f"fixed-{int(round(self.value * 100))}%"


@dataclass(frozen=True)
class AdaptiveEviction(EvictionPolicy):
    """The paper's adaptive rule, generalized to arbitrary anchor points.

    ``rate(share)`` is ``high_rate`` for shares at or below ``low_share``,
    ``low_rate`` for shares at or above ``high_share``, and linear between.
    The paper's anchors are the defaults; the ablation bench sweeps them.
    """

    low_share: float = 0.2
    high_share: float = 0.8
    low_rate: float = 0.2
    high_rate: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_share < self.high_share <= 1.0:
            raise ValueError("need 0 <= low_share < high_share <= 1")
        if not 0.0 <= self.low_rate <= self.high_rate <= 1.0:
            raise ValueError("need 0 <= low_rate <= high_rate <= 1")

    def rate(self, trusted_share: float) -> float:
        if not 0.0 <= trusted_share <= 1.0:
            raise ValueError(f"trusted_share must be in [0, 1], got {trusted_share}")
        if trusted_share <= self.low_share:
            return self.high_rate
        if trusted_share >= self.high_share:
            return self.low_rate
        slope = (self.low_rate - self.high_rate) / (self.high_share - self.low_share)
        return self.high_rate + slope * (trusted_share - self.low_share)

    def describe(self) -> str:
        return "adaptive"
