"""Enclave failure recovery: sealed-storage restore, re-attestation, backoff.

The paper assumes trusted nodes stay up; real TEE deployments do not
(ReplicaTEE replicates enclaves precisely because they crash, and Proteus
treats TEEs as only "mostly trusted").  This module gives the reproduction
the recovery half of that story:

* :class:`RetryPolicy` — deterministic exponential backoff with rng-driven
  jitter and bounded attempts, shared by bootstrap and mid-run recovery;
* :class:`EnclaveRecoveryManager` — the per-deployment operator daemon.
  Each round it scans trusted-role nodes, notices dead enclaves, and walks
  the recovery ladder: load a fresh enclave on the same device, restore
  K_T from *sealed storage* (:mod:`repro.sgx.sealing` — no attestation
  round-trip), and only if the blob is missing or corrupted fall back to
  full re-attestation + provisioning, retried under the backoff policy.
  Nodes whose recovery succeeds are promoted back to trusted operation
  (:meth:`repro.core.node.RapteeNode.promote`).

Everything is deterministic under the experiment seed: backoff jitter comes
from an injected RNG and nodes are visited in sorted-ID order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.core.node import RapteeNode
from repro.sgx.errors import AttestationError, ProvisioningError, SealingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.deployment import TrustedInfrastructure
    from repro.sgx.enclave import EnclaveHost
    from repro.sim.engine import Simulation
    from repro.telemetry.hub import Telemetry

__all__ = ["RetryPolicy", "RecoveryState", "EnclaveRecoveryManager", "provision_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and rng-driven jitter.

    Delays are measured in simulation rounds: attempt *k* (0-based) that
    fails is retried after ``min(base_delay · multiplier^k, max_delay)``
    rounds plus a uniform jitter in ``[0, jitter]`` drawn from the injected
    RNG.  After ``max_attempts`` failures the subject is abandoned
    (permanently degraded) until an operator intervenes.
    """

    base_delay: int = 1
    multiplier: int = 2
    max_delay: int = 16
    max_attempts: int = 6
    jitter: int = 1

    def __post_init__(self) -> None:
        if self.base_delay < 1:
            raise ValueError("base_delay must be at least 1 round")
        if self.multiplier < 1:
            raise ValueError("multiplier must be at least 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def delay_rounds(self, attempt: int, rng: random.Random) -> int:
        """Backoff delay (in rounds) after the given 0-based failed attempt."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        backoff = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter:
            backoff += rng.randrange(self.jitter + 1)
        return backoff


@dataclass
class RecoveryState:
    """Per-node progress of an ongoing recovery."""

    attempts: int = 0
    next_attempt_round: int = 0
    exhausted: bool = False
    #: Exception type name of the most recent failure ("" before any) —
    #: lets drills tell an attestation outage from a corrupted blob.
    last_cause: str = ""


@dataclass
class RecoveryStats:
    """Counters the fault drills report."""

    restores_from_seal: int = 0
    reprovisions: int = 0
    failed_attempts: int = 0
    corrupted_blobs: int = 0
    revoked_abandons: int = 0


class EnclaveRecoveryManager:
    """Restores crashed/degraded trusted nodes, round by round.

    The manager doubles as the deployment's *sealed storage*: it keeps each
    trusted node's sealed K_T blob (written at provisioning time and after
    every successful re-provisioning), which is what makes the no-attestation
    restart path possible — and what fault plans corrupt to force the full
    re-attestation ladder.
    """

    def __init__(
        self,
        infrastructure: "TrustedInfrastructure",
        rng: random.Random,
        policy: Optional[RetryPolicy] = None,
    ):
        self._infrastructure = infrastructure
        self._rng = rng
        self.policy = policy or RetryPolicy()
        self._sealed: Dict[int, bytes] = {}
        self._states: Dict[int, RecoveryState] = {}
        self.stats = RecoveryStats()
        self.telemetry: Optional["Telemetry"] = None
        self._revocation_check: Optional[Callable[[int], bool]] = None

    def set_revocation_check(self, check: Callable[[int], bool]) -> None:
        """Abandon recovery outright for nodes the check marks revoked.

        Installed by the membership layer: once a device is revoked, its
        re-attestation can never succeed, so retrying is an infinite
        backoff loop.  Legacy deployments (no membership) keep the old
        behaviour, including the sealed-restore-after-revocation path that
        models device-local sealing.
        """
        self._revocation_check = check

    def set_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        """Mirror recovery counters and transitions into a hub."""
        self.telemetry = telemetry

    def _record(self, name: str, node_id: int, **fields: object) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(f"recovery.{name}").inc()
            self.telemetry.event(f"recovery.{name}", node=node_id, **fields)

    # -- sealed storage ------------------------------------------------------

    def adopt(self, node: RapteeNode) -> None:
        """Take custody of a provisioned node: snapshot its sealed K_T."""
        if not node.trusted_role or node.enclave is None:
            raise ValueError("only provisioned trusted-role nodes can be adopted")
        self._sealed[node.node_id] = node.enclave.seal_group_key()

    def sealed_blob(self, node_id: int) -> Optional[bytes]:
        return self._sealed.get(node_id)

    def corrupt_sealed_blob(self, node_id: int) -> bool:
        """Flip a byte in a node's sealed blob (fault injection).

        Returns whether a blob existed.  The flipped MAC byte guarantees the
        next restore attempt fails authentication and falls back to
        re-attestation.
        """
        blob = self._sealed.get(node_id)
        if blob is None:
            return False
        self._sealed[node_id] = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        return True

    def discard_sealed_blob(self, node_id: int) -> None:
        """Drop a node's sealed blob (it wraps a superseded epoch's key).

        Called by the membership director on rotation so the rung-1
        sealed-restore shortcut cannot resurrect a stale group key.
        """
        self._sealed.pop(node_id, None)

    # -- per-round recovery --------------------------------------------------

    def exhausted_node_ids(self) -> Tuple[int, ...]:
        return tuple(
            node_id for node_id, state in sorted(self._states.items())
            if state.exhausted
        )

    def tick(self, simulation: "Simulation") -> None:
        """One recovery pass: detect dead enclaves, attempt restores."""
        for node_id in sorted(simulation.nodes):
            node = simulation.nodes[node_id]
            if not isinstance(node, RapteeNode) or not node.trusted_role:
                continue
            if not node.alive:
                continue
            # Watchdog: a crashed enclave the node has not touched yet.
            if (
                not node.degraded
                and node.enclave is not None
                and node.enclave.crashed
            ):
                node.note_enclave_failure()
            if node.degraded:
                self._attempt_recovery(node, simulation.round_number)

    def _attempt_recovery(self, node: RapteeNode, round_number: int) -> None:
        state = self._states.setdefault(node.node_id, RecoveryState())
        if (
            not state.exhausted
            and self._revocation_check is not None
            and self._revocation_check(node.node_id)
        ):
            # Revoked mid-recovery: re-attestation is permanently futile.
            # Abandon immediately instead of spinning the backoff ladder.
            state.exhausted = True
            state.last_cause = "revoked"
            self._sealed.pop(node.node_id, None)
            self.stats.revoked_abandons += 1
            self._record("revoked_abandons", node.node_id)
            return
        if state.exhausted or round_number < state.next_attempt_round:
            return
        host = self._infrastructure.reload_enclave(node.node_id)

        # Rung 1: restore K_T from sealed storage — no attestation involved.
        blob = self._sealed.get(node.node_id)
        if blob is not None:
            try:
                host.restore_group_key(blob)
                self.stats.restores_from_seal += 1
                self._record("restores_from_seal", node.node_id)
                self._promote(node, host)
                return
            except (SealingError, ProvisioningError):
                # Corrupted or foreign blob: discard it, fall through to
                # the full re-attestation path.
                self.stats.corrupted_blobs += 1
                self._record("corrupted_blobs", node.node_id)
                del self._sealed[node.node_id]

        # Rung 2: full re-attestation + provisioning, under backoff.
        try:
            self._infrastructure.provision_host(host)
        except (ProvisioningError, AttestationError) as error:
            self.stats.failed_attempts += 1
            delay = self.policy.delay_rounds(state.attempts, self._rng)
            state.attempts += 1
            state.last_cause = type(error).__name__
            self._record(
                "failed_attempts", node.node_id, attempt=state.attempts,
                cause=state.last_cause, detail=str(error),
            )
            if state.attempts >= self.policy.max_attempts:
                state.exhausted = True
                self._record(
                    "exhausted", node.node_id,
                    cause=state.last_cause, detail=str(error),
                )
            else:
                state.next_attempt_round = round_number + delay
            return
        self.stats.reprovisions += 1
        self._record("reprovisions", node.node_id)
        self._sealed[node.node_id] = host.seal_group_key()
        self._promote(node, host)

    def _promote(self, node: RapteeNode, host: "EnclaveHost") -> None:
        node.promote(host)
        self._states.pop(node.node_id, None)


def provision_with_retry(
    infrastructure: "TrustedInfrastructure",
    host: "EnclaveHost",
    policy: RetryPolicy,
    rng: random.Random,
) -> int:
    """Bootstrap-time provisioning with bounded immediate retries.

    Before the simulation clock exists there are no rounds to back off
    across, so attempts are immediate; the jitter draw is still consumed so
    bootstrap and mid-run recovery share one deterministic rng discipline.
    Returns the number of attempts used; once ``policy.max_attempts`` is
    exhausted, raises a :class:`ProvisioningError` that *chains* the last
    underlying failure (``raise ... from``), so callers and drills can tell
    an attestation outage from, say, a corrupted key binding.
    """
    last_error: Optional[Exception] = None
    for attempt in range(policy.max_attempts):
        try:
            infrastructure.provision_host(host)
            return attempt + 1
        except (ProvisioningError, AttestationError) as error:
            last_error = error
            policy.delay_rounds(attempt, rng)
    assert last_error is not None
    raise ProvisioningError(
        f"provisioning failed after {policy.max_attempts} attempt(s): "
        f"{last_error}"
    ) from last_error
