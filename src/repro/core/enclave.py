"""The RAPTEE trusted-node enclave.

Holds the shared group key K_T and performs every operation whose secrecy
the protocol depends on — the auth-proof construction and verification —
behind the ECALL boundary, so K_T never exists in untrusted memory.

Provisioning follows :mod:`repro.sgx.provisioning`: the enclave generates an
ephemeral RSA keypair inside, binds the public key into an attestation
quote, and receives K_T encrypted to that key.  A provisioned enclave can
seal K_T to disk (device + measurement bound) and restore it after a
restart without re-attesting.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.auth import AuthScheme
from repro.crypto.prng import Sha256Prng
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.sgx.enclave import Enclave, SgxDevice, ecall, report_data_binding
from repro.sgx.errors import ProvisioningError
from repro.sgx.measurement import Quote
from repro.sgx.sealing import seal, unseal

__all__ = ["RapteeEnclave"]


class RapteeEnclave(Enclave):
    """Trusted-node logic living inside the enclave."""

    VERSION = "1"

    def __init__(self, _device: SgxDevice, auth_mode: str = "hmac",
                 provisioning_key_bits: int = 512):
        super().__init__(_device)
        self._scheme = AuthScheme(auth_mode)
        self._group_key: Optional[bytes] = None
        self._group_epoch = 0
        self._ephemeral: Optional[RsaKeyPair] = None
        self._provisioning_key_bits = provisioning_key_bits
        self._rng = Sha256Prng(int.from_bytes(self._random_bytes(16), "big"))

    # -- provisioning ---------------------------------------------------------

    @ecall
    def begin_provisioning(self) -> Tuple[Quote, RsaPublicKey]:
        """Generate the in-enclave RSA key and a quote binding it."""
        self._ephemeral = generate_keypair(self._provisioning_key_bits, self._rng)
        binding = report_data_binding(self._ephemeral.public)
        quote = self.generate_quote(binding)
        return quote, self._ephemeral.public

    @ecall
    def complete_provisioning(self, ciphertext: bytes) -> None:
        """Decrypt and install K_T; forgets the ephemeral key afterwards.

        Accepts the legacy 16-byte payload (epoch 0) or the epoch-tagged
        24-byte one: 8-byte big-endian epoch number followed by the key.
        """
        if self._ephemeral is None:
            raise ProvisioningError("begin_provisioning was not called")
        secret = self._ephemeral.private.decrypt(ciphertext)
        self._group_epoch, self._group_key = self._split_epoch_payload(secret)
        self._ephemeral = None

    @staticmethod
    def _split_epoch_payload(secret: bytes) -> Tuple[int, bytes]:
        if len(secret) == 16:
            return 0, secret
        if len(secret) == 24:
            return int.from_bytes(secret[:8], "big"), secret[8:]
        raise ProvisioningError("provisioned key has the wrong size")

    @ecall
    def is_provisioned(self) -> bool:
        return self._group_key is not None

    @ecall
    def group_epoch(self) -> int:
        """The epoch of the held group key (0 for the bootstrap key)."""
        if self._group_key is None:
            raise ProvisioningError("enclave is not provisioned")
        return self._group_epoch

    # -- sealing --------------------------------------------------------------

    @ecall
    def seal_group_key(self) -> bytes:
        """Persist K_T sealed to this device and enclave identity.

        Epoch 0 seals the bare key (the legacy blob format); later epochs
        seal the epoch tag alongside so a restore knows which generation
        it resurrects.
        """
        if self._group_key is None:
            raise ProvisioningError("no group key to seal")
        if self._group_epoch == 0:
            secret = self._group_key
        else:
            secret = self._group_epoch.to_bytes(8, "big") + self._group_key
        return seal(self._device, self._measurement, secret,
                    self._random_bytes(8))

    @ecall
    def restore_group_key(self, blob: bytes) -> None:
        """Load a previously sealed K_T (restart path, no re-attestation)."""
        secret = unseal(self._device, self._measurement, blob)
        try:
            self._group_epoch, self._group_key = self._split_epoch_payload(secret)
        except ProvisioningError:
            raise ProvisioningError("sealed blob does not contain a group key")

    # -- mutual authentication (the group key never leaves) ---------------------

    def _require_key(self) -> bytes:
        if self._group_key is None:
            raise ProvisioningError("enclave is not provisioned")
        return self._group_key

    @ecall
    def auth_respond(self, r_a: bytes) -> Tuple[bytes, bytes]:
        """Step 2 of §IV-A: draw r_B and prove K_T over (r_A, r_B)."""
        parts = self._scheme.respond(self._require_key(), r_a, self._rng)
        return parts.r_b, parts.proof

    @ecall
    def auth_check_response(self, r_a: bytes, r_b: bytes, proof: bytes) -> bool:
        """Step 3: does the peer's proof match under K_T?"""
        return self._scheme.check_response(self._require_key(), r_a, r_b, proof)

    @ecall
    def auth_confirm(self, r_a: bytes, r_b: bytes) -> bytes:
        """Step 4 (initiator side): prove K_T over (r_B, r_A)."""
        return self._scheme.confirm(self._require_key(), r_a, r_b)

    @ecall
    def auth_check_confirm(self, r_a: bytes, r_b: bytes, proof: bytes) -> bool:
        """Step 4 (responder side): does the initiator hold K_T?"""
        return self._scheme.check_confirm(self._require_key(), r_a, r_b, proof)
