"""Trusted communication: the half-view swap between trusted nodes (§IV-B).

When two trusted nodes mutually authenticate in a round, they run one
exchange of the gossip-PSS framework in its RAPTEE instantiation (§II):

* each side offers half of its dynamic view, with the initiator inserting a
  link to itself;
* the exchange is a *swap* — a link that was sent is kept only by the
  partner (S = c/2 shuffling), so the total number of links is preserved and
  trusted-held knowledge spreads without inflating anyone's in-degree;
* each side additionally appends the received IDs to its round's pulled-ID
  list, so they flow into the Brahms samplers and compete for the β·l1
  slots of the view renewal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["SwapOffer", "build_offer", "apply_swap"]


@dataclass(frozen=True)
class SwapOffer:
    """The half-view one side contributes to a trusted exchange."""

    offered: Tuple[int, ...]
    sent_from_view: Tuple[int, ...]  # the subset actually removed on swap


def build_offer(
    view: List[int],
    own_id: int,
    rng: random.Random,
    include_self: bool,
) -> SwapOffer:
    """Select half of ``view`` to offer; initiators insert their own link.

    With self-insertion the offer is (c/2 − 1) view entries plus the node's
    own ID, mirroring the framework's buffer construction.
    """
    half = max(1, len(view) // 2)
    from_view_count = max(0, half - 1) if include_self else half
    if from_view_count >= len(view):
        sent = list(view)
    else:
        sent = rng.sample(view, from_view_count) if from_view_count else []
    offered = list(sent)
    if include_self:
        offered.append(own_id)
    return SwapOffer(offered=tuple(offered), sent_from_view=tuple(sent))


def apply_swap(
    view: List[int],
    offer: SwapOffer,
    received: Tuple[int, ...],
    own_id: int,
) -> List[int]:
    """Swap semantics: drop what was sent, keep what was received.

    Each sent occurrence is removed once; received IDs (minus self and
    duplicates of surviving entries... duplicates are allowed, Brahms views
    are multisets) are appended.  The view length is preserved up to the
    difference between sent and received counts.
    """
    new_view = list(view)
    for sent in offer.sent_from_view:
        try:
            new_view.remove(sent)
        except ValueError:
            # The entry can be gone if it appeared twice in the offer
            # but once in the view; removing once is the correct multiset op.
            continue
    for peer in received:
        if peer != own_id:
            new_view.append(peer)
    return new_view
