"""RAPTEE's mutual authentication protocol (§IV-A).

Flow between initiator A and responder B, each holding a symmetric key
(trusted nodes share the provisioned group key K_T; every untrusted node has
its own random key):

1. A → B: r_A                      (pseudo-random challenge)
2. B → A: r_B, [H(r_A‖r_B)]_{K_B}  (proof under B's key)
3. A checks the proof with K_A; equality ⟺ K_A = K_B ⟺ both trusted.
4. A → B: [H(r_B‖r_A)]_{K_A}; B checks symmetrically.

Soundness rests on the proof being computable only with the key.  Two
interchangeable proof schemes are provided:

* ``aes-ctr`` — the paper's literal construction: AES-CTR-encrypt the hash
  under the key (the nonce is derived from the peer's challenge, so both
  sides compute the same ciphertext);
* ``hmac`` — HMAC-SHA256(key, framing‖r_A‖r_B), the standard realization of
  the same "prove knowledge of the key over both nonces" goal.  It is the
  default in large simulations because it runs at C speed; the test suite
  proves both schemes accept/reject identically.

A failed comparison reveals only "the peer does not share my key" — an
untrusted node learns nothing about whether the peer is trusted, Byzantine,
or simply another untrusted node, which is what keeps trusted nodes hidden.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.ctr import AesCtr
from repro.crypto.hashing import concat_hash, constant_time_equal, hmac_sha256

__all__ = ["AuthScheme", "NONCE_BYTES", "KEY_BYTES"]

NONCE_BYTES = 16
KEY_BYTES = 16

_SCHEMES = ("hmac", "aes-ctr")


@dataclass(frozen=True)
class AuthScheme:
    """Stateless proof construction/verification for one proof mode."""

    mode: str = "hmac"

    def __post_init__(self) -> None:
        if self.mode not in _SCHEMES:
            raise ValueError(f"unknown auth scheme {self.mode!r}; pick from {_SCHEMES}")

    # -- building blocks -----------------------------------------------------

    def _proof(self, key: bytes, first: bytes, second: bytes) -> bytes:
        """[H(first‖second)]_key."""
        digest = concat_hash(b"raptee-auth", first, second)
        if self.mode == "hmac":
            return hmac_sha256(key, digest)
        # aes-ctr: encrypt the digest; the nonce comes from the *second*
        # nonce (the one freshly contributed by the proving side), so both
        # parties derive the same counter stream deterministically.
        return AesCtr(key, second[:8]).encrypt(digest)

    def _check(self, key: bytes, first: bytes, second: bytes, proof: bytes) -> bool:
        return constant_time_equal(self._proof(key, first, second), proof)

    # -- protocol steps ---------------------------------------------------------

    @staticmethod
    def make_challenge(rng: random.Random) -> bytes:
        """Step 1: A draws r_A."""
        return rng.getrandbits(NONCE_BYTES * 8).to_bytes(NONCE_BYTES, "big")

    def respond(self, key: bytes, r_a: bytes, rng: random.Random) -> "AuthResponseParts":
        """Step 2: B draws r_B and proves knowledge of its key over (r_A, r_B)."""
        r_b = rng.getrandbits(NONCE_BYTES * 8).to_bytes(NONCE_BYTES, "big")
        return AuthResponseParts(r_b=r_b, proof=self._proof(key, r_a, r_b))

    def check_response(self, key: bytes, r_a: bytes, r_b: bytes, proof: bytes) -> bool:
        """Step 3: A accepts iff B's proof matches under A's own key."""
        return self._check(key, r_a, r_b, proof)

    def confirm(self, key: bytes, r_a: bytes, r_b: bytes) -> bytes:
        """Step 4: A proves its own key over the reversed pair (r_B, r_A)."""
        return self._proof(key, r_b, r_a)

    def check_confirm(self, key: bytes, r_a: bytes, r_b: bytes, proof: bytes) -> bool:
        """Step 4 (B side): accept iff A's proof matches under B's key."""
        return self._check(key, r_b, r_a, proof)


@dataclass(frozen=True)
class AuthResponseParts:
    """B's contribution in step 2."""

    r_b: bytes
    proof: bytes
