"""Performance layer: equivalence-proven fast paths + benchmark harness.

Three pieces:

* :mod:`repro.perf.config` — the process-wide fast-path flag (on by
  default) and the ``use_numpy`` resolution rule;
* :mod:`repro.perf.kernels` — optional numpy kernels for the sketch and
  min-wise hot paths, exact integer replacements for the Python loops;
* :mod:`repro.perf.bench` — pinned benchmark scenarios, the
  ``BENCH_perf.json`` report builder and its schema validator, behind the
  ``repro bench`` CLI.

The contract that lets the fast paths default to *on*: for every seed,
fast-path-on and fast-path-off runs are byte-identical — same trace JSONL,
same final views, same figure metrics (``tests/test_perf_differential.py``).
"""

from repro.perf.config import (
    fastpaths,
    fastpaths_enabled,
    resolve_use_numpy,
    set_fastpaths,
)
from repro.perf.kernels import HAVE_NUMPY

__all__ = [
    "fastpaths",
    "fastpaths_enabled",
    "set_fastpaths",
    "resolve_use_numpy",
    "HAVE_NUMPY",
]
