"""Optional numpy kernels for the sketch/hash hot paths.

Every kernel here is an *exact* integer-for-integer replacement for a pure
Python loop elsewhere in the tree — not a floating-point approximation.
The equivalence arguments, which the Hypothesis suite
(``tests/test_perf_kernels.py``) checks on random inputs:

* ``scramble64`` is ``(x * M + O) mod 2^64``; numpy ``uint64`` arithmetic
  wraps modulo 2^64 by definition, so elementwise uint64 multiply-add *is*
  the scramble, no masking needed.
* The min-wise map ``(a * (s mod p) + b) mod p`` with p = 2^31 − 1 keeps
  every operand below 2^31 and every product below 2^62, so it evaluates
  exactly in ``int64`` — the same bound that lets ``brahms/sampler.py``
  vectorise.  For any other modulus the caller must use the Python loop.
* Count-min updates/estimates are integer adds and minima over int64
  counters; ``decay`` reproduces Python's ``int(value * factor)``
  truncation-toward-zero because counters are never negative.

numpy is an *optional* dependency: the import is guarded, callers consult
:data:`HAVE_NUMPY` (via :func:`repro.perf.config.resolve_use_numpy`) and
fall back to the pure-Python reference when it is absent.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.minwise import (
    MERSENNE_PRIME_31,
    _SCRAMBLE_MULTIPLIER,
    _SCRAMBLE_OFFSET,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

__all__ = [
    "HAVE_NUMPY",
    "scramble64_array",
    "minwise_batch",
    "countmin_rows",
    "countmin_new_tables",
    "countmin_update_batch",
    "countmin_estimate",
    "countmin_estimate_batch",
    "countmin_decay",
]

HAVE_NUMPY = np is not None


def _require_numpy():
    if np is None:  # pragma: no cover - exercised only on numpy-less installs
        raise RuntimeError("numpy kernel invoked but numpy is not installed")
    return np


def scramble64_array(values: Sequence[int]):
    """Vectorised :func:`repro.crypto.minwise.scramble64` (uint64 array)."""
    _require_numpy()
    arr = np.asarray(values, dtype=np.uint64)
    # uint64 arithmetic wraps mod 2^64 — exactly the `& _WORD_MASK` of the
    # scalar reference.
    return arr * np.uint64(_SCRAMBLE_MULTIPLIER) + np.uint64(_SCRAMBLE_OFFSET)


def minwise_batch(a: int, b: int, p: int, values: Sequence[int]) -> List[int]:
    """Evaluate ``h(x) = (a * (scramble64(x) mod p) + b) mod p`` elementwise.

    Only valid for p = 2^31 − 1 (the default field): that bound is what
    keeps the products inside int64.  Callers with a larger modulus (e.g.
    the 61-bit field) must keep the scalar loop.
    """
    if p != MERSENNE_PRIME_31:
        raise ValueError("numpy min-wise kernel requires p = 2^31 - 1")
    _require_numpy()
    reduced = (scramble64_array(values) % np.uint64(p)).astype(np.int64)
    hashed = (np.int64(a) * reduced + np.int64(b)) % np.int64(p)
    return [int(h) for h in hashed]


def countmin_rows(items: Sequence[int], salts: Sequence[int], width: int):
    """Column indices per (row, item): shape ``(depth, len(items))`` int64.

    Matches ``scramble64(item ^ salt) % width`` of the scalar `_cells`.
    """
    _require_numpy()
    arr = np.asarray(items, dtype=np.uint64)
    salts_col = np.asarray(salts, dtype=np.uint64).reshape(-1, 1)
    scrambled = (arr ^ salts_col) * np.uint64(_SCRAMBLE_MULTIPLIER) + np.uint64(
        _SCRAMBLE_OFFSET
    )
    return (scrambled % np.uint64(width)).astype(np.int64)


def countmin_new_tables(depth: int, width: int):
    """Zeroed counter matrix (int64 — counts are bounded by stream length)."""
    _require_numpy()
    return np.zeros((depth, width), dtype=np.int64)


def countmin_update_batch(tables, salts: Sequence[int], items: Sequence[int]) -> None:
    """Add 1 per occurrence of each item, all rows at once (exact adds)."""
    columns = countmin_rows(items, salts, tables.shape[1])
    for row in range(tables.shape[0]):
        # bincount aggregates duplicate columns before the add — the numpy
        # equivalent of repeated `+= 1`, without add.at's slow path.
        tables[row] += np.bincount(columns[row], minlength=tables.shape[1])


def countmin_estimate(tables, salts: Sequence[int], item: int) -> int:
    """Row-minimum estimate for a single item."""
    columns = countmin_rows([item], salts, tables.shape[1])[:, 0]
    return int(tables[np.arange(tables.shape[0]), columns].min())


def countmin_estimate_batch(
    tables, salts: Sequence[int], items: Sequence[int]
) -> List[int]:
    """Row-minimum estimates for a batch of items, in input order."""
    columns = countmin_rows(items, salts, tables.shape[1])
    rows = np.arange(tables.shape[0]).reshape(-1, 1)
    return [int(v) for v in tables[rows, columns].min(axis=0)]


def countmin_decay(tables, factor: float) -> None:
    """In-place ``int(value * factor)`` on every counter.

    Counters are non-negative, so float multiply + ``astype(int64)``
    (truncation toward zero) reproduces Python's ``int()`` exactly for
    counts below 2^53, far beyond any stream the simulator produces.
    """
    _require_numpy()
    tables[:] = (tables * factor).astype(np.int64)
