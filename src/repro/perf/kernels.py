"""Optional numpy kernels for the sketch/hash hot paths.

Every kernel here is an *exact* integer-for-integer replacement for a pure
Python loop elsewhere in the tree — not a floating-point approximation.
The equivalence arguments, which the Hypothesis suite
(``tests/test_perf_kernels.py``) checks on random inputs:

* ``scramble64`` is ``(x * M + O) mod 2^64``; numpy ``uint64`` arithmetic
  wraps modulo 2^64 by definition, so elementwise uint64 multiply-add *is*
  the scramble, no masking needed.
* ``splitmix64_array`` is the SplitMix64 finalizer — xor-shifts and odd
  multiplies, all mod 2^64 — so uint64 elementwise ops again *are* the
  scalar reference (``repro.shard.rand.mix64``) with no masking.
* The min-wise map ``(a * (s mod p) + b) mod p`` with p = 2^31 − 1 keeps
  every operand below 2^31 and every product below 2^62, so it evaluates
  exactly in ``int64`` — the same bound that lets ``brahms/sampler.py``
  vectorise.  For any other modulus the caller must use the Python loop.
* Count-min updates/estimates are integer adds and minima over int64
  counters; ``decay`` truncates the *exact* rational product: a float64
  factor is the dyadic rational num/2^shift, so ``(value * num) >> shift``
  is ⌊value · factor⌋ with no rounding — unlike a float multiply, which
  drifts from exact truncation once ``value * factor`` needs more than 53
  mantissa bits (well below int64 range).

numpy is an *optional* dependency: the import is guarded, callers consult
:data:`HAVE_NUMPY` (via :func:`repro.perf.config.resolve_use_numpy`) and
fall back to the pure-Python reference when it is absent.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.minwise import (
    MERSENNE_PRIME_31,
    _SCRAMBLE_MULTIPLIER,
    _SCRAMBLE_OFFSET,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

__all__ = [
    "HAVE_NUMPY",
    "SPLITMIX64_M1",
    "SPLITMIX64_M2",
    "scramble64_array",
    "splitmix64_array",
    "minwise_batch",
    "countmin_rows",
    "countmin_new_tables",
    "countmin_update_batch",
    "countmin_estimate",
    "countmin_estimate_batch",
    "countmin_decay",
    "decay_ratio",
    "decay_value",
]

HAVE_NUMPY = np is not None


def _require_numpy():
    if np is None:  # pragma: no cover - exercised only on numpy-less installs
        raise RuntimeError("numpy kernel invoked but numpy is not installed")
    return np


def scramble64_array(values: Sequence[int]):
    """Vectorised :func:`repro.crypto.minwise.scramble64` (uint64 array)."""
    _require_numpy()
    arr = np.asarray(values, dtype=np.uint64)
    # uint64 arithmetic wraps mod 2^64 — exactly the `& _WORD_MASK` of the
    # scalar reference.
    return arr * np.uint64(_SCRAMBLE_MULTIPLIER) + np.uint64(_SCRAMBLE_OFFSET)


#: SplitMix64 finalizer constants (shared with ``repro.shard.rand.mix64``).
SPLITMIX64_M1 = 0xBF58476D1CE4E5B9
SPLITMIX64_M2 = 0x94D049BB133111EB


def splitmix64_array(values):
    """Vectorised SplitMix64 finalizer over a uint64 array (exact mod 2^64).

    The scalar reference is :func:`repro.shard.rand.mix64`; uint64
    arithmetic wraps modulo 2^64, so the xor-shift/multiply pipeline below
    computes the identical integers.
    """
    _require_numpy()
    x = np.asarray(values, dtype=np.uint64)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(SPLITMIX64_M1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(SPLITMIX64_M2)
    return x ^ (x >> np.uint64(31))


def minwise_batch(a: int, b: int, p: int, values: Sequence[int]) -> List[int]:
    """Evaluate ``h(x) = (a * (scramble64(x) mod p) + b) mod p`` elementwise.

    Only valid for p = 2^31 − 1 (the default field): that bound is what
    keeps the products inside int64.  Callers with a larger modulus (e.g.
    the 61-bit field) must keep the scalar loop.
    """
    if p != MERSENNE_PRIME_31:
        raise ValueError("numpy min-wise kernel requires p = 2^31 - 1")
    _require_numpy()
    reduced = (scramble64_array(values) % np.uint64(p)).astype(np.int64)
    hashed = (np.int64(a) * reduced + np.int64(b)) % np.int64(p)
    return [int(h) for h in hashed]


def countmin_rows(items: Sequence[int], salts: Sequence[int], width: int):
    """Column indices per (row, item): shape ``(depth, len(items))`` int64.

    Matches ``scramble64(item ^ salt) % width`` of the scalar `_cells`.
    """
    _require_numpy()
    arr = np.asarray(items, dtype=np.uint64)
    salts_col = np.asarray(salts, dtype=np.uint64).reshape(-1, 1)
    scrambled = (arr ^ salts_col) * np.uint64(_SCRAMBLE_MULTIPLIER) + np.uint64(
        _SCRAMBLE_OFFSET
    )
    return (scrambled % np.uint64(width)).astype(np.int64)


def countmin_new_tables(depth: int, width: int):
    """Zeroed counter matrix (int64 — counts are bounded by stream length)."""
    _require_numpy()
    return np.zeros((depth, width), dtype=np.int64)


def countmin_update_batch(tables, salts: Sequence[int], items: Sequence[int]) -> None:
    """Add 1 per occurrence of each item, all rows at once (exact adds)."""
    columns = countmin_rows(items, salts, tables.shape[1])
    for row in range(tables.shape[0]):
        # bincount aggregates duplicate columns before the add — the numpy
        # equivalent of repeated `+= 1`, without add.at's slow path.
        tables[row] += np.bincount(columns[row], minlength=tables.shape[1])


def countmin_estimate(tables, salts: Sequence[int], item: int) -> int:
    """Row-minimum estimate for a single item."""
    columns = countmin_rows([item], salts, tables.shape[1])[:, 0]
    return int(tables[np.arange(tables.shape[0]), columns].min())


def countmin_estimate_batch(
    tables, salts: Sequence[int], items: Sequence[int]
) -> List[int]:
    """Row-minimum estimates for a batch of items, in input order."""
    columns = countmin_rows(items, salts, tables.shape[1])
    rows = np.arange(tables.shape[0]).reshape(-1, 1)
    return [int(v) for v in tables[rows, columns].min(axis=0)]


def decay_ratio(factor: float):
    """A float factor as the dyadic rational ``(num, shift)``: factor ==
    num / 2**shift exactly.  Shared by both decay backends so they truncate
    the *same* exact product."""
    num, den = float(factor).as_integer_ratio()
    # For any finite positive float, as_integer_ratio() returns lowest
    # terms with a power-of-two denominator.
    return num, den.bit_length() - 1


def decay_value(value: int, num: int, shift: int) -> int:
    """Exact ⌊value · num / 2**shift⌋ for a non-negative counter."""
    return (value * num) >> shift


def countmin_decay(tables, factor: float) -> None:
    """In-place exact ⌊value · factor⌋ on every counter.

    The factor is decomposed into ``num / 2**shift`` (exact for any float)
    and applied as an integer multiply + right shift.  A float multiply
    would diverge from exact truncation once the counter needs more than
    53 mantissa bits — e.g. ``int((2**55 + 3) * 0.5)`` is 2**54 (the
    counter is rounded before the multiply), one *below* the exact
    ⌊·⌋ = 2**54 + 1.

    The vectorised path runs only while ``value * num`` fits int64 (and the
    shift is a valid int64 shift count); otherwise the loop falls back to
    Python big ints, still exact, still in place.
    """
    _require_numpy()
    num, shift = decay_ratio(factor)
    max_value = int(tables.max())
    if 0 <= shift <= 62 and (max_value == 0 or num <= ((1 << 63) - 1) // max_value):
        tables[:] = (tables * np.int64(num)) >> np.int64(shift)
        return
    flat = tables.reshape(-1)
    for index in range(flat.shape[0]):
        flat[index] = decay_value(int(flat[index]), num, shift)
