"""The fast-path switch: one process-wide flag, adopted by default.

``repro.perf`` accelerates hot paths (AES T-tables, cached key schedules,
reused transport ciphers, numpy sketch kernels) under a single invariant:
**fast-path-on and fast-path-off runs are byte-identical** — same seeds
produce the same traces, views and figure metrics either way (proven by
``tests/test_perf_differential.py``).  Because equivalence is guaranteed,
the fast paths are *enabled by default* rather than hidden behind an
opt-in; the flag exists so the differential suite and the benchmark
harness can reproduce the unaccelerated reference behaviour on demand.

The flag is deliberately a plain module-level state object, not an
environment variable or config file: reading it is one attribute access on
hot paths, and worker processes (``repeat(workers=N)``) inherit the default
state, which keeps parallel sweeps consistent with serial ones.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "fastpaths_enabled",
    "set_fastpaths",
    "fastpaths",
    "resolve_use_numpy",
]


class _FastPathState:
    """Mutable holder so hot paths can cache a reference to the object."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True


#: The shared state; hot paths may hold this object and read ``.enabled``.
STATE = _FastPathState()


def fastpaths_enabled() -> bool:
    """Whether the equivalence-proven fast paths are active (default True)."""
    return STATE.enabled


def set_fastpaths(enabled: bool) -> bool:
    """Set the process-wide fast-path flag; returns the previous value."""
    previous = STATE.enabled
    STATE.enabled = bool(enabled)
    return previous


@contextmanager
def fastpaths(enabled: bool) -> Iterator[None]:
    """Scoped override, used by the differential tests and the benchmark
    harness to run the same scenario in both modes."""
    previous = set_fastpaths(enabled)
    try:
        yield
    finally:
        set_fastpaths(previous)


def resolve_use_numpy(use_numpy: Optional[bool], have_numpy: bool) -> bool:
    """Resolve a ``use_numpy`` constructor flag.

    ``None`` (the default everywhere) means "numpy if it is installed and
    fast paths are on"; an explicit ``True`` demands numpy and raises when
    it is absent, so a caller pinning the kernel path fails loudly instead
    of silently measuring the wrong implementation.
    """
    if use_numpy is None:
        return have_numpy and STATE.enabled
    if use_numpy and not have_numpy:
        raise RuntimeError(
            "use_numpy=True requested but numpy is not installed; "
            "install numpy or pass use_numpy=None/False"
        )
    return bool(use_numpy)
