# lint: disable-file=det-wall-clock -- the benchmark harness exists to
# measure wall-clock; its numbers go to BENCH_perf.json, never into the
# protocol or the deterministic trace/metrics surface.
"""Pinned benchmark scenarios and the ``BENCH_perf.json`` report.

Every future PR needs a perf trajectory to compare against; this module
defines it.  Three pinned scenarios (one Brahms baseline, one encrypted
RAPTEE at N = 300, and the headline encrypted RAPTEE at N = 1,000 for 50
rounds) are each run twice:

* the full run on the :mod:`repro.perf` fast paths, profiled, giving
  wall-clock per round, ops per round and per-phase timings;
* a short *reference* run with fast paths disabled (``baseline_rounds``
  rounds — the slow path at paper scale would take hours, and per-round
  cost is flat across rounds, so a few rounds suffice for the ratio).

The recorded ``speedup_per_round`` is the slow/fast per-round ratio; the
differential suite (``tests/test_perf_differential.py``) is what certifies
that the two modes compute identical results, so the ratio compares equal
work.

The report payload is a plain dict; :func:`validate_bench_report` is the
schema gate CI runs against the generated artifact, and the builders here
return data — file I/O stays in the CLI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.core.eviction import AdaptiveEviction, FixedEviction
from repro.experiments.scenarios import (
    SimulationBundle,
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)
from repro.perf.config import fastpaths
from repro.perf.kernels import HAVE_NUMPY

__all__ = [
    "BenchScenario",
    "BENCH_SCENARIOS",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "run_scenario",
    "run_bench",
    "validate_bench_report",
    "render_bench_report",
]

SCHEMA_NAME = "repro-bench-perf"
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchScenario:
    """One pinned benchmark configuration."""

    name: str
    protocol: str  # "brahms" | "raptee"
    n_nodes: int
    rounds: int
    byzantine_fraction: float = 0.10
    trusted_fraction: float = 0.0
    view_ratio: float = 0.08
    transport_encryption: bool = False
    fixed_eviction_rate: Optional[float] = None  # None → adaptive
    sketch_unbias: bool = False
    seed: int = 1
    #: Rounds of the fast-path-off reference run (per-round cost is flat,
    #: so a short run yields the ratio without hour-long slow runs).
    baseline_rounds: int = 3

    def smoke(self) -> "BenchScenario":
        """A seconds-scale variant for CI: same shape, tiny population."""
        return replace(
            self,
            n_nodes=min(self.n_nodes, 120),
            rounds=min(self.rounds, 6),
            # Tiny populations need proportionally bigger views to stay
            # above the protocol's minimum sizes.
            view_ratio=max(self.view_ratio, 0.08),
            baseline_rounds=min(self.baseline_rounds, 2),
        )

    def build(self) -> SimulationBundle:
        spec = TopologySpec(
            n_nodes=self.n_nodes,
            byzantine_fraction=self.byzantine_fraction,
            trusted_fraction=self.trusted_fraction if self.protocol == "raptee" else 0.0,
            view_ratio=self.view_ratio,
            transport_encryption=self.transport_encryption,
        )
        if self.protocol == "brahms":
            return build_brahms_simulation(spec, self.seed)
        eviction = (
            AdaptiveEviction()
            if self.fixed_eviction_rate is None
            else FixedEviction(self.fixed_eviction_rate)
        )
        return build_raptee_simulation(
            spec, self.seed, eviction=eviction,
            sketch_unbias_enabled=self.sketch_unbias,
        )

    def config_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "n_nodes": self.n_nodes,
            "rounds": self.rounds,
            "byzantine_fraction": self.byzantine_fraction,
            "trusted_fraction": self.trusted_fraction,
            "view_ratio": self.view_ratio,
            "transport_encryption": self.transport_encryption,
            "eviction": (
                "adaptive" if self.fixed_eviction_rate is None
                else f"fixed:{self.fixed_eviction_rate}"
            ),
            "sketch_unbias": self.sketch_unbias,
            "seed": self.seed,
        }


#: The pinned suite.  ``raptee-1k`` is the acceptance-criteria headline:
#: 1,000 nodes, 50 rounds, paper view ratio (0.02 → view size 20), full
#: transport encryption — the configuration whose ≥ 5× speedup gates PRs.
BENCH_SCENARIOS: Dict[str, BenchScenario] = {
    scenario.name: scenario
    for scenario in (
        BenchScenario(
            name="brahms-baseline", protocol="brahms",
            n_nodes=300, rounds=30, view_ratio=0.08, baseline_rounds=5,
        ),
        BenchScenario(
            name="raptee-fixed-eviction", protocol="raptee",
            n_nodes=300, rounds=20, trusted_fraction=0.05, view_ratio=0.08,
            transport_encryption=True, fixed_eviction_rate=0.6,
            sketch_unbias=True, baseline_rounds=2,
        ),
        BenchScenario(
            name="raptee-1k", protocol="raptee",
            n_nodes=1000, rounds=50, trusted_fraction=0.01, view_ratio=0.02,
            transport_encryption=True, baseline_rounds=2,
        ),
    )
}


def _timed_run(scenario: BenchScenario, rounds: int, profiled: bool):
    """Build and run ``rounds`` rounds; returns (bundle, profiler, seconds)."""
    bundle = scenario.build()
    profiler = None
    if profiled:
        from repro.telemetry import TelemetryConfig, wire_telemetry

        # Tracing off: per-message events are exactly the overhead a
        # benchmark must not pay; the profiler rides alone.
        harness = wire_telemetry(
            bundle, TelemetryConfig(tracing=False, trace_messages=False,
                                    profiling=True)
        )
        profiler = harness.telemetry.profiler
    start = time.perf_counter()
    bundle.run(rounds)
    elapsed = time.perf_counter() - start
    return bundle, profiler, elapsed


def run_scenario(
    scenario: BenchScenario, with_baseline: bool = True
) -> Dict[str, object]:
    """Benchmark one scenario; returns its report entry."""
    with fastpaths(True):
        bundle, profiler, fast_seconds = _timed_run(
            scenario, scenario.rounds, profiled=True
        )
    stats = bundle.simulation.network.stats
    phase_seconds = {
        name[len("phase."):]: record.total_seconds
        for name, record in sorted(profiler.records.items())
        if name.startswith("phase.")
    }
    entry: Dict[str, object] = {
        "name": scenario.name,
        "config": scenario.config_dict(),
        "rounds": scenario.rounds,
        "wall_seconds": fast_seconds,
        "seconds_per_round": fast_seconds / scenario.rounds,
        "ops_per_round": {
            "pushes": stats.pushes_sent / scenario.rounds,
            "requests": stats.requests_sent / scenario.rounds,
        },
        "bytes_encrypted": stats.bytes_encrypted,
        "phase_seconds": phase_seconds,
    }
    if with_baseline:
        with fastpaths(False):
            _, _, slow_seconds = _timed_run(
                scenario, scenario.baseline_rounds, profiled=False
            )
        slow_per_round = slow_seconds / scenario.baseline_rounds
        entry["baseline"] = {
            "rounds": scenario.baseline_rounds,
            "wall_seconds": slow_seconds,
            "seconds_per_round": slow_per_round,
        }
        entry["speedup_per_round"] = slow_per_round * scenario.rounds / fast_seconds
    return entry


def run_bench(
    names: Optional[List[str]] = None,
    smoke: bool = False,
    with_baseline: bool = True,
) -> Dict[str, object]:
    """Run the pinned suite (or a subset) and build the report payload."""
    selected = list(BENCH_SCENARIOS) if not names else names
    unknown = [name for name in selected if name not in BENCH_SCENARIOS]
    if unknown:
        raise KeyError(f"unknown bench scenario(s): {', '.join(unknown)}")
    entries = []
    for name in selected:
        scenario = BENCH_SCENARIOS[name]
        if smoke:
            scenario = scenario.smoke()
        entries.append(run_scenario(scenario, with_baseline=with_baseline))
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "smoke": smoke,
        "numpy": HAVE_NUMPY,
        "scenarios": entries,
    }


def validate_bench_report(payload: object) -> Dict[str, object]:
    """Schema gate for ``BENCH_perf.json``; raises ``ValueError`` on drift.

    Returns the payload on success so callers can chain.
    """

    def fail(message: str) -> None:
        raise ValueError(f"invalid bench report: {message}")

    if not isinstance(payload, dict):
        fail("top level must be an object")
    if payload.get("schema") != SCHEMA_NAME:
        fail(f"schema must be {SCHEMA_NAME!r}")
    if payload.get("version") != SCHEMA_VERSION:
        fail(f"version must be {SCHEMA_VERSION}")
    for flag in ("smoke", "numpy"):
        if not isinstance(payload.get(flag), bool):
            fail(f"{flag!r} must be a boolean")
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        fail("'scenarios' must be a non-empty list")
    for entry in scenarios:
        if not isinstance(entry, dict):
            fail("each scenario must be an object")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            fail("scenario name must be a non-empty string")
        if not isinstance(entry.get("config"), dict):
            fail(f"{name}: 'config' must be an object")
        if not (isinstance(entry.get("rounds"), int) and entry["rounds"] > 0):
            fail(f"{name}: 'rounds' must be a positive integer")
        for key in ("wall_seconds", "seconds_per_round"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"{name}: {key!r} must be a positive number")
        ops = entry.get("ops_per_round")
        if not isinstance(ops, dict) or not all(
            isinstance(ops.get(k), (int, float)) for k in ("pushes", "requests")
        ):
            fail(f"{name}: 'ops_per_round' needs numeric pushes/requests")
        phases = entry.get("phase_seconds")
        if not isinstance(phases, dict):
            fail(f"{name}: 'phase_seconds' must be an object")
        baseline = entry.get("baseline")
        if baseline is not None:
            if not isinstance(baseline, dict):
                fail(f"{name}: 'baseline' must be an object")
            for key in ("rounds", "wall_seconds", "seconds_per_round"):
                value = baseline.get(key)
                if not isinstance(value, (int, float)) or value <= 0:
                    fail(f"{name}: baseline {key!r} must be a positive number")
            speedup = entry.get("speedup_per_round")
            if not isinstance(speedup, (int, float)) or speedup <= 0:
                fail(f"{name}: 'speedup_per_round' must be a positive number")
    return payload  # type: ignore[return-value]


def render_bench_report(payload: Dict[str, object]) -> str:
    """Human-readable summary of a (validated) report payload."""
    lines = [
        f"bench report ({'smoke' if payload['smoke'] else 'full'} scale, "
        f"numpy={'yes' if payload['numpy'] else 'no'})",
    ]
    for entry in payload["scenarios"]:
        lines.append(
            f"  {entry['name']}: {entry['rounds']} rounds in "
            f"{entry['wall_seconds']:.2f}s "
            f"({entry['seconds_per_round']:.3f}s/round, "
            f"{entry['ops_per_round']['requests']:.0f} req/round)"
        )
        baseline = entry.get("baseline")
        if baseline is not None:
            lines.append(
                f"    baseline (fast paths off): "
                f"{baseline['seconds_per_round']:.3f}s/round over "
                f"{baseline['rounds']} round(s) → "
                f"{entry['speedup_per_round']:.1f}x speedup"
            )
        phases = entry.get("phase_seconds") or {}
        if phases:
            phase_bits = ", ".join(
                f"{name}={seconds:.2f}s" for name, seconds in phases.items()
            )
            lines.append(f"    phases: {phase_bits}")
    return "\n".join(lines)
