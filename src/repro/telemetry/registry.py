"""Metrics registry: counters, gauges and histograms with labeled families.

The registry is the one place every per-run number lives.  Components that
used to keep private ``Counter`` objects (:class:`repro.sim.network
.NetworkStats`, the fault injector's :class:`InjectionStats`, the
provisioner's attempt counters) mirror their increments here when telemetry
is wired, so experiments, drills and the ``repro trace`` CLI read one
coherent namespace instead of N private structs.

Design constraints:

* **Deterministic** — no wall clock, no randomness, and every read-out
  (:meth:`MetricsRegistry.snapshot`) is sorted by ``(name, labels)`` so two
  identical runs serialize byte-identically.
* **Pure** — the registry never performs I/O; serialization lives in
  :mod:`repro.telemetry.exporters` and file writing in the CLI layer.
* **Cheap when idle** — instruments are plain attribute bumps; the label
  lookup is one dict access on a tuple key.

Label values may be any hashable scalar (ints for rounds, strings for
causes); they are compared via ``repr`` when sorting so heterogeneous
families still snapshot deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

LabelValue = Union[str, int, float, bool]
LabelItems = Tuple[Tuple[str, LabelValue], ...]

#: Default histogram buckets: a 1-2-5 ladder wide enough for per-round
#: message counts at every scale the repo simulates.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000,
    20_000, 50_000, 100_000,
)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket histogram with running count and sum.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; observations
    above the last bound land in the implicit overflow bucket (reported as
    ``count - sum(bucket_counts)``).
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        bounds = tuple(float(bound) for bound in buckets)
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        self.buckets: Tuple[float, ...] = bounds
        self.bucket_counts: List[int] = [0] * len(bounds)
        self.count: int = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                break

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


Instrument = Union[Counter, Gauge, Histogram]


@dataclass(frozen=True)
class MetricSample:
    """One instrument's state at snapshot time (flattened for export)."""

    name: str
    kind: str
    labels: LabelItems
    value: float
    count: Optional[int] = None   # histograms only
    sum: Optional[float] = None   # histograms only

    def labels_text(self) -> str:
        return ",".join(f"{key}={value}" for key, value in self.labels)


def _label_items(labels: Dict[str, LabelValue]) -> LabelItems:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Get-or-create store of labeled instrument families."""

    def __init__(self) -> None:
        self._families: Dict[str, Dict[LabelItems, Instrument]] = {}
        self._kinds: Dict[str, str] = {}

    # -- get-or-create -------------------------------------------------------

    def _instrument(
        self, name: str, kind: str, factory, labels: Dict[str, LabelValue]
    ) -> Instrument:
        known_kind = self._kinds.get(name)
        if known_kind is None:
            self._kinds[name] = kind
            self._families[name] = {}
        elif known_kind != kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {known_kind}, "
                f"not a {kind}"
            )
        family = self._families[name]
        key = _label_items(labels)
        instrument = family.get(key)
        if instrument is None:
            instrument = factory()
            family[key] = instrument
        return instrument

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        return self._instrument(name, "counter", Counter, labels)

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        return self._instrument(name, "gauge", Gauge, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: LabelValue,
    ) -> Histogram:
        return self._instrument(
            name, "histogram", lambda: Histogram(buckets), labels
        )

    # -- reading -------------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._families)

    def value(self, name: str, default: float = 0, **labels: LabelValue) -> float:
        """Read one instrument's value without creating it."""
        family = self._families.get(name)
        if family is None:
            return default
        instrument = family.get(_label_items(labels))
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            return float(instrument.count)
        return instrument.value

    def by_label(self, name: str, key: str) -> Dict[LabelValue, float]:
        """Collapse a family to ``{label_value: value}`` for one label key.

        Instruments lacking the key are skipped; duplicates (same value for
        ``key`` under different other labels) are summed.  This is the read
        path drills use, e.g. ``by_label("faults.drops", "cause")``.
        """
        result: Dict[LabelValue, float] = {}
        family = self._families.get(name, {})
        for label_items, instrument in family.items():
            labels = dict(label_items)
            if key not in labels:
                continue
            value = (
                float(instrument.count)
                if isinstance(instrument, Histogram)
                else instrument.value
            )
            result[labels[key]] = result.get(labels[key], 0) + value
        return result

    def total(self, name: str) -> float:
        """Sum of every instrument in a family (histograms: total count)."""
        family = self._families.get(name, {})
        total = 0.0
        for instrument in family.values():
            if isinstance(instrument, Histogram):
                total += instrument.count
            else:
                total += instrument.value
        return total

    def snapshot(self) -> List[MetricSample]:
        """Every instrument, flattened and deterministically sorted."""
        samples: List[MetricSample] = []
        for name in sorted(self._families):
            family = self._families[name]
            for label_items in sorted(family, key=repr):
                instrument = family[label_items]
                if isinstance(instrument, Histogram):
                    samples.append(
                        MetricSample(
                            name=name,
                            kind=instrument.kind,
                            labels=label_items,
                            value=instrument.mean,
                            count=instrument.count,
                            sum=instrument.sum,
                        )
                    )
                else:
                    samples.append(
                        MetricSample(
                            name=name,
                            kind=instrument.kind,
                            labels=label_items,
                            value=instrument.value,
                        )
                    )
        return samples
