"""Wiring: attach a telemetry hub to a built simulation bundle.

:func:`wire_telemetry` mirrors :func:`repro.faults.harness.wire_faults`: one
call against a :class:`~repro.experiments.scenarios.SimulationBundle` builds
a :class:`~repro.telemetry.hub.Telemetry` hub and threads it through every
instrumented layer — the engine (round/phase spans, churn events), the
network (message counters and events), every node (degrade/promote events,
profiling timers), every enclave host (ECALL counters), and the trusted
infrastructure's attestation and provisioning services.  It also installs a
:class:`TelemetryObserver` on the bundle so per-round aggregates (alive
nodes, per-round message volumes, currently-degraded trusted nodes) land in
the registry after every completed round.

Telemetry must be wired *before* :func:`~repro.faults.harness.wire_faults`
when both are used — the fault layer picks the hub up from the simulation so
injected faults emit trace events too.

This module imports protocol types only for type checking; at runtime the
telemetry package stays a pure leaf of the dependency graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.telemetry.hub import Telemetry, TelemetryConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.scenarios import SimulationBundle
    from repro.sim.engine import Simulation

__all__ = ["TelemetryObserver", "TelemetryHarness", "wire_telemetry"]


class TelemetryObserver:
    """Per-round aggregates, computed after every completed round.

    Satisfies the :class:`repro.sim.engine.Observer` protocol.  Everything
    it records is derived from simulation state, so it stays inside the
    deterministic surface.
    """

    def __init__(self, telemetry: Telemetry):
        self.telemetry = telemetry

    def on_round_end(self, simulation: "Simulation") -> None:
        tel = self.telemetry
        round_number = simulation.round_number
        alive = simulation.alive_nodes()
        tel.gauge("sim.alive_nodes").set(len(alive))

        stats = simulation.network.stats
        tel.histogram("round.pushes").observe(stats.per_round_pushes[round_number])
        tel.histogram("round.requests").observe(
            stats.per_round_requests[round_number]
        )
        tel.histogram("round.losses").observe(stats.per_round_losses[round_number])

        degraded = sum(1 for node in alive if getattr(node, "degraded", False))
        tel.gauge("raptee.degraded_nodes").set(degraded)


@dataclass
class TelemetryHarness:
    """A bundle with telemetry attached, ready to run."""

    bundle: "SimulationBundle"
    telemetry: Telemetry
    observer: TelemetryObserver

    def run(self, rounds: int, extra_observers: Sequence = ()) -> None:
        self.bundle.run(rounds, extra_observers=extra_observers)


def wire_telemetry(
    bundle: "SimulationBundle",
    config: Optional[TelemetryConfig] = None,
) -> TelemetryHarness:
    """Attach a telemetry hub to every instrumented layer of a bundle."""
    telemetry = Telemetry(config)
    simulation = bundle.simulation
    simulation.set_telemetry(telemetry)
    simulation.network.set_telemetry(telemetry)
    for node_id in sorted(simulation.nodes):
        node = simulation.nodes[node_id]
        node.telemetry = telemetry
        enclave = getattr(node, "enclave", None)
        if enclave is not None:
            enclave.set_telemetry(telemetry, node_id)
    if bundle.infrastructure is not None:
        bundle.infrastructure.attestation.set_telemetry(telemetry)
        bundle.infrastructure.provisioner.set_telemetry(telemetry)
    if bundle.membership is not None:
        # Covers every provisioner replica (replica 0 is the legacy
        # provisioner wired above — set_telemetry is idempotent) plus the
        # membership counters and gauges.
        bundle.membership.set_telemetry(telemetry)
    observer = TelemetryObserver(telemetry)
    bundle.telemetry = telemetry
    bundle.telemetry_observer = observer
    return TelemetryHarness(bundle=bundle, telemetry=telemetry, observer=observer)
