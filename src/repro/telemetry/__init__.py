"""Deterministic observability for the RAPTEE reproduction.

One coherent instrumentation layer instead of N private counters:

* :mod:`repro.telemetry.registry` — counters, gauges and histograms with
  labeled families; the single namespace experiments, drills and the CLI
  read per-run numbers from;
* :mod:`repro.telemetry.trace` — structured events and spans keyed by
  ``(round, node, phase)``, emitted by the engine, the network, the SGX
  ECALL boundary, attestation/provisioning, fault injection and enclave
  recovery;
* :mod:`repro.telemetry.profiling` — opt-in wall-clock timers around hot
  paths, strictly outside the deterministic surface;
* :mod:`repro.telemetry.exporters` — JSONL trace / CSV metrics / human
  summary serialization (pure: strings out, no I/O);
* :mod:`repro.telemetry.harness` — :func:`wire_telemetry`, the one-call
  integration mirroring :func:`repro.faults.harness.wire_faults`.

The whole package is a *leaf* of the dependency graph: protocol layers hold
an optional ``telemetry`` handle (``None`` costs one attribute check) and
the package imports no protocol code at runtime.  Two runs of the same
scenario and seed serialize byte-identical traces and metrics whether
telemetry is wired or not — enforced by ``tests/test_telemetry_integration``.
"""

from repro.telemetry.exporters import (
    metrics_to_csv,
    render_profile,
    render_summary,
    trace_to_jsonl,
    validate_trace_jsonl,
)
from repro.telemetry.harness import TelemetryHarness, TelemetryObserver, wire_telemetry
from repro.telemetry.hub import Telemetry, TelemetryConfig
from repro.telemetry.profiling import Profiler
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
)
from repro.telemetry.trace import TraceCollector, TraceEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "Profiler",
    "Telemetry",
    "TelemetryConfig",
    "TelemetryHarness",
    "TelemetryObserver",
    "TraceCollector",
    "TraceEvent",
    "metrics_to_csv",
    "render_profile",
    "render_summary",
    "trace_to_jsonl",
    "validate_trace_jsonl",
    "wire_telemetry",
]
