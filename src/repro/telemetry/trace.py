"""Structured trace model: events and spans keyed by ``(round, node, phase)``.

A trace is an append-only sequence of :class:`TraceEvent` records collected
in memory while a simulation runs.  Every event carries the simulated round
it happened in, the acting node (when one is identifiable) and the engine
phase (``begin`` / ``gossip`` / ``end``) — the coordinates the paper's
evaluation reasons in.  Spans are begin/end event pairs sharing the begin
event's sequence number, which is enough to reconstruct nesting because the
simulator is single-threaded and round-synchronous.

Determinism contract: events contain only values derived from simulation
state (rounds, node IDs, causes, counts), never wall-clock readings — two
runs of the same scenario and seed must serialize to byte-identical JSONL
(enforced by ``tests/test_telemetry_integration.py``).  Wall-clock numbers
live in :mod:`repro.telemetry.profiling`, outside the trace.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "TraceCollector", "EVENT_KINDS"]

#: The three record kinds a trace line may carry.
EVENT_KINDS = ("event", "begin", "end")


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``seq`` is the global emission index (0-based); for ``kind="end"``
    records, ``fields["span"]`` holds the matching begin event's ``seq``.
    """

    seq: int
    kind: str
    name: str
    round: int
    node: Optional[int] = None
    phase: Optional[str] = None
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "round": self.round,
            "node": self.node,
            "phase": self.phase,
            "fields": self.fields,
        }


class TraceCollector:
    """Appends events in emission order and hands out span contexts."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def emit(
        self,
        name: str,
        round_number: int,
        node: Optional[int] = None,
        phase: Optional[str] = None,
        kind: str = "event",
        **fields: object,
    ) -> TraceEvent:
        if kind not in EVENT_KINDS:
            raise ValueError(f"kind must be one of {EVENT_KINDS}, got {kind!r}")
        event = TraceEvent(
            seq=self._seq,
            kind=kind,
            name=name,
            round=round_number,
            node=node,
            phase=phase,
            fields=fields,
        )
        self._seq += 1
        self.events.append(event)
        return event

    @contextmanager
    def span(
        self,
        name: str,
        round_number: int,
        node: Optional[int] = None,
        phase: Optional[str] = None,
        **fields: object,
    ) -> Iterator[TraceEvent]:
        """Emit a begin/end pair around a code block."""
        begin = self.emit(
            name, round_number, node=node, phase=phase, kind="begin", **fields
        )
        try:
            yield begin
        finally:
            self.emit(
                name, round_number, node=node, phase=phase, kind="end",
                span=begin.seq,
            )

    # -- reading -------------------------------------------------------------

    def named(self, name: str) -> List[TraceEvent]:
        return [event for event in self.events if event.name == name]

    def in_round(self, round_number: int) -> List[TraceEvent]:
        return [event for event in self.events if event.round == round_number]
