# lint: disable-file=det-wall-clock -- the profiler is the one sanctioned
# wall-clock consumer: it is opt-in, feeds nothing back into the protocol,
# and its numbers are excluded from traces and metrics snapshots.
"""Opt-in wall-clock profiling hooks for hot paths.

The telemetry trace and the metrics registry are part of the deterministic
surface — byte-identical across runs — so wall-clock timings can never live
there.  This module is the escape hatch: a :class:`Profiler` accumulates
``time.perf_counter`` durations per named section (sampler refresh, min-wise
hashing, view merge, …) when *enabled*, and compiles to a no-op otherwise.

The invariant the test suite enforces: enabling or disabling the profiler
never changes protocol results, because timers only ever *observe* the code
they wrap.  Profile read-outs are reported separately
(:func:`repro.telemetry.exporters.render_profile`) and never serialized
into the JSONL trace.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List

__all__ = ["ProfileRecord", "Profiler"]


@dataclass
class ProfileRecord:
    """Accumulated wall-clock cost of one named section."""

    calls: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class Profiler:
    """Named wall-clock timers; inert unless ``enabled``."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.records: Dict[str, ProfileRecord] = {}

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a code block under ``name`` (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            record = self.records.get(name)
            if record is None:
                record = ProfileRecord()
                self.records[name] = record
            record.calls += 1
            record.total_seconds += elapsed
            record.max_seconds = max(record.max_seconds, elapsed)

    def rows(self) -> List[tuple]:
        """``(name, calls, total_s, mean_s, max_s)`` rows, sorted by cost."""
        return [
            (
                name,
                record.calls,
                record.total_seconds,
                record.mean_seconds,
                record.max_seconds,
            )
            for name, record in sorted(
                self.records.items(),
                key=lambda item: (-item[1].total_seconds, item[0]),
            )
        ]

    def reset(self) -> None:
        self.records.clear()
