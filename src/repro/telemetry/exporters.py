"""Exporters: JSONL traces, CSV metric snapshots, human summary tables.

Everything here is string-in/string-out — the telemetry package performs no
I/O (the same purity discipline the simulation core obeys; see
``[tool.repro-lint]``).  File writing belongs to the CLI and experiments
layers.

Determinism: JSONL lines use ``sort_keys`` and compact separators, and the
metrics CSV is emitted from the registry's sorted snapshot, so identical
runs export byte-identical artifacts — the property the ``trace-smoke`` CI
job and the acceptance test rely on.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Mapping, Optional, Sequence

from repro.telemetry.hub import Telemetry
from repro.telemetry.profiling import Profiler
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import EVENT_KINDS, TraceEvent

__all__ = [
    "trace_to_jsonl",
    "validate_trace_jsonl",
    "metrics_to_csv",
    "render_summary",
    "render_profile",
    "TRACE_SCHEMA_KEYS",
]

#: Exactly the keys every JSONL trace line must carry.
TRACE_SCHEMA_KEYS = ("fields", "kind", "name", "node", "phase", "round", "seq")


def trace_to_jsonl(events: Sequence[TraceEvent]) -> str:
    """Serialize a trace to JSON Lines (one event per line, sorted keys)."""
    lines = [
        json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def validate_trace_jsonl(text: str) -> int:
    """Validate a JSONL trace against the schema; returns the event count.

    Raises :class:`ValueError` on the first malformed line.  Used by the
    ``trace-smoke`` CI job and the integration tests.
    """
    count = 0
    expected_seq = 0
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            raise ValueError(f"line {line_number}: blank line in JSONL trace")
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {line_number}: invalid JSON: {error}") from None
        if not isinstance(record, dict):
            raise ValueError(f"line {line_number}: expected an object")
        if tuple(sorted(record)) != TRACE_SCHEMA_KEYS:
            raise ValueError(
                f"line {line_number}: keys {sorted(record)} != "
                f"{list(TRACE_SCHEMA_KEYS)}"
            )
        if record["seq"] != expected_seq:
            raise ValueError(
                f"line {line_number}: seq {record['seq']} != {expected_seq}"
            )
        if record["kind"] not in EVENT_KINDS:
            raise ValueError(
                f"line {line_number}: kind {record['kind']!r} not in {EVENT_KINDS}"
            )
        if not isinstance(record["name"], str) or not record["name"]:
            raise ValueError(f"line {line_number}: name must be a non-empty string")
        if not isinstance(record["round"], int) or record["round"] < 0:
            raise ValueError(f"line {line_number}: round must be an int >= 0")
        if record["node"] is not None and not isinstance(record["node"], int):
            raise ValueError(f"line {line_number}: node must be an int or null")
        if record["phase"] is not None and not isinstance(record["phase"], str):
            raise ValueError(f"line {line_number}: phase must be a string or null")
        if not isinstance(record["fields"], dict):
            raise ValueError(f"line {line_number}: fields must be an object")
        expected_seq += 1
        count += 1
    return count


def _csv_field(value: object) -> str:
    text = str(value)
    if any(ch in text for ch in (",", '"', "\n")):
        return '"' + text.replace('"', '""') + '"'
    return text


def metrics_to_csv(registry: MetricsRegistry) -> str:
    """Flatten a registry snapshot to CSV.

    Columns: ``name, kind, labels, value, count, sum`` — ``count``/``sum``
    are empty for counters and gauges; ``value`` is the histogram mean.
    """
    rows: List[str] = ["name,kind,labels,value,count,sum"]
    for sample in registry.snapshot():
        rows.append(
            ",".join(
                (
                    _csv_field(sample.name),
                    sample.kind,
                    _csv_field(sample.labels_text()),
                    repr(sample.value),
                    "" if sample.count is None else str(sample.count),
                    "" if sample.sum is None else repr(sample.sum),
                )
            )
        )
    return "\n".join(rows) + "\n"


def _table(rows: Iterable[Sequence[str]], header: Sequence[str]) -> str:
    all_rows = [list(header)] + [list(row) for row in rows]
    widths = [
        max(len(row[column]) for row in all_rows)
        for column in range(len(header))
    ]
    lines = []
    for index, row in enumerate(all_rows):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


#: Families surfaced by :func:`render_summary`, with display labels.
_SUMMARY_FAMILIES = (
    ("sim.rounds", "rounds executed"),
    ("network.pushes_sent", "pushes sent"),
    ("network.pushes_delivered", "pushes delivered"),
    ("network.requests_sent", "requests sent"),
    ("network.replies_delivered", "replies delivered"),
    ("network.messages_lost", "messages lost"),
    ("sgx.ecalls", "SGX ECALLs"),
    ("attestation.verifications", "attestation verifications"),
    ("provisioning.attempts", "provisioning attempts"),
    ("faults.drops", "fault-injected drops"),
    ("raptee.degradations", "trusted-node degradations"),
    ("raptee.promotions", "trusted-node promotions"),
)


def render_summary(telemetry: Telemetry) -> str:
    """Human-readable roll-up of the headline metric families."""
    registry = telemetry.registry
    rows = []
    for family, label in _SUMMARY_FAMILIES:
        total = registry.total(family)
        if total or family in ("sim.rounds",):
            rows.append((label, f"{total:g}"))
    if telemetry.trace is not None:
        rows.append(("trace events", str(len(telemetry.trace))))
    return _table(rows, header=("metric", "total"))


def render_profile(profiler: Profiler) -> str:
    """Wall-clock profile table (only meaningful with profiling enabled)."""
    rows = profiler.rows()
    if not rows:
        return "profiling: no timed sections (enable with profiling=True)"
    formatted = [
        (
            name,
            str(calls),
            f"{total * 1e3:.2f}",
            f"{mean * 1e6:.1f}",
            f"{worst * 1e6:.1f}",
        )
        for name, calls, total, mean, worst in rows
    ]
    return _table(
        formatted,
        header=("section", "calls", "total ms", "mean µs", "max µs"),
    )


def summary_metrics(
    registry: MetricsRegistry, names: Optional[Sequence[str]] = None
) -> Mapping[str, float]:
    """Family totals as a plain dict (report/assert convenience)."""
    wanted = names if names is not None else registry.names()
    return {name: registry.total(name) for name in wanted}
