"""The telemetry hub: one object bundling registry, trace and profiler.

A :class:`Telemetry` instance is the single handle instrumented layers hold
(engine, network, enclave hosts, attestation, provisioning, fault injector,
recovery manager).  It owns:

* the :class:`~repro.telemetry.registry.MetricsRegistry`;
* the :class:`~repro.telemetry.trace.TraceCollector` (``None`` when tracing
  is off);
* the :class:`~repro.telemetry.profiling.Profiler` (inert unless enabled);
* the *simulation clock*: ``current_round`` and ``current_phase``, advanced
  by the engine so components without a round counter of their own (the
  attestation service, the provisioner) still stamp events correctly.

Every emit helper is a no-op-cheap guard away from doing nothing, so code
can hold a ``telemetry`` that is ``None`` and pay one attribute check when
telemetry is not wired.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.telemetry.profiling import Profiler
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    LabelValue,
    MetricsRegistry,
)
from repro.telemetry.trace import TraceCollector

__all__ = ["TelemetryConfig", "Telemetry"]


@dataclass(frozen=True)
class TelemetryConfig:
    """What to collect.

    ``trace_messages`` gates the per-message network/fault-drop events
    (the bulkiest stream); ``trace_ecalls`` gates one event per SGX ECALL
    (noisier still — counters are always kept either way); ``profiling``
    arms the wall-clock timers, which never affect the deterministic
    surface.
    """

    tracing: bool = True
    trace_messages: bool = True
    trace_ecalls: bool = False
    profiling: bool = False


class Telemetry:
    """Shared instrumentation context for one simulation run."""

    def __init__(self, config: Optional[TelemetryConfig] = None):
        self.config = config or TelemetryConfig()
        self.registry = MetricsRegistry()
        self.trace: Optional[TraceCollector] = (
            TraceCollector() if self.config.tracing else None
        )
        self.profiler = Profiler(enabled=self.config.profiling)
        self.current_round = 0
        self.current_phase: Optional[str] = None

    # -- registry passthroughs ----------------------------------------------

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None,
        **labels: LabelValue,
    ) -> Histogram:
        if buckets is None:
            return self.registry.histogram(name, **labels)
        return self.registry.histogram(name, buckets, **labels)

    # -- trace helpers -------------------------------------------------------

    def event(
        self,
        name: str,
        node: Optional[int] = None,
        phase: Optional[str] = None,
        **fields: object,
    ) -> None:
        """Emit one trace event stamped with the current round/phase."""
        if self.trace is None:
            return
        self.trace.emit(
            name,
            self.current_round,
            node=node,
            phase=phase if phase is not None else self.current_phase,
            **fields,
        )

    @contextmanager
    def span(
        self,
        name: str,
        node: Optional[int] = None,
        phase: Optional[str] = None,
        **fields: object,
    ) -> Iterator[None]:
        """Begin/end event pair around a block (no-op without tracing)."""
        if self.trace is None:
            yield
            return
        with self.trace.span(
            name,
            self.current_round,
            node=node,
            phase=phase if phase is not None else self.current_phase,
            **fields,
        ):
            yield

    @contextmanager
    def phase(self, phase_name: str) -> Iterator[None]:
        """Engine phase span: sets ``current_phase`` for nested events."""
        previous = self.current_phase
        self.current_phase = phase_name
        try:
            if self.trace is None:
                yield
            else:
                with self.trace.span(
                    "phase", self.current_round, phase=phase_name
                ):
                    yield
        finally:
            self.current_phase = previous

    def begin_round(self, round_number: int) -> None:
        """Advance the telemetry clock; called by the engine per round."""
        self.current_round = round_number
        self.current_phase = None
        self.counter("sim.rounds").inc()
        self.event("round.begin")

    def end_round(self, alive_nodes: int) -> None:
        self.event("round.end", alive=alive_nodes)

    # -- profiling passthrough ----------------------------------------------

    def timer(self, name: str):
        """Wall-clock timer context (inert unless profiling is enabled)."""
        return self.profiler.time(name)
