"""Declarative scenarios and conformance vectors.

The package turns hand-written scenario code into data (the tentpole of
the ROADMAP's conformance-suite goal):

* :mod:`repro.scenario.spec` — the versioned, strictly-validated
  :class:`ScenarioSpec` schema and its dict/JSON loader;
* :mod:`repro.scenario.compile` — spec → :class:`SimulationBundle`
  (shared with the legacy builder shims, so both paths are one path);
* :mod:`repro.scenario.run` — execute a spec and collect its
  deterministic surface;
* :mod:`repro.scenario.catalog` — the committed grid of golden
  scenarios;
* :mod:`repro.scenario.vectors` — checksummed golden vectors
  (``repro vectors generate|verify|list``) that any implementation can
  replay.
"""

from repro.scenario.catalog import CATALOG, catalog_specs, get_spec
from repro.scenario.compile import compile_spec
from repro.scenario.errors import (
    ScenarioSpecError,
    VectorError,
    VectorIntegrityError,
)
from repro.scenario.run import ScenarioArtifacts, artifact_sections, run_scenario
from repro.scenario.spec import (
    SCENARIO_SPEC_VERSION,
    ChurnSpec,
    EngineSpec,
    RapteeOptions,
    ScenarioSpec,
    canonical_spec_json,
    spec_from_dict,
    spec_to_dict,
)
from repro.scenario.vectors import (
    VECTOR_KIND,
    VECTOR_VERSION,
    VectorVerification,
    drift_report,
    generate_vector,
    read_vector,
    verify_vector,
    write_vector,
)

__all__ = [
    "SCENARIO_SPEC_VERSION",
    "ScenarioSpec",
    "ChurnSpec",
    "EngineSpec",
    "RapteeOptions",
    "ScenarioSpecError",
    "spec_from_dict",
    "spec_to_dict",
    "canonical_spec_json",
    "compile_spec",
    "run_scenario",
    "artifact_sections",
    "ScenarioArtifacts",
    "CATALOG",
    "catalog_specs",
    "get_spec",
    "VECTOR_KIND",
    "VECTOR_VERSION",
    "VectorError",
    "VectorIntegrityError",
    "VectorVerification",
    "write_vector",
    "read_vector",
    "generate_vector",
    "verify_vector",
    "drift_report",
]
