"""Compile a :class:`~repro.scenario.spec.ScenarioSpec` into runnable parts.

:func:`compile_spec` is the single build path behind both the legacy
builder functions (now thin shims) and the conformance vector runner: it
dispatches on the spec's protocol to the shared assembly code in
:mod:`repro.experiments.scenarios` and attaches the spec's churn plan
through the engine's public :meth:`~repro.sim.engine.Simulation.set_churn`
seam.  Because the spec nests the very config objects the assembly code
consumes, compiling an ad-hoc shim call and compiling the equivalent
loaded spec run *the same code on the same values* — the byte-identity
the differential tests pin.

The runtime-only sections (fault plan, engine choice) are translated by
:func:`fault_plan_from_spec` / :func:`event_options_from_spec` and wired
by the runner (:mod:`repro.scenario.run`), mirroring the established
``wire_telemetry`` → ``wire_faults`` → ``wire_events`` order.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.crypto.prng import derive_seed
from repro.experiments.scenarios import (
    SimulationBundle,
    _build_brahms_impl,
    _build_raptee_impl,
)
from repro.scenario.spec import ChurnSpec, RapteeOptions, ScenarioSpec
from repro.sim.churn import CatastrophicFailure, ChurnModel, NoChurn, UniformChurn

__all__ = [
    "ArrivalFactory",
    "churn_model_from_spec",
    "compile_spec",
    "event_options_from_spec",
    "fault_plan_from_spec",
    "shard_simulation_from_spec",
]


class ArrivalFactory:
    """Module-level (picklable) node factory for churn arrivals.

    Arrivals join as honest nodes of the scenario's protocol, each with
    its own seed-derived RNG stream and a one-node bootstrap view so it
    gossips in its join round — the same construction the engine's other
    arrival paths use, and snapshot-safe by being a plain class.
    """

    def __init__(self, protocol: str, config, seed: int):
        self.protocol = protocol
        self.config = config
        self.seed = seed

    def __call__(self, node_id: int):
        from repro.sim.node import NodeKind

        rng = random.Random(derive_seed(self.seed, "node", node_id))
        if self.protocol == "brahms":
            from repro.brahms.node import BrahmsNode

            node = BrahmsNode(node_id, NodeKind.HONEST, self.config, rng)
        else:
            from repro.core.node import RapteeNode

            node = RapteeNode(node_id, NodeKind.HONEST, self.config, rng)
        node.seed_view([0])
        return node


def churn_model_from_spec(churn: ChurnSpec) -> Optional[ChurnModel]:
    """The engine churn model for a churn section (``None`` for 'none')."""
    if churn.kind == "none":
        return None
    if churn.kind == "uniform":
        return UniformChurn(leave_rate=churn.leave_rate, join_rate=churn.join_rate)
    if churn.kind == "catastrophic":
        return CatastrophicFailure(at_round=churn.at_round, fraction=churn.fraction)
    raise ValueError(f"unknown churn kind {churn.kind!r}")


def _honest_node_config(spec: ScenarioSpec, bundle: SimulationBundle):
    """The config object churn arrivals are built with.

    Taken from a live honest node rather than re-derived, so overrides
    (``config_override``, RAPTEE feature flags) carry over exactly.
    """
    from repro.core.node import RapteeNode
    from repro.sim.node import NodeKind

    for node in bundle.simulation.nodes.values():
        if node.kind is not NodeKind.HONEST:
            continue
        if spec.protocol == "raptee" and isinstance(node, RapteeNode):
            return node.raptee_config
        if spec.protocol == "brahms":
            return node.config
    raise ValueError(
        f"scenario {spec.name!r} has no honest node to model churn arrivals on"
    )


def compile_spec(spec: ScenarioSpec) -> SimulationBundle:
    """Build the :class:`SimulationBundle` a spec describes.

    Compiles the population/protocol sections; the runtime sections
    (faults, engine) are wired onto the bundle by the runner so the
    telemetry → faults → events layering stays explicit.
    """
    if spec.engine.kind == "shard":
        raise ValueError(
            f"scenario {spec.name!r} selects the shard engine, which builds "
            f"no per-node SimulationBundle; compile it with "
            f"shard_simulation_from_spec() instead"
        )
    if spec.protocol == "brahms":
        bundle = _build_brahms_impl(
            spec.topology,
            spec.seed,
            adversary_strategy=spec.adversary_strategy,
            config_override=spec.brahms,
        )
    else:
        options = spec.raptee or RapteeOptions()
        bundle = _build_raptee_impl(
            spec.topology,
            spec.seed,
            eviction=options.eviction,
            auth_mode=options.auth_mode,
            probe_pulls=options.probe_pulls,
            trusted_exchange_enabled=options.trusted_exchange_enabled,
            eviction_enabled=options.eviction_enabled,
            sketch_unbias_enabled=options.sketch_unbias_enabled,
            provisioning_key_bits=options.provisioning_key_bits,
            with_cycle_accounting=options.with_cycle_accounting,
            cycle_mode=options.cycle_mode,
            adversary_strategy=spec.adversary_strategy,
            config_override=spec.brahms,
            membership=spec.membership,
        )
    churn = churn_model_from_spec(spec.churn)
    if churn is not None:
        factory = None
        if not isinstance(churn, NoChurn) and churn.may_produce_arrivals is not False:
            factory = ArrivalFactory(
                spec.protocol, _honest_node_config(spec, bundle), spec.seed
            )
        bundle.simulation.set_churn(churn, factory)
    return bundle


def shard_simulation_from_spec(spec: ScenarioSpec, workers: int = 1,
                               use_numpy=None, telemetry=None):
    """Compile a ``kind='shard'`` spec into a ready
    :class:`~repro.shard.engine.ShardSimulation` (partition count comes
    from ``spec.engine.shards``).  Raises
    :class:`~repro.shard.compile.ShardUnsupportedError` for features the
    batch engine does not model."""
    from repro.shard.compile import shard_config_from_spec
    from repro.shard.engine import ShardSimulation

    return ShardSimulation(
        shard_config_from_spec(spec),
        shards=spec.engine.shards,
        workers=workers,
        use_numpy=use_numpy,
        telemetry=telemetry,
    )


def fault_plan_from_spec(spec: ScenarioSpec):
    """The :class:`~repro.faults.plan.FaultPlan` for a spec's fault list
    (``None`` when the spec injects no faults)."""
    if not spec.faults:
        return None
    from repro.faults.plan import FaultPlan

    return FaultPlan(list(spec.faults))


def event_options_from_spec(spec: ScenarioSpec):
    """The :class:`~repro.events.EventOptions` for a spec's engine section
    (``None`` for the classic rounds engine)."""
    if spec.engine.kind == "rounds":
        return None
    from repro.events import (
        ConstantLatency,
        EventOptions,
        LatencyConfig,
        parse_latency_model,
        parse_load,
        parse_straggler,
    )

    engine = spec.engine
    latency = (
        parse_latency_model(engine.latency)
        if engine.latency is not None
        else ConstantLatency(0.0)
    )
    return EventOptions(
        seed=spec.seed,
        mode=engine.mode,
        tick_interval=engine.tick_interval,
        latency=LatencyConfig(default=latency),
        load=parse_load(engine.load) if engine.load is not None else None,
        stragglers=(
            parse_straggler(engine.straggler)
            if engine.straggler is not None
            else None
        ),
    )
