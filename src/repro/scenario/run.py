"""Execute a scenario spec and collect its deterministic surface.

:func:`run_scenario` is the vector generator's and conformance runner's
shared engine: compile the spec, wire the instrumentation stack in the
established order (telemetry → faults → events), run, and collect every
artifact the differential suites treat as the determinism contract —
full trace JSONL, metrics CSV, per-round view pollution, final views,
network traffic totals, and the paper's three end metrics.

:func:`artifact_sections` reduces those artifacts to the named, JSON-safe
sections a conformance vector stores (bulky artifacts shrink to sha256
digests; the compact ones are kept verbatim so drift reports can show
*what* changed, not just that something did).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.experiments.runner import RunMetrics, bundle_metrics
from repro.experiments.scenarios import SimulationBundle
from repro.scenario.compile import (
    compile_spec,
    event_options_from_spec,
    fault_plan_from_spec,
)
from repro.scenario.spec import ScenarioSpec, spec_to_dict

__all__ = ["ScenarioArtifacts", "run_scenario", "artifact_sections"]


@dataclass
class ScenarioArtifacts:
    """Everything one scenario run produced, pre-canonicalization."""

    spec: ScenarioSpec
    bundle: SimulationBundle
    trace_jsonl: str
    metrics_csv: str
    final_views: Dict[int, Tuple[int, ...]]
    metrics: RunMetrics
    network_totals: Tuple[int, int, int, int, int, int]


def run_scenario(spec: ScenarioSpec) -> ScenarioArtifacts:
    """Compile and run one spec, returning its full deterministic surface."""
    if spec.rounds < 1:
        raise ValueError(
            f"scenario {spec.name!r} has no round count; only loaded/catalog "
            f"specs (rounds >= 1) are runnable"
        )
    from repro.telemetry import (
        TelemetryConfig,
        metrics_to_csv,
        trace_to_jsonl,
        wire_telemetry,
    )

    bundle = compile_spec(spec)
    telemetry_harness = wire_telemetry(
        bundle, TelemetryConfig(tracing=True, trace_messages=True, trace_ecalls=True)
    )
    plan = fault_plan_from_spec(spec)
    fault_harness = None
    if plan is not None:
        from repro.faults.harness import wire_faults

        fault_harness = wire_faults(bundle, plan, seed=spec.seed)
    events = event_options_from_spec(spec)
    if events is not None:
        from repro.events.harness import wire_events

        wire_events(bundle, events).run(spec.rounds)
    elif fault_harness is not None:
        fault_harness.run(spec.rounds)
    else:
        bundle.run(spec.rounds)

    telemetry = telemetry_harness.telemetry
    simulation = bundle.simulation
    stats = simulation.network.stats
    return ScenarioArtifacts(
        spec=spec,
        bundle=bundle,
        trace_jsonl=trace_to_jsonl(telemetry.trace.events),
        metrics_csv=metrics_to_csv(telemetry.registry),
        final_views={
            node_id: tuple(node.view_ids())
            for node_id, node in sorted(simulation.nodes.items())
        },
        metrics=bundle_metrics(bundle, spec.rounds),
        network_totals=(
            stats.pushes_sent,
            stats.pushes_delivered,
            stats.requests_sent,
            stats.replies_delivered,
            stats.messages_lost,
            stats.bytes_encrypted,
        ),
    )


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _view_trace_section(artifacts: ScenarioArtifacts) -> List[Dict[str, Any]]:
    """Per-round views, canonicalized to JSON-safe types.

    Node IDs become string keys (JSON objects key on strings); kinds use
    their enum names.  Values are the exact binary floats the run
    produced — JSON round-trips them losslessly, so equality is exact.
    """
    rows: List[Dict[str, Any]] = []
    for record in artifacts.bundle.trace.records:
        rows.append(
            {
                "round": record.round_number,
                "byzantine_fraction": {
                    str(node_id): fraction
                    for node_id, fraction in sorted(record.byzantine_fraction.items())
                },
                "by_kind": {
                    kind.name: list(values)
                    for kind, values in sorted(
                        record.by_kind.items(), key=lambda item: item[0].name
                    )
                },
            }
        )
    return rows


def artifact_sections(artifacts: ScenarioArtifacts) -> Dict[str, Any]:
    """The named sections a conformance vector for this run stores."""
    trace = artifacts.trace_jsonl
    metrics_csv = artifacts.metrics_csv
    return {
        "spec": spec_to_dict(artifacts.spec),
        "view_trace": _view_trace_section(artifacts),
        "final_views": {
            str(node_id): list(view)
            for node_id, view in artifacts.final_views.items()
        },
        "trace_digest": {
            "sha256": _sha256_text(trace),
            "lines": trace.count("\n"),
        },
        "metrics_digest": {
            "sha256": _sha256_text(metrics_csv),
            "rows": metrics_csv.count("\n"),
        },
        "pollution": {
            "resilience": artifacts.metrics.resilience,
            "discovery_round": artifacts.metrics.discovery_round,
            "stability_round": artifacts.metrics.stability_round,
            "rounds": artifacts.metrics.rounds,
            "network": {
                "pushes_sent": artifacts.network_totals[0],
                "pushes_delivered": artifacts.network_totals[1],
                "requests_sent": artifacts.network_totals[2],
                "replies_delivered": artifacts.network_totals[3],
                "messages_lost": artifacts.network_totals[4],
                "bytes_encrypted": artifacts.network_totals[5],
            },
        },
    }
