"""Typed errors for the scenario DSL.

Every validation failure in the spec layer raises
:class:`ScenarioSpecError` carrying the *field path* of the offending
entry (``"topology.n_nodes"``, ``"faults[2].kind"``, ``"churn.at_round"``),
so a 300-line spec dict fails with a pointer instead of a bare
``KeyError`` three stack frames deep.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["ScenarioSpecError", "VectorError", "VectorIntegrityError"]


class ScenarioSpecError(ValueError):
    """A scenario spec is structurally or semantically invalid.

    Attributes:
        path: dotted/indexed path of the field that failed validation
            (``None`` when the error is not attributable to one field).
    """

    def __init__(self, message: str, path: Optional[str] = None):
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


class VectorError(RuntimeError):
    """A conformance vector could not be read, written or verified."""


class VectorIntegrityError(VectorError):
    """A vector's stored content does not match its recorded checksums.

    The message names the corrupted section — integrity failures are
    distinct from *drift* (a healthy vector whose replay no longer
    matches), which :func:`repro.scenario.vectors.verify_vector` reports
    without raising.
    """

    def __init__(self, message: str, section: Optional[str] = None):
        self.section = section
        super().__init__(message)
