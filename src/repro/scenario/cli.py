"""Conformance vector CLI: ``python -m repro.scenario <command>`` (also
reachable as ``repro vectors <command>``).

* ``generate`` — run every catalog scenario (or ``--only NAME``s) and
  write the golden vectors into the vector directory;
* ``verify`` — replay every committed vector against the current code
  and report drift (optionally as a JSON report for CI artifacts);
* ``list`` — one line per catalog scenario / committed vector.

Exit codes are part of the contract (pinned by tests): 0 all vectors
match, 1 drift or integrity failure, 2 usage errors (unknown scenario,
missing directory/file).
"""

from __future__ import annotations

# lint: disable-file=purity-print -- this module IS the CLI; like repro.cli,
# reporting to stdout is its job.

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.scenario.catalog import CATALOG, catalog_specs, get_spec
from repro.scenario.errors import ScenarioSpecError, VectorError
from repro.scenario.vectors import (
    drift_report,
    generate_vector,
    read_vector,
    verify_vector,
)
from repro.snapshot.format import SnapshotError

__all__ = ["main", "build_parser", "DEFAULT_VECTOR_DIR", "vector_path"]

#: Repo-relative home of the committed golden vectors.
DEFAULT_VECTOR_DIR = "vectors"

VECTOR_SUFFIX = ".vec"


def vector_path(directory: str, name: str) -> str:
    return os.path.join(directory, f"{name}{VECTOR_SUFFIX}")


def _vector_files(directory: str) -> List[str]:
    return sorted(
        os.path.join(directory, entry)
        for entry in os.listdir(directory)
        if entry.endswith(VECTOR_SUFFIX)
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro vectors", description="conformance vector tooling"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate_parser = subparsers.add_parser(
        "generate", help="run catalog scenarios and write golden vectors"
    )
    generate_parser.add_argument("--dir", default=DEFAULT_VECTOR_DIR,
                                 help="vector directory (default: vectors/)")
    generate_parser.add_argument("--only", action="append", default=None,
                                 metavar="NAME",
                                 help="generate only this scenario "
                                      "(repeatable; default: whole catalog)")

    verify_parser = subparsers.add_parser(
        "verify", help="replay committed vectors and report drift"
    )
    verify_parser.add_argument("--dir", default=DEFAULT_VECTOR_DIR,
                               help="vector directory (default: vectors/)")
    verify_parser.add_argument("--report", default=None, metavar="PATH",
                               help="write a JSON drift report here")

    list_parser = subparsers.add_parser(
        "list", help="list catalog scenarios and committed vectors"
    )
    list_parser.add_argument("--dir", default=DEFAULT_VECTOR_DIR,
                             help="vector directory (default: vectors/)")

    return parser


def _command_generate(args) -> int:
    try:
        if args.only:
            specs = [get_spec(name) for name in args.only]
        else:
            specs = catalog_specs()
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    os.makedirs(args.dir, exist_ok=True)
    for spec in specs:
        path = vector_path(args.dir, spec.name)
        sections = generate_vector(spec, path)
        print(f"generated {path}  "
              f"(trace {sections['trace_digest']['sha256'][:12]}, "
              f"metrics {sections['metrics_digest']['sha256'][:12]})")
    print(f"{len(specs)} vector(s) written to {args.dir}/")
    return 0


def _command_verify(args) -> int:
    if not os.path.isdir(args.dir):
        print(f"error: vector directory {args.dir!r} does not exist",
              file=sys.stderr)
        return 2
    paths = _vector_files(args.dir)
    if not paths:
        print(f"error: no {VECTOR_SUFFIX} files in {args.dir!r}",
              file=sys.stderr)
        return 2
    results = []
    failed = False
    for path in paths:
        try:
            result = verify_vector(path)
        except (VectorError, SnapshotError, ScenarioSpecError) as exc:
            print(f"FAIL  {path}: {exc}")
            failed = True
            continue
        results.append(result)
        if result.ok:
            print(f"ok    {result.name}")
        else:
            failed = True
            drifted = ", ".join(sorted(result.drifted))
            print(f"DRIFT {result.name}: sections [{drifted}]")
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as stream:
            json.dump(drift_report(results), stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"report: {args.report}")
    matched = sum(1 for result in results if result.ok)
    print(f"{matched}/{len(paths)} vector(s) match")
    return 1 if failed else 0


def _command_list(args) -> int:
    committed = set()
    if os.path.isdir(args.dir):
        committed = {
            os.path.basename(path)[: -len(VECTOR_SUFFIX)]
            for path in _vector_files(args.dir)
        }
    for spec in catalog_specs():
        marker = "*" if spec.name in committed else " "
        print(f"{marker} {spec.name:40s} {spec.describe()}")
    extras = committed - {entry["name"] for entry in CATALOG}
    for name in sorted(extras):
        print(f"+ {name:40s} (committed vector not in the catalog)")
    print(f"{len(CATALOG)} catalog scenario(s), {len(committed)} committed "
          f"vector(s) in {args.dir}/ (* = committed, + = extra)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "verify": _command_verify,
        "list": _command_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
