"""Conformance vectors: checksummed golden run records.

A vector file freezes one scenario's deterministic surface — the spec
itself plus the sections :func:`repro.scenario.run.artifact_sections`
produces — inside the versioned snapshot envelope
(:mod:`repro.snapshot.format`), with a sha256 per section recorded in the
envelope header's ``meta``.  That layering gives three distinct failure
modes, each reported distinctly:

* **envelope corruption** — bad magic/truncation/whole-payload checksum,
  raised by the envelope layer as :class:`~repro.snapshot.format
  .SnapshotError` (or :class:`SnapshotVersionError` on a format bump);
* **section corruption** — a section's stored bytes no longer match its
  recorded digest: :class:`~repro.scenario.errors.VectorIntegrityError`
  *naming the section*;
* **drift** — a healthy vector whose scenario, re-run on the current
  code, produces different bytes: reported (not raised) by
  :func:`verify_vector` with per-section expected/actual digests.

Any alternative RAPTEE implementation that can load the spec section and
emit the same sections can replay these vectors — that is the public
conformance suite the ROADMAP asks for.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.scenario.errors import VectorError, VectorIntegrityError
from repro.scenario.run import artifact_sections, run_scenario
from repro.scenario.spec import ScenarioSpec, spec_from_dict
from repro.snapshot.format import read_envelope, write_envelope

__all__ = [
    "VECTOR_KIND",
    "VECTOR_VERSION",
    "VectorVerification",
    "write_vector",
    "read_vector",
    "generate_vector",
    "verify_vector",
    "drift_report",
]

#: Envelope ``kind`` tag for conformance vectors.
VECTOR_KIND = "conformance-vector"
#: Bumped when the *section* layout changes incompatibly (the envelope
#: format itself is versioned separately by the snapshot layer).
VECTOR_VERSION = 1


def _canonical_json(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class VectorVerification:
    """Outcome of re-running one vector's scenario against its record."""

    name: str
    path: str
    #: section -> (recorded digest, fresh digest), for sections that drifted.
    drifted: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: Compact expected/actual values for drifted small sections
    #: (``pollution``, the digest sections) — the drift report's substance.
    details: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.drifted


def write_vector(path: str, sections: Dict[str, Any]) -> None:
    """Write a vector: canonical-JSON sections + per-section sha256 meta."""
    if "spec" not in sections:
        raise VectorError("a conformance vector requires a 'spec' section")
    encoded = {name: _canonical_json(value) for name, value in sections.items()}
    meta = {
        "vector_version": VECTOR_VERSION,
        "scenario": sections["spec"]["name"],
        "spec_version": sections["spec"]["spec_version"],
        "section_sha256": {name: _digest(text) for name, text in encoded.items()},
    }
    write_envelope(path, VECTOR_KIND, meta, {"sections": encoded})


def read_vector(path: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Read a vector back as ``(meta, sections)``, verifying integrity.

    Raises :class:`VectorIntegrityError` naming the first section whose
    stored bytes do not match their recorded digest; envelope-level
    problems (bad magic, truncation, version bump) surface as the
    snapshot layer's own errors.
    """
    header, state = read_envelope(path, expected_kind=VECTOR_KIND)
    meta = header.get("meta", {})
    version = meta.get("vector_version")
    if version != VECTOR_VERSION:
        raise VectorError(
            f"{path} is a version-{version!r} conformance vector; this build "
            f"reads version {VECTOR_VERSION}. Regenerate with "
            f"'repro vectors generate'."
        )
    encoded = state.get("sections") if isinstance(state, dict) else None
    if not isinstance(encoded, dict):
        raise VectorError(f"{path}: malformed vector payload (no sections)")
    recorded = meta.get("section_sha256", {})
    if sorted(recorded) != sorted(encoded):
        raise VectorIntegrityError(
            f"{path}: stored sections {sorted(encoded)} do not match the "
            f"header's digest list {sorted(recorded)}"
        )
    sections: Dict[str, Any] = {}
    for name in sorted(encoded):
        text = encoded[name]
        actual = _digest(text)
        if actual != recorded[name]:
            raise VectorIntegrityError(
                f"{path}: section {name!r} checksum mismatch "
                f"(recorded {recorded[name]}, stored bytes hash to {actual})",
                section=name,
            )
        sections[name] = json.loads(text)
    return meta, sections


def generate_vector(spec: ScenarioSpec, path: str) -> Dict[str, Any]:
    """Run ``spec`` and freeze the result at ``path``; returns the sections."""
    sections = artifact_sections(run_scenario(spec))
    write_vector(path, sections)
    return sections


#: Small sections whose expected/actual values are worth reproducing in a
#: drift report verbatim (the bulky ones are compared by digest only).
_DETAIL_SECTIONS = ("pollution", "trace_digest", "metrics_digest", "spec")


def verify_vector(path: str) -> VectorVerification:
    """Replay a vector's scenario on the current code and diff the record.

    Integrity problems raise; behavioural drift is *returned* so callers
    (the CLI, the pytest runner) can aggregate a report over many vectors.
    """
    meta, sections = read_vector(path)
    spec = spec_from_dict(sections["spec"])
    if spec.name != meta.get("scenario"):
        raise VectorError(
            f"{path}: header names scenario {meta.get('scenario')!r} but the "
            f"spec section is {spec.name!r}"
        )
    fresh = artifact_sections(run_scenario(spec))
    result = VectorVerification(name=spec.name, path=path)
    for name in sorted(set(sections) | set(fresh)):
        recorded_text = _canonical_json(sections[name]) if name in sections else ""
        fresh_text = _canonical_json(fresh[name]) if name in fresh else ""
        if recorded_text == fresh_text:
            continue
        result.drifted[name] = (_digest(recorded_text), _digest(fresh_text))
        if name in _DETAIL_SECTIONS:
            result.details[name] = {
                "recorded": sections.get(name),
                "actual": fresh.get(name),
            }
    return result


def drift_report(results: List[VectorVerification]) -> Dict[str, Any]:
    """A JSON-able report over many verifications (the CI artifact)."""
    return {
        "vector_version": VECTOR_VERSION,
        "total": len(results),
        "drifted": sum(1 for result in results if not result.ok),
        "vectors": [
            {
                "name": result.name,
                "path": result.path,
                "ok": result.ok,
                "drifted_sections": {
                    name: {"recorded_sha256": pair[0], "actual_sha256": pair[1]}
                    for name, pair in result.drifted.items()
                },
                "details": result.details,
            }
            for result in results
        ],
    }
