"""The declarative scenario spec: one experiment as pure data.

A :class:`ScenarioSpec` captures everything the legacy scenario functions
in :mod:`repro.experiments.scenarios` took as Python arguments — topology,
Brahms/RAPTEE parameters, adversary mix, churn plan, fault plan, SGX cost
model, membership config, and engine choice — as a frozen, validated
dataclass that also round-trips losslessly through plain dicts/JSON
(:func:`spec_from_dict` / :func:`spec_to_dict`).

Design rules:

* **Strict loading.**  :func:`spec_from_dict` rejects unknown keys, wrong
  types and out-of-range values with a typed
  :class:`~repro.scenario.errors.ScenarioSpecError` carrying the field
  path (``"topology.n_nodes"``, ``"faults[2].kind"``) — never a bare
  ``KeyError``.
* **Canonical form.**  :func:`spec_to_dict` always emits every field, so
  ``spec_to_dict(spec_from_dict(d))`` is a fixpoint and
  :func:`canonical_spec_json` is a stable digest surface for conformance
  vectors.
* **Versioning.**  :data:`SCENARIO_SPEC_VERSION` is embedded in every
  spec and checked on load; incompatible schema changes bump it.
* **Reuse, don't mirror.**  The spec nests the existing validated config
  dataclasses (:class:`~repro.experiments.scenarios.TopologySpec`,
  :class:`~repro.brahms.config.BrahmsConfig`,
  :class:`~repro.membership.service.MembershipConfig`, the
  :mod:`repro.faults.plan` fault classes, the eviction policies) rather
  than re-declaring their fields, so a spec can never drift from what the
  builders actually accept.
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Type

from repro.brahms.config import BrahmsConfig
from repro.core.eviction import AdaptiveEviction, EvictionPolicy, FixedEviction
from repro.faults.plan import (
    MEMBERSHIP_FAULTS,
    SGX_FAULTS,
    AttestationOutageFault,
    CrashRestartFault,
    DeviceRevocationFault,
    EclipseFault,
    EnclaveCrashFault,
    EpochRotationFault,
    Fault,
    LinkFault,
    LossBurstFault,
    OmissionFault,
    PartitionFault,
    ProvisionerReplicaCrashFault,
    ProvisioningFlakinessFault,
    RevocationStormFault,
    RoundWindow,
    SealedBlobCorruptionFault,
)
from repro.membership.service import MembershipConfig
from repro.scenario.errors import ScenarioSpecError

# TopologySpec lives with the legacy builders; importing it here is safe
# (experiments.scenarios only reaches back into repro.scenario lazily).
from repro.experiments.scenarios import TopologySpec

__all__ = [
    "SCENARIO_SPEC_VERSION",
    "FAULT_KINDS",
    "ChurnSpec",
    "EngineSpec",
    "RapteeOptions",
    "ScenarioSpec",
    "spec_from_dict",
    "spec_to_dict",
    "canonical_spec_json",
]

#: Bumped whenever the spec schema changes incompatibly; loads of any
#: other version are rejected (the conformance suite is versioned data).
SCENARIO_SPEC_VERSION = 1

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Dict-form discriminator -> fault class, the loader's registry.
FAULT_KINDS: Dict[str, Type[Fault]] = {
    "link": LinkFault,
    "partition": PartitionFault,
    "eclipse": EclipseFault,
    "loss-burst": LossBurstFault,
    "crash-restart": CrashRestartFault,
    "omission": OmissionFault,
    "attestation-outage": AttestationOutageFault,
    "provisioning-flakiness": ProvisioningFlakinessFault,
    "enclave-crash": EnclaveCrashFault,
    "sealed-blob-corruption": SealedBlobCorruptionFault,
    "device-revocation": DeviceRevocationFault,
    "provisioner-replica-crash": ProvisionerReplicaCrashFault,
    "epoch-rotation": EpochRotationFault,
    "revocation-storm": RevocationStormFault,
}

_FAULT_NAMES: Dict[Type[Fault], str] = {cls: name for name, cls in FAULT_KINDS.items()}


# ---------------------------------------------------------------------------
# Typed low-level checkers (all raise ScenarioSpecError with the field path)
# ---------------------------------------------------------------------------

def _check_int(value: Any, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioSpecError(f"expected an integer, got {value!r}", path)
    return value


def _check_number(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioSpecError(f"expected a number, got {value!r}", path)
    return float(value)


def _check_bool(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        raise ScenarioSpecError(f"expected a boolean, got {value!r}", path)
    return value


def _check_str(value: Any, path: str) -> str:
    if not isinstance(value, str):
        raise ScenarioSpecError(f"expected a string, got {value!r}", path)
    return value


def _check_mapping(value: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ScenarioSpecError(f"expected a mapping, got {type(value).__name__}", path)
    for key in value:
        if not isinstance(key, str):
            raise ScenarioSpecError(f"non-string key {key!r}", path)
    return value


def _check_int_list(value: Any, path: str) -> List[int]:
    if not isinstance(value, (list, tuple)):
        raise ScenarioSpecError(f"expected a list of integers, got {value!r}", path)
    return [_check_int(item, f"{path}[{index}]") for index, item in enumerate(value)]


def _optional(checker: Callable[[Any, str], Any]) -> Callable[[Any, str], Any]:
    def check(value: Any, path: str) -> Any:
        return None if value is None else checker(value, path)

    return check


def _load_fields(
    data: Mapping[str, Any],
    path: str,
    checkers: Mapping[str, Callable[[Any, str], Any]],
    required: Tuple[str, ...] = (),
) -> Dict[str, Any]:
    """Strictly type-check a section dict against its field checkers."""
    data = _check_mapping(data, path)
    for key in data:
        if key not in checkers:
            raise ScenarioSpecError("unknown field", f"{path}.{key}")
    for key in required:
        if key not in data:
            raise ScenarioSpecError("required field is missing", f"{path}.{key}")
    return {
        key: checkers[key](value, f"{path}.{key}") for key, value in data.items()
    }


def _construct(cls: type, kwargs: Dict[str, Any], path: str):
    """Build a validated config dataclass, mapping its ValueError onto the
    offending field path when the message names the field (the project's
    config classes all lead with the field name)."""
    try:
        return cls(**kwargs)
    except ValueError as exc:
        message = str(exc)
        first = message.split()[0] if message.split() else ""
        names = {spec_field.name for spec_field in dataclasses.fields(cls)}
        where = f"{path}.{first}" if first in names else path
        raise ScenarioSpecError(message, where) from exc


# ---------------------------------------------------------------------------
# Sub-specs with no existing dataclass to reuse
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChurnSpec:
    """Protocol-membership churn plan (distinct from trusted-set churn,
    which rides on :class:`MembershipConfig.join_rate`/``leave_rate``).

    Kinds map onto :mod:`repro.sim.churn`:

    * ``none`` — static membership (the paper's evaluation setting);
    * ``uniform`` — per-round ``leave_rate`` departures / ``join_rate``
      arrivals (:class:`~repro.sim.churn.UniformChurn`);
    * ``catastrophic`` — kill ``fraction`` of the population at
      ``at_round`` (:class:`~repro.sim.churn.CatastrophicFailure`).
    """

    kind: str = "none"
    leave_rate: float = 0.0
    join_rate: float = 0.0
    at_round: int = 0
    fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("none", "uniform", "catastrophic"):
            raise ScenarioSpecError(
                f"unknown churn kind {self.kind!r} "
                f"(expected none, uniform or catastrophic)",
                "churn.kind",
            )
        if self.kind == "none":
            if self.leave_rate or self.join_rate or self.at_round or self.fraction:
                raise ScenarioSpecError(
                    "churn kind 'none' takes no parameters", "churn"
                )
        elif self.kind == "uniform":
            if not 0.0 <= self.leave_rate < 1.0:
                raise ScenarioSpecError("leave_rate must be in [0, 1)", "churn.leave_rate")
            if self.join_rate < 0.0:
                raise ScenarioSpecError("join_rate must be non-negative", "churn.join_rate")
            if self.at_round or self.fraction:
                raise ScenarioSpecError(
                    "uniform churn takes leave_rate/join_rate only", "churn"
                )
        else:  # catastrophic
            if self.at_round < 1:
                raise ScenarioSpecError(
                    "catastrophic churn needs at_round >= 1", "churn.at_round"
                )
            if not 0.0 < self.fraction < 1.0:
                raise ScenarioSpecError("fraction must be in (0, 1)", "churn.fraction")
            if self.leave_rate or self.join_rate:
                raise ScenarioSpecError(
                    "catastrophic churn takes at_round/fraction only", "churn"
                )


@dataclass(frozen=True)
class EngineSpec:
    """Which clock drives the run, and its knobs.

    ``kind='rounds'`` is the classic lockstep engine.  ``kind='events'``
    selects :mod:`repro.events`; ``latency``/``load``/``straggler`` use
    the same compact string grammar as the CLI flags
    (``lognormal:40:0.6``, ``40:30``, ``0.1:8``) so specs stay plain
    JSON-typed data.  ``kind='shard'`` selects the bulk-synchronous
    struct-of-arrays engine (:mod:`repro.shard`); ``shards`` partitions
    the population — a pure performance knob, since the shard engine's
    ordering barrier makes every output byte-identical across shard
    counts (``shards`` is only meaningful there and must stay 1 for the
    other kinds).
    """

    kind: str = "rounds"
    mode: str = "continuous"
    tick_interval: float = 1.0
    latency: Optional[str] = None
    load: Optional[str] = None
    straggler: Optional[str] = None
    shards: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("rounds", "events", "shard"):
            raise ScenarioSpecError(
                f"unknown engine kind {self.kind!r} "
                f"(expected rounds, events or shard)",
                "engine.kind",
            )
        if isinstance(self.shards, bool) or not isinstance(self.shards, int) \
                or self.shards < 1:
            raise ScenarioSpecError(
                "shards must be a positive integer", "engine.shards"
            )
        if self.kind != "shard" and self.shards != 1:
            raise ScenarioSpecError(
                "shards requires the shard engine", "engine.shards"
            )
        if self.mode not in ("barrier", "continuous"):
            raise ScenarioSpecError(
                f"unknown engine mode {self.mode!r} (expected barrier or continuous)",
                "engine.mode",
            )
        if self.tick_interval <= 0:
            raise ScenarioSpecError("tick_interval must be positive", "engine.tick_interval")
        if self.kind in ("rounds", "shard"):
            for name in ("latency", "load", "straggler"):
                if getattr(self, name) is not None:
                    raise ScenarioSpecError(
                        f"{name} requires the events engine", f"engine.{name}"
                    )
            return
        # Events engine: validate the compact grammars eagerly so a bad
        # spec fails at load time, not mid-run.
        from repro.events import parse_latency_model, parse_load, parse_straggler

        parsers = {
            "latency": parse_latency_model,
            "load": parse_load,
            "straggler": parse_straggler,
        }
        for name, parser in parsers.items():
            value = getattr(self, name)
            if value is None:
                continue
            try:
                parser(value)
            except ValueError as exc:
                raise ScenarioSpecError(str(exc), f"engine.{name}") from exc
        if self.mode == "barrier":
            for name in ("latency", "load", "straggler"):
                if getattr(self, name) is not None:
                    raise ScenarioSpecError(
                        f"barrier mode reproduces the round engine and "
                        f"cannot take a {name} model",
                        f"engine.{name}",
                    )


@dataclass(frozen=True)
class RapteeOptions:
    """The RAPTEE-only builder knobs (§IV mechanisms + SGX cost model).

    Mirrors the keyword surface of the legacy
    ``build_raptee_simulation`` exactly; see that builder for semantics.
    ``with_cycle_accounting``/``cycle_mode`` select the SGX cycle-cost
    model of :mod:`repro.sgx.cycles` (Table 1).
    """

    eviction: EvictionPolicy = AdaptiveEviction()
    auth_mode: str = "hmac"
    probe_pulls: int = 0
    trusted_exchange_enabled: bool = True
    eviction_enabled: bool = True
    sketch_unbias_enabled: bool = False
    provisioning_key_bits: int = 384
    with_cycle_accounting: bool = False
    cycle_mode: str = "sgx"

    def __post_init__(self) -> None:
        if not isinstance(self.eviction, EvictionPolicy):
            raise ScenarioSpecError(
                f"expected an EvictionPolicy, got {type(self.eviction).__name__}",
                "raptee.eviction",
            )
        if self.auth_mode not in ("hmac", "aes-ctr"):
            raise ScenarioSpecError(
                f"unknown auth_mode {self.auth_mode!r}", "raptee.auth_mode"
            )
        if self.probe_pulls < 0:
            raise ScenarioSpecError("probe_pulls must be non-negative", "raptee.probe_pulls")
        if self.provisioning_key_bits < 128:
            raise ScenarioSpecError(
                "provisioning_key_bits must be at least 128",
                "raptee.provisioning_key_bits",
            )
        if self.cycle_mode not in ("sgx", "standard"):
            raise ScenarioSpecError(
                f"cycle_mode must be 'sgx' or 'standard', got {self.cycle_mode!r}",
                "raptee.cycle_mode",
            )


# ---------------------------------------------------------------------------
# The top-level spec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative workload, ready to compile and run.

    ``rounds=0`` means "unspecified" and is only legal for in-memory specs
    created by the legacy builder shims (which never run the spec
    themselves); loaded and catalogued specs always carry a positive round
    count, which is also what churn/fault round validation checks against.
    """

    name: str
    protocol: str
    seed: int
    topology: TopologySpec
    rounds: int = 0
    spec_version: int = SCENARIO_SPEC_VERSION
    adversary_strategy: str = "adaptive_balanced"
    brahms: Optional[BrahmsConfig] = None
    raptee: Optional[RapteeOptions] = None
    membership: Optional[MembershipConfig] = None
    churn: ChurnSpec = ChurnSpec()
    faults: Tuple[Fault, ...] = ()
    engine: EngineSpec = EngineSpec()

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _NAME_PATTERN.match(self.name):
            raise ScenarioSpecError(
                f"name must match {_NAME_PATTERN.pattern}, got {self.name!r}",
                "name",
            )
        if self.spec_version != SCENARIO_SPEC_VERSION:
            raise ScenarioSpecError(
                f"spec_version {self.spec_version!r} is not supported by this "
                f"build (expected {SCENARIO_SPEC_VERSION}); regenerate the "
                f"spec or run it with the matching version of repro",
                "spec_version",
            )
        if self.protocol not in ("brahms", "raptee"):
            raise ScenarioSpecError(
                f"unknown protocol {self.protocol!r} (expected brahms or raptee)",
                "protocol",
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int) or self.seed < 0:
            raise ScenarioSpecError("seed must be a non-negative integer", "seed")
        if isinstance(self.rounds, bool) or not isinstance(self.rounds, int) or self.rounds < 0:
            raise ScenarioSpecError("rounds must be a non-negative integer", "rounds")
        if not isinstance(self.topology, TopologySpec):
            raise ScenarioSpecError(
                f"expected a TopologySpec, got {type(self.topology).__name__}",
                "topology",
            )
        if self.adversary_strategy not in ("adaptive_balanced", "balanced", "targeted"):
            raise ScenarioSpecError(
                f"unknown adversary strategy {self.adversary_strategy!r}",
                "adversary_strategy",
            )
        if self.brahms is not None:
            if not isinstance(self.brahms, BrahmsConfig):
                raise ScenarioSpecError(
                    f"expected a BrahmsConfig, got {type(self.brahms).__name__}",
                    "brahms",
                )
            if self.brahms.view_size >= self.topology.n_nodes:
                raise ScenarioSpecError(
                    f"view_size {self.brahms.view_size} must be smaller than "
                    f"n_nodes {self.topology.n_nodes}",
                    "brahms.view_size",
                )
        if self.protocol == "brahms":
            if self.raptee is not None:
                raise ScenarioSpecError(
                    "raptee options require protocol 'raptee'", "raptee"
                )
            if self.membership is not None:
                raise ScenarioSpecError(
                    "membership requires protocol 'raptee'", "membership"
                )
            if self.topology.trusted_fraction or self.topology.poisoned_fraction:
                raise ScenarioSpecError(
                    "trusted/poisoned fractions require protocol 'raptee'",
                    "topology.trusted_fraction",
                )
        if self.raptee is not None and not isinstance(self.raptee, RapteeOptions):
            raise ScenarioSpecError(
                f"expected RapteeOptions, got {type(self.raptee).__name__}",
                "raptee",
            )
        if self.membership is not None and not isinstance(self.membership, MembershipConfig):
            raise ScenarioSpecError(
                f"expected a MembershipConfig, got {type(self.membership).__name__}",
                "membership",
            )
        if not isinstance(self.churn, ChurnSpec):
            raise ScenarioSpecError(
                f"expected a ChurnSpec, got {type(self.churn).__name__}", "churn"
            )
        if (
            self.churn.kind == "catastrophic"
            and self.rounds
            and self.churn.at_round > self.rounds
        ):
            raise ScenarioSpecError(
                f"churn round {self.churn.at_round} is out of range for a "
                f"{self.rounds}-round scenario",
                "churn.at_round",
            )
        if not isinstance(self.engine, EngineSpec):
            raise ScenarioSpecError(
                f"expected an EngineSpec, got {type(self.engine).__name__}", "engine"
            )
        for index, fault in enumerate(self.faults):
            where = f"faults[{index}]"
            if not isinstance(fault, Fault):
                raise ScenarioSpecError(
                    f"expected a Fault, got {type(fault).__name__}", where
                )
            try:
                fault.validate()
            except ValueError as exc:
                raise ScenarioSpecError(str(exc), where) from exc
            if isinstance(fault, SGX_FAULTS) and self.protocol != "raptee":
                raise ScenarioSpecError(
                    f"{type(fault).__name__} requires protocol 'raptee'", where
                )
            if isinstance(fault, MEMBERSHIP_FAULTS) and self.membership is None:
                raise ScenarioSpecError(
                    f"{type(fault).__name__} requires a membership config", where
                )

    def describe(self) -> str:
        """A one-line human summary (the ``vectors list`` row)."""
        topo = self.topology
        parts = [
            f"{self.protocol}",
            f"N={topo.n_nodes}",
            f"f={topo.byzantine_fraction:g}",
        ]
        if topo.trusted_fraction:
            parts.append(f"t={topo.trusted_fraction:g}")
        if topo.poisoned_fraction:
            parts.append(f"poisoned={topo.poisoned_fraction:g}")
        if self.rounds:
            parts.append(f"rounds={self.rounds}")
        if self.engine.kind != "rounds":
            parts.append(f"engine=events/{self.engine.mode}")
        if self.churn.kind != "none":
            parts.append(f"churn={self.churn.kind}")
        if self.faults:
            parts.append(f"faults={len(self.faults)}")
        if self.membership is not None:
            parts.append("membership")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# dict <-> spec conversion
# ---------------------------------------------------------------------------

_TOPOLOGY_CHECKERS = {
    "n_nodes": _check_int,
    "byzantine_fraction": _check_number,
    "trusted_fraction": _check_number,
    "poisoned_fraction": _check_number,
    "view_ratio": _check_number,
    "loss_rate": _check_number,
    "transport_encryption": _check_bool,
}

_BRAHMS_CHECKERS = {
    "view_size": _check_int,
    "sample_size": _check_int,
    "alpha": _check_number,
    "beta": _check_number,
    "gamma": _check_number,
    "blocking_enabled": _check_bool,
    "validation_period": _check_int,
    "push_limit": _optional(_check_int),
}

_MEMBERSHIP_CHECKERS = {
    "enabled": _check_bool,
    "replica_count": _check_int,
    "gossip_fanout": _check_int,
    "service_contacts": _check_int,
    "staleness_bound": _check_int,
    "join_rate": _check_number,
    "leave_rate": _check_number,
    "rotate_on_leave": _check_bool,
}

_CHURN_CHECKERS = {
    "kind": _check_str,
    "leave_rate": _check_number,
    "join_rate": _check_number,
    "at_round": _check_int,
    "fraction": _check_number,
}

_ENGINE_CHECKERS = {
    "kind": _check_str,
    "mode": _check_str,
    "tick_interval": _check_number,
    "latency": _optional(_check_str),
    "load": _optional(_check_str),
    "straggler": _optional(_check_str),
    "shards": _check_int,
}

_RAPTEE_CHECKERS = {
    "eviction": _check_mapping,
    "auth_mode": _check_str,
    "probe_pulls": _check_int,
    "trusted_exchange_enabled": _check_bool,
    "eviction_enabled": _check_bool,
    "sketch_unbias_enabled": _check_bool,
    "provisioning_key_bits": _check_int,
    "with_cycle_accounting": _check_bool,
    "cycle_mode": _check_str,
}


def _eviction_from_dict(data: Any, path: str) -> EvictionPolicy:
    data = _check_mapping(data, path)
    kind = _check_str(data.get("kind", ""), f"{path}.kind")
    if kind == "fixed":
        kwargs = _load_fields(
            {k: v for k, v in data.items() if k != "kind"},
            path,
            {"value": _check_number},
            required=("value",),
        )
        return _construct(FixedEviction, kwargs, path)
    if kind == "adaptive":
        kwargs = _load_fields(
            {k: v for k, v in data.items() if k != "kind"},
            path,
            {
                "low_share": _check_number,
                "high_share": _check_number,
                "low_rate": _check_number,
                "high_rate": _check_number,
            },
        )
        return _construct(AdaptiveEviction, kwargs, path)
    raise ScenarioSpecError(
        f"unknown eviction kind {kind!r} (expected fixed or adaptive)",
        f"{path}.kind",
    )


def _eviction_to_dict(policy: EvictionPolicy) -> Dict[str, Any]:
    if isinstance(policy, FixedEviction):
        return {"kind": "fixed", "value": policy.value}
    if isinstance(policy, AdaptiveEviction):
        return {
            "kind": "adaptive",
            "low_share": policy.low_share,
            "high_share": policy.high_share,
            "low_rate": policy.low_rate,
            "high_rate": policy.high_rate,
        }
    raise ScenarioSpecError(
        f"eviction policy {type(policy).__name__} has no dict form "
        f"(only fixed/adaptive policies are serializable)",
        "raptee.eviction",
    )


def _window_from_dict(data: Any, path: str) -> RoundWindow:
    kwargs = _load_fields(
        data, path, {"start": _check_int, "end": _check_int},
        required=("start", "end"),
    )
    return _construct(RoundWindow, kwargs, path)


def _fault_field_from_dict(value: Any, type_name: str, path: str) -> Any:
    if "RoundWindow" in type_name:
        return _window_from_dict(value, path)
    if "FrozenSet" in type_name:
        return frozenset(_check_int_list(value, path))
    if "Tuple" in type_name:
        return tuple(_check_int_list(value, path))
    if type_name == "bool":
        return _check_bool(value, path)
    if type_name == "int":
        return _check_int(value, path)
    if type_name == "float":
        return _check_number(value, path)
    if type_name == "str":
        return _check_str(value, path)
    raise ScenarioSpecError(f"unsupported fault field type {type_name!r}", path)


def _fault_from_dict(data: Any, path: str) -> Fault:
    data = _check_mapping(data, path)
    if "kind" not in data:
        raise ScenarioSpecError("required field is missing", f"{path}.kind")
    kind = _check_str(data["kind"], f"{path}.kind")
    if kind not in FAULT_KINDS:
        raise ScenarioSpecError(
            f"unknown fault kind {kind!r} (expected one of: "
            f"{', '.join(sorted(FAULT_KINDS))})",
            f"{path}.kind",
        )
    cls = FAULT_KINDS[kind]
    fault_fields = {f.name: f for f in dataclasses.fields(cls)}
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key == "kind":
            continue
        if key not in fault_fields:
            raise ScenarioSpecError("unknown field", f"{path}.{key}")
        kwargs[key] = _fault_field_from_dict(
            value, str(fault_fields[key].type), f"{path}.{key}"
        )
    for name, spec_field in fault_fields.items():
        required = (
            spec_field.default is dataclasses.MISSING
            and spec_field.default_factory is dataclasses.MISSING
        )
        if required and name not in kwargs:
            raise ScenarioSpecError("required field is missing", f"{path}.{name}")
    fault = _construct(cls, kwargs, path)
    try:
        fault.validate()
    except ValueError as exc:
        raise ScenarioSpecError(str(exc), path) from exc
    return fault


def _fault_to_dict(fault: Fault) -> Dict[str, Any]:
    kind = _FAULT_NAMES.get(type(fault))
    if kind is None:
        raise ScenarioSpecError(
            f"fault {type(fault).__name__} has no dict form", "faults"
        )
    payload: Dict[str, Any] = {"kind": kind}
    for spec_field in dataclasses.fields(type(fault)):
        value = getattr(fault, spec_field.name)
        if isinstance(value, RoundWindow):
            value = {"start": value.start, "end": value.end}
        elif isinstance(value, frozenset):
            value = sorted(value)
        elif isinstance(value, tuple):
            value = list(value)
        payload[spec_field.name] = value
    return payload


def spec_from_dict(data: Mapping[str, Any]) -> ScenarioSpec:
    """Load and strictly validate a scenario spec from a plain dict.

    Optional sections may be omitted (their defaults apply); present
    sections are checked key-by-key, and every failure raises
    :class:`ScenarioSpecError` naming the field path.
    """
    top_checkers = {
        "name": _check_str,
        "spec_version": _check_int,
        "protocol": _check_str,
        "seed": _check_int,
        "rounds": _check_int,
        "adversary_strategy": _check_str,
        "topology": _check_mapping,
        "brahms": _optional(_check_mapping),
        "raptee": _optional(_check_mapping),
        "membership": _optional(_check_mapping),
        "churn": _check_mapping,
        "engine": _check_mapping,
        "faults": lambda value, path: value,
    }
    fields = _load_fields(
        data, "spec", top_checkers,
        required=("name", "protocol", "seed", "rounds", "topology"),
    )
    # Strip the "spec." prefix the generic loader added: top-level fields
    # are addressed bare ("name", not "spec.name").
    if fields["rounds"] < 1:
        raise ScenarioSpecError("rounds must be a positive integer", "rounds")

    topology = _construct(
        TopologySpec,
        _load_fields(fields["topology"], "topology", _TOPOLOGY_CHECKERS),
        "topology",
    )
    brahms = None
    if fields.get("brahms") is not None:
        brahms = _construct(
            BrahmsConfig,
            _load_fields(fields["brahms"], "brahms", _BRAHMS_CHECKERS),
            "brahms",
        )
    raptee = None
    if fields.get("raptee") is not None:
        raptee_kwargs = _load_fields(fields["raptee"], "raptee", _RAPTEE_CHECKERS)
        if "eviction" in raptee_kwargs:
            raptee_kwargs["eviction"] = _eviction_from_dict(
                raptee_kwargs["eviction"], "raptee.eviction"
            )
        raptee = RapteeOptions(**raptee_kwargs)
    membership = None
    if fields.get("membership") is not None:
        membership = _construct(
            MembershipConfig,
            _load_fields(fields["membership"], "membership", _MEMBERSHIP_CHECKERS),
            "membership",
        )
    churn = ChurnSpec(**_load_fields(fields.get("churn", {}), "churn", _CHURN_CHECKERS))
    engine = EngineSpec(
        **_load_fields(fields.get("engine", {}), "engine", _ENGINE_CHECKERS)
    )
    faults_data = fields.get("faults", [])
    if not isinstance(faults_data, (list, tuple)):
        raise ScenarioSpecError(
            f"expected a list of faults, got {type(faults_data).__name__}",
            "faults",
        )
    faults = tuple(
        _fault_from_dict(entry, f"faults[{index}]")
        for index, entry in enumerate(faults_data)
    )
    return ScenarioSpec(
        name=fields["name"],
        spec_version=fields.get("spec_version", SCENARIO_SPEC_VERSION),
        protocol=fields["protocol"],
        seed=fields["seed"],
        rounds=fields["rounds"],
        adversary_strategy=fields.get("adversary_strategy", "adaptive_balanced"),
        topology=topology,
        brahms=brahms,
        raptee=raptee,
        membership=membership,
        churn=churn,
        faults=faults,
        engine=engine,
    )


def spec_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """The canonical (every-field) dict form of a spec.

    ``spec_to_dict`` and :func:`spec_from_dict` are exact inverses, and
    ``spec_to_dict`` of a loaded spec is a fixpoint — the property the
    round-trip tests pin.
    """
    return {
        "name": spec.name,
        "spec_version": spec.spec_version,
        "protocol": spec.protocol,
        "seed": spec.seed,
        "rounds": spec.rounds,
        "adversary_strategy": spec.adversary_strategy,
        "topology": dataclasses.asdict(spec.topology),
        "brahms": None if spec.brahms is None else dataclasses.asdict(spec.brahms),
        "raptee": None
        if spec.raptee is None
        else {
            "eviction": _eviction_to_dict(spec.raptee.eviction),
            "auth_mode": spec.raptee.auth_mode,
            "probe_pulls": spec.raptee.probe_pulls,
            "trusted_exchange_enabled": spec.raptee.trusted_exchange_enabled,
            "eviction_enabled": spec.raptee.eviction_enabled,
            "sketch_unbias_enabled": spec.raptee.sketch_unbias_enabled,
            "provisioning_key_bits": spec.raptee.provisioning_key_bits,
            "with_cycle_accounting": spec.raptee.with_cycle_accounting,
            "cycle_mode": spec.raptee.cycle_mode,
        },
        "membership": None
        if spec.membership is None
        else dataclasses.asdict(spec.membership),
        "churn": dataclasses.asdict(spec.churn),
        "faults": [_fault_to_dict(fault) for fault in spec.faults],
        "engine": dataclasses.asdict(spec.engine),
    }


def canonical_spec_json(spec: ScenarioSpec) -> str:
    """Deterministic JSON form: sorted keys, compact separators."""
    return json.dumps(spec_to_dict(spec), sort_keys=True, separators=(",", ":"))
