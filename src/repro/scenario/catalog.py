"""The committed conformance catalog: every golden vector's spec, as data.

Each entry is a plain dict in exactly the format
:func:`repro.scenario.spec.spec_from_dict` loads — the catalog *is* the
first consumer of the declarative format, so every load-path regression
shows up here before it can reach an external implementation.

The grid follows the paper's evaluation axes at test scale (§V-B/§VI):
Byzantine fraction f, trusted fraction t, poisoned injections, adversary
strategies, message loss, protocol churn, network/SGX/membership fault
drills, dynamic trusted-set membership, and both engines (lockstep
rounds; event-driven barrier and continuous with latency, load and
straggler models).  Populations are 40-80 nodes and 6 rounds so the
whole suite replays in seconds — pollution *dynamics* at this scale are
not the paper's numbers, but their byte-exact reproducibility is what a
conformance vector pins.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.scenario.spec import ScenarioSpec, spec_from_dict

__all__ = ["CATALOG", "catalog_specs", "get_spec"]


def _brahms(name: str, seed: int, *, n_nodes: int = 50, f: float = 0.10,
            rounds: int = 6, **extra: Any) -> Dict[str, Any]:
    topology = {"n_nodes": n_nodes, "byzantine_fraction": f, "view_ratio": 0.10}
    topology.update(extra.pop("topology", {}))
    spec = {
        "name": name,
        "protocol": "brahms",
        "seed": seed,
        "rounds": rounds,
        "topology": topology,
    }
    spec.update(extra)
    return spec


def _raptee(name: str, seed: int, *, n_nodes: int = 40, f: float = 0.10,
            t: float = 0.10, rounds: int = 6, **extra: Any) -> Dict[str, Any]:
    topology = {
        "n_nodes": n_nodes,
        "byzantine_fraction": f,
        "trusted_fraction": t,
        "view_ratio": 0.10,
    }
    topology.update(extra.pop("topology", {}))
    spec = {
        "name": name,
        "protocol": "raptee",
        "seed": seed,
        "rounds": rounds,
        "topology": topology,
    }
    spec.update(extra)
    return spec


_WINDOW_2_4 = {"start": 2, "end": 4}

CATALOG: Tuple[Dict[str, Any], ...] = (
    # --- Brahms baseline: the f sweep behind Fig. 3's collapse curve ----
    _brahms("brahms-f05", 101, f=0.05),
    _brahms("brahms-f10", 102, f=0.10),
    _brahms("brahms-f20", 103, f=0.20),
    _brahms("brahms-f30", 104, f=0.30),
    _brahms("brahms-lossy", 105, topology={"loss_rate": 0.05}),
    _brahms("brahms-n80", 106, n_nodes=80, topology={"view_ratio": 0.08}),
    # --- Adversary strategy mixes --------------------------------------
    _brahms("brahms-adversary-balanced", 107, f=0.20,
            adversary_strategy="balanced"),
    # ("targeted" needs per-victim flood lists the builders don't carry, so
    # the catalog covers the two builder-reachable strategies.)
    _brahms("brahms-adversary-balanced-f30", 108, f=0.30,
            adversary_strategy="balanced"),
    # --- Protocol churn ------------------------------------------------
    _brahms("brahms-churn-uniform", 109,
            churn={"kind": "uniform", "leave_rate": 0.02, "join_rate": 0.04}),
    _brahms("brahms-churn-leave-only", 110,
            churn={"kind": "uniform", "leave_rate": 0.05, "join_rate": 0.0}),
    _brahms("brahms-churn-catastrophic", 111,
            churn={"kind": "catastrophic", "at_round": 3, "fraction": 0.2}),
    # --- Network fault drills ------------------------------------------
    _brahms("brahms-fault-lossburst", 112,
            faults=[{"kind": "loss-burst", "window": _WINDOW_2_4,
                     "loss_rate": 0.30}]),
    _brahms("brahms-fault-partition", 113,
            faults=[{"kind": "partition", "group_a": [10, 11, 12, 13],
                     "group_b": [20, 21, 22, 23], "window": _WINDOW_2_4}]),
    _brahms("brahms-fault-eclipse", 114,
            faults=[{"kind": "eclipse", "victim": 15,
                     "window": _WINDOW_2_4, "allowed": [16, 17]},
                    {"kind": "link", "src": 30, "dst": 31,
                     "window": _WINDOW_2_4, "bidirectional": True}]),
    # --- RAPTEE core grid (§V-B mechanisms) ----------------------------
    _raptee("raptee-t10", 201),
    _raptee("raptee-t20", 202, t=0.20),
    _raptee("raptee-f20-t20", 203, f=0.20, t=0.20),
    _raptee("raptee-fixed-eviction", 204,
            raptee={"eviction": {"kind": "fixed", "value": 0.6}}),
    _raptee("raptee-encrypted-aes", 205,
            topology={"transport_encryption": True},
            raptee={"auth_mode": "aes-ctr"}),
    _raptee("raptee-poisoned-probes", 206,
            topology={"poisoned_fraction": 0.05},
            raptee={"probe_pulls": 2}),
    _raptee("raptee-unbias-cycles-sgx", 207,
            raptee={"sketch_unbias_enabled": True,
                    "with_cycle_accounting": True, "cycle_mode": "sgx"}),
    _raptee("raptee-cycles-standard", 208,
            raptee={"with_cycle_accounting": True, "cycle_mode": "standard"}),
    _raptee("raptee-churn-uniform", 209,
            churn={"kind": "uniform", "leave_rate": 0.02, "join_rate": 0.03}),
    # --- SGX fault drills ----------------------------------------------
    _raptee("raptee-fault-crash", 210,
            faults=[{"kind": "crash-restart", "node_id": 5, "at_round": 2,
                     "down_rounds": 2}]),
    _raptee("raptee-fault-attestation", 211,
            faults=[{"kind": "attestation-outage", "window": _WINDOW_2_4},
                    {"kind": "provisioning-flakiness", "window": _WINDOW_2_4,
                     "failure_rate": 0.5}]),
    _raptee("raptee-fault-enclave", 212,
            faults=[{"kind": "enclave-crash", "node_id": 5, "at_round": 2},
                    {"kind": "sealed-blob-corruption", "node_id": 6,
                     "at_round": 3}]),
    # --- Dynamic trusted-set membership (ReplicaTEE-style) -------------
    _raptee("raptee-membership-static", 213, t=0.15,
            membership={"replica_count": 3}),
    _raptee("raptee-membership-churn", 214, t=0.15,
            membership={"replica_count": 3, "join_rate": 0.05,
                        "leave_rate": 0.03}),
    _raptee("raptee-membership-rotation", 215, t=0.15,
            membership={"replica_count": 3},
            faults=[{"kind": "epoch-rotation", "at_round": 3,
                     "reason": "drill"}]),
    _raptee("raptee-membership-revocation", 216, t=0.15,
            membership={"replica_count": 3},
            faults=[{"kind": "revocation-storm", "node_ids": [4, 5],
                     "at_round": 3},
                    {"kind": "provisioner-replica-crash", "replica_id": 1,
                     "at_round": 2, "down_rounds": 2}]),
    _raptee("raptee-membership-device-revocation", 217, t=0.15,
            membership={"replica_count": 3},
            faults=[{"kind": "device-revocation", "node_id": 4,
                     "at_round": 2}]),
    # --- Event-driven engine -------------------------------------------
    _brahms("events-barrier-brahms", 301,
            engine={"kind": "events", "mode": "barrier"}),
    _brahms("events-latency-brahms", 302,
            engine={"kind": "events", "mode": "continuous",
                    "latency": "lognormal:40:0.6"}),
    _raptee("events-load-raptee", 303,
            engine={"kind": "events", "mode": "continuous",
                    "latency": "constant:20", "load": "10:30"}),
    _raptee("events-straggler-raptee", 304,
            engine={"kind": "events", "mode": "continuous",
                    "latency": "uniform:10:50", "straggler": "0.1:4"}),
    _raptee("events-faults-raptee", 305,
            engine={"kind": "events", "mode": "continuous",
                    "latency": "lognormal:30:0.5"},
            faults=[{"kind": "loss-burst", "window": _WINDOW_2_4,
                     "loss_rate": 0.25}]),
)


def catalog_specs() -> List[ScenarioSpec]:
    """Load (and thereby validate) every catalog entry."""
    return [spec_from_dict(entry) for entry in CATALOG]


def get_spec(name: str) -> ScenarioSpec:
    """Load one catalog entry by scenario name."""
    for entry in CATALOG:
        if entry["name"] == name:
            return spec_from_dict(entry)
    raise KeyError(f"no catalog scenario named {name!r}")
