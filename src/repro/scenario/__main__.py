"""``python -m repro.scenario`` — conformance vector tooling."""

import sys

from repro.scenario.cli import main

if __name__ == "__main__":
    sys.exit(main())
