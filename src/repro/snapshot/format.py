"""Versioned on-disk envelope for simulation snapshots.

A snapshot file is::

    MAGIC                      b"REPROSNAP\\n"
    header                     one JSON line (sorted keys, UTF-8)
    payload                    zlib-compressed pickle of the state object

The header carries the format version, the payload kind, a SHA-256 of the
compressed payload and free-form ``meta`` (rounds completed, label, ...).
Keeping the header as a standalone JSON line means tooling — and
:func:`read_header` — can inspect a snapshot without unpickling anything.

Version discipline: :data:`SNAPSHOT_FORMAT_VERSION` is bumped whenever the
serialized state layout changes incompatibly; :func:`read_envelope` rejects
any other version with :class:`SnapshotVersionError` rather than risking a
silently-wrong resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import zlib
from typing import Any, Dict, Optional, Tuple

from repro.crypto.hashing import constant_time_equal

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SNAPSHOT_MAGIC",
    "SnapshotError",
    "SnapshotVersionError",
    "write_envelope",
    "read_header",
    "read_envelope",
]

SNAPSHOT_MAGIC = b"REPROSNAP\n"
SNAPSHOT_FORMAT_VERSION = 1


class SnapshotError(RuntimeError):
    """A snapshot could not be written, read or validated."""


class SnapshotVersionError(SnapshotError):
    """The snapshot's format version does not match this code's."""


def write_envelope(
    path: str, kind: str, meta: Dict[str, Any], state: object
) -> None:
    """Serialize ``state`` to ``path`` under a versioned, checksummed header.

    The write is atomic (temp file + rename), so an interrupted checkpoint
    never clobbers the previous good one — the property that makes
    checkpoint-every-N safe to leave on for multi-hour runs.
    """
    try:
        raw = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except (pickle.PicklingError, AttributeError, TypeError) as exc:
        raise SnapshotError(
            f"simulation state is not serializable: {exc}. Snapshots require "
            f"every attached callable (node_factory, custom hooks) to be a "
            f"module-level function or class instance, not a closure or lambda."
        ) from exc
    payload = zlib.compress(raw, 6)
    header = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "kind": kind,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "meta": dict(meta),
    }
    header_line = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n"
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as stream:
        stream.write(SNAPSHOT_MAGIC)
        stream.write(header_line)
        stream.write(payload)
    os.replace(tmp_path, path)


def read_header(path: str) -> Dict[str, Any]:
    """Parse and validate the header only (no payload unpickling)."""
    with open(path, "rb") as stream:
        magic = stream.read(len(SNAPSHOT_MAGIC))
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotError(f"{path} is not a repro snapshot (bad magic)")
        header_line = stream.readline()
    try:
        header = json.loads(header_line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path}: corrupt snapshot header: {exc}") from exc
    version = header.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotVersionError(
            f"{path} uses snapshot format version {version!r}, but this "
            f"build reads version {SNAPSHOT_FORMAT_VERSION}. Re-create the "
            f"snapshot with the matching version of repro, or finish the "
            f"run with the version that wrote it."
        )
    return header


def read_envelope(
    path: str, expected_kind: Optional[str] = None
) -> Tuple[Dict[str, Any], Any]:
    """Read ``path`` back into ``(header, state)``, verifying integrity."""
    header = read_header(path)
    if expected_kind is not None and header.get("kind") != expected_kind:
        raise SnapshotError(
            f"{path} holds a {header.get('kind')!r} snapshot, "
            f"expected {expected_kind!r}"
        )
    with open(path, "rb") as stream:
        stream.read(len(SNAPSHOT_MAGIC))
        stream.readline()
        payload = stream.read()
    if len(payload) != header.get("payload_bytes"):
        raise SnapshotError(
            f"{path}: truncated snapshot payload "
            f"({len(payload)} bytes, header says {header.get('payload_bytes')})"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if not constant_time_equal(
        digest.encode("ascii"), str(header.get("payload_sha256")).encode("ascii")
    ):
        raise SnapshotError(f"{path}: snapshot payload checksum mismatch")
    try:
        state = pickle.loads(zlib.decompress(payload))
    except Exception as exc:
        raise SnapshotError(f"{path}: failed to deserialize payload: {exc}") from exc
    return header, state
