"""Capture and restore of full simulation run state.

``save`` serializes *everything* a resumed run needs to be byte-identical
to a straight-through run — and nothing it does not:

* node protocol state: Brahms views, min-wise samplers (numpy columns or
  per-sampler hash functions), gossip partial views, RAPTEE degradation
  flags, per-round buffers;
* every PRNG in the graph — the Mersenne-Twister protocol streams and the
  :class:`~repro.crypto.prng.Sha256Prng` key-material streams both travel
  through their ``getstate``/``setstate`` when pickled;
* the network: per-pair transport keys, nonce counter, loss/fault hooks,
  lifetime and per-round traffic stats (the derived block-cipher cache is
  dropped and rebuilt lazily — see ``Network.__getstate__``);
* SGX state: sealed blobs, group/device keys, attestation registry and
  outage flags, enclave crash/provisioning status, cycle accountants;
* fault-plan progress: the injector's RNG, pending revive schedule and
  injection stats, plus the recovery manager's retry state;
* telemetry: the metrics registry, the collected trace and the round/phase
  clock, so an exported trace covers rounds before *and* after the resume
  seam with no discontinuity.

Restoring returns a :class:`RunState`; the object graph comes back with
its internal references (nodes ↔ network ↔ telemetry ↔ injector) intact
because everything is serialized in one envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.experiments.scenarios import SimulationBundle
from repro.faults.harness import FaultHarness
from repro.sim.engine import Simulation
from repro.snapshot.format import read_envelope, read_header, write_envelope
from repro.telemetry.harness import TelemetryHarness

__all__ = ["RunState", "Snapshotable", "save", "restore", "describe"]

_KIND = "run-state"

#: Anything ``save`` accepts: a prepared :class:`RunState`, a wired fault or
#: telemetry harness, a scenario bundle, or a bare engine.
Snapshotable = Union["RunState", FaultHarness, TelemetryHarness,
                     SimulationBundle, Simulation]


@dataclass
class RunState:
    """One resumable run: the simulation plus its wiring and round budget.

    ``simulation`` is always set; ``bundle`` and ``fault_harness`` are kept
    when the state was built from one, so a resumed run keeps its trace /
    discovery / telemetry / invariant observers.
    """

    simulation: Simulation
    bundle: Optional[SimulationBundle] = None
    fault_harness: Optional[FaultHarness] = None
    rounds_total: int = 0
    label: str = ""
    #: Free-form experiment context carried in the envelope header as well,
    #: so `python -m repro.snapshot info` can show it without unpickling.
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def rounds_completed(self) -> int:
        return self.simulation.round_number

    @property
    def rounds_remaining(self) -> int:
        return max(0, self.rounds_total - self.rounds_completed)

    def run_chunk(self, rounds: int) -> None:
        """Advance ``rounds`` rounds through the richest attached runner.

        The fault harness runs the bundle (invariant checker included); the
        bundle runs the simulation (trace/discovery/telemetry observers
        included); a bare simulation runs alone.  Chunked execution invokes
        exactly the same per-round observer sequence as one straight call,
        which is what keeps checkpointed runs byte-identical.
        """
        if rounds <= 0:
            return
        if self.fault_harness is not None:
            self.fault_harness.run(rounds)
        elif self.bundle is not None:
            self.bundle.run(rounds)
        else:
            self.simulation.run(rounds)


def _coerce(state: Snapshotable) -> RunState:
    if isinstance(state, RunState):
        return state
    if isinstance(state, FaultHarness):
        return RunState(
            simulation=state.bundle.simulation,
            bundle=state.bundle,
            fault_harness=state,
        )
    if isinstance(state, TelemetryHarness):
        return RunState(
            simulation=state.bundle.simulation, bundle=state.bundle
        )
    if isinstance(state, SimulationBundle):
        return RunState(simulation=state.simulation, bundle=state)
    if isinstance(state, Simulation):
        return RunState(simulation=state)
    raise TypeError(
        f"cannot snapshot a {type(state).__name__}; expected RunState, "
        f"FaultHarness, TelemetryHarness, SimulationBundle or Simulation"
    )


def save(state: Snapshotable, path: str) -> RunState:
    """Checkpoint a run to ``path``; returns the (coerced) state saved."""
    run_state = _coerce(state)
    meta = {
        "rounds_completed": run_state.rounds_completed,
        "rounds_total": run_state.rounds_total,
        "label": run_state.label,
        "nodes": len(run_state.simulation.nodes),
        **run_state.extra,
    }
    write_envelope(path, _KIND, meta, run_state)
    return run_state


def restore(path: str) -> RunState:
    """Load a checkpoint written by :func:`save`.

    Raises :class:`~repro.snapshot.format.SnapshotVersionError` on a format
    version mismatch and :class:`~repro.snapshot.format.SnapshotError` on a
    corrupt or wrong-kind file.
    """
    _header, state = read_envelope(path, expected_kind=_KIND)
    assert isinstance(state, RunState)
    return state


def describe(path: str) -> Dict[str, Any]:
    """The snapshot's header (version, kind, meta) without unpickling."""
    return read_header(path)
