"""Deterministic checkpoint/resume for paper-scale simulation runs.

The snapshot layer serializes the *entire* state of a running simulation —
protocol state, every PRNG, network key caches and stats, SGX enclave and
infrastructure state, fault-plan progress, the telemetry clock and
collected trace — into a versioned, checksummed envelope, and restores it
in a fresh process such that the resumed run is **byte-identical** to a
straight-through run under the same seed (enforced by
``tests/test_snapshot_differential.py``).

Typical use::

    from repro import snapshot

    state = snapshot.run_with_checkpoints(
        bundle, rounds=200, checkpoint_every=20,
        checkpoint_path="run.snapshot",
    )
    # ... later, possibly on another machine / after a crash:
    state = snapshot.restore("run.snapshot")
    snapshot.run_with_checkpoints(state)  # finishes the stored target

CLI: ``repro run --checkpoint-every N [--checkpoint-out P]`` and
``repro run --resume P``; ``python -m repro.snapshot info|resume`` for
inspection and headless resumption.
"""

from repro.snapshot.capture import RunState, Snapshotable, describe, restore, save
from repro.snapshot.format import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    SnapshotVersionError,
)
from repro.snapshot.resume import run_with_checkpoints
from repro.snapshot.seedstore import SeedResultStore

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotVersionError",
    "RunState",
    "Snapshotable",
    "SeedResultStore",
    "save",
    "restore",
    "describe",
    "run_with_checkpoints",
]
