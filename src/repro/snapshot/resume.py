"""Checkpointed execution loops over a :class:`~repro.snapshot.capture.RunState`.

The paper's full-scale regeneration (10,000 nodes × 200 rounds) is a
multi-hour run; :func:`run_with_checkpoints` turns it into a sequence of
resumable chunks: every ``checkpoint_every`` rounds the complete state is
saved (atomically), so a crash or preemption costs at most one chunk of
work, and a finished run's final checkpoint can seed a longer one.
"""

from __future__ import annotations

from typing import Optional

from repro.snapshot.capture import RunState, Snapshotable, _coerce, save

__all__ = ["run_with_checkpoints"]


def run_with_checkpoints(
    state: Snapshotable,
    rounds: Optional[int] = None,
    checkpoint_every: int = 0,
    checkpoint_path: Optional[str] = None,
) -> RunState:
    """Run ``state`` to ``rounds`` total rounds, checkpointing as it goes.

    ``rounds`` counts from round zero (it is a *target*, not an increment),
    so resuming a checkpoint taken at round k with the same target runs
    exactly the missing rounds.  ``None`` keeps the state's stored target.
    With ``checkpoint_every`` > 0 the state is saved after every chunk —
    including the final one, so a completed run can later be extended by
    resuming with a larger target.
    """
    run_state = _coerce(state)
    if rounds is not None:
        run_state.rounds_total = rounds
    if run_state.rounds_total <= 0:
        raise ValueError("rounds must be a positive round target")
    if checkpoint_every < 0:
        raise ValueError("checkpoint_every must be non-negative")
    if checkpoint_every and not checkpoint_path:
        raise ValueError("checkpoint_every requires a checkpoint_path")

    while run_state.rounds_remaining > 0:
        if checkpoint_every:
            chunk = min(checkpoint_every, run_state.rounds_remaining)
        else:
            chunk = run_state.rounds_remaining
        run_state.run_chunk(chunk)
        if checkpoint_every:
            save(run_state, checkpoint_path)
    return run_state
