"""Per-seed result store backing resumable :func:`repro.experiments.runner.repeat`.

A deliberately simple, human-inspectable JSON file::

    {
      "format_version": 1,
      "kind": "repeat-checkpoint",
      "results": {"1": {...RunMetrics fields...}, "7": {...}}
    }

The store is written after *every* completed seed (atomically, temp file +
rename), so a multi-hour sweep killed at seed 37 restarts at seed 37 — not
at seed 0.  Values are plain dicts; the runner owns the dataclass
conversion so this module stays a dependency-free leaf.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.snapshot.format import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    SnapshotVersionError,
)

__all__ = ["SeedResultStore"]

_KIND = "repeat-checkpoint"


class SeedResultStore:
    """Append-per-seed JSON store of completed repetition results."""

    def __init__(self, path: str):
        self.path = path
        self._results: Dict[int, Dict[str, Any]] = {}
        if os.path.exists(path):
            self._load()

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as stream:
            try:
                document = json.load(stream)
            except json.JSONDecodeError as exc:
                raise SnapshotError(
                    f"{self.path}: corrupt repeat checkpoint: {exc}"
                ) from exc
        version = document.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotVersionError(
                f"{self.path} uses repeat-checkpoint format version "
                f"{version!r}, but this build reads version "
                f"{SNAPSHOT_FORMAT_VERSION}"
            )
        if document.get("kind") != _KIND:
            raise SnapshotError(
                f"{self.path} holds a {document.get('kind')!r} file, "
                f"expected {_KIND!r}"
            )
        self._results = {
            int(seed): dict(payload)
            for seed, payload in document.get("results", {}).items()
        }

    def results(self) -> Dict[int, Dict[str, Any]]:
        """Completed results, keyed by seed."""
        return dict(self._results)

    def record(self, seed: int, payload: Dict[str, Any]) -> None:
        """Persist one completed seed's metrics (atomic rewrite)."""
        self._results[int(seed)] = dict(payload)
        document = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "kind": _KIND,
            "results": {
                str(seed): self._results[seed] for seed in sorted(self._results)
            },
        }
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as stream:
            json.dump(document, stream, indent=2, sort_keys=True)
            stream.write("\n")
        os.replace(tmp_path, self.path)
