"""Snapshot tooling CLI: ``python -m repro.snapshot <command>``.

* ``info <path>`` — print a snapshot's header (format version, kind,
  rounds completed/total, label, node count) without unpickling it;
* ``resume <path>`` — restore a checkpoint in this fresh process, run it
  to its round target (or ``--rounds``), optionally re-checkpointing, and
  optionally export the full trace JSONL / metrics CSV.

``resume`` is what the snapshot differential test and the CI smoke job
drive: restoring in a *new interpreter* and exporting the artifacts is the
honest form of the byte-identical-resume claim.
"""

from __future__ import annotations

# lint: disable-file=purity-print -- this module IS the CLI; like repro.cli,
# reporting to stdout is its job.

import argparse
import sys
from typing import List, Optional

from repro.snapshot.capture import describe, restore
from repro.snapshot.format import SnapshotError
from repro.snapshot.resume import run_with_checkpoints

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.snapshot", description="simulation snapshot tooling"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info_parser = subparsers.add_parser("info", help="print a snapshot header")
    info_parser.add_argument("path")

    resume_parser = subparsers.add_parser(
        "resume", help="restore a checkpoint and run it to completion"
    )
    resume_parser.add_argument("path")
    resume_parser.add_argument("--rounds", type=int, default=None,
                               help="override the stored round target")
    resume_parser.add_argument("--checkpoint-every", type=int, default=0,
                               metavar="N", help="keep checkpointing every N rounds")
    resume_parser.add_argument("--checkpoint-out", default=None, metavar="PATH",
                               help="checkpoint path (default: the input path)")
    resume_parser.add_argument("--trace-out", default=None, metavar="PATH",
                               help="export the telemetry trace JSONL here")
    resume_parser.add_argument("--metrics-out", default=None, metavar="PATH",
                               help="export the metrics registry CSV here")

    return parser


def _command_info(args) -> int:
    header = describe(args.path)
    meta = header.get("meta", {})
    print(f"snapshot:           {args.path}")
    print(f"format version:     {header['format_version']}")
    print(f"kind:               {header['kind']}")
    print(f"payload bytes:      {header['payload_bytes']}")
    for key in sorted(meta):
        print(f"{key + ':':<20}{meta[key]}")
    return 0


def _command_resume(args) -> int:
    state = restore(args.path)
    before = state.rounds_completed
    checkpoint_path = args.checkpoint_out or (
        args.path if args.checkpoint_every else None
    )
    run_with_checkpoints(
        state,
        rounds=args.rounds,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=checkpoint_path,
    )
    print(f"resumed:            round {before} -> {state.rounds_completed}"
          + (f" ({state.label})" if state.label else ""))

    if args.trace_out or args.metrics_out:
        from repro.telemetry import metrics_to_csv, trace_to_jsonl

        telemetry = state.simulation.telemetry
        if telemetry is None:
            print("error: snapshot has no telemetry wired; nothing to export",
                  file=sys.stderr)
            return 1
        if args.trace_out:
            if telemetry.trace is None:
                print("error: tracing was disabled in this run", file=sys.stderr)
                return 1
            with open(args.trace_out, "w", encoding="utf-8") as stream:
                stream.write(trace_to_jsonl(telemetry.trace.events))
            print(f"trace:              {args.trace_out} "
                  f"({len(telemetry.trace)} events)")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as stream:
                stream.write(metrics_to_csv(telemetry.registry))
            print(f"metrics:            {args.metrics_out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"info": _command_info, "resume": _command_resume}
    try:
        return handlers[args.command](args)
    except (SnapshotError, OSError) as error:
        # SnapshotVersionError included: a mismatched or corrupt snapshot is
        # an expected operator-facing failure, not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module CLI shim
    sys.exit(main())
