"""Enclave abstraction with an explicit ECALL boundary.

The emulation enforces the one SGX property RAPTEE's design rests on:
*untrusted code can only enter the enclave through declared entry points*
(ECALLs), and enclave state is unreachable otherwise.  An
:class:`EnclaveHost` is the only handle untrusted code ever gets; attribute
access on it is restricted to methods decorated with :func:`ecall`.

An enclave is loaded on an :class:`SgxDevice`, which models a genuine
SGX-capable CPU: it owns a device attestation key (certified by the
:class:`~repro.sgx.attestation.AttestationService`, our stand-in for the
Intel attestation infrastructure) and a root sealing secret.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TypeVar

from repro.crypto.hashing import hkdf, sha256
from repro.crypto.prng import Sha256Prng
from repro.crypto.rsa import RsaKeyPair, generate_keypair
from repro.sgx.errors import EnclaveUnavailable, EnclaveViolation
from repro.sgx.measurement import Measurement, Quote, measure_class

__all__ = ["ecall", "Enclave", "EnclaveHost", "SgxDevice"]

F = TypeVar("F", bound=Callable[..., Any])

_DEVICE_KEY_BITS = 512  # simulation-grade; see repro.crypto.rsa docstring


def ecall(method: F) -> F:
    """Mark a method as an enclave entry point callable from the host."""
    method.__is_ecall__ = True
    return method


class SgxDevice:
    """A simulated SGX-capable CPU.

    Owns the device attestation keypair (the EPID/DCAP analogue) and the
    root sealing secret burned into the CPU.  ``device_rng`` seeds all
    randomness the device and its enclaves consume, keeping simulations
    deterministic.
    """

    def __init__(self, device_id: int, device_rng: Sha256Prng):
        self.device_id = device_id
        self._rng = device_rng
        self._attestation_keys: RsaKeyPair = generate_keypair(_DEVICE_KEY_BITS, device_rng)
        self._root_sealing_secret = device_rng.getrandbits(256).to_bytes(32, "big")

    @property
    def attestation_public_key(self):
        return self._attestation_keys.public

    def load(self, enclave_class: type, *args: Any, **kwargs: Any) -> "EnclaveHost":
        """Instantiate ``enclave_class`` inside this device and return its host."""
        if not issubclass(enclave_class, Enclave):
            raise TypeError(f"{enclave_class!r} is not an Enclave subclass")
        enclave = enclave_class(_device=self, *args, **kwargs)
        return EnclaveHost(enclave)

    # -- services available to enclaves only -------------------------------

    def _sign_report(self, payload: bytes) -> bytes:
        return self._attestation_keys.private.sign(payload)

    def _sealing_key(self, measurement: Measurement) -> bytes:
        """MRENCLAVE-policy sealing key: bound to device and code identity."""
        return hkdf(self._root_sealing_secret, b"seal" + measurement.digest, length=16)

    def _draw_randomness(self, n_bytes: int) -> bytes:
        return self._rng.getrandbits(n_bytes * 8).to_bytes(n_bytes, "big")


class Enclave:
    """Base class for enclave code.

    Subclasses implement trusted logic as ``@ecall`` methods.  Everything
    else — attributes, helpers — stays behind the boundary.  Construction
    happens through :meth:`SgxDevice.load`, never directly from protocol
    code (tests may construct directly to reach internals).
    """

    VERSION = "1"

    def __init__(self, _device: SgxDevice):
        self._device = _device
        self._measurement = measure_class(type(self), self.VERSION)

    @property
    def measurement(self) -> Measurement:
        return self._measurement

    def _random_bytes(self, n: int) -> bytes:
        """Trusted randomness (RDRAND analogue, device-seeded)."""
        return self._device._draw_randomness(n)

    @ecall
    def get_measurement(self) -> Measurement:
        """Report this enclave's code measurement."""
        return self._measurement

    @ecall
    def generate_quote(self, report_data: bytes) -> Quote:
        """Produce a device-signed attestation quote over ``report_data``."""
        if len(report_data) > 64:
            raise ValueError("report_data exceeds the 64-byte SGX field")
        padded = report_data.ljust(64, b"\x00")
        quote = Quote(
            measurement=self._measurement,
            report_data=padded,
            device_id=self._device.device_id,
            signature=b"",
        )
        signature = self._device._sign_report(quote.signed_payload())
        return Quote(
            measurement=quote.measurement,
            report_data=quote.report_data,
            device_id=quote.device_id,
            signature=signature,
        )


class EnclaveHost:
    """The untrusted-side handle to a loaded enclave.

    Only ``@ecall`` methods are reachable; anything else raises
    :class:`EnclaveViolation`.  The host counts boundary crossings so the
    Table-I micro-benchmark can report per-ECALL costs.

    A host can also :meth:`crash`, modelling the enclave dying with its
    process (or an unrecoverable EPC-loss event): every subsequent ECALL
    raises :class:`EnclaveUnavailable` and all volatile enclave state must
    be considered lost.  Recovery means loading a *fresh* enclave on the
    same device and restoring sealed state or re-attesting.
    """

    def __init__(self, enclave: Enclave):
        object.__setattr__(self, "_enclave", enclave)
        object.__setattr__(self, "ecall_count", 0)
        object.__setattr__(self, "_crashed", False)
        object.__setattr__(self, "_telemetry", None)
        object.__setattr__(self, "_telemetry_node", None)

    def set_telemetry(self, telemetry, node_id: Optional[int] = None) -> None:
        """Count (and optionally trace) every boundary crossing in a hub.

        The host's ``__setattr__`` guard exists to stop untrusted writes
        into *enclave* state; the telemetry handle is host-side bookkeeping,
        so it is stored with ``object.__setattr__`` like the other host
        fields.
        """
        object.__setattr__(self, "_telemetry", telemetry)
        object.__setattr__(self, "_telemetry_node", node_id)

    @property
    def measurement(self) -> Measurement:
        return self._enclave.measurement

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Kill the enclave instance (fault injection / process death)."""
        object.__setattr__(self, "_crashed", True)

    def __getattr__(self, name: str) -> Any:
        enclave = object.__getattribute__(self, "_enclave")
        try:
            attribute = getattr(type(enclave), name)
        except AttributeError:
            raise EnclaveViolation(
                f"no ECALL named {name!r} on {type(enclave).__name__}"
            ) from None
        if not getattr(attribute, "__is_ecall__", False):
            raise EnclaveViolation(
                f"{type(enclave).__name__}.{name} is enclave-private "
                f"(not a registered ECALL)"
            )

        def _ecall_proxy(*args: Any, **kwargs: Any) -> Any:
            telemetry = object.__getattribute__(self, "_telemetry")
            node_id = object.__getattribute__(self, "_telemetry_node")
            if object.__getattribute__(self, "_crashed"):
                if telemetry is not None:
                    telemetry.counter("sgx.ecalls_unavailable", method=name).inc()
                    telemetry.event(
                        "sgx.ecall_unavailable", node=node_id, method=name
                    )
                raise EnclaveUnavailable(
                    f"{type(enclave).__name__}.{name}: enclave instance has "
                    f"crashed; load a fresh one on its device"
                )
            object.__setattr__(self, "ecall_count", self.ecall_count + 1)
            if telemetry is not None:
                telemetry.counter("sgx.ecalls", method=name).inc()
                if telemetry.config.trace_ecalls:
                    telemetry.event("sgx.ecall", node=node_id, method=name)
            return attribute(enclave, *args, **kwargs)

        return _ecall_proxy

    def __setattr__(self, name: str, value: Any) -> None:
        raise EnclaveViolation("enclave state cannot be written from outside")


def sealing_key_for(device: SgxDevice, measurement: Measurement) -> bytes:
    """Expose the device sealing-key derivation for :mod:`repro.sgx.sealing`."""
    return device._sealing_key(measurement)


def report_data_binding(public_key) -> bytes:
    """The 32-byte binding of an enclave RSA key placed in report_data."""
    return sha256(
        public_key.n.to_bytes((public_key.n.bit_length() + 7) // 8, "big")
        + public_key.e.to_bytes(4, "big")
    )
