"""Sealed storage: encrypt-then-MAC under a device+measurement-bound key.

Real SGX enclaves persist secrets (here: the provisioned group key, so a
trusted node can restart without re-attesting) by sealing them with a key
derived from the CPU's root sealing secret and the enclave identity.  The
emulation derives the key with HKDF and protects the blob with
AES-128-CTR + HMAC-SHA256 (encrypt-then-MAC).
"""

from __future__ import annotations

from repro.crypto.ctr import AesCtr, NONCE_SIZE
from repro.crypto.hashing import constant_time_equal, hkdf, hmac_sha256
from repro.sgx.enclave import SgxDevice, sealing_key_for
from repro.sgx.errors import SealingError
from repro.sgx.measurement import Measurement

__all__ = ["seal", "unseal"]

_MAC_SIZE = 32


def seal(device: SgxDevice, measurement: Measurement, data: bytes, nonce: bytes) -> bytes:
    """Seal ``data`` to (device, enclave measurement).

    ``nonce`` must be unique per sealing operation (callers draw it from the
    enclave's trusted randomness).  Blob layout: nonce || ciphertext || mac.
    """
    if len(nonce) != NONCE_SIZE:
        raise SealingError(f"nonce must be {NONCE_SIZE} bytes")
    root_key = sealing_key_for(device, measurement)
    enc_key = hkdf(root_key, b"seal-enc", length=16)
    mac_key = hkdf(root_key, b"seal-mac", length=32)
    ciphertext = AesCtr(enc_key, nonce).encrypt(data)
    mac = hmac_sha256(mac_key, nonce + ciphertext)
    return nonce + ciphertext + mac


def unseal(device: SgxDevice, measurement: Measurement, blob: bytes) -> bytes:
    """Unseal a blob; raises :class:`SealingError` if authentication fails."""
    if len(blob) < NONCE_SIZE + _MAC_SIZE:
        raise SealingError("sealed blob too short")
    nonce = blob[:NONCE_SIZE]
    ciphertext = blob[NONCE_SIZE:-_MAC_SIZE]
    mac = blob[-_MAC_SIZE:]
    root_key = sealing_key_for(device, measurement)
    enc_key = hkdf(root_key, b"seal-enc", length=16)
    mac_key = hkdf(root_key, b"seal-mac", length=32)
    expected_mac = hmac_sha256(mac_key, nonce + ciphertext)
    if not constant_time_equal(mac, expected_mac):
        raise SealingError("sealed blob failed authentication")
    return AesCtr(enc_key, nonce).decrypt(ciphertext)
