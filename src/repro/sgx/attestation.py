"""Remote attestation service (Intel Attestation Service analogue).

The paper's trust model (§III-B): *"We trust Intel for the certification of
genuine SGX-enabled CPUs, and we assume that the code running inside enclaves
is properly attested before being provided with secrets."*  This module is
that certification authority: it keeps the registry of genuine devices and
the set of trusted enclave measurements, and verifies quotes against both.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.crypto.rsa import RsaPublicKey
from repro.sgx.errors import AttestationError
from repro.sgx.measurement import Measurement, Quote

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

__all__ = ["AttestationService"]


class AttestationService:
    """Verifies attestation quotes from registered devices.

    A quote passes iff (1) the service is reachable, (2) the device is
    registered and not revoked, (3) the device signature over
    (measurement, report_data, device_id) verifies, and (4) the measurement
    is in the trusted set.

    The service can be taken offline (:meth:`set_available`) to model an
    attestation-infrastructure outage — while down, every verification
    fails, so no new enclave can be provisioned (sealed-storage restores
    keep working, they never contact the service).
    """

    def __init__(self) -> None:
        self._device_keys: Dict[int, RsaPublicKey] = {}
        self._revoked_devices: Set[int] = set()
        self._trusted_measurements: Set[bytes] = set()
        self._available = True
        self.telemetry: Optional["Telemetry"] = None

    def set_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        """Count verifications and trace availability/revocation changes."""
        self.telemetry = telemetry

    # -- registry management ------------------------------------------------

    def register_device(self, device_id: int, public_key: RsaPublicKey) -> None:
        """Certify a genuine SGX device (manufacturing-time key escrow)."""
        if device_id in self._device_keys:
            raise AttestationError(f"device {device_id} already registered")
        self._device_keys[device_id] = public_key

    def revoke_device(self, device_id: int) -> None:
        """Revoke a device (e.g. a compromised or recalled CPU)."""
        self._revoked_devices.add(device_id)
        if self.telemetry is not None:
            self.telemetry.event("attestation.revocation", node=device_id)

    def trust_measurement(self, measurement: Measurement) -> None:
        """Whitelist an enclave build as attestation-worthy."""
        self._trusted_measurements.add(measurement.digest)

    def is_trusted_measurement(self, measurement: Measurement) -> bool:
        return measurement.digest in self._trusted_measurements

    # -- availability (fault injection) --------------------------------------

    @property
    def available(self) -> bool:
        return self._available

    def set_available(self, available: bool) -> None:
        """Start or end a service outage window."""
        if available != self._available and self.telemetry is not None:
            # Only transitions are traced — the fault injector re-asserts
            # the availability flag every round during an outage window.
            self.telemetry.event("attestation.availability", available=available)
        self._available = available

    # -- verification ---------------------------------------------------------

    def verify_quote(self, quote: Quote) -> None:
        """Verify ``quote``; raises :class:`AttestationError` on any failure."""
        try:
            self._verify(quote)
        except AttestationError as error:
            if self.telemetry is not None:
                self.telemetry.counter(
                    "attestation.verifications", outcome="fail"
                ).inc()
                self.telemetry.event(
                    "attestation.verify",
                    node=quote.device_id,
                    ok=False,
                    reason=str(error),
                )
            raise
        if self.telemetry is not None:
            self.telemetry.counter("attestation.verifications", outcome="ok").inc()
            self.telemetry.event(
                "attestation.verify", node=quote.device_id, ok=True
            )

    def _verify(self, quote: Quote) -> None:
        if not self._available:
            raise AttestationError("attestation service is unavailable (outage)")
        if quote.device_id in self._revoked_devices:
            raise AttestationError(f"device {quote.device_id} is revoked")
        device_key = self._device_keys.get(quote.device_id)
        if device_key is None:
            raise AttestationError(f"unknown device {quote.device_id}")
        if not device_key.verify(quote.signed_payload(), quote.signature):
            raise AttestationError("quote signature verification failed")
        if quote.measurement.digest not in self._trusted_measurements:
            raise AttestationError(
                f"measurement {quote.measurement.hex()[:16]}… is not trusted"
            )
