"""Enclave identity: measurements and attestation quotes.

Real SGX identifies an enclave by MRENCLAVE, a SHA-256 over the enclave's
initial code/data pages.  The emulation measures the enclave *class* —
its qualified name and a version tag — which captures the property RAPTEE
needs: two enclaves with equal measurements run the same code, and a
modified (malicious) enclave cannot claim the measurement of the genuine
one without breaking the hash.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import concat_hash

__all__ = ["Measurement", "Quote", "measure_class"]


@dataclass(frozen=True)
class Measurement:
    """A 32-byte enclave code measurement (MRENCLAVE analogue)."""

    digest: bytes

    def __post_init__(self) -> None:
        if len(self.digest) != 32:
            raise ValueError("measurement digest must be 32 bytes")

    def hex(self) -> str:
        return self.digest.hex()


def measure_class(enclave_class: type, version: str = "1") -> Measurement:
    """Measure an enclave class (module path + qualname + version)."""
    identity = f"{enclave_class.__module__}.{enclave_class.__qualname__}".encode()
    return Measurement(concat_hash(b"mrenclave", identity, version.encode()))


@dataclass(frozen=True)
class Quote:
    """An attestation quote: measurement + report data, device-signed.

    ``report_data`` is the 64-byte user-data field of a real SGX report; the
    provisioning protocol places the hash of the enclave's ephemeral RSA key
    there, binding the key to the attested enclave instance.
    """

    measurement: Measurement
    report_data: bytes
    device_id: int
    signature: bytes

    def signed_payload(self) -> bytes:
        """The byte string covered by the device signature."""
        return concat_hash(
            b"quote",
            self.measurement.digest,
            self.report_data,
            self.device_id.to_bytes(8, "big", signed=False),
        )
