"""Exception hierarchy for the SGX emulation layer."""

from __future__ import annotations

__all__ = [
    "SgxError",
    "EnclaveViolation",
    "EnclaveUnavailable",
    "AttestationError",
    "SealingError",
    "ProvisioningError",
]


class SgxError(Exception):
    """Base class for all SGX-emulation failures."""


class EnclaveViolation(SgxError):
    """Raised when untrusted code tries to cross the enclave boundary
    other than through a registered ECALL."""


class EnclaveUnavailable(SgxError):
    """Raised when an ECALL reaches an enclave that has crashed.

    Real enclaves die with their host process (and on EPC loss events such
    as S3 sleep); every volatile secret is gone and the host must load a
    fresh instance, then restore sealed state or re-attest."""


class AttestationError(SgxError):
    """Raised when a quote fails verification (unknown measurement, bad
    signature, revoked device, or tampered report data)."""


class SealingError(SgxError):
    """Raised when sealed data fails authentication or is unsealed on the
    wrong device/enclave identity."""


class ProvisioningError(SgxError):
    """Raised when group-key provisioning is refused."""
