"""SGX emulation substrate.

Models the four SGX properties RAPTEE relies on (§III-B):

* **integrity** — enclave code is reachable only through declared ECALLs
  (:mod:`repro.sgx.enclave`);
* **remote attestation** — quotes signed by certified devices, verified
  against trusted measurements (:mod:`repro.sgx.attestation`);
* **confidential provisioning** — the trusted group key is released only to
  attested enclaves, encrypted to an enclave-resident RSA key
  (:mod:`repro.sgx.provisioning`);
* **sealing** — persistent secrets bound to device + code identity
  (:mod:`repro.sgx.sealing`).

Plus the Table-I-calibrated CPU-cycle cost model used to emulate SGX latency
at scale, exactly as in the paper's Grid'5000 experiments
(:mod:`repro.sgx.cycles`).
"""

from repro.sgx.attestation import AttestationService
from repro.sgx.cycles import (
    CycleAccountant,
    CycleModel,
    FunctionCost,
    PeerSamplingFunction,
    TABLE_I,
)
from repro.sgx.enclave import Enclave, EnclaveHost, SgxDevice, ecall
from repro.sgx.errors import (
    AttestationError,
    EnclaveUnavailable,
    EnclaveViolation,
    ProvisioningError,
    SealingError,
    SgxError,
)
from repro.sgx.measurement import Measurement, Quote, measure_class
from repro.sgx.provisioning import GroupKeyProvisioner
from repro.sgx.sealing import seal, unseal

__all__ = [
    "AttestationService",
    "CycleAccountant",
    "CycleModel",
    "FunctionCost",
    "PeerSamplingFunction",
    "TABLE_I",
    "Enclave",
    "EnclaveHost",
    "SgxDevice",
    "ecall",
    "AttestationError",
    "EnclaveUnavailable",
    "EnclaveViolation",
    "ProvisioningError",
    "SealingError",
    "SgxError",
    "Measurement",
    "Quote",
    "measure_class",
    "GroupKeyProvisioner",
    "seal",
    "unseal",
]
