"""CPU-cycle cost model calibrated from the paper's Table I.

The paper measures, on real SGX NUCs, the per-function cycle cost of five
peer-sampling operations in and out of the enclave, then *emulates* SGX at
Grid'5000 scale by injecting random delays drawn from the measured mean
overhead and standard deviation.  We reproduce exactly that pipeline: every
enclave-executed function charges ``standard + N(mean_overhead, std)`` cycles
to the node's accountant, while untrusted execution charges ``standard``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:
    import random  # annotation-only: the rng is always injected, never drawn here

__all__ = [
    "FunctionCost",
    "TABLE_I",
    "CycleModel",
    "CycleAccountant",
    "PeerSamplingFunction",
]


class PeerSamplingFunction:
    """The five instrumented functions of Table I (string constants)."""

    PULL_REQUEST = "pull_request"
    PUSH_MESSAGE = "push_message"
    TRUSTED_COMMUNICATIONS = "trusted_communications"
    SAMPLE_LIST_COMPUTATION = "sample_list_computation"
    DYNAMIC_VIEW_COMPUTATION = "dynamic_view_computation"

    ALL = (
        PULL_REQUEST,
        PUSH_MESSAGE,
        TRUSTED_COMMUNICATIONS,
        SAMPLE_LIST_COMPUTATION,
        DYNAMIC_VIEW_COMPUTATION,
    )


@dataclass(frozen=True)
class FunctionCost:
    """Cycle costs of one function: plain CPU vs inside the enclave.

    ``std_fraction`` is the paper's "standard deviation" column, expressed as
    a fraction of the mean overhead (Table I reports 2-4 %).
    """

    standard: int
    sgx: int
    std_fraction: float

    @property
    def mean_overhead(self) -> int:
        return self.sgx - self.standard

    @property
    def overhead_std(self) -> float:
        return self.mean_overhead * self.std_fraction


#: Paper Table I, verbatim (cycles).
TABLE_I: Dict[str, FunctionCost] = {
    PeerSamplingFunction.PULL_REQUEST: FunctionCost(15_623, 18_593, 0.03),
    PeerSamplingFunction.PUSH_MESSAGE: FunctionCost(7_521, 9_182, 0.03),
    PeerSamplingFunction.TRUSTED_COMMUNICATIONS: FunctionCost(9_845, 11_516, 0.03),
    PeerSamplingFunction.SAMPLE_LIST_COMPUTATION: FunctionCost(13_024, 15_364, 0.04),
    PeerSamplingFunction.DYNAMIC_VIEW_COMPUTATION: FunctionCost(12_457, 15_076, 0.02),
}


class CycleModel:
    """Samples per-invocation cycle costs from the calibrated table."""

    def __init__(self, costs: Optional[Dict[str, FunctionCost]] = None):
        self._costs = dict(costs or TABLE_I)

    def cost_table(self) -> Dict[str, FunctionCost]:
        return dict(self._costs)

    def function_cost(self, function: str) -> FunctionCost:
        try:
            return self._costs[function]
        except KeyError:
            raise KeyError(
                f"unknown instrumented function {function!r}; "
                f"known: {sorted(self._costs)}"
            ) from None

    def sample_cycles(self, function: str, trusted: bool, rng: random.Random) -> float:
        """Cycle cost of one invocation.

        Trusted execution pays the standard cost plus a Gaussian overhead
        with the Table-I mean and standard deviation (clamped at zero: the
        enclave can never be faster than plain execution in this model).
        """
        cost = self.function_cost(function)
        if not trusted:
            return float(cost.standard)
        overhead = rng.gauss(cost.mean_overhead, cost.overhead_std)
        return cost.standard + max(0.0, overhead)


@dataclass
class CycleAccountant:
    """Per-node accumulator of modelled CPU cycles, split by function.

    ``force_standard`` makes the accountant charge the plain-CPU cost even
    for trusted execution — the paper's "emulated SGX on non-capable
    devices" control group (§V-A), used by the Table I reproduction.
    """

    model: CycleModel
    rng: random.Random
    force_standard: bool = False
    total_cycles: float = 0.0
    per_function: Dict[str, float] = field(default_factory=dict)
    invocations: Dict[str, int] = field(default_factory=dict)

    def charge(self, function: str, trusted: bool) -> float:
        """Charge one invocation of ``function``; returns the cycles charged."""
        cycles = self.model.sample_cycles(
            function, trusted and not self.force_standard, self.rng
        )
        self.total_cycles += cycles
        self.per_function[function] = self.per_function.get(function, 0.0) + cycles
        self.invocations[function] = self.invocations.get(function, 0) + 1
        return cycles

    def mean_cost(self, function: str) -> float:
        """Mean charged cycles per invocation of ``function`` so far."""
        count = self.invocations.get(function, 0)
        if count == 0:
            raise ValueError(f"{function!r} was never invoked")
        return self.per_function[function] / count

    def reset(self) -> None:
        self.total_cycles = 0.0
        self.per_function.clear()
        self.invocations.clear()
