"""Group-key provisioning to attested enclaves.

RAPTEE's trusted nodes "share a common secret key that is provisioned during
the remote-attestation phase" (§IV-A).  The provisioner holds that group key
K_T.  An enclave that wants it generates an ephemeral RSA keypair *inside*
the enclave, binds the public key into an attestation quote's report data,
and submits both.  The provisioner verifies the quote (device genuine,
measurement trusted, binding intact) and returns K_T encrypted under the
enclave key — so K_T never exists in untrusted memory.

With group-key epochs (:mod:`repro.membership.epoch`), the provisioner can
be re-keyed: epoch 0 releases the bare 16-byte bootstrap key (byte-for-byte
the legacy payload), later epochs prefix the key with its 8-byte big-endian
epoch number so the enclave knows which generation it holds.  The
verification pipeline is split into :meth:`GroupKeyProvisioner.verify`
(attest only) and :meth:`GroupKeyProvisioner.release` (emit the encrypted
key) so a replicated service can collect a quorum of verifications and have
exactly one replica release.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.crypto.hashing import constant_time_equal
from repro.crypto.prng import Sha256Prng
from repro.crypto.rsa import RsaPublicKey
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import report_data_binding
from repro.sgx.errors import AttestationError, ProvisioningError
from repro.sgx.measurement import Quote

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

__all__ = ["GroupKeyProvisioner"]


class GroupKeyProvisioner:
    """Releases the trusted group key to successfully attested enclaves."""

    def __init__(self, attestation: AttestationService, group_key: bytes, rng: Sha256Prng):
        if len(group_key) != 16:
            raise ValueError("group key must be a 16-byte AES key")
        self._attestation = attestation
        self._group_key = group_key
        self._epoch = 0
        self._rng = rng
        self._fault_hook: Optional[Callable[[], Optional[str]]] = None
        self.provisioned_count = 0
        self.refused_count = 0
        self.telemetry: Optional["Telemetry"] = None

    def set_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        """Count provisioning outcomes and trace each attempt."""
        self.telemetry = telemetry

    def _record(self, outcome: str, **fields: object) -> None:
        if self.telemetry is not None:
            self.telemetry.counter("provisioning.attempts", outcome=outcome).inc()
            self.telemetry.event("provisioning.attempt", outcome=outcome, **fields)

    def set_fault_hook(self, hook: Optional[Callable[[], Optional[str]]]) -> None:
        """Install (or clear) a fault-injection gate.

        The hook runs before every provisioning attempt; returning a string
        makes the attempt fail with that reason — the deterministic stand-in
        for transient infrastructure failures (rate limiting, TLS resets,
        backend flakiness) that real provisioning services exhibit.
        """
        self._fault_hook = hook

    @property
    def epoch(self) -> int:
        """The group-key epoch this provisioner currently releases."""
        return self._epoch

    def rekey(self, group_key: bytes, epoch: int) -> None:
        """Install a rotated group key (see :mod:`repro.membership.epoch`)."""
        if len(group_key) != 16:
            raise ValueError("group key must be a 16-byte AES key")
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        self._group_key = group_key
        self._epoch = epoch

    def verify(self, quote: Quote, enclave_public_key: RsaPublicKey) -> None:
        """Run the full verification pipeline without releasing the key.

        Raises :class:`ProvisioningError` if the quote does not verify or if
        ``enclave_public_key`` is not the key bound into the quote.
        """
        if self._fault_hook is not None:
            reason = self._fault_hook()
            if reason:
                self.refused_count += 1
                self._record("refused", node=quote.device_id, reason=reason)
                raise ProvisioningError(f"injected fault: {reason}")
        binding = report_data_binding(enclave_public_key)
        if not constant_time_equal(quote.report_data[: len(binding)], binding):
            self._record("failed", node=quote.device_id, reason="key binding")
            raise ProvisioningError("public key is not bound into the quote")
        try:
            self._attestation.verify_quote(quote)
        except AttestationError as error:
            self._record("failed", node=quote.device_id, reason="attestation")
            raise ProvisioningError(f"attestation failed: {error}") from error

    def release(
        self, enclave_public_key: RsaPublicKey, device_id: Optional[int] = None
    ) -> bytes:
        """Encrypt the (epoch-tagged) group key to an already-verified enclave."""
        self.provisioned_count += 1
        self._record("ok", node=device_id)
        if self._epoch == 0:
            payload = self._group_key  # legacy byte-identical wire format
        else:
            payload = self._epoch.to_bytes(8, "big") + self._group_key
        return enclave_public_key.encrypt(payload, self._rng)

    def provision(self, quote: Quote, enclave_public_key: RsaPublicKey) -> bytes:
        """Verify attestation and return Enc_RSA(K_T) for the enclave key."""
        self.verify(quote, enclave_public_key)
        return self.release(enclave_public_key, device_id=quote.device_id)
