"""Runtime safety invariants checked after every simulation round.

Fault drills are only convincing if the system's *safety* properties hold
while faults fire; the :class:`InvariantChecker` observer asserts them each
round and fails loudly — naming the node, the round, and the violated
invariant — instead of letting a corrupted view propagate silently for
another hundred rounds.

Checked per round, over every alive correct node:

* **no-self** — a node never holds its own ID in its view;
* **registered-ids** — every view entry refers to a node that was at some
  point part of the membership (:attr:`Simulation.ever_registered`);
* **view-known** — the view is a subset of the node's known-ID set;
* **no-duplicates** (*opt-in*) — no repeated view entries.  Off by
  default: Brahms views legitimately repeat IDs (pushes and samples are
  drawn with replacement), so this only makes sense for protocols that
  deduplicate;
* **connectivity** (after a grace period) — the undirected graph induced
  by correct alive nodes' views has a giant component covering (almost)
  every correct node, i.e. the overlay did not silently partition.  A
  small tolerance absorbs transiently isolated stragglers — under heavy
  pollution a node's view can momentarily hold only Byzantine IDs without
  the overlay being split.

With a membership director attached (dynamic trusted sets,
:mod:`repro.membership`), two more hold each round:

* **epoch-exchange** — no trusted node completed a §IV-B swap this round
  under any epoch other than the current one; in particular, never under
  a *revoked* epoch's key, and never while its own device is revoked;
* **membership-staleness** — no alive trusted node's membership view lags
  a log record older than ``staleness_bound`` rounds (revocations must
  propagate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.sim.engine import Observer, Simulation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.membership.director import MembershipDirector

__all__ = ["InvariantViolation", "Violation", "InvariantChecker"]


class InvariantViolation(AssertionError):
    """A per-round safety property failed."""


@dataclass(frozen=True)
class Violation:
    """One recorded invariant failure."""

    round_number: int
    invariant: str
    node_id: Optional[int]
    detail: str

    def describe(self) -> str:
        where = f"node {self.node_id}" if self.node_id is not None else "overlay"
        return (f"round {self.round_number}: invariant '{self.invariant}' "
                f"violated at {where}: {self.detail}")


class InvariantChecker(Observer):
    """Observer asserting the per-round safety invariants.

    With ``record_only=True`` violations are collected in :attr:`violations`
    instead of raised — useful for post-mortem analysis of a deliberately
    broken run.
    """

    def __init__(
        self,
        check_duplicate_entries: bool = False,
        connectivity_grace: int = 10,
        connectivity_tolerance: float = 0.05,
        record_only: bool = False,
        membership: Optional["MembershipDirector"] = None,
    ):
        if not 0.0 <= connectivity_tolerance < 1.0:
            raise ValueError("connectivity_tolerance must be in [0, 1)")
        self.check_duplicate_entries = check_duplicate_entries
        self.connectivity_grace = connectivity_grace
        self.connectivity_tolerance = connectivity_tolerance
        self.record_only = record_only
        self.membership = membership
        self.rounds_checked = 0
        self.violations: List[Violation] = []

    # -- entry point -----------------------------------------------------------

    def on_round_end(self, simulation: Simulation) -> None:
        self.rounds_checked += 1
        for node in sorted(simulation.correct_nodes(), key=lambda n: n.node_id):
            self._check_node(simulation, node)
        if simulation.round_number > self.connectivity_grace:
            self._check_connectivity(simulation)
        if self.membership is not None:
            self._check_membership(simulation)

    # -- per-node checks -------------------------------------------------------

    def _check_node(self, simulation: Simulation, node) -> None:
        view = list(node.view_ids())
        if node.node_id in view:
            self._fail(simulation, "no-self", node.node_id,
                       "the node's own ID is in its view")
        unknown = sorted(set(view) - simulation.ever_registered)
        if unknown:
            self._fail(simulation, "registered-ids", node.node_id,
                       f"view cites never-registered IDs {unknown}")
        known = set(node.known_ids())
        missing = sorted(set(view) - known)
        if missing:
            self._fail(simulation, "view-known", node.node_id,
                       f"view entries {missing} missing from known-ID set")
        if self.check_duplicate_entries and len(set(view)) != len(view):
            duplicated = sorted(
                entry for entry in sorted(set(view)) if view.count(entry) > 1
            )
            self._fail(simulation, "no-duplicates", node.node_id,
                       f"view repeats IDs {duplicated}")

    # -- overlay connectivity --------------------------------------------------

    def _check_connectivity(self, simulation: Simulation) -> None:
        members = {
            node.node_id: node for node in simulation.correct_nodes()
            if node.view_ids()
        }
        if len(members) < 2:
            return
        # Undirected reachability over view edges between correct alive
        # nodes (edges to Byzantine or departed nodes carry no gossip we
        # can rely on).
        adjacency = {node_id: set() for node_id in members}
        for node_id, node in sorted(members.items()):
            for peer in node.view_ids():
                if peer in members:
                    adjacency[node_id].add(peer)
                    adjacency[peer].add(node_id)
        visited = set()
        giant = set()
        for origin in sorted(members):
            if origin in visited:
                continue
            component = {origin}
            frontier = [origin]
            while frontier:
                current = frontier.pop()
                for peer in sorted(adjacency[current]):
                    if peer not in component:
                        component.add(peer)
                        frontier.append(peer)
            visited |= component
            if len(component) > len(giant):
                giant = component
        stranded = sorted(set(members) - giant)
        allowed = max(1, int(self.connectivity_tolerance * len(members)))
        if len(stranded) > allowed:
            self._fail(
                simulation, "connectivity", None,
                f"overlay split: {len(stranded)} of {len(members)} correct "
                f"nodes unreachable (e.g. {stranded[:5]})",
            )

    # -- dynamic trusted-set membership ----------------------------------------

    def _check_membership(self, simulation: Simulation) -> None:
        director = self.membership
        service = director.service
        chain = service.chain
        current = chain.current.number
        round_number = simulation.round_number
        for node in sorted(simulation.correct_nodes(), key=lambda n: n.node_id):
            if not getattr(node, "trusted_role", False):
                continue
            epochs = getattr(node, "round_exchange_epochs", ())
            if not epochs:
                continue
            if service.is_revoked(node.node_id):
                self._fail(
                    simulation, "epoch-exchange", node.node_id,
                    f"revoked node completed {len(epochs)} trusted "
                    f"exchange(s) this round",
                )
            revoked_used = sorted(
                {epoch for epoch in epochs if chain.is_revoked_epoch(epoch)}
            )
            if revoked_used:
                self._fail(
                    simulation, "epoch-exchange", node.node_id,
                    f"trusted exchange used revoked epoch(s) {revoked_used}",
                )
            stale_used = sorted(
                {epoch for epoch in epochs if epoch != current}
            )
            if stale_used:
                self._fail(
                    simulation, "epoch-exchange", node.node_id,
                    f"trusted exchange used non-current epoch(s) "
                    f"{stale_used} (current {current})",
                )
        bound = director.config.staleness_bound
        log = service.log
        for node_id in sorted(director.views):
            node = simulation.nodes.get(node_id)
            if node is None or not node.alive:
                continue
            view = director.views[node_id]
            overdue = sorted(
                record.seq
                for record in log.records_since(view.applied_seq)
                if round_number - record.round_number > bound
            )
            if overdue:
                self._fail(
                    simulation, "membership-staleness", node_id,
                    f"log records {overdue} still unapplied after "
                    f"{bound} round(s)",
                )

    # -- reporting -------------------------------------------------------------

    def _fail(
        self,
        simulation: Simulation,
        invariant: str,
        node_id: Optional[int],
        detail: str,
    ) -> None:
        violation = Violation(simulation.round_number, invariant, node_id, detail)
        self.violations.append(violation)
        if not self.record_only:
            raise InvariantViolation(violation.describe())

    @property
    def ok(self) -> bool:
        return not self.violations
