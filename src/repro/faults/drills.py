"""Canned fault drills: named end-to-end failure scenarios.

A *drill* builds a full RAPTEE deployment, applies a representative fault
plan, runs it with the invariant checker armed, and summarizes what broke
and what recovered.  Drills double as executable documentation (the README
walks through one) and as the CI smoke check for the fault layer
(``python -m repro faults --drill enclave-outage``).

Available drills:

* ``enclave-outage`` — 30 % of trusted enclaves crash mid-run during an
  attestation-service outage, and a third of the victims additionally lose
  their sealed K_T backups.  Exercises degradation to honest-Brahms
  behaviour, sealed-storage restores, backoff through the outage, and
  re-promotion.
* ``partition`` — the correct population splits into two halves for a
  window, under a simultaneous global loss burst.
* ``flaky-provisioning`` — trusted nodes crash-restart with corrupted
  backups while the provisioning service refuses most requests, forcing
  recovery through many retry rounds.
* ``membership-churn`` — dynamic trusted-set membership under compound
  failure: a provisioner replica crashes, a trusted device is revoked
  (forcing a group-key rotation), a scheduled rotation lands *inside* an
  attestation outage, and background join/leave churn runs throughout.
  Exercises quorum failover, epoch enforcement (every trusted node must
  re-attest into the new epoch), revocation propagation through the
  gossiped membership log, and the epoch-exchange invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import resilience_from_trace
from repro.core.eviction import AdaptiveEviction
from repro.experiments.scenarios import SimulationBundle, TopologySpec, build_raptee_simulation
from repro.faults.harness import FaultHarness, wire_faults
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import (
    AttestationOutageFault,
    CrashRestartFault,
    DeviceRevocationFault,
    EnclaveCrashFault,
    EpochRotationFault,
    FaultPlan,
    LossBurstFault,
    PartitionFault,
    ProvisionerReplicaCrashFault,
    ProvisioningFlakinessFault,
    RoundWindow,
    SealedBlobCorruptionFault,
)
from repro.membership import MembershipConfig
from repro.telemetry import Telemetry, wire_telemetry
from repro.telemetry.exporters import trace_to_jsonl

__all__ = ["DRILLS", "DrillReport", "run_drill"]


@dataclass(frozen=True)
class DrillReport:
    """Outcome of one fault drill."""

    name: str
    nodes: int
    rounds: int
    seed: int
    plan_description: str
    resilience_percent: float
    drops_by_cause: Dict[str, int]
    crashes: int
    restarts: int
    enclave_crashes: int
    degradations: int
    promotions: int
    restores_from_seal: int
    reprovisions: int
    failed_attempts: int
    still_degraded: int
    rounds_checked: int
    violations: int
    # Dynamic trusted-set membership (all zero for legacy drills).
    rotations: int = 0
    revocations: int = 0
    membership_joins: int = 0
    membership_leaves: int = 0
    stale_degrades: int = 0
    current_epoch: int = 0
    #: The full telemetry trace as JSON Lines, when captured — the CI
    #: membership smoke job uploads this as its artifact.
    trace_jsonl: Optional[str] = None

    def render(self) -> str:
        lines = [
            f"fault drill:        {self.name}",
            f"population:         {self.nodes} nodes, {self.rounds} rounds (seed {self.seed})",
            self.plan_description,
            f"messages dropped:   "
            + (", ".join(f"{cause} {count}"
                         for cause, count in sorted(self.drops_by_cause.items()))
               or "none"),
            f"node crashes:       {self.crashes} (restarts {self.restarts})",
            f"enclave crashes:    {self.enclave_crashes}",
            f"degradations:       {self.degradations} "
            f"(promotions back {self.promotions}, still degraded {self.still_degraded})",
            f"sealed restores:    {self.restores_from_seal}",
            f"re-provisionings:   {self.reprovisions} "
            f"(failed attempts {self.failed_attempts})",
            f"byz IDs in views:   {self.resilience_percent:.1f}%",
            f"invariants:         {self.rounds_checked} rounds checked, "
            f"{self.violations} violation(s)",
        ]
        if self.rotations or self.revocations or self.current_epoch:
            lines.extend([
                f"group-key epochs:   {self.rotations} rotation(s), "
                f"final epoch {self.current_epoch}",
                f"membership:         {self.revocations} revocation(s), "
                f"{self.membership_joins} join(s), "
                f"{self.membership_leaves} leave(s), "
                f"{self.stale_degrades} stale-epoch degrade(s)",
            ])
        return "\n".join(lines)


def _drill_spec(nodes: int) -> TopologySpec:
    return TopologySpec(
        n_nodes=nodes,
        byzantine_fraction=0.10,
        trusted_fraction=0.30,
        view_ratio=0.08,
    )


def _trusted_ids(bundle: SimulationBundle) -> List[int]:
    return sorted(bundle.trusted_ids)


def _enclave_outage_plan(bundle: SimulationBundle, rounds: int) -> FaultPlan:
    trusted = _trusted_ids(bundle)
    victims = trusted[: max(1, math.ceil(len(trusted) * 0.30))]
    crash_round = max(2, rounds // 5)
    outage = RoundWindow(crash_round, min(rounds, crash_round + 8))
    faults: List = [AttestationOutageFault(outage)]
    faults.extend(EnclaveCrashFault(victim, crash_round) for victim in victims)
    faults.extend(
        SealedBlobCorruptionFault(victim, crash_round)
        for victim in victims[::3]
    )
    return FaultPlan(faults)


def _partition_plan(bundle: SimulationBundle, rounds: int) -> FaultPlan:
    correct = sorted(bundle.simulation.correct_node_ids())
    half = len(correct) // 2
    window = RoundWindow(max(2, rounds // 4), max(2, rounds // 2))
    return FaultPlan([
        PartitionFault(frozenset(correct[:half]), frozenset(correct[half:]), window),
        LossBurstFault(window, 0.10),
    ])


def _flaky_provisioning_plan(bundle: SimulationBundle, rounds: int) -> FaultPlan:
    trusted = _trusted_ids(bundle)
    victims = trusted[: max(1, len(trusted) // 5)]
    crash_round = max(2, rounds // 6)
    faults: List = [
        ProvisioningFlakinessFault(RoundWindow(crash_round, rounds), 0.60),
    ]
    faults.extend(
        CrashRestartFault(victim, crash_round, down_rounds=2)
        for victim in victims
    )
    faults.extend(
        SealedBlobCorruptionFault(victim, crash_round) for victim in victims
    )
    return FaultPlan(faults)


def _membership_churn_plan(bundle: SimulationBundle, rounds: int) -> FaultPlan:
    trusted = _trusted_ids(bundle)
    victim = trusted[0]
    crash_round = max(2, rounds // 5)
    return FaultPlan([
        # The legacy-primary replica goes down: quorum must hold at 2/3 and
        # the release failover moves to replica 1, deterministically.
        ProvisionerReplicaCrashFault(0, crash_round, down_rounds=6),
        # A trusted device is revoked, forcing an immediate re-key; every
        # other trusted node must re-attest into the new epoch.
        DeviceRevocationFault(victim, crash_round),
        AttestationOutageFault(
            RoundWindow(crash_round + 2, crash_round + 5)
        ),
        # A scheduled rotation lands mid-outage: the whole trusted set is
        # degraded while re-attestation is refused, and must recover
        # through backoff once the outage lifts.
        EpochRotationFault(crash_round + 3),
    ])


DRILLS = {
    "enclave-outage": _enclave_outage_plan,
    "partition": _partition_plan,
    "flaky-provisioning": _flaky_provisioning_plan,
    "membership-churn": _membership_churn_plan,
}

#: Drills that need the bundle built with dynamic membership enabled.
_MEMBERSHIP_DRILLS = frozenset({"membership-churn"})

#: Membership knobs the churn drill runs under: background join/leave
#: churn on top of the planned faults, with a leave-triggered re-key.
_DRILL_MEMBERSHIP = MembershipConfig(
    replica_count=3,
    join_rate=0.04,
    leave_rate=0.03,
)


def run_drill(
    name: str,
    nodes: int = 200,
    rounds: int = 50,
    seed: int = 1,
    capture_trace: bool = False,
) -> DrillReport:
    """Build, break, run, and summarize one named drill.

    ``capture_trace`` stores the full telemetry trace on the report as
    JSON Lines (``trace_jsonl``) — callers that want it on disk write it
    themselves (this module performs no file I/O).
    """
    if name not in DRILLS:
        raise ValueError(
            f"unknown drill {name!r}; available: {', '.join(sorted(DRILLS))}"
        )
    membership = _DRILL_MEMBERSHIP if name in _MEMBERSHIP_DRILLS else None
    bundle = build_raptee_simulation(
        _drill_spec(nodes), seed, eviction=AdaptiveEviction(),
        membership=membership,
    )
    # Telemetry first, so the injector and recovery manager pick up the hub
    # and every number the report needs lands in the registry.
    telemetry = wire_telemetry(bundle).telemetry
    plan = DRILLS[name](bundle, rounds)
    checker = InvariantChecker(record_only=True, membership=bundle.membership)
    harness = wire_faults(bundle, plan, seed, checker=checker)
    harness.run(rounds)
    return _report(
        name, nodes, rounds, seed, harness, telemetry,
        capture_trace=capture_trace,
    )


def _report(
    name: str,
    nodes: int,
    rounds: int,
    seed: int,
    harness: FaultHarness,
    telemetry: Telemetry,
    capture_trace: bool = False,
) -> DrillReport:
    """Summarize a finished drill from the telemetry registry.

    Every count comes out of the one shared metrics namespace — the private
    ``InjectionStats``/``RecoveryStats``/node counters stay available for
    assertions, but reports read the registry.
    """
    bundle = harness.bundle
    registry = telemetry.registry
    checker = harness.checker
    drops_by_cause = {
        str(cause): int(count)
        for cause, count in registry.by_label("faults.drops", "cause").items()
    }
    return DrillReport(
        name=name,
        nodes=nodes,
        rounds=rounds,
        seed=seed,
        plan_description=harness.plan.describe(),
        resilience_percent=100.0 * resilience_from_trace(bundle.trace.records),
        drops_by_cause=drops_by_cause,
        crashes=int(registry.value("faults.crashes")),
        restarts=int(registry.value("faults.restarts")),
        enclave_crashes=int(registry.value("faults.enclave_crashes")),
        degradations=int(registry.value("raptee.degradations")),
        promotions=int(registry.value("raptee.promotions")),
        restores_from_seal=int(registry.value("recovery.restores_from_seal")),
        reprovisions=int(registry.value("recovery.reprovisions")),
        failed_attempts=int(registry.value("recovery.failed_attempts")),
        # The per-round gauge's final value is the end-of-run degraded count.
        still_degraded=int(registry.value("raptee.degraded_nodes")),
        rounds_checked=checker.rounds_checked if checker else 0,
        violations=len(checker.violations) if checker else 0,
        # Rotation counts carry a `reason` label; sum across reasons.
        rotations=sum(
            int(count)
            for count in registry.by_label(
                "membership.rotations", "reason"
            ).values()
        ),
        revocations=int(registry.value("membership.revocations")),
        membership_joins=int(registry.value("membership.joins")),
        membership_leaves=int(registry.value("membership.leaves")),
        stale_degrades=int(registry.value("membership.stale_degrades")),
        current_epoch=int(registry.value("membership.epoch")),
        trace_jsonl=(
            trace_to_jsonl(telemetry.trace.events)
            if capture_trace and telemetry.trace is not None
            else None
        ),
    )
