"""Deterministic fault injection for the RAPTEE simulator.

The paper evaluates RAPTEE under an adversary but assumes the *benign*
infrastructure — network links, node processes, SGX machinery — works
perfectly.  This package drops that assumption: declarative
:class:`~repro.faults.plan.FaultPlan`\\ s describe link loss, partitions,
eclipse cuts, crash-restarts, omission nodes, attestation outages,
provisioning flakiness, enclave crashes, sealed-blob corruption and device
revocation; the :class:`~repro.faults.injector.FaultInjector` applies them
to a running simulation through seeded hooks, paired with the recovery
machinery in :mod:`repro.core.recovery` and audited every round by the
:class:`~repro.faults.invariants.InvariantChecker`.

Everything is deterministic: the same seed and the same plan reproduce the
same run, faults included.
"""

from repro.faults.drills import DRILLS, DrillReport, run_drill
from repro.faults.harness import FaultHarness, wire_faults
from repro.faults.injector import FaultInjector, InjectionStats
from repro.faults.invariants import InvariantChecker, InvariantViolation, Violation
from repro.faults.plan import (
    AttestationOutageFault,
    CrashRestartFault,
    DeviceRevocationFault,
    EclipseFault,
    EnclaveCrashFault,
    Fault,
    FaultPlan,
    LinkFault,
    LossBurstFault,
    OmissionFault,
    PartitionFault,
    ProvisioningFlakinessFault,
    RoundWindow,
    SealedBlobCorruptionFault,
)

__all__ = [
    "DRILLS",
    "DrillReport",
    "run_drill",
    "FaultHarness",
    "wire_faults",
    "FaultInjector",
    "InjectionStats",
    "InvariantChecker",
    "InvariantViolation",
    "Violation",
    "AttestationOutageFault",
    "CrashRestartFault",
    "DeviceRevocationFault",
    "EclipseFault",
    "EnclaveCrashFault",
    "Fault",
    "FaultPlan",
    "LinkFault",
    "LossBurstFault",
    "OmissionFault",
    "PartitionFault",
    "ProvisioningFlakinessFault",
    "RoundWindow",
    "SealedBlobCorruptionFault",
]
