"""Declarative fault plans: what breaks, where, and when.

A :class:`FaultPlan` is a validated, immutable list of fault declarations
spanning the three layers the simulator can break:

* **network** — :class:`LinkFault` (per-link, per-direction loss),
  :class:`PartitionFault` (cut between two node groups),
  :class:`EclipseFault` (isolate a victim except for chosen peers),
  :class:`LossBurstFault` (elevated global loss for a round burst);
* **node** — :class:`CrashRestartFault` (node down for k rounds, enclave
  state lost), :class:`OmissionFault` (alive but silently dropping its own
  sends);
* **SGX** — :class:`AttestationOutageFault` (the attestation service
  refuses quotes for a window), :class:`ProvisioningFlakinessFault`
  (probabilistic provisioning refusals), :class:`EnclaveCrashFault`,
  :class:`SealedBlobCorruptionFault`, :class:`DeviceRevocationFault`;
* **membership** (dynamic trusted sets, :mod:`repro.membership`) —
  :class:`ProvisionerReplicaCrashFault` (one replica of the replicated
  provisioning service goes down), :class:`EpochRotationFault` (a forced
  group-key rotation — combine with :class:`PartitionFault` for the
  rotation-during-partition scenario), :class:`RevocationStormFault`
  (several trusted devices revoked in one round).

Plans are pure data — the :mod:`repro.faults.injector` interprets them
against a running simulation.  All probabilistic faults draw from the
injector's own seeded RNG, never from the protocol streams, so adding a
fault plan perturbs a run only through the faults themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

__all__ = [
    "RoundWindow",
    "Fault",
    "LinkFault",
    "PartitionFault",
    "EclipseFault",
    "LossBurstFault",
    "CrashRestartFault",
    "OmissionFault",
    "AttestationOutageFault",
    "ProvisioningFlakinessFault",
    "EnclaveCrashFault",
    "SealedBlobCorruptionFault",
    "DeviceRevocationFault",
    "ProvisionerReplicaCrashFault",
    "EpochRotationFault",
    "RevocationStormFault",
    "FaultPlan",
]


@dataclass(frozen=True)
class RoundWindow:
    """Inclusive range of simulation rounds a fault is active in."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 1:
            raise ValueError("fault windows start at round 1")
        if self.end < self.start:
            raise ValueError("window end must be >= start")

    def covers(self, round_number: int) -> bool:
        return self.start <= round_number <= self.end

    def describe(self) -> str:
        if self.start == self.end:
            return f"round {self.start}"
        return f"rounds {self.start}-{self.end}"


@dataclass(frozen=True)
class Fault:
    """Base class; concrete faults add their parameters."""

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""

    def describe(self) -> str:
        raise NotImplementedError


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class LinkFault(Fault):
    """Per-link loss override for one direction (or both)."""

    src: int
    dst: int
    window: RoundWindow
    loss_rate: float = 1.0
    bidirectional: bool = False

    def validate(self) -> None:
        _check_rate("loss_rate", self.loss_rate)
        if self.src == self.dst:
            raise ValueError("a link fault needs two distinct endpoints")

    def describe(self) -> str:
        arrow = "<->" if self.bidirectional else "->"
        return (f"link {self.src}{arrow}{self.dst} loses "
                f"{self.loss_rate:.0%} ({self.window.describe()})")


@dataclass(frozen=True)
class PartitionFault(Fault):
    """Cut every message between two disjoint node groups."""

    group_a: FrozenSet[int]
    group_b: FrozenSet[int]
    window: RoundWindow

    def validate(self) -> None:
        if not self.group_a or not self.group_b:
            raise ValueError("partition groups must be non-empty")
        if self.group_a & self.group_b:
            raise ValueError("partition groups must be disjoint")

    def describe(self) -> str:
        return (f"partition {len(self.group_a)}|{len(self.group_b)} nodes "
                f"({self.window.describe()})")


@dataclass(frozen=True)
class EclipseFault(Fault):
    """Isolate one victim: only traffic with ``allowed`` peers survives."""

    victim: int
    window: RoundWindow
    allowed: FrozenSet[int] = frozenset()

    def validate(self) -> None:
        if self.victim in self.allowed:
            raise ValueError("the victim cannot be its own allowed peer")

    def describe(self) -> str:
        return (f"eclipse node {self.victim} (allowed {len(self.allowed)} "
                f"peers, {self.window.describe()})")


@dataclass(frozen=True)
class LossBurstFault(Fault):
    """Elevated message loss on every link during the window."""

    window: RoundWindow
    loss_rate: float

    def validate(self) -> None:
        _check_rate("loss_rate", self.loss_rate)

    def describe(self) -> str:
        return f"loss burst {self.loss_rate:.0%} ({self.window.describe()})"


@dataclass(frozen=True)
class CrashRestartFault(Fault):
    """Node goes down at ``at_round`` and comes back ``down_rounds`` later.

    With ``crash_enclave`` (the default for trusted nodes) the in-memory
    enclave dies with the process — on restart the node is degraded until
    the recovery manager restores K_T from sealed storage or re-attests.
    """

    node_id: int
    at_round: int
    down_rounds: int
    crash_enclave: bool = True

    def validate(self) -> None:
        if self.at_round < 1:
            raise ValueError("at_round must be >= 1")
        if self.down_rounds < 1:
            raise ValueError("down_rounds must be >= 1")

    def describe(self) -> str:
        return (f"crash node {self.node_id} at round {self.at_round} "
                f"for {self.down_rounds} round(s)")


@dataclass(frozen=True)
class OmissionFault(Fault):
    """Node stays alive but silently drops its own outgoing messages."""

    node_id: int
    window: RoundWindow
    drop_rate: float = 1.0

    def validate(self) -> None:
        _check_rate("drop_rate", self.drop_rate)

    def describe(self) -> str:
        return (f"node {self.node_id} omits {self.drop_rate:.0%} of sends "
                f"({self.window.describe()})")


@dataclass(frozen=True)
class AttestationOutageFault(Fault):
    """The attestation service refuses every quote during the window."""

    window: RoundWindow

    def describe(self) -> str:
        return f"attestation outage ({self.window.describe()})"


@dataclass(frozen=True)
class ProvisioningFlakinessFault(Fault):
    """Each provisioning request fails with ``failure_rate`` in the window."""

    window: RoundWindow
    failure_rate: float

    def validate(self) -> None:
        _check_rate("failure_rate", self.failure_rate)

    def describe(self) -> str:
        return (f"provisioning fails {self.failure_rate:.0%} "
                f"({self.window.describe()})")


@dataclass(frozen=True)
class EnclaveCrashFault(Fault):
    """The node's enclave instance dies (the host process survives)."""

    node_id: int
    at_round: int

    def validate(self) -> None:
        if self.at_round < 1:
            raise ValueError("at_round must be >= 1")

    def describe(self) -> str:
        return f"enclave of node {self.node_id} crashes at round {self.at_round}"


@dataclass(frozen=True)
class SealedBlobCorruptionFault(Fault):
    """Bit-rot in a node's sealed K_T blob: the next restore must fail."""

    node_id: int
    at_round: int

    def validate(self) -> None:
        if self.at_round < 1:
            raise ValueError("at_round must be >= 1")

    def describe(self) -> str:
        return f"sealed blob of node {self.node_id} corrupted at round {self.at_round}"


@dataclass(frozen=True)
class DeviceRevocationFault(Fault):
    """The attestation authority revokes a node's SGX device mid-run."""

    node_id: int
    at_round: int

    def validate(self) -> None:
        if self.at_round < 1:
            raise ValueError("at_round must be >= 1")

    def describe(self) -> str:
        return f"device of node {self.node_id} revoked at round {self.at_round}"


@dataclass(frozen=True)
class ProvisionerReplicaCrashFault(Fault):
    """One replica of the replicated provisioning service goes down.

    ``down_rounds == 0`` means the crash is permanent; otherwise the
    replica is restored (and re-synced to the current epoch) after that
    many rounds.
    """

    replica_id: int
    at_round: int
    down_rounds: int = 0

    def validate(self) -> None:
        if self.replica_id < 0:
            raise ValueError("replica_id must be non-negative")
        if self.at_round < 1:
            raise ValueError("at_round must be >= 1")
        if self.down_rounds < 0:
            raise ValueError("down_rounds must be non-negative")

    def describe(self) -> str:
        span = (
            "permanently"
            if self.down_rounds == 0
            else f"for {self.down_rounds} round(s)"
        )
        return (f"provisioner replica {self.replica_id} crashes at round "
                f"{self.at_round} {span}")


@dataclass(frozen=True)
class EpochRotationFault(Fault):
    """A forced group-key rotation at a specific round."""

    at_round: int
    reason: str = "scheduled"

    def validate(self) -> None:
        if self.at_round < 1:
            raise ValueError("at_round must be >= 1")
        if not self.reason:
            raise ValueError("reason must be non-empty")

    def describe(self) -> str:
        return f"group-key rotation ({self.reason}) at round {self.at_round}"


@dataclass(frozen=True)
class RevocationStormFault(Fault):
    """Several trusted devices revoked in the same round."""

    node_ids: Tuple[int, ...]
    at_round: int

    def validate(self) -> None:
        if not self.node_ids:
            raise ValueError("a revocation storm needs at least one node")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ValueError("node_ids must be distinct")
        if self.at_round < 1:
            raise ValueError("at_round must be >= 1")

    def describe(self) -> str:
        return (f"revocation storm over {len(self.node_ids)} device(s) "
                f"at round {self.at_round}")


#: Fault classes that require a :class:`~repro.core.deployment.TrustedInfrastructure`
#: (and a recovery manager) to be interpretable.
SGX_FAULTS = (
    AttestationOutageFault,
    ProvisioningFlakinessFault,
    EnclaveCrashFault,
    SealedBlobCorruptionFault,
    DeviceRevocationFault,
)

#: Fault classes that additionally require a membership director
#: (:class:`repro.membership.MembershipDirector`) attached to the injector.
MEMBERSHIP_FAULTS = (
    ProvisionerReplicaCrashFault,
    EpochRotationFault,
    RevocationStormFault,
)


class FaultPlan:
    """An immutable, validated collection of fault declarations."""

    def __init__(self, faults: Iterable[Fault] = ()):
        self._faults: Tuple[Fault, ...] = tuple(faults)
        self.validate()

    @property
    def faults(self) -> Tuple[Fault, ...]:
        return self._faults

    def validate(self) -> None:
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"not a fault: {fault!r}")
            fault.validate()

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def of_type(self, fault_type: type) -> Tuple[Fault, ...]:
        return tuple(f for f in self.faults if isinstance(f, fault_type))

    @property
    def needs_sgx(self) -> bool:
        return any(isinstance(f, SGX_FAULTS) for f in self.faults)

    @property
    def needs_membership(self) -> bool:
        return any(isinstance(f, MEMBERSHIP_FAULTS) for f in self.faults)

    def describe(self) -> str:
        if not self.faults:
            return "empty fault plan"
        lines = [f"fault plan ({len(self.faults)} fault(s)):"]
        lines.extend(f"  - {fault.describe()}" for fault in self.faults)
        return "\n".join(lines)
