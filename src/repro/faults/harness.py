"""Wiring: connect a fault plan to a built simulation bundle.

:func:`wire_faults` is the one-call entry point experiment code uses: give
it a :class:`~repro.experiments.scenarios.SimulationBundle` (from the
scenario builders) plus a plan and the experiment seed, and it

1. derives injector and recovery RNG streams from the seed under
   dedicated labels (so fault randomness never perturbs protocol streams),
2. builds an :class:`~repro.core.recovery.EnclaveRecoveryManager` over the
   bundle's trusted infrastructure and seals every provisioned trusted
   node's K_T into its store (the pre-crash backups recovery restores
   from),
3. attaches a :class:`~repro.faults.injector.FaultInjector` to the
   simulation, and
4. returns a :class:`FaultHarness` whose :meth:`~FaultHarness.run` drives
   the bundle with the invariant checker observing every round.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.node import RapteeNode
from repro.core.recovery import EnclaveRecoveryManager, RetryPolicy
from repro.crypto.prng import derive_seed
from repro.experiments.scenarios import SimulationBundle
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

__all__ = ["FaultHarness", "wire_faults"]


@dataclass
class FaultHarness:
    """A bundle with faults attached, ready to run."""

    bundle: SimulationBundle
    plan: FaultPlan
    injector: FaultInjector
    recovery: Optional[EnclaveRecoveryManager]
    checker: Optional[InvariantChecker]

    def run(self, rounds: int) -> None:
        extra = (self.checker,) if self.checker is not None else ()
        self.bundle.run(rounds, extra_observers=extra)


def wire_faults(
    bundle: SimulationBundle,
    plan: FaultPlan,
    seed: int,
    retry_policy: Optional[RetryPolicy] = None,
    checker: Optional[InvariantChecker] = None,
    telemetry: Optional["Telemetry"] = None,
) -> FaultHarness:
    """Attach a fault plan (and recovery) to a built simulation bundle.

    ``telemetry`` defaults to whatever hub :func:`repro.telemetry.harness
    .wire_telemetry` already installed on the bundle (wire telemetry first
    when using both), so every applied fault and recovery transition also
    lands in the trace and the registry.
    """
    if telemetry is None:
        telemetry = bundle.simulation.telemetry
    injector_rng = random.Random(derive_seed(seed, "faults", "injector"))
    recovery: Optional[EnclaveRecoveryManager] = None
    if bundle.infrastructure is not None:
        recovery_rng = random.Random(derive_seed(seed, "faults", "recovery"))
        recovery = EnclaveRecoveryManager(
            bundle.infrastructure, recovery_rng, retry_policy
        )
        for node_id in sorted(bundle.simulation.nodes):
            node = bundle.simulation.nodes[node_id]
            if (
                isinstance(node, RapteeNode)
                and node.trusted_role
                and node.enclave is not None
                and node.enclave.is_provisioned()
            ):
                recovery.adopt(node)
    injector = FaultInjector(plan, injector_rng)
    injector.attach(
        bundle.simulation, bundle.infrastructure, recovery,
        membership=bundle.membership,
    )
    if telemetry is not None:
        injector.set_telemetry(telemetry)
    return FaultHarness(
        bundle=bundle,
        plan=plan,
        injector=injector,
        recovery=recovery,
        checker=checker,
    )
