"""The fault injector: interprets a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` attaches to one simulation.  It plugs into the
two hooks the simulator exposes:

* the network's message-level fault hook
  (:meth:`repro.sim.network.Network.install_fault_hook`) for link loss,
  partitions, eclipses, omission nodes and loss bursts;
* the engine's round-start controller
  (:class:`repro.sim.engine.FaultController`) for crash/restart, enclave
  crashes, sealed-blob corruption, device revocation and
  attestation/provisioning outages — and, after the faults of the round
  are applied, a tick of the enclave recovery manager so degraded trusted
  nodes can climb back.

Determinism: all probabilistic decisions draw from the injector's own RNG
(derived from the experiment seed under a ``"faults"`` label), visiting
faults in plan order and nodes in sorted order.  A run with an empty plan
is byte-identical to a run with no injector at all — the hooks never touch
the protocol RNG streams.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.node import RapteeNode
from repro.core.recovery import EnclaveRecoveryManager
from repro.faults.plan import (
    AttestationOutageFault,
    CrashRestartFault,
    DeviceRevocationFault,
    EclipseFault,
    EnclaveCrashFault,
    EpochRotationFault,
    FaultPlan,
    LinkFault,
    LossBurstFault,
    OmissionFault,
    PartitionFault,
    ProvisionerReplicaCrashFault,
    ProvisioningFlakinessFault,
    RevocationStormFault,
    SealedBlobCorruptionFault,
)
from repro.sim.engine import FaultController, Simulation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.membership.director import MembershipDirector
    from repro.telemetry.hub import Telemetry

__all__ = ["InjectionStats", "FaultInjector"]


@dataclass
class InjectionStats:
    """What the injector actually did, for drill reports and assertions."""

    drops_by_cause: Counter = field(default_factory=Counter)
    crashes: int = 0
    restarts: int = 0
    enclave_crashes: int = 0
    blob_corruptions: int = 0
    revocations: int = 0
    outage_rounds: int = 0
    provisioning_refusals: int = 0
    replica_crashes: int = 0
    replica_restores: int = 0
    rotations: int = 0

    @property
    def messages_dropped(self) -> int:
        return sum(self.drops_by_cause.values())


class FaultInjector(FaultController):
    """Applies a fault plan to a running simulation, round by round."""

    def __init__(self, plan: FaultPlan, rng: random.Random):
        self.plan = plan
        self._rng = rng
        self.stats = InjectionStats()
        self.telemetry: Optional["Telemetry"] = None
        self._simulation: Optional[Simulation] = None
        self._infrastructure = None
        self.recovery: Optional[EnclaveRecoveryManager] = None
        self.membership: Optional["MembershipDirector"] = None
        #: node_id -> round at which to bring the node back up.
        self._revive_at: Dict[int, int] = {}
        #: replica_id -> round at which to restore a crashed replica.
        self._replica_restore_at: Dict[int, int] = {}
        self._round = 0
        # Split the plan once by layer so the per-message hook stays cheap.
        self._link_faults = plan.of_type(LinkFault)
        self._partitions = plan.of_type(PartitionFault)
        self._eclipses = plan.of_type(EclipseFault)
        self._bursts = plan.of_type(LossBurstFault)
        self._omissions = plan.of_type(OmissionFault)
        self._crash_restarts = plan.of_type(CrashRestartFault)
        self._outages = plan.of_type(AttestationOutageFault)
        self._flakiness = plan.of_type(ProvisioningFlakinessFault)
        self._enclave_crashes = plan.of_type(EnclaveCrashFault)
        self._blob_corruptions = plan.of_type(SealedBlobCorruptionFault)
        self._revocations = plan.of_type(DeviceRevocationFault)
        self._replica_crashes = plan.of_type(ProvisionerReplicaCrashFault)
        self._rotations = plan.of_type(EpochRotationFault)
        self._revocation_storms = plan.of_type(RevocationStormFault)

    # -- wiring ----------------------------------------------------------------

    def attach(
        self,
        simulation: Simulation,
        infrastructure=None,
        recovery: Optional[EnclaveRecoveryManager] = None,
        membership: Optional["MembershipDirector"] = None,
    ) -> None:
        """Install the injector's hooks on a simulation (and its TCB)."""
        if self._simulation is not None:
            raise RuntimeError("injector is already attached to a simulation")
        if self.plan.needs_sgx and infrastructure is None:
            raise ValueError(
                "the plan contains SGX faults but no TrustedInfrastructure "
                "was provided"
            )
        if self.plan.needs_membership and membership is None:
            raise ValueError(
                "the plan contains membership faults but no MembershipDirector "
                "was provided (build the bundle with a MembershipConfig)"
            )
        self._simulation = simulation
        self._infrastructure = infrastructure
        self.recovery = recovery
        self.membership = membership
        if membership is not None:
            membership.bind(injector=self, recovery=recovery)
        simulation.set_fault_controller(self)
        simulation.network.install_fault_hook(self._on_message)
        if infrastructure is not None and self._flakiness:
            if membership is not None:
                # Cover every replica of the replicated service, not just
                # the legacy provisioner (replica 0 wraps it).
                membership.service.set_fault_hook(self._provisioning_fault)
            else:
                infrastructure.provisioner.set_fault_hook(
                    self._provisioning_fault
                )

    def set_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        """Fire a trace event (and counter) for every applied fault."""
        self.telemetry = telemetry
        if self.recovery is not None:
            self.recovery.set_telemetry(telemetry)
        if self.membership is not None:
            self.membership.set_telemetry(telemetry)

    def _record(
        self,
        counter_name: str,
        event_name: str,
        node: Optional[int] = None,
        **fields: object,
    ) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(f"faults.{counter_name}").inc()
            self.telemetry.event(f"fault.{event_name}", node=node, **fields)

    # -- round-start faults ----------------------------------------------------

    def on_round_start(self, simulation: Simulation) -> None:
        round_number = simulation.round_number
        self._round = round_number

        if self._outages:
            available = not any(f.window.covers(round_number) for f in self._outages)
            self._infrastructure.attestation.set_available(available)
            if not available:
                self.stats.outage_rounds += 1
                self._record("outage_rounds", "outage")

        for fault in self._crash_restarts:
            if fault.at_round == round_number:
                self._crash_node(simulation, fault)
        for node_id in sorted(self._revive_at):
            if self._revive_at[node_id] <= round_number:
                del self._revive_at[node_id]
                simulation.set_node_alive(node_id, True)
                self.stats.restarts += 1
                self._record("restarts", "restart", node=node_id)

        for fault in self._enclave_crashes:
            if fault.at_round == round_number:
                self._crash_enclave(simulation, fault.node_id)
                self.stats.enclave_crashes += 1
                self._record("enclave_crashes", "enclave_crash", node=fault.node_id)

        for fault in self._blob_corruptions:
            if fault.at_round == round_number:
                if self.recovery is None:
                    raise ValueError(
                        "sealed-blob corruption requires a recovery manager"
                    )
                if self.recovery.corrupt_sealed_blob(fault.node_id):
                    self.stats.blob_corruptions += 1
                    self._record(
                        "blob_corruptions", "blob_corruption", node=fault.node_id
                    )

        for fault in self._revocations:
            if fault.at_round == round_number:
                if self.membership is not None:
                    # Route through the membership service so the
                    # revocation is logged and forces a re-key.
                    self.membership.service.revoke(fault.node_id, round_number)
                else:
                    self._infrastructure.attestation.revoke_device(fault.node_id)
                self.stats.revocations += 1
                self._record("revocations", "revocation", node=fault.node_id)

        if self.membership is not None:
            self._apply_membership_faults(round_number)
            self.membership.tick(simulation)

        if self.recovery is not None:
            self.recovery.tick(simulation)

    def _apply_membership_faults(self, round_number: int) -> None:
        service = self.membership.service
        for fault in self._replica_crashes:
            if fault.at_round == round_number:
                service.crash_replica(fault.replica_id)
                if fault.down_rounds:
                    self._replica_restore_at[fault.replica_id] = (
                        fault.at_round + fault.down_rounds
                    )
                self.stats.replica_crashes += 1
                self._record(
                    "replica_crashes", "replica_crash", replica=fault.replica_id
                )
        for replica_id in sorted(self._replica_restore_at):
            if self._replica_restore_at[replica_id] <= round_number:
                del self._replica_restore_at[replica_id]
                service.restore_replica(replica_id)
                self.stats.replica_restores += 1
                self._record(
                    "replica_restores", "replica_restore", replica=replica_id
                )
        for fault in self._rotations:
            if fault.at_round == round_number:
                service.rotate(round_number, reason=fault.reason)
                self.stats.rotations += 1
                self._record("rotations", "rotation", reason=fault.reason)
        for fault in self._revocation_storms:
            if fault.at_round == round_number:
                for node_id in fault.node_ids:
                    service.revoke(node_id, round_number)
                    self.stats.revocations += 1
                    self._record("revocations", "revocation", node=node_id)

    def _crash_node(self, simulation: Simulation, fault: CrashRestartFault) -> None:
        if fault.node_id not in simulation.nodes:
            return  # departed via churn before the fault fired
        simulation.set_node_alive(fault.node_id, False)
        self._revive_at[fault.node_id] = fault.at_round + fault.down_rounds
        self.stats.crashes += 1
        self._record(
            "crashes", "crash", node=fault.node_id, down_rounds=fault.down_rounds
        )
        if fault.crash_enclave:
            self._crash_enclave(simulation, fault.node_id)

    @staticmethod
    def _crash_enclave(simulation: Simulation, node_id: int) -> None:
        node = simulation.nodes.get(node_id)
        if (
            isinstance(node, RapteeNode)
            and node.enclave is not None
            and not node.enclave.crashed
        ):
            node.enclave.crash()

    def _provisioning_fault(self) -> Optional[str]:
        for fault in self._flakiness:
            if fault.window.covers(self._round):
                if self._rng.random() < fault.failure_rate:
                    self.stats.provisioning_refusals += 1
                    self._record("provisioning_refusals", "provisioning_refusal")
                    return f"flaky provisioning (round {self._round})"
        return None

    # -- deterministic link queries (no rng draws) -----------------------------

    def blocks(self, src: int, dst: int, round_number: int) -> bool:
        """Whether the plan's *deterministic* cuts sever this link now.

        Used by the membership director to decide which gossip links are
        down: only partitions and eclipses count (probabilistic faults
        must not be consulted here — that would burn rng draws outside
        the message path and shift every later probabilistic decision).
        """
        for fault in self._partitions:
            if fault.window.covers(round_number) and (
                (src in fault.group_a and dst in fault.group_b)
                or (src in fault.group_b and dst in fault.group_a)
            ):
                return True
        for fault in self._eclipses:
            if not fault.window.covers(round_number):
                continue
            if src == fault.victim and dst not in fault.allowed:
                return True
            if dst == fault.victim and src not in fault.allowed:
                return True
        return False

    # -- message-level faults --------------------------------------------------

    def _on_message(self, src: int, dst: int, round_number: int) -> Optional[str]:
        """Decide whether to drop one message; returns the cause, or None.

        Deterministic faults (partition, eclipse) are checked before
        probabilistic ones so they never consume an rng draw — the drop
        pattern of one fault does not shift another fault's stream more
        than its own activity does.
        """
        cause = self._drop_cause(src, dst, round_number)
        if cause is not None:
            self.stats.drops_by_cause[cause] += 1
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.counter("faults.drops", cause=cause).inc()
                if telemetry.config.trace_messages:
                    telemetry.event("fault.drop", node=src, dst=dst, cause=cause)
        return cause

    def _drop_cause(self, src: int, dst: int, round_number: int) -> Optional[str]:
        for fault in self._partitions:
            if fault.window.covers(round_number) and (
                (src in fault.group_a and dst in fault.group_b)
                or (src in fault.group_b and dst in fault.group_a)
            ):
                return "partition"
        for fault in self._eclipses:
            if not fault.window.covers(round_number):
                continue
            if src == fault.victim and dst not in fault.allowed:
                return "eclipse"
            if dst == fault.victim and src not in fault.allowed:
                return "eclipse"
        for fault in self._omissions:
            if fault.window.covers(round_number) and src == fault.node_id:
                if fault.drop_rate >= 1.0 or self._rng.random() < fault.drop_rate:
                    return "omission"
        for fault in self._link_faults:
            if not fault.window.covers(round_number):
                continue
            if (src, dst) == (fault.src, fault.dst) or (
                fault.bidirectional and (src, dst) == (fault.dst, fault.src)
            ):
                if fault.loss_rate >= 1.0 or self._rng.random() < fault.loss_rate:
                    return "link-loss"
        for fault in self._bursts:
            if fault.window.covers(round_number):
                if self._rng.random() < fault.loss_rate:
                    return "loss-burst"
        return None
