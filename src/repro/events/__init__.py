"""Event-driven continuous-time simulation over the round-based core.

The round engine (:mod:`repro.sim.engine`) is lockstep: every node acts
once per global round.  This package generalises it to a deterministic
discrete-event simulation — a seeded event queue with a FIFO tie-break,
per-link latency models, latency-stretched per-node gossip cycles, and a
client load generator — while keeping the round engine as a provable
special case: barrier mode with zero-latency links reproduces the round
engine's trace JSONL, metrics CSV and final views byte-for-byte.

Entry points: build a bundle with the scenario builders, then
:func:`~repro.events.harness.wire_events` (after telemetry/faults) and
run the returned harness; or ``repro run --engine events`` on the CLI.
"""

from repro.events.engine import (
    EventEngine,
    EventOptions,
    StragglerProfile,
    parse_straggler,
)
from repro.events.harness import EventHarness, wire_events
from repro.events.latency import (
    ConstantLatency,
    LatencyConfig,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
    parse_latency_model,
)
from repro.events.load import LoadGenerator, LoadSpec, parse_load, percentile
from repro.events.network import EventRoundContext, LatencyNetwork
from repro.events.queue import Event, EventQueue

__all__ = [
    "Event",
    "EventQueue",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "LatencyConfig",
    "parse_latency_model",
    "LatencyNetwork",
    "EventRoundContext",
    "LoadSpec",
    "LoadGenerator",
    "parse_load",
    "percentile",
    "StragglerProfile",
    "parse_straggler",
    "EventOptions",
    "EventEngine",
    "EventHarness",
    "wire_events",
]
