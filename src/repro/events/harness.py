"""Wiring: attach the event-driven engine to a built simulation bundle.

:func:`wire_events` is the one-call entry point, symmetric with
:func:`repro.telemetry.harness.wire_telemetry` and
:func:`repro.faults.harness.wire_faults`:

1. wire telemetry first (if wanted) — the engine, latency adapter and
   load generator pick the hub up from the simulation;
2. wire faults second (if wanted) — the installed
   :class:`~repro.sim.engine.FaultController` fires at every round-open
   boundary on the event clock, which also drives membership gossip;
3. wire events last and call :meth:`EventHarness.run`.

The harness drives the bundle's standard observer stack (view trace,
discovery, telemetry observer) at round boundaries, so every downstream
metric — resilience, discovery round, stability — reads identically to a
round-engine run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.events.engine import EventEngine, EventOptions
from repro.events.load import LoadGenerator
from repro.experiments.scenarios import SimulationBundle

__all__ = ["EventHarness", "wire_events"]


@dataclass
class EventHarness:
    """A bundle with the event engine attached, ready to run."""

    bundle: SimulationBundle
    options: EventOptions
    engine: EventEngine

    @property
    def load(self) -> Optional[LoadGenerator]:
        return self.engine.load

    def run(self, rounds: int, extra_observers: Sequence = ()) -> None:
        self.engine.run(
            rounds, observers=self.bundle.observer_stack(extra_observers)
        )


def wire_events(bundle: SimulationBundle, options: EventOptions) -> EventHarness:
    """Attach an :class:`EventEngine` to a built simulation bundle."""
    engine = EventEngine(bundle.simulation, options)
    harness = EventHarness(bundle=bundle, options=options, engine=engine)
    bundle.events = harness
    return harness
