"""Per-link latency models for the event-driven engine.

A :class:`LatencyModel` turns an RNG into a one-way delay in seconds.
Three shapes cover the usual WAN abstractions (AsyncFlow's ``Edge`` uses
the same trio):

* :class:`ConstantLatency` — fixed delay; consumes **zero** RNG draws, so
  the zero-latency configuration used by barrier mode leaves every
  seeded stream untouched;
* :class:`UniformLatency` — uniform on ``[low, high]``;
* :class:`LogNormalLatency` — heavy-tailed, parameterised by the median
  and the log-space sigma (the paper-friendly parameterisation: the
  median survives the exponentiation, unlike the mean).

All stochastic models draw through methods backed purely by
``rng.random()`` (``lognormvariate`` / direct uniform scaling) — never
``gauss``, whose cached spare value lives outside
:class:`~repro.crypto.prng.Sha256Prng`'s checkpointable state.

A :class:`LatencyConfig` assigns models to links: one pairwise default
plus optional directed per-edge overrides, so a topology can single out
specific links (a transatlantic edge, a straggler's uplink) without
enumerating every pair.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "LatencyConfig",
    "parse_latency_model",
]


class LatencyModel:
    """One-way link delay distribution (seconds)."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    @property
    def is_zero(self) -> bool:
        """True when every sample is exactly 0.0 **and** sampling draws
        nothing from the RNG — the barrier-mode equivalence requirement."""
        return False

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Fixed one-way delay; ``ConstantLatency(0.0)`` is the zero link."""

    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("latency must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return self.seconds

    @property
    def is_zero(self) -> bool:
        return self.seconds == 0.0

    def describe(self) -> str:
        if self.is_zero:
            return "zero"
        return f"constant {1000.0 * self.seconds:g} ms"


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform one-way delay on ``[low, high]`` seconds."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError("uniform latency needs 0 <= low <= high")

    def sample(self, rng: random.Random) -> float:
        # One random() draw, scaled by hand: uniform(a, b) is equivalent
        # but spelling it out pins the draw count to exactly one.
        return self.low + (self.high - self.low) * rng.random()

    def describe(self) -> str:
        return f"uniform {1000.0 * self.low:g}-{1000.0 * self.high:g} ms"


@dataclass(frozen=True)
class LogNormalLatency(LatencyModel):
    """Log-normal one-way delay with the given median (seconds).

    ``sigma`` is the standard deviation of the underlying normal; the
    distribution's median is ``median`` exactly and its tail weight grows
    with sigma (p95 ≈ median·e^{1.64σ}).
    """

    median: float
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError("log-normal median must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, rng: random.Random) -> float:
        # lognormvariate goes through normalvariate, which rejection-samples
        # from random() only — no hidden gauss spare-value state.
        return rng.lognormvariate(math.log(self.median), self.sigma)

    def describe(self) -> str:
        return f"lognormal median {1000.0 * self.median:g} ms sigma {self.sigma:g}"


@dataclass(frozen=True)
class LatencyConfig:
    """Link-to-model assignment: a pairwise default plus directed overrides.

    Overrides are keyed on the directed edge ``(src, dst)`` — an
    asymmetric path (slow uplink, fast downlink) is two entries.
    """

    default: LatencyModel = field(default_factory=ConstantLatency)
    overrides: Dict[Tuple[int, int], LatencyModel] = field(default_factory=dict)

    def model_for(self, src: int, dst: int) -> LatencyModel:
        return self.overrides.get((src, dst), self.default)

    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        return self.model_for(src, dst).sample(rng)

    @property
    def is_zero(self) -> bool:
        if not self.default.is_zero:
            return False
        return all(model.is_zero for model in self.overrides.values())

    def describe(self) -> str:
        text = self.default.describe()
        if self.overrides:
            text += f" (+{len(self.overrides)} edge overrides)"
        return text


def parse_latency_model(spec: str) -> LatencyModel:
    """Parse a CLI latency spec into a model.

    Accepted forms (times in **milliseconds**, converted here)::

        zero
        constant:MS
        uniform:LOW_MS:HIGH_MS
        lognormal:MEDIAN_MS:SIGMA
    """
    parts = spec.strip().lower().split(":")
    kind, args = parts[0], parts[1:]
    try:
        if kind == "zero" and not args:
            return ConstantLatency(0.0)
        if kind == "constant" and len(args) == 1:
            return ConstantLatency(float(args[0]) / 1000.0)
        if kind == "uniform" and len(args) == 2:
            return UniformLatency(float(args[0]) / 1000.0, float(args[1]) / 1000.0)
        if kind == "lognormal" and len(args) == 2:
            return LogNormalLatency(float(args[0]) / 1000.0, float(args[1]))
    except ValueError as error:
        raise ValueError(f"bad latency spec {spec!r}: {error}") from error
    raise ValueError(
        f"bad latency spec {spec!r}: expected zero | constant:MS | "
        f"uniform:LOW:HIGH | lognormal:MEDIAN:SIGMA (times in ms)"
    )
