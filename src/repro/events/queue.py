"""Deterministic event queue: a heap keyed on ``(time, tiebreak_seq)``.

Python's :mod:`heapq` is only a partial order — two entries with equal
keys pop in an order that depends on heap internals (sift history), which
is exactly the kind of hidden state that breaks run-to-run reproducibility
the moment an unrelated event is added.  The queue therefore keys every
entry on ``(time, seq)`` where ``seq`` is a monotonically increasing
insertion counter: events scheduled for the same timestamp drain in the
order they were scheduled, always, regardless of how the heap happened to
arrange them.  The callable itself never participates in comparisons.

This mirrors the scheduler discipline of AsyncFlow-style simulators but
with the tie-break made explicit and pinned by a regression test
(``tests/test_events_queue.py``).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, NamedTuple, Optional

__all__ = ["Event", "EventQueue"]


class Event(NamedTuple):
    """One scheduled occurrence.

    ``label`` is a short human-readable tag (``"cycle"``, ``"deliver"``,
    ``"round.open"`` …) used by the schedule log for cross-process
    determinism checks; it carries no scheduling semantics.
    """

    time: float
    seq: int
    label: str
    action: Callable[[], None]


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def scheduled_total(self) -> int:
        """How many events were ever scheduled (the insertion counter)."""
        return self._seq

    def schedule(self, time: float, label: str,
                 action: Callable[[], None]) -> Event:
        """Insert ``action`` at ``time``; later insertions at the same
        timestamp drain later (FIFO among equal times)."""
        if time < 0:
            raise ValueError(f"cannot schedule at negative time {time!r}")
        event = Event(float(time), self._seq, label, action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def peek(self) -> Optional[Event]:
        return self._heap[0] if self._heap else None

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        return heapq.heappop(self._heap)
