"""Latency-aware message delivery wrapping the round engine's network.

:class:`LatencyNetwork` sits between nodes and the existing
:class:`~repro.sim.network.Network`.  All of that machinery — loss,
reachability, per-message fault hooks, per-pair AES-CTR ciphers,
push/pull statistics, telemetry counters — keeps working unchanged; the
adapter only decides *when* the underlying delivery runs:

* **pushes** are one-way: the adapter samples the link's one-way delay
  and schedules ``Network.send_push`` on the event queue.  Loss, fault
  and reachability gates therefore apply at *delivery* time (a node that
  crashes while a push is in flight eats the message), which is the
  physically honest ordering.  Zero-delay links deliver inline, drawing
  nothing from the latency RNG — that is what makes barrier mode
  byte-identical to the round engine.
* **request/response sessions** (pull, auth handshake, trusted swap) are
  executed synchronously — the reply is computed from the callee's
  current state, like a real RPC — but the sampled forward + return
  delays are charged to the calling node's *session time*, which the
  engine uses to stretch that node's cycle.  A node behind slow links
  gossips less often; it does not see stale data.

:class:`EventRoundContext` is the duck-typed stand-in for
:class:`~repro.sim.engine.RoundContext` handed to nodes: same
``send_push``/``request``/``network``/``round_number`` surface, but
``round_number`` is mutable (the engine advances it at round-open) and
message sends detour through the adapter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.events.latency import LatencyConfig
from repro.sim.messages import Message
from repro.sim.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from repro.events.queue import EventQueue
    from repro.sim.engine import Simulation
    from repro.telemetry.hub import Telemetry

__all__ = ["LatencyNetwork", "EventRoundContext"]

#: Histogram bounds for link/session delays, in milliseconds.
LATENCY_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                      500.0, 1000.0, 2000.0, 5000.0)


class _PushDelivery:
    """Scheduled one-way push arrival (a named class keeps schedule-log
    labels and tracebacks readable; closures would do the same job)."""

    __slots__ = ("_network", "_src", "_dst")

    def __init__(self, network: Network, src: int, dst: int):
        self._network = network
        self._src = src
        self._dst = dst

    def __call__(self) -> None:
        self._network.send_push(self._src, self._dst)


class LatencyNetwork:
    """Delay-scheduling adapter over the wire-level :class:`Network`."""

    def __init__(
        self,
        network: Network,
        config: LatencyConfig,
        rng: "random.Random",
        telemetry: Optional["Telemetry"] = None,
    ):
        self.network = network
        self.config = config
        self._rng = rng
        self._telemetry = telemetry
        self._queue: Optional["EventQueue"] = None
        #: Simulation clock (seconds), advanced by the engine per event.
        self.now = 0.0
        #: Accumulated request RTTs of the gossip session in progress
        #: (reset by the engine around each node's cycle).
        self.session_time = 0.0
        self.deferred_pushes = 0
        # Instruments are created lazily so a zero-latency barrier run
        # leaves the metrics snapshot byte-identical to the round engine
        # (merely creating an instrument adds a CSV family).
        self._push_histogram = None
        self._rtt_histogram = None

    def bind(self, queue: "EventQueue") -> None:
        """Attach the engine's event queue (deferred pushes land on it)."""
        self._queue = queue

    def begin_session(self) -> None:
        self.session_time = 0.0

    # -- message surface -----------------------------------------------------

    def send_push(self, src: int, dst: int) -> bool:
        """Send a push; returns True when accepted for transmission.

        With a non-zero link delay the outcome (loss, fault drop, dead
        destination) is only known at delivery time, so the return value
        means "handed to the wire", not "delivered" — no protocol code
        inspects it either way.
        """
        delay = self.config.sample(src, dst, self._rng)
        if delay <= 0.0 or self._queue is None:
            return self.network.send_push(src, dst)
        self.deferred_pushes += 1
        if self._telemetry is not None:
            if self._push_histogram is None:
                self._push_histogram = self._telemetry.histogram(
                    "events.push_latency_ms", buckets=LATENCY_BUCKETS_MS
                )
            self._push_histogram.observe(1000.0 * delay)
        self._queue.schedule(
            self.now + delay, "deliver.push", _PushDelivery(self.network, src, dst)
        )
        return True

    def request(self, src: int, dst: int, message: Message) -> Optional[Message]:
        """Run one request/response session, charging its RTT to the caller."""
        rtt = (self.config.sample(src, dst, self._rng)
               + self.config.sample(dst, src, self._rng))
        if rtt > 0.0:
            self.session_time += rtt
            if self._telemetry is not None:
                if self._rtt_histogram is None:
                    self._rtt_histogram = self._telemetry.histogram(
                        "events.rtt_ms", buckets=LATENCY_BUCKETS_MS
                    )
                self._rtt_histogram.observe(1000.0 * rtt)
        return self.network.request(src, dst, message)


class EventRoundContext:
    """Mutable-round :class:`~repro.sim.engine.RoundContext` twin.

    One long-lived instance per run: nodes keep the same context object
    across cycles while the engine advances ``round_number`` at each
    round-open boundary, mirroring how the round engine rebuilds its
    context every round.
    """

    __slots__ = ("_simulation", "_latency_network", "_network", "round_number")

    def __init__(self, simulation: "Simulation", latency_network: LatencyNetwork):
        self._simulation = simulation
        self._latency_network = latency_network
        self._network = latency_network.network
        self.round_number = 0

    @property
    def network(self) -> Network:
        """The raw wire network (reachability checks, stats) — delays are
        only applied to sends routed through this context."""
        return self._network

    def send_push(self, src: int, dst: int) -> bool:
        return self._latency_network.send_push(src, dst)

    def request(self, src: int, dst: int, message: Message) -> Optional[Message]:
        return self._latency_network.request(src, dst, message)
