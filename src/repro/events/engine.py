"""The event-driven engine: continuous time over the round-based core.

Two clock disciplines, one scheduler (:class:`~repro.events.queue.EventQueue`):

* **barrier** mode schedules one tick per round at ``k·tick_interval`` and
  each tick simply executes :meth:`Simulation.run_round` plus the
  observers.  With zero-latency links nothing else touches any RNG or
  telemetry stream, so the run is *byte-identical* to the round engine —
  trace JSONL, metrics CSV, final views (pinned by
  ``tests/test_events_differential.py``).  The round engine is literally
  a special case of this engine.
* **continuous** mode decomposes the round into events.  Round boundaries
  stay global (churn, the fault controller, membership gossip via the
  injector hook, observers and invariant checks all fire at boundaries,
  on the new clock), but each node runs its own *cycle*: at its scheduled
  time it begins and gossips; its ``end_round`` lands after
  ``max(period, session_time)``, where session time is the sum of its
  request RTTs over the sampled link delays (see
  :class:`~repro.events.network.LatencyNetwork`).  A node behind slow
  links — or marked a straggler — cycles late, gossips less often per
  wall-clock round, and ages out of views exactly the way lockstep
  rounds cannot express.

Scheduling randomness (initial per-node offsets) and link randomness live
on dedicated ``Sha256Prng`` streams derived from the run seed with the
labels ``("events", ...)``, independent of every protocol stream — so
traces are identical across process boundaries and worker counts.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto.prng import Sha256Prng, derive_seed
from repro.events.latency import LatencyConfig
from repro.events.load import LoadGenerator, LoadSpec
from repro.events.network import (
    LATENCY_BUCKETS_MS,
    EventRoundContext,
    LatencyNetwork,
)
from repro.events.queue import EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Observer, Simulation

__all__ = [
    "StragglerProfile",
    "EventOptions",
    "EventEngine",
    "parse_straggler",
]

#: Resolution of the straggler membership draw (53 bits, like a float).
_DRAW_SPAN = 1 << 53


@dataclass(frozen=True)
class StragglerProfile:
    """A deterministic slow subset: ``fraction`` of nodes run ``slowdown``×.

    Membership is a pure function of ``(seed, node_id)`` — no RNG stream
    is consumed, so adding stragglers never shifts any other draw.
    """

    fraction: float
    slowdown: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("straggler fraction must be in [0, 1]")
        if self.slowdown < 1.0:
            raise ValueError("straggler slowdown must be >= 1")

    def factor_for(self, seed: int, node_id: int) -> float:
        if self.fraction <= 0.0:
            return 1.0
        draw = derive_seed(seed, "events", "straggler", node_id) % _DRAW_SPAN
        return self.slowdown if draw / float(_DRAW_SPAN) < self.fraction else 1.0

    def describe(self) -> str:
        return f"{100.0 * self.fraction:g}% of nodes at {self.slowdown:g}x"


def parse_straggler(spec: str) -> StragglerProfile:
    """Parse a CLI straggler spec ``FRACTION:SLOWDOWN`` (e.g. ``0.1:8``)."""
    parts = spec.strip().split(":")
    if len(parts) == 2:
        try:
            return StragglerProfile(float(parts[0]), float(parts[1]))
        except ValueError as error:
            raise ValueError(f"bad straggler spec {spec!r}: {error}") from error
    raise ValueError(
        f"bad straggler spec {spec!r}: expected FRACTION:SLOWDOWN (e.g. 0.1:8)"
    )


@dataclass(frozen=True)
class EventOptions:
    """Configuration of one event-driven run."""

    seed: int
    mode: str = "continuous"
    #: Round period in seconds (the paper's deployment uses 2.5 s rounds).
    tick_interval: float = 1.0
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    load: Optional[LoadSpec] = None
    stragglers: Optional[StragglerProfile] = None
    #: Keep an in-memory ``(time, seq, label)`` log of every executed
    #: event — the cross-process determinism fixture.
    record_schedule: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("barrier", "continuous"):
            raise ValueError(f"mode must be 'barrier' or 'continuous', got {self.mode!r}")
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if self.mode == "barrier":
            if not self.latency.is_zero:
                raise ValueError(
                    "barrier mode reproduces the round engine and requires "
                    "zero-latency links; use mode='continuous' for latency models"
                )
            if self.stragglers is not None and self.stragglers.fraction > 0:
                raise ValueError("barrier mode cannot model stragglers")


class EventEngine:
    """Drives one :class:`Simulation` from an event queue."""

    def __init__(self, simulation: "Simulation", options: EventOptions):
        self.simulation = simulation
        self.options = options
        self.queue = EventQueue()
        self.now = 0.0
        self.rounds_completed = 0
        self._target_round = 0
        self._observers: Tuple = ()
        self._done = False
        self._started = False
        telemetry = simulation.telemetry
        self.latency_network = LatencyNetwork(
            simulation.network,
            options.latency,
            Sha256Prng(derive_seed(options.seed, "events", "latency")),
            telemetry,
        )
        self.latency_network.bind(self.queue)
        self.load: Optional[LoadGenerator] = None
        if options.load is not None:
            self.load = LoadGenerator(
                options.load,
                simulation,
                options.latency.default,
                Sha256Prng(derive_seed(options.seed, "events", "load")),
                telemetry,
            )
        self._offset_rng: random.Random = Sha256Prng(
            derive_seed(options.seed, "events", "schedule")
        )
        self._ctx = EventRoundContext(simulation, self.latency_network)
        self._cycled: Set[int] = set()
        self._factors: Dict[int, float] = {}
        self.cycles = 0
        self.late_cycles = 0
        self._cycle_histogram = None
        #: ``(time, seq, label)`` per executed event when
        #: ``options.record_schedule`` is set, else ``None``.
        self.schedule_log: Optional[List[Tuple[float, int, str]]] = (
            [] if options.record_schedule else None
        )

    # -- public surface --------------------------------------------------------

    @property
    def late_fraction(self) -> float:
        return self.late_cycles / self.cycles if self.cycles else 0.0

    def run(self, rounds: int, observers: Sequence["Observer"] = ()) -> None:
        """Run ``rounds`` rounds of simulated time, then stop.

        Single-shot: the engine owns absolute time starting at 0.0 and
        does not support resuming a drained queue (use
        :mod:`repro.snapshot` with the round engine for resumable runs).
        """
        if self._started:
            raise RuntimeError("EventEngine.run is single-shot; build a new engine")
        self._started = True
        if rounds < 1:
            return
        self._observers = tuple(observers)
        interval = self.options.tick_interval
        horizon = rounds * interval
        if self.load is not None:
            self.load.prime(self.queue, horizon)
        if self.options.mode == "barrier":
            self._target_round = rounds
            for index in range(rounds):
                self.queue.schedule(index * interval, "round.tick", self._barrier_tick)
        else:
            self._target_round = self.simulation.round_number + rounds
            for index in range(1, rounds + 1):
                self.queue.schedule(index * interval, "round.boundary",
                                    self._round_boundary)
            self._open_round()
        self._drain()

    # -- scheduler loop --------------------------------------------------------

    def _drain(self) -> None:
        while self.queue and not self._done:
            event = self.queue.pop()
            self.now = event.time
            self.latency_network.now = event.time
            if self.schedule_log is not None:
                self.schedule_log.append((event.time, event.seq, event.label))
            event.action()
        self._done = True

    # -- barrier mode ----------------------------------------------------------

    def _barrier_tick(self) -> None:
        self.simulation.run_round()
        for observer in self._observers:
            observer.on_round_end(self.simulation)
        self.rounds_completed += 1
        if self.rounds_completed >= self._target_round:
            self._done = True

    # -- continuous mode: round boundaries ------------------------------------

    def _open_round(self) -> None:
        simulation = self.simulation
        simulation.round_number += 1
        simulation.network.current_round = simulation.round_number
        self._ctx.round_number = simulation.round_number
        telemetry = simulation.telemetry
        if telemetry is not None:
            telemetry.begin_round(simulation.round_number)
        simulation.apply_churn()
        controller = simulation.fault_controller
        if controller is not None:
            scope = telemetry.phase("faults") if telemetry is not None else nullcontext()
            with scope:
                controller.on_round_start(simulation)
        # Churn arrivals (and the whole population, on the first open) get
        # cycles at seeded offsets inside the coming round.
        fresh = sorted(
            node_id for node_id in simulation.nodes if node_id not in self._cycled
        )
        for node_id in fresh:
            self._cycled.add(node_id)
            offset = self._offset_rng.random() * self.options.tick_interval
            self.queue.schedule(self.now + offset, "cycle.begin",
                                _NodeCycle(self, node_id))

    def _round_boundary(self) -> None:
        simulation = self.simulation
        telemetry = simulation.telemetry
        if telemetry is not None:
            telemetry.end_round(len(simulation.alive_nodes()))
        for observer in self._observers:
            observer.on_round_end(simulation)
        self.rounds_completed += 1
        if simulation.round_number >= self._target_round:
            self._done = True
            return
        self._open_round()

    # -- continuous mode: node cycles ------------------------------------------

    def _factor(self, node_id: int) -> float:
        factor = self._factors.get(node_id)
        if factor is None:
            profile = self.options.stragglers
            factor = 1.0 if profile is None else profile.factor_for(
                self.options.seed, node_id
            )
            self._factors[node_id] = factor
        return factor

    def _run_cycle(self, node_id: int) -> None:
        if self._done:
            return
        simulation = self.simulation
        node = simulation.nodes.get(node_id)
        if node is None:
            # Departed for good: churn never reuses IDs, drop the cycle.
            self._cycled.discard(node_id)
            return
        interval = self.options.tick_interval
        if not node.alive:
            # Crashed but still registered: poll again next round so a
            # fault-controller revival resumes gossiping.
            self.queue.schedule(self.now + interval, "cycle.begin",
                                _NodeCycle(self, node_id))
            return
        telemetry = simulation.telemetry
        self.latency_network.begin_session()
        scope = telemetry.phase("gossip") if telemetry is not None else nullcontext()
        with scope:
            node.begin_round(self._ctx)
            node.gossip(self._ctx)
        busy = self.latency_network.session_time * self._factor(node_id)
        cycle_time = max(interval, busy)
        self.cycles += 1
        if busy > interval:
            self.late_cycles += 1
        if telemetry is not None:
            if self._cycle_histogram is None:
                self._cycle_histogram = telemetry.histogram(
                    "events.cycle_ms", buckets=LATENCY_BUCKETS_MS
                )
            self._cycle_histogram.observe(1000.0 * cycle_time)
        # End-of-cycle first, next begin second, at the same timestamp:
        # the FIFO tie-break guarantees end_round integrates this cycle's
        # exchanges before the next begin wipes the buffers.
        self.queue.schedule(self.now + cycle_time, "cycle.end",
                            _NodeCycleEnd(self, node_id))
        self.queue.schedule(self.now + cycle_time, "cycle.begin",
                            _NodeCycle(self, node_id))

    def _end_cycle(self, node_id: int) -> None:
        if self._done:
            return
        simulation = self.simulation
        node = simulation.nodes.get(node_id)
        if node is None or not node.alive:
            return
        telemetry = simulation.telemetry
        scope = telemetry.phase("end") if telemetry is not None else nullcontext()
        with scope:
            node.end_round(self._ctx)


class _NodeCycle:
    """Scheduled begin+gossip of one node's cycle."""

    __slots__ = ("_engine", "_node_id")

    def __init__(self, engine: EventEngine, node_id: int):
        self._engine = engine
        self._node_id = node_id

    def __call__(self) -> None:
        self._engine._run_cycle(self._node_id)


class _NodeCycleEnd:
    """Scheduled end_round of one node's cycle."""

    __slots__ = ("_engine", "_node_id")

    def __init__(self, engine: EventEngine, node_id: int):
        self._engine = engine
        self._node_id = node_id

    def __call__(self) -> None:
        self._engine._end_cycle(self._node_id)
