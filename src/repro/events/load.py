"""Client load generator: sampling requests against live node views.

The "millions of users" leg of the paper's deployment story: clients call
the peer sampling service, each call hits one correct node and draws a
peer from its current view.  :class:`LoadGenerator` models that traffic
as ``active_clients`` independent Poisson arrival processes (exponential
inter-arrival times at ``requests_per_minute`` each, the AsyncFlow
``RqsGenerator`` shape) riding the same event queue as the protocol.

Per request the generator records, into the telemetry registry:

* ``load.requests`` / ``load.failures`` — served vs unservable (no
  correct node alive, or the chosen node's view still empty);
* ``load.latency_ms`` — client-observed latency (request + response leg
  over the client's access link, drawn from the run's default latency
  model);
* ``load.byzantine_samples`` — served samples that returned a Byzantine
  ID, tying service quality to the pollution metric the paper optimises.

Everything is driven by one dedicated ``Sha256Prng`` stream
(``derive_seed(seed, "events", "load")``), so load arrival times never
perturb protocol randomness and the whole trace is reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.events.latency import LatencyModel
from repro.events.network import LATENCY_BUCKETS_MS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.queue import EventQueue
    from repro.sim.engine import Simulation
    from repro.telemetry.hub import Telemetry

__all__ = ["LoadSpec", "LoadGenerator", "parse_load", "percentile"]


@dataclass(frozen=True)
class LoadSpec:
    """Offered load: ``active_clients`` × ``requests_per_minute`` each."""

    active_clients: int
    requests_per_minute: float

    def __post_init__(self) -> None:
        if self.active_clients < 1:
            raise ValueError("active_clients must be at least 1")
        if self.requests_per_minute <= 0:
            raise ValueError("requests_per_minute must be positive")

    @property
    def rate_per_second(self) -> float:
        return self.requests_per_minute / 60.0

    def describe(self) -> str:
        return (f"{self.active_clients} clients x "
                f"{self.requests_per_minute:g} req/min")


def parse_load(spec: str) -> LoadSpec:
    """Parse a CLI load spec ``CLIENTS:REQUESTS_PER_MINUTE``."""
    parts = spec.strip().split(":")
    if len(parts) == 2:
        try:
            return LoadSpec(int(parts[0]), float(parts[1]))
        except ValueError as error:
            raise ValueError(f"bad load spec {spec!r}: {error}") from error
    raise ValueError(
        f"bad load spec {spec!r}: expected CLIENTS:REQ_PER_MIN (e.g. 40:30)"
    )


def percentile(values: List[float], quantile: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(quantile * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class LoadGenerator:
    """Poisson client traffic sampling peers from node views."""

    def __init__(
        self,
        spec: LoadSpec,
        simulation: "Simulation",
        access_latency: LatencyModel,
        rng: random.Random,
        telemetry: Optional["Telemetry"] = None,
    ):
        self.spec = spec
        self._simulation = simulation
        self._access_latency = access_latency
        self._rng = rng
        self._telemetry = telemetry
        self._queue: Optional["EventQueue"] = None
        self._horizon = 0.0
        self.served = 0
        self.failed = 0
        self.byzantine_samples = 0
        self.latencies_ms: List[float] = []
        #: One dict per request, in arrival order — the latency trace
        #: artifact exported by ``repro run --events-trace-out``.
        self.records: List[Dict[str, object]] = []

    # -- scheduling -----------------------------------------------------------

    def prime(self, queue: "EventQueue", horizon: float) -> None:
        """Schedule every client's first arrival on ``queue``."""
        self._queue = queue
        self._horizon = horizon
        for client in range(self.spec.active_clients):
            self._schedule_next(client, 0.0)

    def _schedule_next(self, client: int, now: float) -> None:
        # expovariate draws through random() only — checkpoint-safe on
        # Sha256Prng, unlike gauss (see repro.events.latency).
        at = now + self._rng.expovariate(self.spec.rate_per_second)
        if at <= self._horizon and self._queue is not None:
            self._queue.schedule(at, "load.request", _ClientRequest(self, client, at))

    # -- one request -----------------------------------------------------------

    def _fire(self, client: int, now: float) -> None:
        self._serve(client, now)
        self._schedule_next(client, now)

    def _serve(self, client: int, now: float) -> None:
        simulation = self._simulation
        correct_ids = sorted(simulation.correct_node_ids())
        node = None
        peer: Optional[int] = None
        if correct_ids:
            node = simulation.nodes[
                correct_ids[self._rng.randrange(len(correct_ids))]
            ]
            view = list(node.view_ids())
            if view:
                peer = view[self._rng.randrange(len(view))]
        if peer is None:
            self.failed += 1
            if self._telemetry is not None:
                self._telemetry.counter("load.failures").inc()
            self.records.append({
                "time": round(now, 6), "client": client,
                "node": None if node is None else node.node_id,
                "peer": None, "latency_ms": None, "byzantine": False,
            })
            return
        latency_ms = 1000.0 * (self._access_latency.sample(self._rng)
                               + self._access_latency.sample(self._rng))
        polluted = peer in simulation.byzantine_ids
        self.served += 1
        self.latencies_ms.append(latency_ms)
        if polluted:
            self.byzantine_samples += 1
        if self._telemetry is not None:
            self._telemetry.counter("load.requests").inc()
            self._telemetry.histogram(
                "load.latency_ms", buckets=LATENCY_BUCKETS_MS
            ).observe(latency_ms)
            if polluted:
                self._telemetry.counter("load.byzantine_samples").inc()
        self.records.append({
            "time": round(now, 6), "client": client, "node": node.node_id,
            "peer": peer, "latency_ms": round(latency_ms, 3),
            "byzantine": polluted,
        })

    # -- summary ---------------------------------------------------------------

    @property
    def byzantine_fraction(self) -> float:
        return self.byzantine_samples / self.served if self.served else 0.0

    def latency_percentile_ms(self, quantile: float) -> float:
        return percentile(self.latencies_ms, quantile)


class _ClientRequest:
    """Scheduled arrival of one client request (picklable-free closure)."""

    __slots__ = ("_generator", "_client", "_at")

    def __init__(self, generator: LoadGenerator, client: int, at: float):
        self._generator = generator
        self._client = client
        self._at = at

    def __call__(self) -> None:
        self._generator._fire(self._client, self._at)
