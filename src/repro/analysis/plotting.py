"""Terminal plots for round series.

The simulator's natural output is a per-round series (mean view pollution,
per-kind pollution, eviction rates).  These helpers render them as compact
ASCII charts so examples and ad-hoc investigations don't need a plotting
stack: ``sparkline`` for one-liners, ``line_chart`` for a labelled
multi-series canvas.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["sparkline", "line_chart", "pollution_series", "per_kind_series"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], minimum: Optional[float] = None,
              maximum: Optional[float] = None) -> str:
    """One-line unicode sparkline of a series."""
    if not values:
        return ""
    low = min(values) if minimum is None else minimum
    high = max(values) if maximum is None else maximum
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    cells = []
    top = len(_SPARK_LEVELS) - 1
    for value in values:
        level = int((value - low) / span * top + 0.5)
        cells.append(_SPARK_LEVELS[max(0, min(top, level))])
    return "".join(cells)


def line_chart(
    series: Dict[str, Sequence[float]],
    height: int = 10,
    width: int = 60,
    y_label: str = "",
) -> str:
    """Multi-series ASCII chart; each series gets its own marker.

    Series are resampled to ``width`` columns; the y-axis spans the global
    min/max across all series.
    """
    if not series or all(len(values) == 0 for values in series.values()):
        return "(no data)"
    if height < 2 or width < 8:
        raise ValueError("chart must be at least 2 rows by 8 columns")

    markers = "*+ox#@%&"
    everything = [value for values in series.values() for value in values]
    low, high = min(everything), max(everything)
    span = high - low or 1.0

    def resample(values: Sequence[float]) -> List[float]:
        if len(values) <= width:
            return list(values)
        step = len(values) / width
        return [values[int(index * step)] for index in range(width)]

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} {name}")
        for column, value in enumerate(resample(values)):
            row = int((value - low) / span * (height - 1) + 0.5)
            canvas[height - 1 - row][column] = marker

    lines = []
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            axis = f"{high:8.3f} ┤"
        elif row_index == height - 1:
            axis = f"{low:8.3f} ┤"
        else:
            axis = " " * 8 + " │"
        lines.append(axis + "".join(row))
    lines.append(" " * 9 + "└" + "─" * width)
    lines.append(" " * 10 + "   ".join(legend) + (f"   ({y_label})" if y_label else ""))
    return "\n".join(lines)


def pollution_series(records) -> List[float]:
    """Mean Byzantine fraction per round from a ViewTraceObserver trace."""
    return [record.mean_byzantine_fraction for record in records]


def per_kind_series(records, kind) -> List[float]:
    """Mean Byzantine fraction per round for one node kind."""
    series = []
    for record in records:
        values = record.by_kind.get(kind)
        series.append(sum(values) / len(values) if values else 0.0)
    return series
