"""Evaluation metrics and statistics for the paper's experiments."""

from repro.analysis.metrics import (
    DISCOVERY_THRESHOLD,
    STABILITY_TOLERANCE,
    overhead_percent,
    peak_round,
    per_round_series,
    resilience_from_trace,
    resilience_improvement,
    stability_round,
)
from repro.analysis.stats import Summary, summarize

__all__ = [
    "DISCOVERY_THRESHOLD",
    "STABILITY_TOLERANCE",
    "overhead_percent",
    "peak_round",
    "per_round_series",
    "resilience_from_trace",
    "resilience_improvement",
    "stability_round",
    "Summary",
    "summarize",
]
