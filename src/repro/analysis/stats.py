"""Small statistics helpers for repeated experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Mean / std / 95 % normal-approximation CI over repetitions.

    ``std`` is the *sample* standard deviation (n − 1 denominator): the
    repetitions are a sample from the seed distribution, and the 1.96
    normal-CI formula in :attr:`ci95_half_width` assumes an unbiased
    variance estimate.  With the population (n) denominator the CI is
    understated by a factor of sqrt((n−1)/n) — material at the small seed
    counts the paper's tables use.  A single sample has no spread estimate,
    so n = 1 reports std 0.0 (and a zero-width CI).
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def ci95_half_width(self) -> float:
        if self.count < 2:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.count)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} ± {self.ci95_half_width:.3f} (n={self.count})"


def summarize(values: Sequence[float]) -> Optional[Summary]:
    """Summary of a sample; ``None`` for an empty one."""
    cleaned = [float(value) for value in values]
    if not cleaned:
        return None
    count = len(cleaned)
    mean = sum(cleaned) / count
    if count < 2:
        variance = 0.0
    else:
        variance = sum((value - mean) ** 2 for value in cleaned) / (count - 1)
    return Summary(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(cleaned),
        maximum=max(cleaned),
    )
