"""Small statistics helpers for repeated experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Mean / std / 95 % normal-approximation CI over repetitions."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def ci95_half_width(self) -> float:
        if self.count < 2:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.count)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} ± {self.ci95_half_width:.3f} (n={self.count})"


def summarize(values: Sequence[float]) -> Optional[Summary]:
    """Summary of a sample; ``None`` for an empty one."""
    cleaned = [float(value) for value in values]
    if not cleaned:
        return None
    count = len(cleaned)
    mean = sum(cleaned) / count
    variance = sum((value - mean) ** 2 for value in cleaned) / count
    return Summary(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(cleaned),
        maximum=max(cleaned),
    )
