"""The paper's three evaluation metrics (§II Fig. 3, §V-B).

* **resilience** — the percentage of Byzantine IDs in the views of correct
  nodes once the system has converged (we average the per-round mean over a
  tail window of rounds);
* **system-discovery time** — rounds until *all* correct nodes have
  discovered at least 75 % of the non-Byzantine IDs;
* **view-stability time** — rounds until every correct node's view
  pollution is within 10 percentage points of the average pollution across
  correct nodes.

Derived quantities: *resilience improvement* is the percentage drop of
Byzantine representation vs the Brahms baseline; *overhead* is the extra
rounds (in %) RAPTEE needs for discovery/stability vs the baseline.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.sim.observers import RoundRecord

__all__ = [
    "resilience_from_trace",
    "stability_round",
    "stability_tolerance_for",
    "resilience_improvement",
    "overhead_percent",
    "per_round_series",
    "peak_round",
    "DISCOVERY_THRESHOLD",
    "STABILITY_TOLERANCE",
    "STABILITY_Z",
    "PAPER_VIEW_SIZE",
]

DISCOVERY_THRESHOLD = 0.75
STABILITY_TOLERANCE = 0.10

# The paper's 10 % band at l1 = 200 and ~30 % pollution equals 3.1 binomial
# standard deviations (0.10 ≈ 3.1 · √(0.3·0.7/200)).  Scaled-down runs use
# smaller views with proportionally larger per-view noise, so the band is
# generalized as z·σ with the same z — it reduces to the paper's 10 % at
# paper scale.  See DESIGN.md §5.
STABILITY_Z = 3.1
PAPER_VIEW_SIZE = 200


def stability_tolerance_for(view_size: int, mean_fraction: float) -> float:
    """The z·σ stability band for a given view size and pollution level."""
    if view_size <= 0:
        raise ValueError("view_size must be positive")
    p = min(max(mean_fraction, 0.0), 1.0)
    sigma = math.sqrt(p * (1.0 - p) / view_size)
    return max(STABILITY_TOLERANCE, STABILITY_Z * sigma)


def resilience_from_trace(records: Sequence[RoundRecord], tail: int = 10) -> float:
    """Mean Byzantine fraction of correct views over the last ``tail`` rounds."""
    if not records:
        raise ValueError("empty trace")
    if tail <= 0:
        raise ValueError("tail must be positive")
    window = records[-tail:]
    return sum(record.mean_byzantine_fraction for record in window) / len(window)


def stability_round(
    records: Sequence[RoundRecord],
    tolerance: Optional[float] = None,
    sustained: int = 1,
    view_size: Optional[int] = None,
) -> int:
    """First round at which every correct view is within the stability band
    of the mean pollution, holding for ``sustained`` consecutive rounds.
    Returns -1 if never reached.

    Pass an explicit ``tolerance`` (absolute, in fraction points — the
    paper's 10 %), or a ``view_size`` to use the z·σ scaled band; exactly
    one of the two must be given.
    """
    if (tolerance is None) == (view_size is None):
        raise ValueError("pass exactly one of tolerance or view_size")
    if tolerance is not None and tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if sustained <= 0:
        raise ValueError("sustained must be positive")
    streak = 0
    for record in records:
        fractions = list(record.byzantine_fraction.values())
        if not fractions:
            streak = 0
            continue
        mean = sum(fractions) / len(fractions)
        band = (
            tolerance
            if tolerance is not None
            else stability_tolerance_for(view_size, mean)
        )
        if max(abs(fraction - mean) for fraction in fractions) <= band:
            streak += 1
            if streak >= sustained:
                return record.round_number - sustained + 1
        else:
            streak = 0
    return -1


def resilience_improvement(baseline_fraction: float, raptee_fraction: float) -> float:
    """Percentage drop in Byzantine representation vs the Brahms baseline.

    Positive = RAPTEE is better (fewer Byzantine IDs in correct views).
    """
    if baseline_fraction <= 0:
        return 0.0
    return 100.0 * (baseline_fraction - raptee_fraction) / baseline_fraction


def overhead_percent(baseline_rounds: int, rounds: int) -> Optional[float]:
    """Extra rounds (in %) relative to the baseline; ``None`` when either
    run never reached the milestone (round value -1)."""
    if baseline_rounds <= 0 or rounds <= 0:
        return None
    return 100.0 * (rounds - baseline_rounds) / baseline_rounds


def per_round_series(counter: Mapping[int, int], last_round: int) -> List[int]:
    """Densify a ``round -> count`` counter into a list for rounds 1..last.

    The network's per-round counters (:class:`repro.sim.network.NetworkStats`)
    are sparse — rounds with no traffic simply have no key — which makes
    them awkward to plot or diff.  The returned list has ``last_round``
    entries, index 0 holding round 1.
    """
    if last_round < 0:
        raise ValueError("last_round must be non-negative")
    return [counter.get(round_number, 0) for round_number in range(1, last_round + 1)]


def peak_round(counter: Mapping[int, int]) -> Optional[Tuple[int, int]]:
    """The (round, count) with the highest count, or ``None`` if empty.

    Ties break toward the earliest round, so the answer is deterministic.
    """
    best: Optional[Tuple[int, int]] = None
    for round_number in sorted(counter):
        count = counter[round_number]
        if best is None or count > best[1]:
            best = (round_number, count)
    return best
