"""RAPTEE reproduction: TEE-hardened Byzantine-tolerant peer sampling.

Full reproduction of Pigaglio et al., "RAPTEE: Leveraging trusted execution
environments for Byzantine-tolerant peer sampling services" (ICDCS 2022),
with every substrate implemented from scratch.  See README.md for the
architecture overview and DESIGN.md for the system inventory.

Top-level convenience re-exports cover the most common entry points; the
subpackages hold the full API:

>>> from repro import TopologySpec, build_raptee_simulation, run_bundle
>>> from repro.core.eviction import AdaptiveEviction
>>> bundle = build_raptee_simulation(
...     TopologySpec(n_nodes=100, byzantine_fraction=0.1, trusted_fraction=0.1),
...     seed=1, eviction=AdaptiveEviction())
>>> metrics = run_bundle(bundle, rounds=20)
"""

from repro.brahms import BrahmsConfig, BrahmsNode
from repro.core import (
    AdaptiveEviction,
    FixedEviction,
    RapteeConfig,
    RapteeEnclave,
    RapteeNode,
    TrustedInfrastructure,
)
from repro.experiments import (
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
    run_bundle,
)
from repro.sim import Network, NodeKind, Simulation

__version__ = "1.0.0"

__all__ = [
    "BrahmsConfig",
    "BrahmsNode",
    "AdaptiveEviction",
    "FixedEviction",
    "RapteeConfig",
    "RapteeEnclave",
    "RapteeNode",
    "TrustedInfrastructure",
    "TopologySpec",
    "build_brahms_simulation",
    "build_raptee_simulation",
    "run_bundle",
    "Network",
    "NodeKind",
    "Simulation",
    "__version__",
]
