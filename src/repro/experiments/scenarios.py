"""Scenario builders: from a topology spec to a ready-to-run simulation.

A :class:`TopologySpec` captures the paper's experimental knobs — system
size N, Byzantine fraction f, trusted fraction t, injected poisoned-trusted
fraction, view-size ratio — and the builders assemble the node population:

* :func:`build_brahms_simulation` — the baseline: f Byzantine identities
  against pure-Brahms honest nodes (§II, Fig. 3);
* :func:`build_raptee_simulation` — the full system: honest RAPTEE nodes,
  provisioned trusted nodes, optional poisoned-trusted injections, and the
  Byzantine population under one global coordinator (§V-B).

Node counts are rounded half-up from the fractions; every node (including
Byzantine ones, which ignore it) receives a uniform bootstrap view.

Randomness discipline: protocol-level randomness (target selection, nonces,
shuffles) uses Mersenne-Twister generators seeded through the SHA-256
label-derivation of :func:`repro.crypto.prng.derive_seed`, so every node's
stream is independent and the whole run is reproducible from one integer
seed.  Key material (group key, device keys) stays on the slower
:class:`~repro.crypto.prng.Sha256Prng`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.adversary.byzantine import ByzantineNode
from repro.adversary.coordinator import AdversaryCoordinator
from repro.adversary.poisoned import build_poisoned_trusted_node
from repro.brahms.config import BrahmsConfig
from repro.brahms.node import BrahmsNode
from repro.core.config import RapteeConfig
from repro.core.deployment import TrustedInfrastructure
from repro.core.eviction import EvictionPolicy
from repro.core.node import RapteeNode
from repro.crypto.prng import Sha256Prng, derive_seed
from repro.membership.director import MembershipDirector
from repro.membership.service import MembershipConfig, ReplicatedProvisioningService
from repro.sgx.cycles import CycleAccountant, CycleModel
from repro.sim.bootstrap import UniformBootstrap
from repro.sim.engine import Simulation
from repro.sim.network import Network
from repro.sim.node import NodeKind
from repro.sim.observers import DiscoveryObserver, ViewTraceObserver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.harness import EventHarness
    from repro.telemetry.harness import TelemetryObserver
    from repro.telemetry.hub import Telemetry

__all__ = [
    "TopologySpec",
    "SimulationBundle",
    "PollutionProbe",
    "build_brahms_simulation",
    "build_raptee_simulation",
]

#: Byzantine identities may spend more pushes than honest ones before the
#: rate limiter stops them (the paper's limit mechanism prices pushes but
#: does not pin them to the protocol's α·l1; the blocking defense is what
#: actually caps useful flooding).  This multiple of α·l1 is the cap,
#: calibrated so the Brahms baseline reproduces Fig. 3's collapse shape
#: (matching the 81 % pollution the paper reports at f = 18 %).
BYZANTINE_PUSH_LIMIT_MULTIPLIER = 3


def _mt(seed: int, *labels: object) -> random.Random:
    """A fast, independent, reproducible Mersenne-Twister stream."""
    return random.Random(derive_seed(seed, *labels))


@dataclass(frozen=True)
class TopologySpec:
    """Population shape of one experiment.

    The paper's scale is N = 10,000 with view size 200 (ratio 0.02); the
    default ratio here is higher so that scaled-down populations keep
    statistically meaningful views (see DESIGN.md §5).
    """

    n_nodes: int = 300
    byzantine_fraction: float = 0.10
    trusted_fraction: float = 0.0
    poisoned_fraction: float = 0.0
    view_ratio: float = 0.06
    loss_rate: float = 0.0
    #: AES-CTR-encrypt every payload under per-pair keys, as the deployed
    #: system does (§III-B).  Off by default: it changes no protocol-visible
    #: behaviour, and sweeps that don't measure the crypto path skip it.
    transport_encryption: bool = False

    def __post_init__(self) -> None:
        if self.n_nodes < 10:
            raise ValueError("n_nodes must be at least 10")
        for name in ("byzantine_fraction", "trusted_fraction", "poisoned_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        if self.byzantine_fraction + self.trusted_fraction >= 1.0:
            raise ValueError("Byzantine + trusted fractions must leave honest nodes")
        if not 0.0 < self.view_ratio < 1.0:
            raise ValueError("view_ratio must be in (0, 1)")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        # The derived view (BrahmsConfig.scaled: max(8, round(N·ratio)))
        # must stay below N, or the uniform bootstrap would be asked for
        # more distinct peers than exist and seed views with duplicates.
        derived_view = max(8, int(round(self.n_nodes * self.view_ratio)))
        if derived_view >= self.n_nodes:
            raise ValueError(
                f"view_ratio {self.view_ratio} derives view size {derived_view} "
                f">= n_nodes {self.n_nodes}; views must be smaller than the "
                f"population"
            )

    @property
    def n_byzantine(self) -> int:
        return int(round(self.n_nodes * self.byzantine_fraction))

    @property
    def n_trusted(self) -> int:
        return int(round(self.n_nodes * self.trusted_fraction))

    @property
    def n_poisoned(self) -> int:
        """Poisoned injections are *additional* nodes (§VI-B adds them)."""
        return int(round(self.n_nodes * self.poisoned_fraction))

    @property
    def n_honest(self) -> int:
        return self.n_nodes - self.n_byzantine - self.n_trusted

    def brahms_config(self) -> BrahmsConfig:
        return BrahmsConfig().scaled(self.n_nodes, self.view_ratio)


@dataclass
class SimulationBundle:
    """Everything a runner needs to execute and measure one simulation."""

    simulation: Simulation
    trace: ViewTraceObserver
    discovery: DiscoveryObserver
    spec: TopologySpec
    coordinator: Optional[AdversaryCoordinator] = None
    infrastructure: Optional[TrustedInfrastructure] = None
    trusted_ids: frozenset = frozenset()
    cycle_accountants: Dict[int, CycleAccountant] = field(default_factory=dict)
    #: Set by :func:`repro.telemetry.harness.wire_telemetry`; when present,
    #: the per-round telemetry observer rides along on every run.
    telemetry: Optional["Telemetry"] = None
    telemetry_observer: Optional["TelemetryObserver"] = None
    #: Dynamic trusted-set membership (built when the scenario is given a
    #: :class:`~repro.membership.service.MembershipConfig`); ``None`` keeps
    #: the legacy static trusted set, byte-identical with earlier releases.
    membership: Optional[MembershipDirector] = None
    #: Set by :func:`repro.events.harness.wire_events`; the event-driven
    #: engine wired over this bundle, when one is attached.
    events: Optional["EventHarness"] = None

    def observer_stack(self, extra_observers: Sequence = ()) -> List:
        """The per-round observer list every engine drives: metric
        observers first, the telemetry observer, then any extras."""
        observers = [self.trace, self.discovery]
        if self.telemetry_observer is not None:
            observers.append(self.telemetry_observer)
        observers.extend(extra_observers)
        return observers

    def run(self, rounds: int, extra_observers: Sequence = ()) -> None:
        self.simulation.run(rounds, observers=self.observer_stack(extra_observers))


def _seed_all_views(nodes: Sequence, membership: List[int], view_size: int,
                    rng: random.Random, skip_kinds: Sequence[NodeKind] = ()) -> None:
    bootstrap = UniformBootstrap(membership, rng)
    for node in nodes:
        if node.kind in skip_kinds:
            continue
        node.seed_view(bootstrap.initial_view(node.node_id, view_size))


class PollutionProbe:
    """The adversary's v-estimate over a live simulation.

    A class rather than a closure so a fully-wired bundle stays picklable —
    :mod:`repro.snapshot` serializes the whole object graph, and the probe
    rides along with its simulation reference intact.
    """

    def __init__(self, simulation: Simulation, byzantine: frozenset):
        self._simulation = simulation
        self._byzantine = byzantine

    def __call__(self) -> float:
        total = 0.0
        counted = 0
        for node in self._simulation.correct_nodes():
            view = node.view_ids()
            if view:
                total += sum(1 for peer in view if peer in self._byzantine) / len(view)
                counted += 1
        return total / counted if counted else 0.0


def _install_pollution_probe(
    coordinator: AdversaryCoordinator, simulation: Simulation
) -> None:
    """Give the adversary its v-estimate (see AdversaryCoordinator docs)."""
    coordinator.set_pollution_probe(
        PollutionProbe(simulation, frozenset(coordinator.byzantine_ids))
    )


def build_brahms_simulation(
    spec: TopologySpec,
    seed: int,
    adversary_strategy: str = "adaptive_balanced",
    config_override: Optional[BrahmsConfig] = None,
) -> SimulationBundle:
    """The Brahms baseline: honest Brahms nodes vs the balanced adversary.

    ``config_override`` replaces the spec-derived Brahms parameters — the
    ablation benches use it to sweep γ or disable blocking.

    A thin shim: the call is expressed as a
    :class:`~repro.scenario.spec.ScenarioSpec` and compiled by
    :func:`repro.scenario.compile.compile_spec`, so ad-hoc Python callers
    and declarative spec files share one validated build path (proven
    byte-identical by ``tests/test_scenario_differential.py``).
    """
    from repro.scenario.compile import compile_spec
    from repro.scenario.spec import ScenarioSpec

    return compile_spec(
        ScenarioSpec(
            name="adhoc-brahms",
            protocol="brahms",
            seed=seed,
            topology=spec,
            adversary_strategy=adversary_strategy,
            brahms=config_override,
        )
    )


def _build_brahms_impl(
    spec: TopologySpec,
    seed: int,
    adversary_strategy: str = "adaptive_balanced",
    config_override: Optional[BrahmsConfig] = None,
) -> SimulationBundle:
    """The actual Brahms assembly behind :func:`build_brahms_simulation`."""
    config = config_override or spec.brahms_config()
    if config.view_size >= spec.n_nodes:
        raise ValueError(
            f"view_size {config.view_size} must be smaller than "
            f"n_nodes {spec.n_nodes}"
        )
    network = Network(_mt(seed, "network"), loss_rate=spec.loss_rate,
                      encrypt=spec.transport_encryption)

    byzantine_ids = list(range(spec.n_byzantine))
    correct_ids = list(range(spec.n_byzantine, spec.n_nodes))
    coordinator = AdversaryCoordinator(
        byzantine_ids=byzantine_ids,
        correct_ids=correct_ids,
        push_limit=config.effective_push_limit * BYZANTINE_PUSH_LIMIT_MULTIPLIER,
        rng=_mt(seed, "adversary"),
        strategy=adversary_strategy,
        expected_pushes=config.alpha_count,
    )

    nodes: List = [
        ByzantineNode(
            node_id,
            coordinator,
            view_size=config.view_size,
            rng=_mt(seed, "byz", node_id),
        )
        for node_id in byzantine_ids
    ]
    nodes.extend(
        BrahmsNode(node_id, NodeKind.HONEST, config, _mt(seed, "node", node_id))
        for node_id in correct_ids
    )

    _seed_all_views(nodes, list(range(spec.n_nodes)), config.view_size,
                    _mt(seed, "bootstrap"))
    simulation = Simulation(network, nodes, _mt(seed, "engine"))
    _install_pollution_probe(coordinator, simulation)
    return SimulationBundle(
        simulation=simulation,
        trace=ViewTraceObserver(),
        discovery=DiscoveryObserver(),
        spec=spec,
        coordinator=coordinator,
    )


def build_raptee_simulation(
    spec: TopologySpec,
    seed: int,
    eviction: EvictionPolicy,
    auth_mode: str = "hmac",
    probe_pulls: int = 0,
    trusted_exchange_enabled: bool = True,
    eviction_enabled: bool = True,
    sketch_unbias_enabled: bool = False,
    provisioning_key_bits: int = 384,
    with_cycle_accounting: bool = False,
    cycle_mode: str = "sgx",
    adversary_strategy: str = "adaptive_balanced",
    config_override: Optional[BrahmsConfig] = None,
    membership: Optional[MembershipConfig] = None,
) -> SimulationBundle:
    """The full RAPTEE deployment of §V-B (plus §VI-B injections).

    ``probe_pulls`` > 0 makes Byzantine nodes issue that many pull probes
    per round, feeding the identification attack's intelligence.

    ``membership`` switches on dynamic trusted-set membership: trusted
    nodes are provisioned through a :class:`ReplicatedProvisioningService`
    (quorum over K replicas), carry epoch-checked membership views, and a
    :class:`MembershipDirector` rides on the bundle to drive churn,
    rotation, and revocation gossip (ticked by the fault injector).

    A thin shim over :func:`repro.scenario.compile.compile_spec` — see
    :func:`build_brahms_simulation`.
    """
    from repro.scenario.compile import compile_spec
    from repro.scenario.spec import RapteeOptions, ScenarioSpec

    return compile_spec(
        ScenarioSpec(
            name="adhoc-raptee",
            protocol="raptee",
            seed=seed,
            topology=spec,
            adversary_strategy=adversary_strategy,
            brahms=config_override,
            raptee=RapteeOptions(
                eviction=eviction,
                auth_mode=auth_mode,
                probe_pulls=probe_pulls,
                trusted_exchange_enabled=trusted_exchange_enabled,
                eviction_enabled=eviction_enabled,
                sketch_unbias_enabled=sketch_unbias_enabled,
                provisioning_key_bits=provisioning_key_bits,
                with_cycle_accounting=with_cycle_accounting,
                cycle_mode=cycle_mode,
            ),
            membership=membership,
        )
    )


def _build_raptee_impl(
    spec: TopologySpec,
    seed: int,
    eviction: EvictionPolicy,
    auth_mode: str = "hmac",
    probe_pulls: int = 0,
    trusted_exchange_enabled: bool = True,
    eviction_enabled: bool = True,
    sketch_unbias_enabled: bool = False,
    provisioning_key_bits: int = 384,
    with_cycle_accounting: bool = False,
    cycle_mode: str = "sgx",
    adversary_strategy: str = "adaptive_balanced",
    config_override: Optional[BrahmsConfig] = None,
    membership: Optional[MembershipConfig] = None,
) -> SimulationBundle:
    """The actual RAPTEE assembly behind :func:`build_raptee_simulation`."""
    membership_on = membership is not None and membership.enabled
    brahms_config = config_override or spec.brahms_config()
    if brahms_config.view_size >= spec.n_nodes:
        raise ValueError(
            f"view_size {brahms_config.view_size} must be smaller than "
            f"n_nodes {spec.n_nodes}"
        )
    raptee_config = RapteeConfig(
        brahms=brahms_config,
        eviction=eviction,
        auth_mode=auth_mode,
        trusted_exchange_enabled=trusted_exchange_enabled,
        eviction_enabled=eviction_enabled,
        sketch_unbias_enabled=sketch_unbias_enabled,
        membership_enabled=membership_on,
    )
    network = Network(_mt(seed, "network"), loss_rate=spec.loss_rate,
                      encrypt=spec.transport_encryption)
    infrastructure = TrustedInfrastructure(
        Sha256Prng(derive_seed(seed, "tcb")),
        auth_mode=auth_mode,
        provisioning_key_bits=provisioning_key_bits,
    )
    director: Optional[MembershipDirector] = None
    if membership_on:
        service = ReplicatedProvisioningService(
            infrastructure,
            Sha256Prng(derive_seed(seed, "membership", "service")),
            replica_count=membership.replica_count,
        )
        infrastructure.enable_membership(service)
        director = MembershipDirector(
            service,
            membership,
            _mt(seed, "membership", "director"),
            seed,
            raptee_config=raptee_config,
        )
    cycle_model = CycleModel() if with_cycle_accounting else None

    byzantine_ids = list(range(spec.n_byzantine))
    trusted_ids = list(range(spec.n_byzantine, spec.n_byzantine + spec.n_trusted))
    honest_ids = list(range(spec.n_byzantine + spec.n_trusted, spec.n_nodes))
    poisoned_ids = list(range(spec.n_nodes, spec.n_nodes + spec.n_poisoned))
    correct_ids = trusted_ids + honest_ids + poisoned_ids

    coordinator = AdversaryCoordinator(
        byzantine_ids=byzantine_ids,
        correct_ids=correct_ids,
        push_limit=brahms_config.effective_push_limit * BYZANTINE_PUSH_LIMIT_MULTIPLIER,
        rng=_mt(seed, "adversary"),
        strategy=adversary_strategy,
        expected_pushes=brahms_config.alpha_count,
    )

    cycle_accountants: Dict[int, CycleAccountant] = {}

    if cycle_mode not in ("sgx", "standard"):
        raise ValueError(f"cycle_mode must be 'sgx' or 'standard', got {cycle_mode!r}")

    def _accountant(node_id: int) -> Optional[CycleAccountant]:
        if cycle_model is None:
            return None
        accountant = CycleAccountant(
            cycle_model,
            _mt(seed, "cycles", node_id),
            force_standard=(cycle_mode == "standard"),
        )
        cycle_accountants[node_id] = accountant
        return accountant

    nodes: List = [
        ByzantineNode(
            node_id,
            coordinator,
            view_size=brahms_config.view_size,
            rng=_mt(seed, "byz", node_id),
            probe_pulls=probe_pulls,
            auth_mode=auth_mode,
        )
        for node_id in byzantine_ids
    ]
    for node_id in trusted_ids:
        enclave, _device = infrastructure.new_trusted_enclave(node_id)
        nodes.append(
            RapteeNode(
                node_id,
                NodeKind.TRUSTED,
                raptee_config,
                _mt(seed, "node", node_id),
                enclave=enclave,
                cycle_accountant=_accountant(node_id),
            )
        )
    nodes.extend(
        RapteeNode(
            node_id,
            NodeKind.HONEST,
            raptee_config,
            _mt(seed, "node", node_id),
            cycle_accountant=_accountant(node_id),
        )
        for node_id in honest_ids
    )
    for node_id in poisoned_ids:
        nodes.append(
            build_poisoned_trusted_node(
                node_id,
                raptee_config,
                infrastructure,
                byzantine_ids,
                _mt(seed, "poisoned", node_id),
                join_ids=trusted_ids + honest_ids,
            )
        )

    # Poisoned nodes keep their adversarial bootstrap; everyone else gets a
    # uniform sample over the *base* membership (injected nodes join later,
    # so they are not part of anyone's initial sample).
    _seed_all_views(
        nodes,
        list(range(spec.n_nodes)),
        brahms_config.view_size,
        _mt(seed, "bootstrap"),
        skip_kinds=(NodeKind.POISONED_TRUSTED,),
    )
    if director is not None:
        # All bootstrap-time trusted devices (poisoned injections included —
        # they passed attestation legitimately) enter the roster without log
        # records; correct trusted nodes get epoch-checked membership views.
        service = director.service
        for node_id in trusted_ids + poisoned_ids:
            service.bootstrap_member(node_id)
        for node in nodes:
            if (
                isinstance(node, RapteeNode)
                and node.node_id in trusted_ids
                and node.trusted_role
            ):
                view = service.new_view(node.node_id)
                node.set_membership_view(view)
                node.refresh_enclave_epoch()
                director.register_view(node.node_id, view)
    simulation = Simulation(network, nodes, _mt(seed, "engine"))
    _install_pollution_probe(coordinator, simulation)
    return SimulationBundle(
        simulation=simulation,
        trace=ViewTraceObserver(),
        discovery=DiscoveryObserver(),
        spec=spec,
        coordinator=coordinator,
        infrastructure=infrastructure,
        trusted_ids=frozenset(trusted_ids) | frozenset(poisoned_ids),
        cycle_accountants=cycle_accountants,
        membership=director,
    )
