"""Experiment harness: scenario builders, runners, per-figure reproductions."""

from repro.experiments.figures import (
    BaselineCache,
    BENCH_SCALE,
    FigureResult,
    PAPER_SCALE,
    Scale,
    TEST_SCALE,
    eviction_figure,
    figure3_brahms_baseline,
    figure9_adaptive,
    figure13_poisoned_injection,
    fixed_eviction_figure,
    identification_figure,
    table1_sgx_overhead,
)
from repro.experiments.reporting import format_table
from repro.experiments.runner import RepeatedMetrics, RunMetrics, repeat, run_bundle
from repro.experiments.scenarios import (
    SimulationBundle,
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)

__all__ = [
    "BaselineCache",
    "BENCH_SCALE",
    "FigureResult",
    "PAPER_SCALE",
    "Scale",
    "TEST_SCALE",
    "eviction_figure",
    "figure3_brahms_baseline",
    "figure9_adaptive",
    "figure13_poisoned_injection",
    "fixed_eviction_figure",
    "identification_figure",
    "table1_sgx_overhead",
    "format_table",
    "RepeatedMetrics",
    "RunMetrics",
    "repeat",
    "run_bundle",
    "SimulationBundle",
    "TopologySpec",
    "build_brahms_simulation",
    "build_raptee_simulation",
]
