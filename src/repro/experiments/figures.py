"""Per-figure reproduction entry points.

Each public function regenerates one table or figure of the paper and
returns a :class:`FigureResult` whose rows mirror the paper's series.  The
benchmarks under ``benchmarks/`` call these with a scaled-down
:class:`Scale`; ``examples/full_scale.py`` shows the paper-sized settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversary.identification import IdentificationAttack
from repro.analysis.metrics import (
    overhead_percent,
    resilience_improvement,
)
from repro.analysis.stats import summarize
from repro.core.eviction import AdaptiveEviction, EvictionPolicy, FixedEviction
from repro.experiments.reporting import format_table
from repro.experiments.runner import RunMetrics, bundle_metrics, run_bundle
from repro.experiments.scenarios import (
    SimulationBundle,
    TopologySpec,
    build_brahms_simulation,
    build_raptee_simulation,
)
from repro.sgx.cycles import PeerSamplingFunction, TABLE_I

__all__ = [
    "Scale",
    "TEST_SCALE",
    "BENCH_SCALE",
    "PAPER_SCALE",
    "FigureResult",
    "BaselineCache",
    "figure3_brahms_baseline",
    "table1_sgx_overhead",
    "eviction_figure",
    "identification_figure",
    "figure13_poisoned_injection",
    "membership_churn_figure",
    "slo_figure",
    "straggler_figure",
]


@dataclass(frozen=True)
class Scale:
    """Size of a reproduction run (see DESIGN.md §5 for the rationale)."""

    n_nodes: int = 400
    rounds: int = 100
    repetitions: int = 2
    view_ratio: float = 0.06
    base_seed: int = 1000

    def seeds(self) -> List[int]:
        return [self.base_seed + index for index in range(self.repetitions)]


TEST_SCALE = Scale(n_nodes=150, rounds=40, repetitions=1, view_ratio=0.08)
BENCH_SCALE = Scale(n_nodes=400, rounds=100, repetitions=2, view_ratio=0.06)
#: The paper's setting: 10,000 nodes, view 200, 200 rounds, 10 repetitions.
PAPER_SCALE = Scale(n_nodes=10_000, rounds=200, repetitions=10, view_ratio=0.02)


@dataclass
class FigureResult:
    """Rows of one regenerated table/figure, renderable as ASCII."""

    figure_id: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.figure_id)

    def column(self, name: str) -> List[object]:
        index = self.headers.index(name)
        return [row[index] for row in self.rows]


class BaselineCache:
    """Brahms baselines keyed by (f, seed) — shared across figures."""

    def __init__(self, scale: Scale):
        self.scale = scale
        self._cache: Dict[Tuple[float, int], RunMetrics] = {}

    def get(self, byzantine_fraction: float, seed: int) -> RunMetrics:
        key = (byzantine_fraction, seed)
        if key not in self._cache:
            spec = TopologySpec(
                n_nodes=self.scale.n_nodes,
                byzantine_fraction=byzantine_fraction,
                view_ratio=self.scale.view_ratio,
            )
            bundle = build_brahms_simulation(spec, seed)
            self._cache[key] = run_bundle(bundle, self.scale.rounds)
        return self._cache[key]

    def mean_metrics(self, byzantine_fraction: float) -> Tuple[float, float, float]:
        """(resilience, discovery, stability) averaged over the seeds."""
        runs = [self.get(byzantine_fraction, seed) for seed in self.scale.seeds()]
        resilience = sum(run.resilience for run in runs) / len(runs)
        discovery = _mean_reached([run.discovery_round for run in runs])
        stability = _mean_reached([run.stability_round for run in runs])
        return resilience, discovery, stability


def _mean_reached(values: Sequence[int]) -> float:
    reached = [value for value in values if value > 0]
    return sum(reached) / len(reached) if reached else -1.0


def _mean_raptee_metrics(
    scale: Scale,
    spec: TopologySpec,
    eviction: EvictionPolicy,
    **kwargs,
) -> Tuple[float, float, float]:
    runs = [
        run_bundle(
            build_raptee_simulation(spec, seed, eviction=eviction, **kwargs),
            scale.rounds,
        )
        for seed in scale.seeds()
    ]
    resilience = sum(run.resilience for run in runs) / len(runs)
    discovery = _mean_reached([run.discovery_round for run in runs])
    stability = _mean_reached([run.stability_round for run in runs])
    return resilience, discovery, stability


# ---------------------------------------------------------------------------
# Fig. 3 — Brahms baseline
# ---------------------------------------------------------------------------

def figure3_brahms_baseline(
    scale: Scale,
    f_values: Sequence[float] = (0.10, 0.14, 0.18, 0.22, 0.26, 0.30),
    cache: Optional[BaselineCache] = None,
) -> FigureResult:
    """Brahms resilience / discovery / stability vs Byzantine share."""
    cache = cache or BaselineCache(scale)
    result = FigureResult(
        figure_id="Fig. 3 — Brahms under Byzantine faults",
        headers=["f", "byz-in-views %", "discovery rounds", "stability rounds"],
    )
    for f in f_values:
        resilience, discovery, stability = cache.mean_metrics(f)
        result.rows.append(
            [f"{f:.0%}", f"{100 * resilience:.1f}", f"{discovery:.0f}", f"{stability:.0f}"]
        )
    return result


# ---------------------------------------------------------------------------
# Table I — SGX per-function overhead
# ---------------------------------------------------------------------------

_TABLE1_LABELS = {
    PeerSamplingFunction.PULL_REQUEST: "Pull request",
    PeerSamplingFunction.PUSH_MESSAGE: "Push message",
    PeerSamplingFunction.TRUSTED_COMMUNICATIONS: "Trusted communications",
    PeerSamplingFunction.SAMPLE_LIST_COMPUTATION: "Sample list comput.",
    PeerSamplingFunction.DYNAMIC_VIEW_COMPUTATION: "Dynamic view comput.",
}


def table1_sgx_overhead(
    scale: Scale,
    rounds: Optional[int] = None,
    trusted_fraction: float = 0.5,
) -> FigureResult:
    """The micro-benchmark of §V-A: per-function cycles, standard vs SGX.

    Mirrors the paper's two experiment sets — the same deployment run once
    with trusted nodes paying the enclave overhead and once with the plain
    (emulated-standard) cost — then reports per-function means and the
    overhead's relative standard deviation.
    """
    rounds = rounds or max(20, scale.rounds // 3)
    spec = TopologySpec(
        n_nodes=min(scale.n_nodes, 200),
        byzantine_fraction=0.0,
        trusted_fraction=trusted_fraction,
        view_ratio=scale.view_ratio,
    )

    def collect(cycle_mode: str) -> Dict[str, List[float]]:
        bundle = build_raptee_simulation(
            spec,
            scale.base_seed,
            eviction=AdaptiveEviction(),
            with_cycle_accounting=True,
            cycle_mode=cycle_mode,
        )
        bundle.run(rounds)
        per_function: Dict[str, List[float]] = {}
        for node_id in bundle.trusted_ids:
            accountant = bundle.cycle_accountants.get(node_id)
            if accountant is None:
                continue
            for function in PeerSamplingFunction.ALL:
                if accountant.invocations.get(function):
                    per_function.setdefault(function, []).append(
                        accountant.mean_cost(function)
                    )
        return per_function

    sgx = collect("sgx")
    standard = collect("standard")

    result = FigureResult(
        figure_id="Table I — SGX performance overhead (CPU cycles)",
        headers=["Peer sampling function", "Standard", "SGX", "Mean overhead", "Std dev"],
    )
    for function in PeerSamplingFunction.ALL:
        standard_summary = summarize(standard.get(function, []))
        sgx_summary = summarize(sgx.get(function, []))
        if standard_summary is None or sgx_summary is None:
            continue
        overhead = sgx_summary.mean - standard_summary.mean
        reference = TABLE_I[function]
        result.rows.append(
            [
                _TABLE1_LABELS[function],
                f"{standard_summary.mean:,.0f}",
                f"{sgx_summary.mean:,.0f}",
                f"{overhead:,.0f}",
                f"{100 * reference.std_fraction:.0f}%",
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Figs. 5-9 — resilience improvement + overheads per eviction configuration
# ---------------------------------------------------------------------------

def eviction_figure(
    figure_id: str,
    eviction: EvictionPolicy,
    scale: Scale,
    f_values: Sequence[float] = (0.10, 0.20, 0.30),
    t_values: Sequence[float] = (0.01, 0.10, 0.30),
    cache: Optional[BaselineCache] = None,
) -> FigureResult:
    """One of Figs. 5-9: subfigures (a) resilience improvement,
    (b) system-discovery overhead, (c) view-stability overhead, as rows
    over the f × t grid for one eviction configuration."""
    cache = cache or BaselineCache(scale)
    result = FigureResult(
        figure_id=figure_id,
        headers=[
            "f", "t",
            "improvement %", "discovery overhead %", "stability overhead %",
        ],
    )
    for f in f_values:
        base_resilience, base_discovery, base_stability = cache.mean_metrics(f)
        for t in t_values:
            spec = TopologySpec(
                n_nodes=scale.n_nodes,
                byzantine_fraction=f,
                trusted_fraction=t,
                view_ratio=scale.view_ratio,
            )
            resilience, discovery, stability = _mean_raptee_metrics(
                scale, spec, eviction
            )
            improvement = resilience_improvement(base_resilience, resilience)
            discovery_overhead = overhead_percent(int(base_discovery), int(discovery))
            stability_overhead = overhead_percent(int(base_stability), int(stability))
            result.rows.append(
                [
                    f"{f:.0%}",
                    f"{t:.0%}",
                    f"{improvement:+.1f}",
                    "n/r" if discovery_overhead is None else f"{discovery_overhead:+.1f}",
                    "n/r" if stability_overhead is None else f"{stability_overhead:+.1f}",
                ]
            )
    return result


def fixed_eviction_figure(rate: float, scale: Scale, **kwargs) -> FigureResult:
    """Figs. 5 (0 %), 6 (40 %), 7 (60 %), 8 (100 %)."""
    labels = {0.0: "Fig. 5", 0.4: "Fig. 6", 0.6: "Fig. 7", 1.0: "Fig. 8"}
    figure_id = (
        f"{labels.get(rate, 'Fig. 5-8')} — eviction rate {rate:.0%}"
    )
    return eviction_figure(figure_id, FixedEviction(rate), scale, **kwargs)


def figure9_adaptive(scale: Scale, **kwargs) -> FigureResult:
    return eviction_figure(
        "Fig. 9 — adaptive eviction rate", AdaptiveEviction(), scale, **kwargs
    )


# ---------------------------------------------------------------------------
# Figs. 10-12 — trusted-node identification attack
# ---------------------------------------------------------------------------

def identification_figure(
    figure_id: str,
    byzantine_fraction: float,
    scale: Scale,
    policies: Sequence[EvictionPolicy] = (
        FixedEviction(0.0),
        FixedEviction(0.4),
        FixedEviction(0.6),
        FixedEviction(1.0),
    ),
    t_values: Sequence[float] = (0.01, 0.10, 0.30),
) -> FigureResult:
    """Figs. 10/11 (fixed rates at f = 10 %/30 %) and Fig. 12 (adaptive).

    Byzantine nodes issue β·l1 pull probes per round; the classifier runs
    over the pre-stability window, where the paper shows the attack is
    strongest.
    """
    result = FigureResult(
        figure_id=figure_id,
        headers=["ER", "t", "precision", "recall", "F1"],
    )
    for policy in policies:
        for t in t_values:
            precisions: List[float] = []
            recalls: List[float] = []
            f1s: List[float] = []
            for seed in scale.seeds():
                spec = TopologySpec(
                    n_nodes=scale.n_nodes,
                    byzantine_fraction=byzantine_fraction,
                    trusted_fraction=t,
                    view_ratio=scale.view_ratio,
                )
                config = spec.brahms_config()
                bundle = build_raptee_simulation(
                    spec, seed, eviction=policy, probe_pulls=config.beta_count
                )
                metrics = run_bundle(bundle, scale.rounds)
                window_end = (
                    metrics.stability_round
                    if metrics.stability_round > 0
                    else scale.rounds // 2
                )
                attack = IdentificationAttack(bundle.coordinator)
                report = attack.classify(
                    bundle.trusted_ids, since_round=1, until_round=window_end
                )
                precisions.append(report.precision)
                recalls.append(report.recall)
                f1s.append(report.f1)
            result.rows.append(
                [
                    policy.describe(),
                    f"{t:.0%}",
                    f"{sum(precisions) / len(precisions):.2f}",
                    f"{sum(recalls) / len(recalls):.2f}",
                    f"{sum(f1s) / len(f1s):.2f}",
                ]
            )
    return result


# ---------------------------------------------------------------------------
# Fig. 13 — view-poisoned trusted-node injection
# ---------------------------------------------------------------------------

def figure13_poisoned_injection(
    scale: Scale,
    t_values: Sequence[float] = (0.01, 0.10, 0.30),
    poison_values: Sequence[float] = (0.0, 0.01, 0.05, 0.10, 0.20, 0.30),
    f_values: Sequence[float] = (0.10, 0.20, 0.30),
    cache: Optional[BaselineCache] = None,
) -> FigureResult:
    """Resilience improvement vs f, for honest-trusted shares t and several
    shares of injected view-poisoned trusted nodes (0 = the paper's black
    baseline line)."""
    cache = cache or BaselineCache(scale)
    result = FigureResult(
        figure_id="Fig. 13 — corrupted trusted node injection",
        headers=["t", "poisoned", "f", "improvement %"],
    )
    for t in t_values:
        for poisoned in poison_values:
            for f in f_values:
                base_resilience, _, _ = cache.mean_metrics(f)
                spec = TopologySpec(
                    n_nodes=scale.n_nodes,
                    byzantine_fraction=f,
                    trusted_fraction=t,
                    poisoned_fraction=poisoned,
                    view_ratio=scale.view_ratio,
                )
                resilience, _, _ = _mean_raptee_metrics(
                    scale, spec, AdaptiveEviction()
                )
                result.rows.append(
                    [
                        f"{t:.0%}",
                        f"{poisoned:.0%}",
                        f"{f:.0%}",
                        f"{resilience_improvement(base_resilience, resilience):+.1f}",
                    ]
                )
    return result


# ---------------------------------------------------------------------------
# Extension — pollution rate under trusted-set churn (dynamic membership)
# ---------------------------------------------------------------------------

def membership_churn_figure(
    scale: Scale,
    churn_rates: Sequence[float] = (0.0, 0.02, 0.05),
    byzantine_fraction: float = 0.10,
    trusted_fraction: float = 0.20,
) -> FigureResult:
    """Pollution vs trusted-set churn rate (beyond the paper's static set).

    Each row runs the full RAPTEE deployment with dynamic membership: a
    per-round probability ``rate`` of one trusted node joining and one
    leaving, every leave forcing a group-key rotation the surviving
    trusted set must re-attest through.  The pollution column shows how
    much Byzantine presence the overlay absorbs while the trusted set is
    repeatedly re-keying — the cost of revocation-capable membership.
    """
    from repro.faults.harness import wire_faults
    from repro.faults.plan import FaultPlan
    from repro.membership import MembershipConfig

    result = FigureResult(
        figure_id="Churn — pollution under trusted-set churn",
        headers=["churn/round", "byz-in-views %", "epochs", "joins", "leaves"],
    )
    for rate in churn_rates:
        resiliences: List[float] = []
        epochs = joins = leaves = 0
        for seed in scale.seeds():
            spec = TopologySpec(
                n_nodes=scale.n_nodes,
                byzantine_fraction=byzantine_fraction,
                trusted_fraction=trusted_fraction,
                view_ratio=scale.view_ratio,
            )
            membership = MembershipConfig(join_rate=rate, leave_rate=rate)
            bundle = build_raptee_simulation(
                spec, seed, eviction=AdaptiveEviction(), membership=membership
            )
            # An empty fault plan still wires the recovery manager and the
            # membership director tick — which is what drives the churn.
            harness = wire_faults(bundle, FaultPlan(), seed)
            harness.run(scale.rounds)
            metrics = bundle_metrics(bundle, scale.rounds)
            resiliences.append(metrics.resilience)
            director = bundle.membership
            epochs += director.service.chain.current.number
            joins += director.stats.joins
            leaves += director.stats.leaves
        repetitions = len(scale.seeds())
        result.rows.append(
            [
                f"{rate:.0%}",
                f"{100 * sum(resiliences) / len(resiliences):.1f}",
                f"{epochs / repetitions:.1f}",
                f"{joins / repetitions:.1f}",
                f"{leaves / repetitions:.1f}",
            ]
        )
    return result


def _histogram_percentile(histogram, quantile: float) -> float:
    """Smallest bucket bound covering ``quantile`` of the observations.

    Registry histograms are fixed-bucket (no raw samples), so percentiles
    are upper bounds — deterministic and monotone, which is all the SLO
    curve needs.  Observations above the last bound report that bound.
    """
    if histogram.count == 0:
        return 0.0
    target = quantile * histogram.count
    cumulative = 0
    for index, bound in enumerate(histogram.buckets):
        cumulative += histogram.bucket_counts[index]
        if cumulative >= target:
            return bound
    return histogram.buckets[-1]


def slo_figure(
    scale: Scale,
    loads: Sequence[Tuple[int, float]] = ((10, 30.0), (40, 30.0), (160, 30.0)),
    latency_spec: str = "lognormal:40:0.6",
    slo_ms: float = 200.0,
    byzantine_fraction: float = 0.10,
    trusted_fraction: float = 0.10,
) -> FigureResult:
    """Latency/throughput SLO curve under client load (event engine).

    Sweeps offered load (clients × requests/minute) over one RAPTEE
    deployment running continuously with per-link latency; every column
    is computed from the telemetry registry (``load.*`` series), so the
    figure doubles as an end-to-end check that the event engine's
    metrics surface is complete.
    """
    from repro.events import (
        EventOptions,
        LatencyConfig,
        LoadSpec,
        parse_latency_model,
    )
    from repro.events.network import LATENCY_BUCKETS_MS
    from repro.telemetry import TelemetryConfig, wire_telemetry

    result = FigureResult(
        figure_id=f"SLO — sampling latency/throughput (link {latency_spec})",
        headers=["load", "served", "failed", "p50 ms", "p95 ms",
                 f"<= {slo_ms:g} ms %", "byz %", "req/s"],
    )
    seed = scale.base_seed
    model = parse_latency_model(latency_spec)
    for clients, per_minute in loads:
        spec = TopologySpec(
            n_nodes=scale.n_nodes,
            byzantine_fraction=byzantine_fraction,
            trusted_fraction=trusted_fraction,
            view_ratio=scale.view_ratio,
        )
        bundle = build_raptee_simulation(spec, seed, eviction=AdaptiveEviction())
        harness = wire_telemetry(bundle, TelemetryConfig(tracing=False))
        options = EventOptions(
            seed=seed,
            mode="continuous",
            latency=LatencyConfig(default=model),
            load=LoadSpec(clients, per_minute),
        )
        run_bundle(bundle, scale.rounds, events=options)
        registry = harness.telemetry.registry
        served = registry.value("load.requests")
        failed = registry.value("load.failures")
        byzantine = registry.value("load.byzantine_samples")
        latency = registry.histogram("load.latency_ms", LATENCY_BUCKETS_MS)
        within = 0
        for index, bound in enumerate(latency.buckets):
            if bound <= slo_ms:
                within += latency.bucket_counts[index]
        duration = scale.rounds * options.tick_interval
        result.rows.append([
            f"{clients}x{per_minute:g}",
            f"{served:.0f}",
            f"{failed:.0f}",
            f"{_histogram_percentile(latency, 0.50):g}",
            f"{_histogram_percentile(latency, 0.95):g}",
            f"{100.0 * within / served if served else 0.0:.1f}",
            f"{100.0 * byzantine / served if served else 0.0:.1f}",
            f"{served / duration:.1f}",
        ])
    return result


def straggler_figure(
    scale: Scale,
    profiles: Sequence[Tuple[float, float]] = ((0.0, 1.0), (0.1, 4.0), (0.1, 16.0)),
    latency_spec: str = "lognormal:40:0.6",
    byzantine_fraction: float = 0.10,
    trusted_fraction: float = 0.10,
) -> FigureResult:
    """Overlay health vs straggler severity (event engine).

    Each row slows a deterministic subset of nodes by the given factor:
    their gossip cycles stretch past the round period, they exchange
    less, and the figure reports what that costs — pollution, late-cycle
    share, and protocol invariant violations observed at round
    boundaries by a record-only checker.
    """
    from repro.events import (
        EventOptions,
        LatencyConfig,
        StragglerProfile,
        parse_latency_model,
        wire_events,
    )
    from repro.faults.invariants import InvariantChecker

    result = FigureResult(
        figure_id=f"Stragglers — overlay health (link {latency_spec})",
        headers=["stragglers", "byz-in-views %", "cycles", "late %", "violations"],
    )
    seed = scale.base_seed
    model = parse_latency_model(latency_spec)
    for fraction, slowdown in profiles:
        spec = TopologySpec(
            n_nodes=scale.n_nodes,
            byzantine_fraction=byzantine_fraction,
            trusted_fraction=trusted_fraction,
            view_ratio=scale.view_ratio,
        )
        bundle = build_raptee_simulation(spec, seed, eviction=AdaptiveEviction())
        options = EventOptions(
            seed=seed,
            mode="continuous",
            latency=LatencyConfig(default=model),
            stragglers=(
                StragglerProfile(fraction, slowdown) if fraction > 0 else None
            ),
        )
        harness = wire_events(bundle, options)
        checker = InvariantChecker(record_only=True)
        harness.run(scale.rounds, extra_observers=(checker,))
        metrics = bundle_metrics(bundle, scale.rounds)
        engine = harness.engine
        label = (f"{100.0 * fraction:g}% @ {slowdown:g}x" if fraction > 0
                 else "none")
        result.rows.append([
            label,
            f"{metrics.resilience_percent:.1f}",
            f"{engine.cycles}",
            f"{100.0 * engine.late_fraction:.1f}",
            f"{len(checker.violations)}",
        ])
    return result
