"""Paper-style table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_percent", "format_round"]


def format_percent(value: Optional[float], decimals: int = 1) -> str:
    if value is None:
        return "—"
    return f"{value:.{decimals}f}%"


def format_round(value: Optional[float]) -> str:
    if value is None or value < 0:
        return "n/r"  # not reached within the simulated horizon
    return f"{value:.0f}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table (the benches print these)."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)
