"""Experiment execution: run bundles, extract metrics, repeat over seeds."""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.analysis.metrics import (
    resilience_from_trace,
    stability_round,
)
from repro.analysis.stats import Summary, summarize
from repro.experiments.scenarios import SimulationBundle
from repro.snapshot.seedstore import SeedResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.engine import EventOptions

__all__ = [
    "RunMetrics",
    "RepeatedMetrics",
    "SeedTaskError",
    "run_bundle",
    "bundle_metrics",
    "map_ordered",
    "repeat",
]


def map_ordered(fn, items, workers=None, on_result=None):
    """Apply ``fn`` to every item, returning results in *item* order.

    The process-pool seam shared by :func:`repeat` (one task per seed) and
    the sharded engine (:mod:`repro.shard.pool`, one task per partition).
    ``workers`` ``None``/``<= 1`` — or a single item — runs inline with no
    pool overhead; otherwise ``fn`` and the items must be picklable.

    ``on_result(index, result)`` is invoked in item order for every item
    that completed — even when another item failed, so callers that
    checkpoint (``repeat``) keep finished work.  On failure, outstanding
    futures are cancelled and the failure of the *earliest* item is
    raised, whatever the completion order.
    """
    if workers is not None and workers < 1:
        raise ValueError("workers must be a positive integer")
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        results = []
        for index, item in enumerate(items):
            result = fn(item)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {pool.submit(fn, item): index for index, item in enumerate(items)}
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        for future in not_done:
            future.cancel()
        failures: List[BaseException] = []
        results_by_index: Dict[int, object] = {}
        for future in sorted(done, key=futures.__getitem__):
            error = future.exception()
            if error is None:
                index = futures[future]
                results_by_index[index] = future.result()
                if on_result is not None:
                    on_result(index, results_by_index[index])
            else:
                failures.append(error)
        if failures:
            raise failures[0]  # earliest-item failure, deterministically
        return [results_by_index[index] for index in range(len(items))]


@dataclass(frozen=True)
class RunMetrics:
    """Outcome of one simulation run."""

    resilience: float          # mean Byzantine fraction in correct views (tail)
    discovery_round: int       # -1 if 75 % discovery never reached
    stability_round: int       # -1 if stability never reached
    rounds: int

    @property
    def resilience_percent(self) -> float:
        return 100.0 * self.resilience


@dataclass(frozen=True)
class RepeatedMetrics:
    """Aggregates over seed repetitions."""

    resilience: Summary
    discovery_round: Optional[Summary]
    stability_round: Optional[Summary]
    runs: List[RunMetrics]


class SeedTaskError(RuntimeError):
    """One seed of a repeated experiment failed; the message names it."""

    def __init__(self, seed: int, message: str):
        super().__init__(message)
        self.seed = seed

    def __reduce__(self):
        # Default RuntimeError reduction would call SeedTaskError(message)
        # with one argument; spell the two-argument constructor out so the
        # exception survives the pickle hop back from a pool worker.
        return (SeedTaskError, (self.seed, self.args[0]))


@dataclass(frozen=True)
class _SeedTaggedRun:
    """Picklable wrapper: failures of ``build_and_run`` name their seed.

    ``ProcessPoolExecutor`` re-raises worker exceptions bare, which loses
    the one piece of context needed to reproduce the failure — the seed.
    """

    build_and_run: Callable[[int], RunMetrics]

    def __call__(self, seed: int) -> RunMetrics:
        try:
            return self.build_and_run(seed)
        except Exception as exc:
            raise SeedTaskError(
                seed, f"seed {seed} failed: {type(exc).__name__}: {exc}"
            ) from exc


def run_bundle(
    bundle: SimulationBundle,
    rounds: int,
    tail: int = 10,
    events: Optional["EventOptions"] = None,
) -> RunMetrics:
    """Run a built simulation and compute the paper's three metrics.

    ``events`` switches the run onto the event-driven engine
    (:mod:`repro.events`): the bundle is wired with
    :func:`~repro.events.harness.wire_events` and driven from the event
    queue, with the same observer stack and therefore the same metrics
    surface.  The attached harness stays available as ``bundle.events``
    (load statistics, cycle counts, schedule log).
    """
    if events is None:
        bundle.run(rounds)
    else:
        from repro.events.harness import wire_events

        wire_events(bundle, events).run(rounds)
    return bundle_metrics(bundle, rounds, tail=tail)


def bundle_metrics(bundle: SimulationBundle, rounds: int, tail: int = 10) -> RunMetrics:
    """The paper's three metrics from an already-executed bundle.

    Split out of :func:`run_bundle` so checkpointed executions (see
    :mod:`repro.snapshot`) can run the rounds in resumable chunks and still
    produce the identical metrics object at the end.
    """
    view_size = bundle.spec.brahms_config().view_size
    return RunMetrics(
        resilience=resilience_from_trace(bundle.trace.records, tail=tail),
        discovery_round=bundle.discovery.all_discovered_round(bundle.simulation),
        stability_round=stability_round(
            bundle.trace.records, view_size=view_size, sustained=3
        ),
        rounds=rounds,
    )


def repeat(
    build_and_run: Callable[[int], RunMetrics],
    seeds: List[int],
    workers: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
) -> RepeatedMetrics:
    """Run one experiment under several seeds and aggregate.

    Discovery/stability summaries only include runs that actually reached
    the milestone (the paper's runs always converge; scaled-down runs that
    miss a milestone are excluded rather than polluting the mean with -1;
    the "never reached" sentinel is -1, so a round-0 milestone counts).

    ``workers`` > 1 runs seeds in parallel via a process pool; results are
    aggregated in seed order whatever the completion order, so the
    aggregates are identical whatever the worker count.  ``build_and_run``
    must then be picklable (a module-level function).  A failing seed
    raises :class:`SeedTaskError` naming that seed.

    ``checkpoint_path`` makes the sweep resumable: every completed seed's
    metrics are appended to a versioned JSON store at that path, and a
    rerun with the same path skips seeds already recorded — so a sweep
    interrupted (or killed by one bad seed) resumes where it stopped.
    """
    if workers is not None and workers < 1:
        raise ValueError("workers must be a positive integer")
    completed: Dict[int, RunMetrics] = {}
    store: Optional[SeedResultStore] = None
    if checkpoint_path is not None:
        store = SeedResultStore(checkpoint_path)
        completed = {
            seed: RunMetrics(**payload)
            for seed, payload in store.results().items()
            if seed in set(seeds)
        }
    pending = sorted(set(seeds) - set(completed))
    task = _SeedTaggedRun(build_and_run)

    def _record(index: int, metrics: RunMetrics) -> None:
        # Record every seed that did finish — even when another seed
        # failed — so a checkpointed sweep keeps the completed work.
        completed[pending[index]] = metrics
        if store is not None:
            store.record(pending[index], asdict(metrics))

    map_ordered(task, pending, workers=workers, on_result=_record)

    runs = [completed[seed] for seed in seeds]
    return RepeatedMetrics(
        resilience=summarize([run.resilience for run in runs]),
        discovery_round=summarize(
            [run.discovery_round for run in runs if run.discovery_round >= 0]
        ),
        stability_round=summarize(
            [run.stability_round for run in runs if run.stability_round >= 0]
        ),
        runs=runs,
    )
