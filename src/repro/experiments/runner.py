"""Experiment execution: run bundles, extract metrics, repeat over seeds."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.analysis.metrics import (
    resilience_from_trace,
    stability_round,
)
from repro.analysis.stats import Summary, summarize
from repro.experiments.scenarios import SimulationBundle

__all__ = ["RunMetrics", "RepeatedMetrics", "run_bundle", "repeat"]


@dataclass(frozen=True)
class RunMetrics:
    """Outcome of one simulation run."""

    resilience: float          # mean Byzantine fraction in correct views (tail)
    discovery_round: int       # -1 if 75 % discovery never reached
    stability_round: int       # -1 if stability never reached
    rounds: int

    @property
    def resilience_percent(self) -> float:
        return 100.0 * self.resilience


@dataclass(frozen=True)
class RepeatedMetrics:
    """Aggregates over seed repetitions."""

    resilience: Summary
    discovery_round: Optional[Summary]
    stability_round: Optional[Summary]
    runs: List[RunMetrics]


def run_bundle(bundle: SimulationBundle, rounds: int, tail: int = 10) -> RunMetrics:
    """Run a built simulation and compute the paper's three metrics."""
    bundle.run(rounds)
    view_size = bundle.spec.brahms_config().view_size
    return RunMetrics(
        resilience=resilience_from_trace(bundle.trace.records, tail=tail),
        discovery_round=bundle.discovery.all_discovered_round(bundle.simulation),
        stability_round=stability_round(
            bundle.trace.records, view_size=view_size, sustained=3
        ),
        rounds=rounds,
    )


def repeat(
    build_and_run: Callable[[int], RunMetrics],
    seeds: List[int],
    workers: Optional[int] = None,
) -> RepeatedMetrics:
    """Run one experiment under several seeds and aggregate.

    Discovery/stability summaries only include runs that actually reached
    the milestone (the paper's runs always converge; scaled-down runs that
    miss a milestone are excluded rather than polluting the mean with -1;
    the "never reached" sentinel is -1, so a round-0 milestone counts).

    ``workers`` > 1 runs seeds in parallel via a process pool; each run is
    deterministic under its own seed and results are collected in seed
    order, so the aggregates are identical whatever the worker count.
    ``build_and_run`` must then be picklable (a module-level function).
    """
    if workers is not None and workers < 1:
        raise ValueError("workers must be a positive integer")
    if workers is None or workers == 1 or len(seeds) <= 1:
        runs = [build_and_run(seed) for seed in seeds]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Executor.map preserves input order regardless of completion
            # order — the property that keeps aggregation deterministic.
            runs = list(pool.map(build_and_run, seeds))
    return RepeatedMetrics(
        resilience=summarize([run.resilience for run in runs]),
        discovery_round=summarize(
            [run.discovery_round for run in runs if run.discovery_round >= 0]
        ),
        stability_round=summarize(
            [run.stability_round for run in runs if run.stability_round >= 0]
        ),
        runs=runs,
    )
