"""Sharded, vectorized simulation core (the batch counterpart of
:mod:`repro.sim`).

The legacy engine is one Python object per node and one callback per
message — the right shape for protocol fidelity, the wrong one for
N = 10,000.  This package stores the whole population as struct-of-arrays
(:mod:`repro.shard.state`), batches each round's push/pull traffic per
partition (:mod:`repro.shard.engine`), and distributes partitions across
the same process-pool seam the experiment sweeps use
(:mod:`repro.shard.pool`).  A deterministic cross-shard ordering barrier —
a stable ``(round, src, dst, seq)`` sort over the merged message stream —
makes every run byte-identical regardless of shard count, worker count or
numeric backend; ``tests/test_shard_differential.py`` pins that.

:func:`run_sharded` is the one-call surface: build, run, and collect the
byte-comparable artifacts (trace JSONL, metrics CSV, final views, network
totals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.shard.engine import ShardSimulation
from repro.shard.state import ShardConfig, ShardState, build_state, partition_bounds

__all__ = [
    "ShardConfig",
    "ShardState",
    "ShardSimulation",
    "ShardArtifacts",
    "build_state",
    "partition_bounds",
    "run_sharded",
]


@dataclass
class ShardArtifacts:
    """The byte-comparison surface of one sharded run."""

    simulation: ShardSimulation
    trace_jsonl: str
    metrics_csv: str
    final_views: Dict[int, List[int]]
    network_totals: Dict[str, int]


def run_sharded(
    config: ShardConfig,
    rounds: int,
    shards: int = 1,
    workers: int = 1,
    use_numpy: Optional[bool] = None,
    trace_messages: bool = False,
) -> ShardArtifacts:
    """Run ``rounds`` rounds and collect every byte-identity artifact.

    The differential suite calls this for each (shards, workers, backend)
    combination and asserts the artifacts are equal byte for byte.
    """
    from repro.telemetry import (
        TelemetryConfig,
        Telemetry,
        metrics_to_csv,
        trace_to_jsonl,
    )

    telemetry = Telemetry(
        TelemetryConfig(tracing=True, trace_messages=trace_messages)
    )
    simulation = ShardSimulation(
        config, shards=shards, workers=workers, use_numpy=use_numpy,
        telemetry=telemetry,
    )
    simulation.run(rounds)
    stats = simulation.stats
    return ShardArtifacts(
        simulation=simulation,
        trace_jsonl=trace_to_jsonl(telemetry.trace.events),
        metrics_csv=metrics_to_csv(telemetry.registry),
        final_views=simulation.final_views(),
        network_totals={
            "pushes_sent": stats.pushes_sent,
            "pushes_delivered": stats.pushes_delivered,
            "requests_sent": stats.requests_sent,
            "replies_delivered": stats.replies_delivered,
            "messages_lost": stats.messages_lost,
            "bytes_encrypted": stats.bytes_encrypted,
        },
    )
