"""Counter-based deterministic randomness for the sharded engine.

The legacy engine draws from sequential ``random.Random`` streams, which
makes every draw depend on global iteration order — exactly what a sharded
engine cannot afford.  Here every random quantity is a *pure function of
its coordinates*: a SplitMix64 finalizer over the tuple

    (seed, purpose, round, a, b)

where ``purpose`` is a small integer code naming the draw site (push
target, loss gate, eviction keep, ...), and ``a``/``b`` are the draw's own
coordinates (usually node id and slot index).  Any shard — any *process* —
can evaluate any draw without communicating, and the result is identical
regardless of partitioning, scheduling, or backend.

Purpose codes are integers, never strings: Python's ``hash(str)`` is
randomized per process (PYTHONHASHSEED), and the whole point is that two
processes agree.

The scalar path below is pure Python (masked 64-bit arithmetic); the
vectorized path in :func:`key_array` runs on
:func:`repro.perf.kernels.splitmix64_array` and computes the *same*
integers (uint64 wrap-around is the mask).  ``tests/test_shard_engine.py``
pins the scalar/vector agreement.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.perf.kernels import HAVE_NUMPY, SPLITMIX64_M1, SPLITMIX64_M2

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

__all__ = [
    "mix64",
    "key64",
    "key_array",
    "rand_float",
    "rand_below",
    "keyed_order",
    "Purpose",
]

_MASK = (1 << 64) - 1
#: Odd constants decorrelating the tuple positions before mixing (the
#: golden-ratio increment of SplitMix64 and three arbitrary odd primes).
_C_PURPOSE = 0x9E3779B97F4A7C15
_C_ROUND = 0xC2B2AE3D27D4EB4F
_C_A = 0xD6E8FEB86659FD93
_C_B = 0xA5A3B195354A9B0D


class Purpose:
    """Integer draw-site codes (see module docstring for why not strings)."""

    PUSH_TARGET = 1
    PULL_TARGET = 2
    PUSH_LOSS = 3
    SESSION_LOSS = 4
    ADV_ORDER = 5
    FAKE_VIEW = 6
    EVICT_KEEP = 7
    SAMPLER_A = 8
    SAMPLER_B = 9
    SAMPLER_RESET_A = 10
    SAMPLER_RESET_B = 11
    RENEW_PUSH = 12
    RENEW_PULL = 13
    RENEW_GAMMA = 14
    BOOTSTRAP = 15


def mix64(x: int) -> int:
    """SplitMix64 finalizer (scalar reference for the numpy kernel)."""
    x &= _MASK
    x = ((x ^ (x >> 30)) * SPLITMIX64_M1) & _MASK
    x = ((x ^ (x >> 27)) * SPLITMIX64_M2) & _MASK
    return x ^ (x >> 31)


def key64(seed: int, purpose: int, round_no: int, a: int = 0, b: int = 0) -> int:
    """The 64-bit hash of one draw coordinate tuple."""
    base = mix64(seed ^ (purpose * _C_PURPOSE) ^ (round_no * _C_ROUND))
    return mix64(base ^ (a * _C_A) ^ (b * _C_B))


def _base(seed: int, purpose: int, round_no: int) -> int:
    return mix64(seed ^ (purpose * _C_PURPOSE) ^ (round_no * _C_ROUND))


def key_array(seed: int, purpose: int, round_no: int, a_values, b_values):
    """Vectorized :func:`key64` over parallel coordinate arrays (uint64).

    ``a_values``/``b_values`` broadcast against each other; requires numpy
    (callers on the pure backend loop over :func:`key64`).
    """
    from repro.perf.kernels import splitmix64_array

    base = np.uint64(_base(seed, purpose, round_no))
    a_arr = np.asarray(a_values, dtype=np.uint64) * np.uint64(_C_A)
    b_arr = np.asarray(b_values, dtype=np.uint64) * np.uint64(_C_B)
    return splitmix64_array(base ^ a_arr ^ b_arr)


def rand_float(seed: int, purpose: int, round_no: int, a: int = 0, b: int = 0) -> float:
    """Uniform float in [0, 1) — the top 53 bits of the key."""
    return (key64(seed, purpose, round_no, a, b) >> 11) * (2.0 ** -53)


def rand_below(n: int, seed: int, purpose: int, round_no: int,
               a: int = 0, b: int = 0) -> int:
    """Uniform-ish integer in [0, n) (modulo reduction; the bias at
    simulation population sizes is < 2^-40 and identical on both
    backends, which is the property that matters here)."""
    return key64(seed, purpose, round_no, a, b) % n


def keyed_order(items: Sequence[int], seed: int, purpose: int, round_no: int,
                a: int = 0) -> List[int]:
    """A deterministic pseudo-random permutation of ``items``.

    Sorts by the per-item key (ties broken by the item itself, so the
    result is a permutation even under key collisions).  Replaces
    ``rng.shuffle``/``rng.sample`` at the sites where the legacy engine
    randomizes order.
    """
    return sorted(items, key=lambda item: (key64(seed, purpose, round_no, a, item), item))
