"""Compile scenario data into a :class:`~repro.shard.state.ShardConfig`.

The shard engine supports the *batch-friendly v1 subset* of the scenario
space: Brahms and RAPTEE topologies, message loss, modeled transport
encryption, fixed/adaptive eviction, the balanced adversary, loss-burst
and crash/restart faults.  Everything else — churn, membership epochs,
poisoned-view injection, sketch unbiasing, probe pulls, cycle accounting,
the adaptive adversary, the event clock — stays on the legacy per-node
engines; asking for it raises :class:`ShardUnsupportedError` naming the
feature, never a silent approximation.
"""

from __future__ import annotations

from typing import Optional

from repro.core.eviction import AdaptiveEviction, EvictionPolicy, FixedEviction
from repro.experiments.scenarios import TopologySpec
from repro.faults.plan import CrashRestartFault, LossBurstFault
from repro.shard.state import ShardConfig

__all__ = [
    "ShardUnsupportedError",
    "eviction_fields",
    "shard_config_from_topology",
    "shard_config_from_spec",
]


class ShardUnsupportedError(ValueError):
    """A scenario feature the sharded engine does not model."""

    def __init__(self, feature: str):
        super().__init__(
            f"the shard engine does not support {feature}; run this scenario "
            f"on the legacy engine (engine.kind='rounds')"
        )
        self.feature = feature


def eviction_fields(policy: Optional[EvictionPolicy], enabled: bool = True):
    """An eviction policy as the (kind, params) pair ShardConfig stores."""
    if policy is None or not enabled:
        return "none", ()
    if isinstance(policy, FixedEviction):
        return "fixed", (policy.value,)
    if isinstance(policy, AdaptiveEviction):
        return "adaptive", (
            policy.low_share, policy.high_share, policy.low_rate, policy.high_rate,
        )
    raise ShardUnsupportedError(f"eviction policy {type(policy).__name__}")


def shard_config_from_topology(
    topology: TopologySpec,
    seed: int,
    protocol: str = "raptee",
    brahms=None,
    eviction: Optional[EvictionPolicy] = None,
    eviction_enabled: bool = True,
    trusted_exchange: bool = True,
    loss_bursts=(),
    crashes=(),
) -> ShardConfig:
    """Build a :class:`ShardConfig` from a topology + Brahms parameters
    (the CLI's ``repro run --shards N`` path).

    ``brahms`` defaults to ``topology.brahms_config()`` — the same derived
    view/sample sizes every other builder uses.
    """
    if topology.poisoned_fraction:
        raise ShardUnsupportedError("poisoned-view injection")
    config = brahms if brahms is not None else topology.brahms_config()
    if protocol == "brahms":
        eviction_kind, eviction_params = "none", ()
    else:
        eviction_kind, eviction_params = eviction_fields(
            eviction if eviction is not None else AdaptiveEviction(),
            eviction_enabled,
        )
    return ShardConfig(
        protocol=protocol,
        n_nodes=topology.n_nodes,
        seed=seed,
        n_byzantine=topology.n_byzantine,
        n_trusted=topology.n_trusted if protocol == "raptee" else 0,
        view_size=config.view_size,
        sample_size=config.sample_size,
        alpha_count=config.alpha_count,
        beta_count=config.beta_count,
        gamma_count=config.gamma_count,
        blocking_enabled=config.blocking_enabled,
        validation_period=config.validation_period,
        push_limit=config.push_limit,
        loss_rate=topology.loss_rate,
        encrypt=topology.transport_encryption,
        eviction_kind=eviction_kind,
        eviction_params=eviction_params,
        trusted_exchange=trusted_exchange,
        loss_bursts=tuple(loss_bursts),
        crashes=tuple(crashes),
    )


def shard_config_from_spec(spec) -> ShardConfig:
    """Build a :class:`ShardConfig` from a ``kind='shard'``
    :class:`~repro.scenario.spec.ScenarioSpec`, rejecting features outside
    the v1 subset with :class:`ShardUnsupportedError`."""
    if spec.engine.kind != "shard":
        raise ValueError(
            f"scenario {spec.name!r} selects engine.kind="
            f"{spec.engine.kind!r}, not the shard engine"
        )
    if spec.churn.kind != "none":
        raise ShardUnsupportedError(f"churn kind {spec.churn.kind!r}")
    if spec.membership is not None:
        raise ShardUnsupportedError("the membership service")
    if spec.adversary_strategy != "balanced":
        raise ShardUnsupportedError(
            f"adversary strategy {spec.adversary_strategy!r} "
            f"(only 'balanced' is modeled)"
        )
    options = spec.raptee
    if options is not None:
        if options.sketch_unbias_enabled:
            raise ShardUnsupportedError("count-min sketch unbiasing")
        if options.probe_pulls:
            raise ShardUnsupportedError("probe pulls")
        if options.with_cycle_accounting:
            raise ShardUnsupportedError("SGX cycle accounting")
    loss_bursts = []
    crashes = []
    for fault in spec.faults:
        if isinstance(fault, LossBurstFault):
            loss_bursts.append(
                (fault.window.start, fault.window.end, fault.loss_rate)
            )
        elif isinstance(fault, CrashRestartFault):
            crashes.append((fault.node_id, fault.at_round, fault.down_rounds))
        else:
            raise ShardUnsupportedError(f"fault kind {type(fault).__name__}")
    return shard_config_from_topology(
        spec.topology,
        spec.seed,
        protocol=spec.protocol,
        brahms=spec.brahms,
        eviction=None if options is None else options.eviction,
        eviction_enabled=options.eviction_enabled if options is not None else True,
        trusted_exchange=(
            options.trusted_exchange_enabled if options is not None else True
        ),
        loss_bursts=loss_bursts,
        crashes=crashes,
    )
